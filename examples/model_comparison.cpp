// Model comparison: the Table 4 scenario as an application.
//
// Three families of cost models predict k-NN page accesses on the same
// high-dimensional clustered dataset: the uniformity-based model, the
// fractal-dimensionality model, and this library's sampling-based resampled
// predictor. On clustered high-dimensional data the first two fail in
// characteristic ways; sampling stays close to the measurement.

#include <cmath>
#include <cstdio>

#include "baselines/fractal.h"
#include "baselines/uniform_model.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/hupper.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;

  std::printf("Generating TEXTURE60 surrogate (25,000 x 60)...\n");
  const data::Dataset dataset = data::Texture60Surrogate(25000, /*seed=*/5);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(6);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, /*q=*/80, /*k=*/21, &rng);

  // Ground truth from a fully built index.
  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr));

  // Baseline 1: uniformity assumption.
  baselines::UniformModelParams uniform;
  uniform.num_points = dataset.size();
  uniform.dim = dataset.dim();
  uniform.num_leaf_pages = topology.NumLeaves();
  uniform.k = workload.k();
  const double uniform_pred =
      baselines::PredictUniformModel(uniform).predicted_accesses;

  // Baseline 2: fractal dimensionality.
  const baselines::FractalDimensions dims =
      baselines::EstimateFractalDimensions(dataset, 10);
  baselines::FractalModelParams fractal;
  fractal.num_points = dataset.size();
  fractal.num_leaf_pages = topology.NumLeaves();
  fractal.k = workload.k();
  const baselines::FractalModelResult fractal_result =
      baselines::PredictFractalModel(dims, fractal);

  // This paper: resampled sampling predictor.
  io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
  core::ResampledParams params;
  params.memory_points = 5000;
  params.h_upper = core::ChooseHupper(topology, params.memory_points);
  const double sampled_pred =
      core::PredictWithResampledTree(&file, topology, workload, params)
          .avg_leaf_accesses;

  std::printf("\nDataset: %zu points, %zu dims, %zu leaf pages (D0=%.2f, "
              "D2=%.2f)\n",
              dataset.size(), dataset.dim(), topology.NumLeaves(), dims.d0,
              dims.d2);
  std::printf("Measured leaf accesses per 21-NN query: %.1f\n\n", measured);
  std::printf("%-12s %14s %12s\n", "Method", "Pages accessed", "Rel. error");
  auto print_row = [&](const char* name, double pred) {
    std::printf("%-12s %14.0f %11.0f%%\n", name, pred,
                100.0 * common::RelativeError(pred, measured));
  };
  print_row("Uniform", uniform_pred);
  if (fractal_result.applicable) {
    print_row("Fractal", fractal_result.predicted_accesses);
  } else {
    std::printf("%-12s %14s %12s\n", "Fractal", "n/a", "n/a");
  }
  print_row("Resampled", sampled_pred);
  return 0;
}
