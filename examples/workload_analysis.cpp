// Workload analysis: per-query prediction quality across k and sample size.
//
// Average relative error hides inconsistency (the paper's point about the
// cutoff tree: decent averages, zero per-query correlation). This example
// inspects a workload query-by-query: it prints the measured-vs-predicted
// correlation and a coarse text scatter, and shows how prediction quality
// responds to the sampling budget.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;

  const data::Dataset dataset = data::Color64Surrogate(20000, /*seed=*/7);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  std::printf("COLOR64 surrogate: %zu x %zu, %zu leaf pages, height %zu\n",
              dataset.size(), dataset.dim(), topology.NumLeaves(),
              topology.height());

  common::Rng rng(8);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, /*q=*/80, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const std::vector<double> measured = index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr);

  // Sweep the sampling budget (Figure 2's experiment, per query).
  std::printf("\n%-12s %12s %12s %14s\n", "sample", "pred avg", "rel err",
              "correlation");
  const double measured_avg = common::Mean(measured);
  for (double fraction : {0.02, 0.05, 0.1, 0.2, 0.5}) {
    core::MiniIndexParams params;
    params.sampling_fraction = fraction;
    const core::PredictionResult result =
        core::PredictWithMiniIndex(dataset, topology, workload, params);
    std::printf("%10.0f%% %12.1f %11.1f%% %14.3f\n", 100 * fraction,
                result.avg_leaf_accesses,
                100.0 * common::RelativeError(result.avg_leaf_accesses,
                                              measured_avg),
                common::PearsonCorrelation(result.per_query_accesses,
                                           measured));
  }

  // Per-query scatter for the restricted-memory resampled predictor.
  io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
  core::ResampledParams params;
  params.memory_points = 4000;
  params.h_upper = core::ChooseHupper(topology, params.memory_points);
  const core::PredictionResult resampled =
      core::PredictWithResampledTree(&file, topology, workload, params);

  std::printf("\nResampled predictor (M=4000, h_upper=%zu): corr=%.3f\n",
              resampled.h_upper,
              common::PearsonCorrelation(resampled.per_query_accesses,
                                         measured));
  std::printf("Correlation diagram (x: measured, y: predicted):\n");
  const double max_v =
      std::max(*std::max_element(measured.begin(), measured.end()),
               *std::max_element(resampled.per_query_accesses.begin(),
                                 resampled.per_query_accesses.end()));
  const int kGrid = 20;
  std::vector<std::vector<int>> grid(kGrid, std::vector<int>(kGrid, 0));
  for (size_t i = 0; i < measured.size(); ++i) {
    const int x = std::min(
        kGrid - 1, static_cast<int>(measured[i] / max_v * kGrid));
    const int y = std::min(
        kGrid - 1,
        static_cast<int>(resampled.per_query_accesses[i] / max_v * kGrid));
    ++grid[y][x];
  }
  for (int y = kGrid - 1; y >= 0; --y) {
    std::printf("  ");
    for (int x = 0; x < kGrid; ++x) {
      std::printf("%c", grid[y][x] == 0 ? (x == y ? '.' : ' ')
                                        : (grid[y][x] < 3 ? 'o' : 'O'));
    }
    std::printf("\n");
  }
  std::printf("  ('.' marks the ideal diagonal)\n");
  return 0;
}
