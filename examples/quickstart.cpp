// Quickstart: predict the k-NN query cost of a VAMSplit R*-tree without
// building it on disk.
//
// The flow below is the library's core use case end to end:
//   1. obtain a dataset (here: a synthetic surrogate of the paper's
//      TEXTURE60 dataset, scaled down so this runs in seconds);
//   2. derive the index topology from the disk geometry;
//   3. build a density-biased 21-NN query workload;
//   4. predict the average leaf-page accesses with the resampled technique;
//   5. compare against a real (simulated on-disk) index build.

#include <cstdio>

#include "common/random.h"
#include "common/stats.h"
#include "core/hupper.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/external_build.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;

  // 1. Dataset: 30,000 60-dimensional clustered feature vectors.
  std::printf("Generating TEXTURE60 surrogate (30,000 x 60)...\n");
  const data::Dataset dataset = data::Texture60Surrogate(30000, /*seed=*/1);

  // 2. Index topology for 8 KB pages: capacities, height, leaf count.
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  std::printf("Index: height %zu, %zu leaf pages, C_data=%zu, C_dir=%zu\n",
              topology.height(), topology.NumLeaves(),
              topology.data_capacity(), topology.dir_capacity());

  // 3. Workload: 100 density-biased 21-NN queries with exact radii.
  common::Rng rng(2);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, /*q=*/100, /*k=*/21, &rng);

  // 4. Prediction: resampled index tree with M = 5,000 points of memory.
  const size_t memory_points = 5000;
  io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
  core::ResampledParams params;
  params.memory_points = memory_points;
  params.h_upper = core::ChooseHupper(topology, memory_points);
  const core::PredictionResult prediction =
      core::PredictWithResampledTree(&file, topology, workload, params);
  std::printf(
      "Prediction: %.1f leaf accesses/query  (h_upper=%zu, sigma_upper=%.4f, "
      "sigma_lower=%.4f)\n",
      prediction.avg_leaf_accesses, prediction.h_upper,
      prediction.sigma_upper, prediction.sigma_lower);
  std::printf("Prediction I/O: %llu seeks, %llu transfers = %.2f s\n",
              static_cast<unsigned long long>(prediction.io.page_seeks),
              static_cast<unsigned long long>(prediction.io.page_transfers),
              prediction.io.CostSeconds(disk));

  // 5. Ground truth: build the on-disk index (simulated) and measure.
  std::printf("Building the on-disk index for comparison...\n");
  io::PagedFile build_file = io::PagedFile::FromDataset(dataset, disk);
  index::ExternalBuildOptions build;
  build.topology = &topology;
  build.memory_points = memory_points;
  const index::ExternalBuildResult on_disk =
      index::BuildOnDisk(&build_file, build);
  const std::vector<double> measured = index::CountSphereLeafAccesses(
      on_disk.tree, workload.queries(), workload.radii(), nullptr);
  const double measured_avg = common::Mean(measured);

  std::printf("Measured:   %.1f leaf accesses/query\n", measured_avg);
  std::printf("Relative error: %+.1f%%\n",
              100.0 * common::RelativeError(prediction.avg_leaf_accesses,
                                            measured_avg));
  std::printf("On-disk build I/O: %.2f s vs prediction %.2f s (%.0fx)\n",
              on_disk.io.CostSeconds(disk), prediction.io.CostSeconds(disk),
              on_disk.io.CostSeconds(disk) / prediction.io.CostSeconds(disk));
  return 0;
}
