// A tour of the index structures in the library and the one sampling model
// that predicts them all (Section 4.7 of the paper).
//
// The same dataset and the same 21-NN workload run against six structures;
// for each, the table shows the measured page accesses of an exact search
// and — where the structure organizes fixed-capacity pages — the
// sampling-based prediction from a 20% mini-index. The VA-file closes the
// tour as the deliberate counter-example: its cost is a closed form, no
// layout prediction needed.

#include <cstdio>

#include "common/random.h"
#include "common/stats.h"
#include "core/compensation.h"
#include "core/dynamic_mini_index.h"
#include "core/mini_index.h"
#include "core/predictor.h"
#include "core/sstree_predict.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/pyramid.h"
#include "index/rstar.h"
#include "index/sstree.h"
#include "index/va_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;

  const data::Dataset dataset = data::Texture48Surrogate(12000, /*seed=*/5);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  common::Rng rng(6);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, 40, 21, &rng);
  std::printf("TEXTURE48 surrogate: %zu x %zu; C_data=%zu, C_dir=%zu; 40 "
              "21-NN queries\n\n",
              dataset.size(), dataset.dim(), topology.data_capacity(),
              topology.dir_capacity());
  std::printf("%-30s %10s %10s\n", "structure", "measured", "predicted");

  // 1. Bulk-loaded VAMSplit R*-tree (the paper's primary target).
  index::BulkLoadOptions bulk;
  bulk.topology = &topology;
  const index::RTree vamsplit = index::BulkLoadInMemory(dataset, bulk);
  {
    const double measured =
        common::Mean(core::MeasureLeafAccesses(vamsplit, workload, nullptr));
    core::MiniIndexParams params;
    params.sampling_fraction = 0.2;
    const double predicted =
        core::PredictWithMiniIndex(dataset, topology, workload, params)
            .avg_leaf_accesses;
    std::printf("%-30s %10.1f %10.1f\n", "VAMSplit R*-tree (bulk)", measured,
                predicted);
  }

  // 2. Dynamic R*-tree.
  index::RStarTree::Options rstar_options;
  rstar_options.max_data_entries = topology.data_capacity();
  rstar_options.max_dir_entries = topology.dir_capacity();
  {
    const index::RTree tree =
        index::RStarTree::BuildByInsertion(dataset, rstar_options).ToRTree();
    const double measured =
        common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));
    core::DynamicMiniIndexParams params;
    params.sampling_fraction = 0.2;
    const double predicted =
        core::PredictDynamicRStar(dataset, rstar_options, workload, params)
            .avg_leaf_accesses;
    std::printf("%-30s %10.1f %10.1f\n", "R*-tree (insertion)", measured,
                predicted);
  }

  // 3. X-tree (supernodes at MAX_OVERLAP = 0.2).
  {
    index::RStarTree::Options xtree_options = rstar_options;
    xtree_options.supernode_overlap_threshold = 0.2;
    const index::RStarTree built =
        index::RStarTree::BuildByInsertion(dataset, xtree_options);
    const index::RTree tree = built.ToRTree();
    const double measured =
        common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));
    core::DynamicMiniIndexParams params;
    params.sampling_fraction = 0.2;
    const double predicted =
        core::PredictDynamicRStar(dataset, xtree_options, workload, params)
            .avg_leaf_accesses;
    char name[48];
    std::snprintf(name, sizeof(name), "X-tree (%zu supernodes)",
                  built.CountSupernodes());
    std::printf("%-30s %10.1f %10.1f\n", name, measured, predicted);
  }

  // 4. SS-tree (bounding-sphere pages over the bulk layout).
  {
    const auto spheres = index::ComputeLeafSpheres(vamsplit, dataset);
    const double measured =
        common::Mean(core::MeasureSsTreeLeafAccesses(spheres, workload));
    core::MiniIndexParams params;
    params.sampling_fraction = 0.2;
    const double predicted =
        core::PredictSsTreeWithMiniIndex(dataset, topology, workload, params)
            .avg_leaf_accesses;
    std::printf("%-30s %10.1f %10.1f\n", "SS-tree (sphere pages)", measured,
                predicted);
  }

  // 5. Pyramid technique: k-NN via iteratively enlarged range queries; the
  //    mini pyramid predicts the final iteration's page reads.
  {
    const index::PyramidIndex pyramid(&dataset, topology.data_capacity());
    common::Rng srng(7);
    std::vector<size_t> rows;
    srng.SampleIndices(dataset.size(), dataset.size() / 5, &rows);
    const data::Dataset sample = dataset.Select(rows);
    const index::PyramidIndex mini(
        &sample, std::max<size_t>(1, topology.data_capacity() / 5));
    double measured = 0.0, predicted = 0.0;
    std::vector<float> lo(dataset.dim()), hi(dataset.dim());
    for (size_t i = 0; i < workload.num_queries(); ++i) {
      const auto q = workload.queries().row(i);
      const float r = static_cast<float>(workload.radius(i));
      for (size_t k = 0; k < dataset.dim(); ++k) {
        lo[k] = q[k] - r;
        hi[k] = q[k] + r;
      }
      measured += static_cast<double>(pyramid.RangeQueryPages(lo, hi, nullptr));
      predicted += static_cast<double>(mini.RangeQueryPages(lo, hi, nullptr));
    }
    const double nq = static_cast<double>(workload.num_queries());
    std::printf("%-30s %10.1f %10.1f\n", "Pyramid technique (k-NN box)",
                measured / nq, predicted / nq);
  }

  // 6. VA-file: the counter-example — cost is a closed form.
  {
    index::VaFile::Options options;
    options.bits = 8;
    const index::VaFile va(&dataset, options);
    double candidates = 0.0;
    for (size_t i = 0; i < workload.num_queries(); ++i) {
      candidates += static_cast<double>(
          va.SearchKnn(workload.queries().row(i), 21, disk).candidates);
    }
    std::printf("%-30s %10.1f %10s\n", "VA-file (8 bits, candidates)",
                candidates / static_cast<double>(workload.num_queries()),
                "n/a*");
  }
  std::printf("\n* the VA-file has no page layout to predict: its cost is\n"
              "  scan(N*d*bits/8 bytes) + one random access per candidate.\n");
  return 0;
}
