// Index tuning: the two applications of Section 6 on one dataset.
//
// A practitioner wants to deploy a similarity index over image texture
// features and must pick (a) the page size and (b) how many (KLT-ordered)
// dimensions to index, storing the rest in an object server. Building a
// full index for every candidate takes hours; the prediction model answers
// both questions in seconds.

#include <cstdio>

#include "apps/dim_selector.h"
#include "apps/page_size_tuner.h"
#include "data/generators.h"

int main() {
  using namespace hdidx;

  std::printf("Generating LANDSAT (TEXTURE60) surrogate (20,000 x 60)...\n");
  const data::Dataset dataset = data::Texture60Surrogate(20000, /*seed=*/3);

  // ---- Application 1: optimal page size (Figure 13) ----
  apps::PageSizeTunerConfig page_config;
  page_config.page_sizes_bytes = {8192, 16384, 32768, 65536, 131072, 262144};
  page_config.memory_points = 4000;
  page_config.num_queries = 60;
  page_config.k = 21;
  std::printf("\n-- Optimal page size (21-NN query cost) --\n");
  std::printf("%10s %12s %12s %12s %12s\n", "page KB", "pred acc",
              "meas acc", "pred s", "meas s");
  const auto page_points = apps::TunePageSize(dataset, page_config);
  for (const auto& p : page_points) {
    std::printf("%10zu %12.1f %12.1f %12.3f %12.3f\n", p.page_bytes / 1024,
                p.predicted_accesses, p.measured_accesses, p.predicted_cost_s,
                p.measured_cost_s);
  }
  std::printf("Predicted optimum: %zu KB, measured optimum: %zu KB\n",
              apps::BestPageSize(page_points, false) / 1024,
              apps::BestPageSize(page_points, true) / 1024);

  // ---- Application 2: optimal indexed dimensionality (Figure 14) ----
  apps::DimSelectorConfig dim_config;
  dim_config.index_dims = {6, 12, 18, 24, 30, 42, 60};
  dim_config.memory_points = 4000;
  dim_config.num_queries = 60;
  dim_config.k = 21;
  std::printf("\n-- Index page accesses vs indexed dimensions --\n");
  std::printf("%10s %12s %12s %12s\n", "dims", "pred acc", "meas acc",
              "pages");
  const auto dim_points = apps::EvaluateIndexDims(dataset, dim_config);
  for (const auto& p : dim_points) {
    std::printf("%10zu %12.1f %12.1f %12zu\n", p.index_dims,
                p.predicted_accesses, p.measured_accesses, p.num_leaf_pages);
  }
  return 0;
}
