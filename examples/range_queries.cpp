// Range queries and confidence intervals: predicting box-query page counts
// with error bars.
//
// A user tunes a spatial-feature store that serves axis-aligned range
// filters rather than k-NN. The same sampling model predicts the page
// accesses; running it over several independent sample draws yields a
// Student-t confidence interval, so the tuner knows how much to trust the
// estimate before committing to a layout.

#include <cstdio>

#include "common/random.h"
#include "common/stats.h"
#include "core/confidence.h"
#include "core/mini_index.h"
#include "core/predictor.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/topology.h"
#include "workload/range_workload.h"

int main() {
  using namespace hdidx;

  const data::Dataset dataset = data::Texture48Surrogate(15000, /*seed=*/11);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  std::printf("TEXTURE48 surrogate: %zu x %zu, %zu leaf pages\n",
              dataset.size(), dataset.dim(), topology.NumLeaves());

  // Ground truth for three range-query selectivities.
  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);

  std::printf("\n%12s %10s %24s %10s\n", "target card", "measured",
              "predicted (95% CI)", "rel.err");
  for (size_t cardinality : {20u, 100u, 500u}) {
    common::Rng rng(12 + cardinality);
    const workload::RangeWorkload workload =
        workload::RangeWorkload::CreateWithCardinality(dataset, 50,
                                                       cardinality, &rng);
    const double measured =
        common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));

    const auto ci = core::EstimateWithConfidence(
        [&](uint64_t seed) {
          core::MiniIndexParams params;
          params.sampling_fraction = 0.15;
          params.seed = seed;
          return core::PredictWithMiniIndex(dataset, topology, workload,
                                            params)
              .avg_leaf_accesses;
        },
        /*runs=*/6, /*base_seed=*/13);

    std::printf("%12zu %10.1f %10.1f [%6.1f, %6.1f] %9.1f%%\n", cardinality,
                measured, ci.mean, ci.lo, ci.hi,
                100 * common::RelativeError(ci.mean, measured));
  }
  std::printf("\nThe interval width is the price of the 15%% sample; "
              "tighter bounds cost\na larger sample or the resampled "
              "technique's second pass.\n");
  return 0;
}
