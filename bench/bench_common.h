#ifndef HDIDX_BENCH_BENCH_COMMON_H_
#define HDIDX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/parallel.h"

namespace hdidx::bench {

/// Run scale for the reproduction benches.
///
/// quick (default): reduced dataset cardinalities and query counts so every
/// bench finishes in seconds — the experiment *shape* is preserved.
/// full (REPRO_SCALE=full): the paper's cardinalities and 500 queries;
/// minutes per bench.
inline bool FullScale() {
  const char* env = std::getenv("REPRO_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

/// Picks the quick or full value.
inline size_t Scaled(size_t quick, size_t full) {
  return FullScale() ? full : quick;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_reference) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_reference.c_str());
  std::printf("Scale: %s (set REPRO_SCALE=full for paper-scale runs), "
              "threads: %zu (HDIDX_THREADS)\n",
              FullScale() ? "full" : "quick", common::ThreadCount());
  std::printf("==============================================================="
              "=========\n");
}

/// Parallel experiment runner: executes independent experiment
/// configurations concurrently on the process-wide pool and returns their
/// rendered outputs *in configuration order*, so a bench's stdout is
/// byte-identical no matter how many threads ran it.
///
/// Each job must be self-contained (build its own datasets/files — in
/// particular its own PagedFile, which is not thread-safe) and return the
/// text it wants printed instead of printing it. Jobs may freely call the
/// library's parallel entry points: nested parallel sections degrade to
/// inline serial execution instead of deadlocking.
inline std::vector<std::string> RunExperiments(
    const std::vector<std::function<std::string()>>& jobs) {
  std::vector<std::string> out(jobs.size());
  common::DefaultExecutionContext().ParallelFor(
      0, jobs.size(), /*grain=*/1, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) out[i] = jobs[i]();
      });
  return out;
}

/// RunExperiments + print each result in configuration order.
inline void RunAndPrintExperiments(
    const std::vector<std::function<std::string()>>& jobs) {
  for (const std::string& text : RunExperiments(jobs)) {
    std::fputs(text.c_str(), stdout);
  }
}

}  // namespace hdidx::bench

#endif  // HDIDX_BENCH_BENCH_COMMON_H_
