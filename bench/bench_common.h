#ifndef HDIDX_BENCH_BENCH_COMMON_H_
#define HDIDX_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace hdidx::bench {

/// Run scale for the reproduction benches.
///
/// quick (default): reduced dataset cardinalities and query counts so every
/// bench finishes in seconds — the experiment *shape* is preserved.
/// full (REPRO_SCALE=full): the paper's cardinalities and 500 queries;
/// minutes per bench.
inline bool FullScale() {
  const char* env = std::getenv("REPRO_SCALE");
  return env != nullptr && std::strcmp(env, "full") == 0;
}

/// Picks the quick or full value.
inline size_t Scaled(size_t quick, size_t full) {
  return FullScale() ? full : quick;
}

inline void PrintHeader(const std::string& experiment,
                        const std::string& paper_reference) {
  std::printf("==============================================================="
              "=========\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_reference.c_str());
  std::printf("Scale: %s (set REPRO_SCALE=full for paper-scale runs)\n",
              FullScale() ? "full" : "quick");
  std::printf("==============================================================="
              "=========\n");
}

}  // namespace hdidx::bench

#endif  // HDIDX_BENCH_BENCH_COMMON_H_
