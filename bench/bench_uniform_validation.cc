// E7 / Section 5.2 validation: 100,000 uniformly distributed 8-d points.
//
// Paper: for this uniform dataset (index height 3) the resampled and cutoff
// relative errors were between -0.5% and -3% — the within-page uniformity
// assumption is exact here, so both predictors nail it.

#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Section 5.2 validation: uniformly distributed data (8-d)",
      "Lang & Singh, SIGMOD 2001, Section 5.2 (uniform-data paragraph)");

  const size_t n = bench::Scaled(40000, 100000);
  const size_t q = bench::Scaled(80, 500);
  common::Rng gen(61);
  const data::Dataset dataset = data::GenerateUniform(n, 8, &gen);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  std::printf("N=%zu d=8 height=%zu leaves=%zu\n\n", n, topology.height(),
              topology.NumLeaves());

  common::Rng rng(62);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr));
  std::printf("Measured: %.1f leaf accesses/query\n\n", measured);

  const size_t memory = bench::Scaled(4000u, 10000u);
  std::printf("%-24s %12s %12s\n", "Method", "Predicted", "Rel. error");
  for (size_t h = 2; h <= topology.height() - 1; ++h) {
    io::PagedFile f1 = io::PagedFile::FromDataset(dataset, disk);
    core::ResampledParams rp;
    rp.memory_points = memory;
    rp.h_upper = h;
    rp.seed = 63;
    const double resampled =
        core::PredictWithResampledTree(&f1, topology, workload, rp)
            .avg_leaf_accesses;
    std::printf("Resampled (h=%zu)        %13.1f %11.1f%%\n", h, resampled,
                100 * common::RelativeError(resampled, measured));

    io::PagedFile f2 = io::PagedFile::FromDataset(dataset, disk);
    core::CutoffParams cp;
    cp.memory_points = memory;
    cp.h_upper = h;
    cp.seed = 63;
    const double cutoff =
        core::PredictWithCutoffTree(&f2, topology, workload, cp)
            .avg_leaf_accesses;
    std::printf("Cutoff    (h=%zu)        %13.1f %11.1f%%\n", h, cutoff,
                100 * common::RelativeError(cutoff, measured));
  }
  std::printf("\nPaper shape: all errors within a few percent on uniform "
              "data,\nconfirming the within-page uniformity model.\n");
  return 0;
}
