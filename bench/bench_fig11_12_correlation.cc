// E5 / Figures 11-12: correlation diagrams between measured and predicted
// per-query page accesses for the resampled index (two memory budgets),
// plus the cutoff index for contrast.
//
// Paper shape: resampled predictions cluster around the diagonal (tighter
// for the larger memory), the cutoff diagram shows no correlation at all.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace {

void PrintDiagram(const std::vector<double>& measured,
                  const std::vector<double>& predicted) {
  const double max_m = *std::max_element(measured.begin(), measured.end());
  const double max_p = *std::max_element(predicted.begin(), predicted.end());
  const double max_v = std::max(max_m, max_p) * 1.0001;
  const int kGrid = 24;
  std::vector<std::vector<int>> grid(kGrid, std::vector<int>(kGrid, 0));
  for (size_t i = 0; i < measured.size(); ++i) {
    const int x = static_cast<int>(measured[i] / max_v * kGrid);
    const int y = static_cast<int>(predicted[i] / max_v * kGrid);
    ++grid[y][x];
  }
  for (int y = kGrid - 1; y >= 0; --y) {
    std::printf("    |");
    for (int x = 0; x < kGrid; ++x) {
      std::printf("%c", grid[y][x] == 0 ? (x == y ? '.' : ' ')
                                        : (grid[y][x] < 3 ? 'o' : 'O'));
    }
    std::printf("\n");
  }
  std::printf("    +");
  for (int x = 0; x < kGrid; ++x) std::printf("-");
  std::printf("  (x: measured, y: predicted, '.': ideal diagonal)\n");
}

}  // namespace

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Figures 11-12: correlation diagrams for the resampled index",
      "Lang & Singh, SIGMOD 2001, Section 5.2, Figures 11 and 12");

  const size_t n = bench::Scaled(30000, 275465);
  const size_t q = bench::Scaled(80, 500);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/41);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(42);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const std::vector<double> measured = index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr);

  struct Config {
    const char* figure;
    size_t memory;
  };
  const Config configs[] = {
      {"Figure 11 analogue (larger memory)", bench::Scaled(1100u, 10000u)},
      {"Figure 12 analogue (smaller memory)", bench::Scaled(300u, 1000u)},
  };
  for (const Config& config : configs) {
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    core::ResampledParams params;
    params.memory_points = config.memory;
    params.h_upper = core::ChooseHupper(topology, config.memory);
    params.seed = 43;
    const core::PredictionResult r =
        core::PredictWithResampledTree(&file, topology, workload, params);
    std::printf("\n%s: M=%zu, h_upper=%zu, correlation r=%.3f\n",
                config.figure, config.memory, params.h_upper,
                common::PearsonCorrelation(r.per_query_accesses, measured));
    PrintDiagram(measured, r.per_query_accesses);
  }

  // Contrast: the cutoff predictor's diagram "showed no correlation at all".
  {
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    core::CutoffParams params;
    params.memory_points = bench::Scaled(1100u, 10000u);
    params.h_upper = core::ChooseHupper(topology, params.memory_points);
    params.seed = 43;
    const core::PredictionResult r =
        core::PredictWithCutoffTree(&file, topology, workload, params);
    std::printf("\nCutoff for contrast: correlation r=%.3f (paper: none)\n",
                common::PearsonCorrelation(r.per_query_accesses, measured));
  }
  std::printf("\nPaper shape: resampled correlates strongly (slightly less "
              "with less\nmemory); cutoff does not.\n");
  return 0;
}
