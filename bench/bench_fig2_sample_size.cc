// E1 / Figure 2: relative prediction error vs sample size on COLOR64,
// with and without the compensation factor.
//
// Paper: 500 21-NN queries on COLOR64 (112,361 x 64); the compensated
// prediction stays accurate down to ~10% samples, the uncompensated one
// underestimates everywhere, and below 10% both degrade.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/mini_index.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader("Figure 2: relative error for different sample sizes",
                     "Lang & Singh, SIGMOD 2001, Section 3.3, Figure 2");

  const size_t n = bench::Scaled(20000, 112361);
  const size_t q = bench::Scaled(100, 500);
  const data::Dataset dataset = data::Color64Surrogate(n, /*seed=*/21);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(22);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr));
  std::printf("COLOR64 surrogate: %zu x %zu, measured avg = %.1f leaf "
              "accesses/query\n\n",
              dataset.size(), dataset.dim(), measured);

  std::printf("%10s %22s %22s\n", "sample", "rel.err compensated",
              "rel.err uncompensated");
  // Every sample size is an independent configuration: run them
  // concurrently, print in order (the runner keeps stdout deterministic).
  std::vector<std::function<std::string()>> jobs;
  for (double fraction : {0.01, 0.02, 0.05, 0.10, 0.20, 0.50}) {
    jobs.push_back([&, fraction] {
      core::MiniIndexParams params;
      params.sampling_fraction = fraction;
      params.seed = 23;
      params.compensate = true;
      const double with_comp =
          core::PredictWithMiniIndex(dataset, topology, workload, params)
              .avg_leaf_accesses;
      params.compensate = false;
      const double without_comp =
          core::PredictWithMiniIndex(dataset, topology, workload, params)
              .avg_leaf_accesses;
      char row[128];
      std::snprintf(row, sizeof(row), "%9.0f%% %21.1f%% %21.1f%%\n",
                    100 * fraction,
                    100 * common::RelativeError(with_comp, measured),
                    100 * common::RelativeError(without_comp, measured));
      return std::string(row);
    });
  }
  bench::RunAndPrintExperiments(jobs);
  std::printf("\nPaper shape: compensation reduces the error at every sample "
              "size;\nbelow ~10%% samples the error grows too large to be "
              "useful.\n");
  return 0;
}
