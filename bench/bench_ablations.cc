// E11: ablations of the design choices DESIGN.md calls out.
//
//   A1. Compensation factor on/off (Theorem 1's contribution).
//   A2. Nearest-box assignment vs the grown-leaf fallback in resampling —
//       approximated by comparing resampled against cutoff, which never
//       reassigns points.
//   A3. h_upper sweep beyond the Table 3 grid (choice rule context).
//   A4. Split strategy: maximum-variance vs midpoint splits (the uniform
//       baseline's page-geometry assumption) measured by prediction error.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "io/lru_cache.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader("Ablations: compensation, assignment, h_upper, splits",
                     "design-choice ablations for DESIGN.md section 1");

  const size_t n = bench::Scaled(25000, 100000);
  const size_t q = bench::Scaled(60, 500);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/55);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(56);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const std::vector<double> measured_per_query =
      index::CountSphereLeafAccesses(tree, workload.queries(),
                                     workload.radii(), nullptr);
  const double measured = common::Mean(measured_per_query);
  std::printf("Measured: %.1f leaf accesses/query (%zu leaves)\n\n", measured,
              topology.NumLeaves());

  // A1: compensation on/off across sample sizes.
  std::printf("A1. Compensation factor (mini-index, rel. error):\n");
  std::printf("%10s %15s %15s\n", "sample", "compensated", "uncompensated");
  for (double fraction : {0.05, 0.1, 0.25}) {
    core::MiniIndexParams params;
    params.sampling_fraction = fraction;
    params.seed = 57;
    params.compensate = true;
    const double on =
        core::PredictWithMiniIndex(dataset, topology, workload, params)
            .avg_leaf_accesses;
    params.compensate = false;
    const double off =
        core::PredictWithMiniIndex(dataset, topology, workload, params)
            .avg_leaf_accesses;
    std::printf("%9.0f%% %14.1f%% %14.1f%%\n", 100 * fraction,
                100 * common::RelativeError(on, measured),
                100 * common::RelativeError(off, measured));
  }

  // A2 + A3: resampled vs cutoff across the full h_upper range.
  const size_t memory = bench::Scaled(2500u, 10000u);
  std::printf("\nA2/A3. Lower-tree construction and h_upper sweep "
              "(M=%zu):\n", memory);
  std::printf("%8s %22s %22s\n", "h_upper", "resampled err/corr",
              "cutoff err/corr");
  for (size_t h = 2; h <= topology.height() - 1; ++h) {
    io::PagedFile f1 = io::PagedFile::FromDataset(dataset, disk);
    core::ResampledParams rp;
    rp.memory_points = memory;
    rp.h_upper = h;
    rp.seed = 58;
    const auto r = core::PredictWithResampledTree(&f1, topology, workload, rp);

    io::PagedFile f2 = io::PagedFile::FromDataset(dataset, disk);
    core::CutoffParams cp;
    cp.memory_points = memory;
    cp.h_upper = h;
    cp.seed = 58;
    const auto c = core::PredictWithCutoffTree(&f2, topology, workload, cp);

    std::printf("%8zu %14.1f%%/%5.2f %15.1f%%/%5.2f\n", h,
                100 * common::RelativeError(r.avg_leaf_accesses, measured),
                common::PearsonCorrelation(r.per_query_accesses,
                                           measured_per_query),
                100 * common::RelativeError(c.avg_leaf_accesses, measured),
                common::PearsonCorrelation(c.per_query_accesses,
                                           measured_per_query));
  }
  std::printf("(chosen h_upper: %zu)\n", core::ChooseHupper(topology, memory));

  // A4: split strategy of the *real* index. Build a midpoint-split index by
  // bulk-loading a uniformly re-jittered copy... instead, measure how far
  // the midpoint-split assumption is from reality: compare the real index's
  // average leaf volume against the equi-volume midpoint layout.
  std::printf("\nA4. Page geometry: max-variance pages vs midpoint-split "
              "assumption:\n");
  double avg_leaf_volume = 0.0;
  double avg_margin = 0.0;
  for (uint32_t id : tree.leaf_ids()) {
    avg_leaf_volume += tree.node(id).box.Volume();
    avg_margin += tree.node(id).box.Margin();
  }
  avg_leaf_volume /= static_cast<double>(tree.num_leaves());
  avg_margin /= static_cast<double>(tree.num_leaves());
  const auto bounds = dataset.Bounds();
  const double midpoint_volume =
      bounds.Volume() / static_cast<double>(topology.NumLeaves());
  std::printf("  real avg leaf volume: %.3e (avg margin %.2f)\n",
              avg_leaf_volume, avg_margin);
  std::printf("  midpoint-split volume (space/P): %.3e\n", midpoint_volume);
  std::printf("  ratio: %.2e - the uniform model's page geometry is off by "
              "this factor,\n  which is why it saturates in Table 4.\n",
              midpoint_volume / std::max(avg_leaf_volume, 1e-300));

  // A5: the paper's "nearly all page accesses during queries were random"
  // observation (Section 5.1), replayed through an LRU buffer pool: a
  // cache of a few dozen pages absorbs the directory re-reads but barely
  // touches the leaf accesses.
  std::printf("\nA5. Buffer pool vs the all-random assumption:\n");
  auto replay = [&](size_t cache_pages) {
    io::LruCache cache(cache_pages);
    double leaf_accesses = 0.0;
    std::vector<uint32_t> stack;
    for (size_t qi = 0; qi < workload.num_queries(); ++qi) {
      stack.assign(1, tree.root());
      bool at_root = true;
      while (!stack.empty()) {
        const uint32_t id = stack.back();
        stack.pop_back();
        const auto& node = tree.node(id);
        const bool hit = workload.Intersects(qi, node.box);
        if (!hit && !at_root) continue;
        at_root = false;
        cache.Access(id);
        if (!hit) continue;
        if (node.is_leaf()) {
          leaf_accesses += 1.0;
        } else {
          for (uint32_t child : node.children) stack.push_back(child);
        }
      }
    }
    std::printf("  cache %4zu pages: %llu random accesses (%.0f leaf + "
                "dir), hit rate %.0f%%\n",
                cache_pages,
                static_cast<unsigned long long>(cache.misses()),
                leaf_accesses, 100.0 * cache.HitRate());
  };
  replay(0);
  replay(64);
  replay(1024);
  std::printf("  -> directory re-reads are the cacheable minority; leaf "
              "accesses dominate\n     the I/O until the cache approaches "
              "the index size, so predicting leaf\n     accesses is "
              "predicting the query cost.\n");
  return 0;
}
