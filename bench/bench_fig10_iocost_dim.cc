// E3 / Figure 10: analytic I/O cost for different data dimensionalities,
// N = 1,000,000 points, M = 600,000/dim (memory shrinks with point size).
//
// Paper shape: roughly linear growth with d for all three approaches;
// cutoff ~100x faster than on-disk throughout, resampled ~10x.

#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"
#include "core/hupper.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Figure 10: I/O cost for different data dimensionalities",
      "Lang & Singh, SIGMOD 2001, Section 4.6, Figure 10");

  std::printf("N = 1,000,000 points, M = 600,000/dim, q = 500\n\n");
  std::printf("%6s %10s %8s %14s %14s %14s\n", "dim", "M", "h_up",
              "on-disk (s)", "resampled (s)", "cutoff (s)");

  for (size_t d = 20; d <= 120; d += 10) {
    core::CostModelInputs in;
    in.num_points = 1000000;
    in.dim = d;
    in.memory_points = 600000 / d;
    in.num_query_points = 500;
    const auto topo = in.Topology();
    const size_t h = core::ChooseHupper(topo, in.memory_points);
    std::printf("%6zu %10zu %8zu %14.1f %14.1f %14.1f\n", d,
                in.memory_points, h,
                core::OnDiskBuildCost(in).CostSeconds(in.disk),
                core::ResampledCost(in, h).CostSeconds(in.disk),
                core::CutoffCost(in).CostSeconds(in.disk));
  }
  std::printf("\nPaper shape: near-linear growth in d; jumps in the "
              "resampled curve\ncome from h_upper switching to keep lower "
              "trees near M points.\n");
  return 0;
}
