// E13 (extension): range queries — the paper's Section 1 notes the
// technique "can also be applied to range queries ... and other indexing
// schemes". Same pipeline as Table 3, with box query regions instead of
// k-NN spheres.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "io/paged_file.h"
#include "workload/range_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Extension: range-query prediction (Section 1's claimed scope)",
      "Lang & Singh, SIGMOD 2001, Section 1 (range-query applicability)");

  const size_t n = bench::Scaled(30000, 275465);
  const size_t q = bench::Scaled(60, 500);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/61);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);

  std::printf("%14s %12s %12s %12s %12s\n", "target card.", "measured",
              "mini(20%)", "resampled", "cutoff");
  const size_t memory = bench::Scaled(1100u, 10000u);
  for (size_t cardinality : {10u, 50u, 200u}) {
    common::Rng rng(62 + cardinality);
    const workload::RangeWorkload workload =
        workload::RangeWorkload::CreateWithCardinality(dataset, q,
                                                       cardinality, &rng);
    const double measured =
        common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));

    core::MiniIndexParams mini;
    mini.sampling_fraction = 0.2;
    mini.seed = 63;
    const double mini_pred =
        core::PredictWithMiniIndex(dataset, topology, workload, mini)
            .avg_leaf_accesses;

    io::PagedFile f1 = io::PagedFile::FromDataset(dataset, disk);
    core::ResampledParams rp;
    rp.memory_points = memory;
    rp.h_upper = core::ChooseHupper(topology, memory);
    rp.seed = 63;
    const double resampled =
        core::PredictWithResampledTree(&f1, topology, workload, rp)
            .avg_leaf_accesses;

    io::PagedFile f2 = io::PagedFile::FromDataset(dataset, disk);
    core::CutoffParams cp;
    cp.memory_points = memory;
    cp.h_upper = rp.h_upper;
    cp.seed = 63;
    const double cutoff =
        core::PredictWithCutoffTree(&f2, topology, workload, cp)
            .avg_leaf_accesses;

    std::printf("%14zu %12.1f %7.1f(%+3.0f%%) %7.1f(%+3.0f%%) %7.1f(%+3.0f%%)\n",
                cardinality, measured, mini_pred,
                100 * common::RelativeError(mini_pred, measured), resampled,
                100 * common::RelativeError(resampled, measured), cutoff,
                100 * common::RelativeError(cutoff, measured));
  }
  std::printf("\nShape: the sampling predictors transfer to box regions "
              "unchanged; the\ncutoff tree again trails on clustered "
              "high-dimensional data.\n");
  return 0;
}
