// E6 / Table 4: prediction accuracy of the uniform, fractal, and resampled
// models on TEXTURE60.
//
// Paper: measured 681 leaf accesses of 8,641 pages; uniform predicts all
// 8,641 (+1169%), fractal 5,892 (+765%), resampled 701 (+3%). The shape to
// reproduce: uniform saturates at all pages, fractal misses by a large
// factor, resampled lands within a few percent.

#include <cstdio>

#include "bench_common.h"
#include "baselines/fractal.h"
#include "baselines/uniform_model.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/hupper.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Table 4: prediction accuracy for different models (TEXTURE60)",
      "Lang & Singh, SIGMOD 2001, Section 5.3, Table 4");

  const size_t n = bench::Scaled(30000, 275465);
  const size_t q = bench::Scaled(80, 500);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/51);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(52);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr));
  std::printf("VAMSplit R*-tree with %zu leaf pages; measured average: %.0f "
              "leaf accesses\n\n",
              topology.NumLeaves(), measured);

  baselines::UniformModelParams uniform;
  uniform.num_points = dataset.size();
  uniform.dim = dataset.dim();
  uniform.num_leaf_pages = topology.NumLeaves();
  uniform.k = workload.k();
  const auto uniform_result = baselines::PredictUniformModel(uniform);

  const auto dims = baselines::EstimateFractalDimensions(dataset, 10);
  baselines::FractalModelParams fractal;
  fractal.num_points = dataset.size();
  fractal.num_leaf_pages = topology.NumLeaves();
  fractal.k = workload.k();
  const auto fractal_result = baselines::PredictFractalModel(dims, fractal);

  io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
  core::ResampledParams params;
  params.memory_points = bench::Scaled(1100u, 10000u);
  params.h_upper = core::ChooseHupper(topology, params.memory_points);
  params.seed = 53;
  const double resampled =
      core::PredictWithResampledTree(&file, topology, workload, params)
          .avg_leaf_accesses;

  std::printf("%-12s %16s %12s\n", "Method", "Pages accessed", "Rel. error");
  auto row = [&](const char* name, double pred) {
    std::printf("%-12s %16.0f %11.0f%%\n", name, pred,
                100 * common::RelativeError(pred, measured));
  };
  row("Uniform", uniform_result.predicted_accesses);
  row("Fractal", fractal_result.predicted_accesses);
  row("Resampled", resampled);

  std::printf("\nEstimated fractal dimensions: D0=%.3f, D2=%.3f (paper "
              "measured 0.094/0.004\non the real TEXTURE60 - the surrogate's "
              "are higher, see EXPERIMENTS.md)\n",
              dims.d0, dims.d2);
  std::printf("Paper shape: |uniform err| >> |fractal err| >> |resampled "
              "err|; only the\nsampling technique is usable in this "
              "high-dimensional setting.\n");
  return 0;
}
