// E15 (extension): the VA-file — the structure Section 4.7 explicitly
// EXCLUDES from the sampling model's scope ("it does not organize points in
// pages of fixed capacity").
//
// Two things are demonstrated: (a) the VA-file's query cost follows a
// closed form — a fixed sequential approximation scan plus one random
// access per refined candidate — so it needs no layout prediction at all;
// (b) in high dimensions its exact-NN cost is competitive with the R-tree
// whose page accesses the paper predicts (the Weber et al. [33] argument
// that motivated the VA-file in the first place).

#include <cstdio>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"
#include "index/va_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Extension: VA-file vs R-tree (the structure outside Section 4.7)",
      "Lang & Singh, SIGMOD 2001, Section 4.7 (VA-file exclusion)");

  const size_t n = bench::Scaled(20000, 100000);
  const size_t q = bench::Scaled(40, 200);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/81);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(82);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  // R-tree: leaf + directory accesses per query, all random.
  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  io::IoStats rtree_io;
  index::CountSphereLeafAccesses(tree, workload.queries(), workload.radii(),
                                 &rtree_io);
  const double rtree_cost =
      rtree_io.CostSeconds(disk) / static_cast<double>(q);

  std::printf("R-tree: %zu leaf pages, %.3f s/query (random page "
              "accesses)\n\n",
              topology.NumLeaves(), rtree_cost);

  std::printf("%6s %14s %14s %14s %14s\n", "bits", "candidates",
              "scan pages", "s/query", "vs R-tree");
  for (uint8_t bits : {4, 6, 8}) {
    index::VaFile::Options options;
    options.bits = bits;
    const index::VaFile va(&dataset, options);
    double candidates = 0.0;
    io::IoStats io;
    for (size_t i = 0; i < q; ++i) {
      const auto result =
          va.SearchKnn(workload.queries().row(i), workload.k(), disk);
      candidates += static_cast<double>(result.candidates);
      io += result.io;
    }
    const double cost = io.CostSeconds(disk) / static_cast<double>(q);
    const size_t scan_pages =
        (n * va.ApproximationBytes() + disk.page_bytes - 1) / disk.page_bytes;
    std::printf("%6d %14.1f %14zu %14.3f %13.2fx\n", int(bits),
                candidates / static_cast<double>(q), scan_pages, cost,
                rtree_cost / cost);
  }

  std::printf("\nShape: the VA-file's cost = fixed scan + candidates — a "
              "closed form with\nno page layout to estimate, which is why "
              "the paper's model excludes it;\nmore bits trade scan volume "
              "for fewer refinements.\n");
  return 0;
}
