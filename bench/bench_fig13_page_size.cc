// E8 / Figure 13: determining the optimal page size (LANDSAT/TEXTURE60).
//
// Paper shape: predicted and measured 21-NN I/O-cost curves track each
// other across page sizes and share their minimum (64 KB on LANDSAT); the
// prediction takes minutes instead of the hours of repeated index builds.

#include <cstdio>

#include "apps/page_size_tuner.h"
#include "bench_common.h"
#include "data/generators.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader("Figure 13: determining the optimal page size (LANDSAT)",
                     "Lang & Singh, SIGMOD 2001, Section 6.1, Figure 13");

  const size_t n = bench::Scaled(25000, 275465);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/71);

  apps::PageSizeTunerConfig config;
  // The paper sweeps 8-256 KB; the sweep here extends further because the
  // surrogate's tighter clusters shift the cost minimum to larger pages
  // (the reproduced shape is the U-curve and the predicted/measured
  // agreement on its minimum, not the absolute 64 KB).
  config.page_sizes_bytes = {8192,   16384,  32768,   65536,  131072,
                             262144, 524288, 1048576, 2097152};
  config.memory_points = bench::Scaled(4000u, 10000u);
  config.num_queries = bench::Scaled(60u, 500u);
  config.k = 21;
  config.seed = 72;

  const auto points = apps::TunePageSize(dataset, config);
  std::printf("%10s %12s %12s %14s %14s\n", "page KB", "pred acc",
              "meas acc", "pred cost(s)", "meas cost(s)");
  for (const auto& p : points) {
    std::printf("%10zu %12.1f %12.1f %14.3f %14.3f\n", p.page_bytes / 1024,
                p.predicted_accesses, p.measured_accesses, p.predicted_cost_s,
                p.measured_cost_s);
  }
  std::printf("\nPredicted optimum: %zu KB, measured optimum: %zu KB\n",
              apps::BestPageSize(points, false) / 1024,
              apps::BestPageSize(points, true) / 1024);
  std::printf("Paper shape: U-shaped cost curves whose minimum the "
              "prediction locates\n(64 KB for the real LANDSAT).\n");
  return 0;
}
