// E12: google-benchmark microbenchmarks of the library's hot paths —
// bulk loading, MINDIST evaluation, sphere counting, box counting, and the
// compensation arithmetic.

#include <benchmark/benchmark.h>

#include "baselines/fractal.h"
#include "common/random.h"
#include "core/compensation.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"

namespace {

using namespace hdidx;

data::Dataset MakeData(size_t n, size_t dim) {
  common::Rng rng(1);
  data::ClusteredConfig config;
  config.num_points = n;
  config.dim = dim;
  config.num_clusters = 16;
  return data::GenerateClustered(config, &rng);
}

void BM_BulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const auto data = MakeData(n, dim);
  const index::TreeTopology topo(n, 33, 16);
  for (auto _ : state) {
    index::BulkLoadOptions options;
    options.topology = &topo;
    benchmark::DoNotOptimize(index::BulkLoadInMemory(data, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BulkLoad)->Args({5000, 16})->Args({5000, 60})->Args({20000, 16});

void BM_MinDist(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto data = MakeData(256, dim);
  const auto box = data.Bounds();
  common::Rng rng(2);
  std::vector<float> q(dim);
  for (auto& v : q) v = static_cast<float>(rng.NextUniform(-1, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::SquaredMinDist(q, box));
  }
}
BENCHMARK(BM_MinDist)->Arg(16)->Arg(64)->Arg(360);

void BM_SphereCounting(benchmark::State& state) {
  const size_t n = 20000;
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto data = MakeData(n, dim);
  const index::TreeTopology topo(n, 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, options);
  common::Rng rng(3);
  for (auto _ : state) {
    const auto center = data.row(rng.NextBounded(n));
    benchmark::DoNotOptimize(tree.CountSphereAccesses(center, 0.2));
  }
}
BENCHMARK(BM_SphereCounting)->Arg(16)->Arg(60);

void BM_ExactKnnScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = MakeData(n, 60);
  common::Rng rng(4);
  for (auto _ : state) {
    const auto q = data.row(rng.NextBounded(n));
    benchmark::DoNotOptimize(index::ExactKthDistance(data, q, 21, 0.0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ExactKnnScan)->Arg(10000)->Arg(50000);

void BM_BoxCounting(benchmark::State& state) {
  const auto data = MakeData(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::EstimateFractalDimensions(data, 8));
  }
}
BENCHMARK(BM_BoxCounting)->Arg(10000)->Arg(40000);

void BM_Compensation(benchmark::State& state) {
  double zeta = 0.01;
  for (auto _ : state) {
    zeta = zeta < 0.99 ? zeta + 1e-6 : 0.01;
    benchmark::DoNotOptimize(core::CompensationDelta(33.0, zeta, 60));
  }
}
BENCHMARK(BM_Compensation);

}  // namespace

BENCHMARK_MAIN();
