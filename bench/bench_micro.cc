// E12: google-benchmark microbenchmarks of the library's hot paths —
// bulk loading, MINDIST evaluation, sphere counting, box counting, the
// compensation arithmetic, and the threads-sweep of the parallel execution
// layer (run with --benchmark_format=json to get the speedup counters in
// machine-readable form for the perf trajectory).

#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "baselines/fractal.h"
#include "common/parallel.h"
#include "common/random.h"
#include "core/compensation.h"
#include "core/mini_index.h"
#include "core/predictor.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "geometry/kernels.h"
#include "index/bulk_loader.h"
#include "index/external_build.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "service/async_server.h"
#include "service/prediction_service.h"
#include "service/wire.h"
#include "workload/query_workload.h"

namespace {

using namespace hdidx;

data::Dataset MakeData(size_t n, size_t dim) {
  common::Rng rng(1);
  data::ClusteredConfig config;
  config.num_points = n;
  config.dim = dim;
  config.num_clusters = 16;
  return data::GenerateClustered(config, &rng);
}

void BM_BulkLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  const auto data = MakeData(n, dim);
  const index::TreeTopology topo(n, 33, 16);
  for (auto _ : state) {
    index::BulkLoadOptions options;
    options.topology = &topo;
    benchmark::DoNotOptimize(index::BulkLoadInMemory(data, options));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BulkLoad)->Args({5000, 16})->Args({5000, 60})->Args({20000, 16});

void BM_MinDist(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto data = MakeData(256, dim);
  const auto box = data.Bounds();
  common::Rng rng(2);
  std::vector<float> q(dim);
  for (auto& v : q) v = static_cast<float>(rng.NextUniform(-1, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(geometry::SquaredMinDist(q, box));
  }
}
BENCHMARK(BM_MinDist)->Arg(16)->Arg(64)->Arg(360);

void BM_SphereCounting(benchmark::State& state) {
  const size_t n = 20000;
  const size_t dim = static_cast<size_t>(state.range(0));
  const auto data = MakeData(n, dim);
  const index::TreeTopology topo(n, 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, options);
  common::Rng rng(3);
  for (auto _ : state) {
    const auto center = data.row(rng.NextBounded(n));
    benchmark::DoNotOptimize(tree.CountSphereAccesses(center, 0.2));
  }
}
BENCHMARK(BM_SphereCounting)->Arg(16)->Arg(60);

void BM_ExactKnnScan(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto data = MakeData(n, 60);
  common::Rng rng(4);
  for (auto _ : state) {
    const auto q = data.row(rng.NextBounded(n));
    benchmark::DoNotOptimize(index::ExactKthDistance(data, q, 21, 0.0));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ExactKnnScan)->Arg(10000)->Arg(50000);

void BM_BoxCounting(benchmark::State& state) {
  const auto data = MakeData(static_cast<size_t>(state.range(0)), 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baselines::EstimateFractalDimensions(data, 8));
  }
}
BENCHMARK(BM_BoxCounting)->Arg(10000)->Arg(40000);

void BM_Compensation(benchmark::State& state) {
  double zeta = 0.01;
  for (auto _ : state) {
    zeta = zeta < 0.99 ? zeta + 1e-6 : 0.01;
    benchmark::DoNotOptimize(core::CompensationDelta(33.0, zeta, 60));
  }
}
BENCHMARK(BM_Compensation);

// ---------------------------------------------------------------------------
// Threads sweep (1/2/4/8) over the parallel execution layer. Each benchmark
// times the operation under a pool of state.range(0) threads and reports
//   threads          — the pool size,
//   speedup_vs_1t    — wall-clock of the 1-thread run over this run,
// so the JSON output carries the scaling trajectory directly. The 1-thread
// baseline is captured when the sweep runs its first (threads=1) config.

/// Remembers the 1-thread mean wall time per sweep family so later configs
/// can report their speedup. google-benchmark runs registrations in order,
/// so threads=1 completes first.
double& BaselineNs(const std::string& family) {
  static std::map<std::string, double> baselines;
  return baselines[family];
}

/// The sweep's shared input, built once: 100k x 16 clustered points.
const data::Dataset& SweepData() {
  static const data::Dataset* data = new data::Dataset(MakeData(100000, 16));
  return *data;
}

void ReportSweep(benchmark::State& state, const std::string& family,
                 size_t threads, double total_ns) {
  const double mean_ns =
      total_ns / static_cast<double>(std::max<int64_t>(1, state.iterations()));
  if (threads == 1) BaselineNs(family) = mean_ns;
  const double baseline = BaselineNs(family);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["speedup_vs_1t"] =
      baseline > 0.0 && mean_ns > 0.0 ? baseline / mean_ns : 0.0;
}

// The acceptance workload of the parallel-layer refactor: q=100 exact 21-NN
// radii over 100k x 16 points.
void BM_WorkloadCreateThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const data::Dataset& data = SweepData();
  common::ThreadPool pool(threads);
  const common::ExecutionContext ctx(&pool);
  double total_ns = 0.0;
  for (auto _ : state) {
    common::Rng rng(7);
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        workload::QueryWorkload::Create(data, 100, 21, &rng, ctx));
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  }
  ReportSweep(state, "workload_create", threads, total_ns);
}
BENCHMARK(BM_WorkloadCreateThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_MiniIndexPredictThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const data::Dataset& data = SweepData();
  static const index::TreeTopology& topo =
      *new index::TreeTopology(data.size(), 33, 16);
  static const workload::QueryWorkload& queries =
      *new workload::QueryWorkload([&] {
        common::Rng rng(8);
        return workload::QueryWorkload::Create(data, 100, 21, &rng);
      }());
  common::ThreadPool pool(threads);
  const common::ExecutionContext ctx(&pool);
  core::MiniIndexParams params;
  params.sampling_fraction = 0.1;
  params.seed = 9;
  double total_ns = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        core::PredictWithMiniIndex(data, topo, queries, params, ctx));
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  }
  ReportSweep(state, "mini_index_predict", threads, total_ns);
}
BENCHMARK(BM_MiniIndexPredictThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// The parallel VAMSplit bulk load: fanned-out plan construction + serial
// emission, bit-identical to the serial loader at every pool size. The
// threads=1 config takes the serial path (BulkLoad only fans out for
// pools larger than one), so speedup_vs_1t is measured against the true
// serial build.
void BM_BulkLoadThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  const data::Dataset& data = SweepData();
  static const index::TreeTopology& topo =
      *new index::TreeTopology(data.size(), 33, 16);
  common::ThreadPool pool(threads);
  const common::ExecutionContext ctx(&pool);
  index::BulkLoadOptions options;
  options.topology = &topo;
  options.exec = &ctx;
  double total_ns = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(index::BulkLoadInMemory(data, options));
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  }
  ReportSweep(state, "bulk_load", threads, total_ns);
}
BENCHMARK(BM_BulkLoadThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// ---------------------------------------------------------------------------
// Out-of-core build: multi-pass external quickselect (VAMSplit planes,
// range(1) == 0) against the sample-first adaptive single-pass pipeline
// (range(1) == 1), both at a 10x data-to-memory ratio. Counters:
//   data_passes         — total page transfers over the data file's pages
//                         (the issue's headline: adaptive <= half),
//   pages_read          — total page transfers, exact,
//   overlap_ratio       — fraction of read-ahead fills already resident
//                         when consumed (adaptive rows; advisory),
//   speedup_vs_vamsplit — vamsplit mean wall time over this row's (0 on
//                         the vamsplit rows themselves).
// data_passes and pages_read are pure functions of the inputs — no timing
// — so BENCH_BASELINE.json pins them exactly through bench_compare.py;
// the speedup is host-dependent and stays advisory.

void BM_ExternalBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const bool adaptive = state.range(1) != 0;
  constexpr size_t kDim = 16;
  const auto data = MakeData(n, kDim);
  const index::TreeTopology topo(n, 33, 16);
  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool);
  io::IoStats io;
  double overlap = 0.0;
  double data_pages = 1.0;
  double total_ns = 0.0;
  for (auto _ : state) {
    state.PauseTiming();
    io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
    data_pages = static_cast<double>(file.num_pages());
    state.ResumeTiming();
    const auto start = std::chrono::steady_clock::now();
    index::ExternalBuildOptions options;
    options.topology = &topo;
    options.memory_points = n / 10;
    if (adaptive) {
      options.split_strategy = index::SplitStrategy::kAdaptiveSample;
      options.exec = &ctx;
    }
    const index::ExternalBuildResult result =
        index::BuildOnDisk(&file, options);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    io = result.io;
    overlap = result.overlap_ratio;
    benchmark::DoNotOptimize(result.tree.num_nodes());
  }
  const std::string family = "external-build/" + std::to_string(n);
  const double mean_ns =
      total_ns / static_cast<double>(std::max<int64_t>(1, state.iterations()));
  if (!adaptive) BaselineNs(family) = mean_ns;
  const double baseline = BaselineNs(family);
  state.counters["data_passes"] =
      static_cast<double>(io.page_transfers) / data_pages;
  state.counters["pages_read"] = static_cast<double>(io.page_transfers);
  state.counters["overlap_ratio"] = overlap;
  state.counters["speedup_vs_vamsplit"] =
      adaptive && baseline > 0.0 && mean_ns > 0.0 ? baseline / mean_ns : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_ExternalBuild)
    ->Args({50000, 0})->Args({50000, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Predictor error on an adaptive-built index: the mini-index model must
// track kAdaptiveSample layouts as well as VAMSplit ones. The counter
// rel_error is |predicted - measured| / measured average leaf accesses
// (acceptance: < 0.05); timing covers the prediction only.
void BM_AdaptivePredictorError(benchmark::State& state) {
  const size_t n = 20000;
  common::Rng gen(1);
  const data::Dataset data = data::GenerateUniform(n, 8, &gen);
  const index::TreeTopology topo(n, 80, 10);
  common::Rng wrng(2);
  const auto workload = workload::QueryWorkload::Create(data, 60, 10, &wrng);
  index::BulkLoadOptions build;
  build.topology = &topo;
  build.split_strategy = index::SplitStrategy::kAdaptiveSample;
  const index::RTree tree = index::BulkLoadInMemory(data, build);
  double measured = 0.0;
  {
    const auto counts = index::CountSphereLeafAccesses(
        tree, workload.queries(), workload.radii(), nullptr);
    for (const double c : counts) measured += c;
    measured /= static_cast<double>(counts.size());
  }
  core::MiniIndexParams params;
  params.split_strategy = index::SplitStrategy::kAdaptiveSample;
  params.sampling_fraction = 0.5;
  double predicted = measured;
  for (auto _ : state) {
    predicted = core::PredictWithMiniIndex(data, topo, workload, params)
                    .avg_leaf_accesses;
    benchmark::DoNotOptimize(predicted);
  }
  state.counters["rel_error"] =
      measured > 0.0 ? std::abs(predicted - measured) / measured : 0.0;
}
BENCHMARK(BM_AdaptivePredictorError)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// ---------------------------------------------------------------------------
// Kernel-mode sweep: each benchmark runs once per kernel mode, range(0)
// holding the KernelMode enumerator (0=scalar, 1=generic, 2=avx2, 3=avx512,
// 4=neon; ISAs the host cannot run are skipped with an error so the JSON
// still lists them). Registration order seeds the baselines: scalar first,
// then generic — which is bit-for-bit the PR 5 batched implementation, so
// it doubles as the PR 5 baseline. Reported counters:
//   mode               — the enumerator this config ran,
//   speedup_vs_scalar  — scalar mean wall time over this config's
//                        (acceptance floor: >= 3x on leaf-intersection
//                        counting and >= 2x on the k-NN scan at d=60),
//   speedup_vs_pr5     — generic-lane mean wall time over this config's
//                        (acceptance floor: >= 1.2x at d=60 on the widest
//                        host ISA),
//   bytes_touched      — analytic bytes the kernel streams across all
//                        iterations (upper bound: early exits touch less).
// Every mode produces bit-identical results, so the speedup is free.

geometry::kernels::KernelMode SweepMode(benchmark::State& state) {
  return static_cast<geometry::kernels::KernelMode>(state.range(0));
}

/// Skips configs whose ISA the host cannot run. Returns false on skip.
bool CheckSweepMode(benchmark::State& state,
                    geometry::kernels::KernelMode mode) {
  if (geometry::kernels::KernelModeSupported(mode)) return true;
  state.SkipWithError(
      (std::string(geometry::kernels::KernelModeName(mode)) +
       " not supported on this host")
          .c_str());
  return false;
}

void ReportKernelSweep(benchmark::State& state, const std::string& family,
                       geometry::kernels::KernelMode mode, double total_ns,
                       double bytes_per_iteration) {
  namespace gk = geometry::kernels;
  const double mean_ns =
      total_ns / static_cast<double>(std::max<int64_t>(1, state.iterations()));
  if (mode == gk::KernelMode::kScalar) BaselineNs(family) = mean_ns;
  if (mode == gk::KernelMode::kGeneric) BaselineNs(family + "/pr5") = mean_ns;
  const double scalar_ns = BaselineNs(family);
  const double pr5_ns = BaselineNs(family + "/pr5");
  state.counters["mode"] = static_cast<double>(mode);
  state.counters["speedup_vs_scalar"] =
      scalar_ns > 0.0 && mean_ns > 0.0 ? scalar_ns / mean_ns : 0.0;
  state.counters["speedup_vs_pr5"] =
      pr5_ns > 0.0 && mean_ns > 0.0 ? pr5_ns / mean_ns : 0.0;
  state.counters["bytes_touched"] =
      bytes_per_iteration * static_cast<double>(state.iterations());
}

/// Registers the scalar/generic/avx2/avx512/neon sweep for a benchmark with
/// a (mode, dim) argument pair.
void ModeDimSweep(benchmark::internal::Benchmark* b) {
  for (int64_t dim : {16, 60}) {
    for (int64_t mode = 0;
         mode < static_cast<int64_t>(geometry::kernels::kNumKernelModes);
         ++mode) {
      b->Args({mode, dim});
    }
  }
}

// The predictor hot loop: q=100 k-NN query spheres against every leaf MBR
// of a 20k-point tree (the slab is built once per prediction inside
// CountLeafIntersections and shared across queries).
void BM_CountLeafIntersections(benchmark::State& state) {
  const auto mode = SweepMode(state);
  if (!CheckSweepMode(state, mode)) return;
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t n = 20000;
  const auto data = MakeData(n, dim);
  const index::TreeTopology topo(n, 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, options);
  std::vector<geometry::BoundingBox> leaves;
  for (uint32_t id : tree.leaf_ids()) leaves.push_back(tree.node(id).box);
  common::Rng rng(11);
  const auto queries = workload::QueryWorkload::Create(data, 100, 21, &rng);
  geometry::kernels::SetKernelMode(mode);
  double total_ns = 0.0;
  for (auto _ : state) {
    core::PredictionResult result;
    const auto start = std::chrono::steady_clock::now();
    core::CountLeafIntersections(leaves, queries, &result);
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    benchmark::DoNotOptimize(result.avg_leaf_accesses);
  }
  geometry::kernels::ClearKernelModeOverride();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100 *
                          static_cast<int64_t>(leaves.size()));
  // Each query streams both float planes of every dimension of the slab.
  const size_t padded =
      (leaves.size() + geometry::kernels::BoxSlab::kPlaneStride - 1) /
      geometry::kernels::BoxSlab::kPlaneStride *
      geometry::kernels::BoxSlab::kPlaneStride;
  const double bytes_per_iteration =
      100.0 * 2.0 * static_cast<double>(dim) * static_cast<double>(padded) *
      sizeof(float);
  ReportKernelSweep(state,
                    "count_leaf_intersections_d" + std::to_string(dim), mode,
                    total_ns, bytes_per_iteration);
}
BENCHMARK(BM_CountLeafIntersections)
    ->Apply(ModeDimSweep)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

// The workload-generation hot loop: one exact 21-NN radius over 20k rows
// per iteration, timed directly on the dispatching scan kernel.
void BM_ExactKthScan(benchmark::State& state) {
  const auto mode = SweepMode(state);
  if (!CheckSweepMode(state, mode)) return;
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t n = 20000;
  const auto data = MakeData(n, dim);
  common::Rng rng(12);
  double total_ns = 0.0;
  for (auto _ : state) {
    const size_t row = rng.NextBounded(n);
    geometry::kernels::ScanOptions opts;
    opts.exclude_row = row;
    opts.exclude_row_only_if_zero = true;
    const auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(geometry::kernels::KthDistanceScan(
        data.row(row), data.data(), dim, 21, opts, mode));
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
  // One full pass over the row-major dataset per scan (early abandoning
  // touches less; this is the streamed upper bound).
  const double bytes_per_iteration =
      static_cast<double>(n) * static_cast<double>(dim) * sizeof(float);
  ReportKernelSweep(state, "exact_kth_scan_d" + std::to_string(dim), mode,
                    total_ns, bytes_per_iteration);
}
BENCHMARK(BM_ExactKthScan)
    ->Apply(ModeDimSweep)
    ->Iterations(2000);

// Slab construction cost — the one-off price a prediction pays before the
// batched counting starts (transpose of all leaf MBRs into arena-backed SoA
// planes). The transpose itself is mode-independent; sweeping the mode
// anyway keeps one uniform (mode, dim) grid in the JSON and pins that no
// mode regresses the build.
void BM_SlabBuild(benchmark::State& state) {
  const auto mode = SweepMode(state);
  if (!CheckSweepMode(state, mode)) return;
  const size_t dim = static_cast<size_t>(state.range(1));
  const size_t n = 20000;
  const auto data = MakeData(n, dim);
  const index::TreeTopology topo(n, 33, 16);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, options);
  std::vector<geometry::BoundingBox> leaves;
  for (uint32_t id : tree.leaf_ids()) leaves.push_back(tree.node(id).box);
  geometry::kernels::SetKernelMode(mode);
  double total_ns = 0.0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    geometry::kernels::BoxSlab slab{
        std::span<const geometry::BoundingBox>(leaves)};
    total_ns += std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    benchmark::DoNotOptimize(slab.padded_size());
  }
  geometry::kernels::ClearKernelModeOverride();
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(leaves.size()));
  state.counters["boxes"] = static_cast<double>(leaves.size());
  // Reads every MBR float from the AoS boxes, writes both padded planes.
  const size_t padded =
      (leaves.size() + geometry::kernels::BoxSlab::kPlaneStride - 1) /
      geometry::kernels::BoxSlab::kPlaneStride *
      geometry::kernels::BoxSlab::kPlaneStride;
  const double bytes_per_iteration =
      2.0 * static_cast<double>(dim) *
      (static_cast<double>(leaves.size()) + static_cast<double>(padded)) *
      sizeof(float);
  ReportKernelSweep(state, "slab_build_d" + std::to_string(dim), mode,
                    total_ns, bytes_per_iteration);
}
BENCHMARK(BM_SlabBuild)->Apply(ModeDimSweep)->Iterations(2000);

// ---------------------------------------------------------------------------
// Serving-path throughput: the same request batch through a
// PredictionService, cold (caches cleared every iteration) vs. warm (all
// mini-index cache hits). The requests_per_s counter is the number future
// PRs watch for serving regressions; warm/cold is the cache's payoff.

/// A 2-shard service over two registered 20k x 16 datasets.
service::PredictionService& SweepService() {
  static service::PredictionService* svc = [] {
    service::ServiceOptions options;
    options.num_shards = 2;
    options.total_threads = 4;
    auto* s = new service::PredictionService(options);
    std::string error;
    common::Rng rng_a(31), rng_b(32);
    data::ClusteredConfig config;
    config.num_points = 20000;
    config.dim = 16;
    config.num_clusters = 16;
    s->registry().Add("a", data::GenerateClustered(config, &rng_a), &error);
    s->registry().Add("b", data::GenerateClustered(config, &rng_b), &error);
    return s;
  }();
  return *svc;
}

std::vector<service::ServiceRequest> ServiceBatch() {
  std::vector<service::ServiceRequest> requests;
  for (const char* dataset : {"a", "b"}) {
    for (uint64_t seed = 1; seed <= 4; ++seed) {
      service::ServiceRequest r;
      r.dataset = dataset;
      r.method = "resampled";
      r.memory = 2000;
      r.num_queries = 50;
      r.k = 10;
      r.seed = seed;
      requests.push_back(r);
    }
  }
  return requests;
}

void BM_ServiceBatch(benchmark::State& state) {
  const bool warm = state.range(0) != 0;
  service::PredictionService& svc = SweepService();
  const auto batch = ServiceBatch();
  svc.ClearCaches();
  if (warm) benchmark::DoNotOptimize(svc.ProcessBatch(batch));
  for (auto _ : state) {
    if (!warm) svc.ClearCaches();
    benchmark::DoNotOptimize(svc.ProcessBatch(batch));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch.size()));
  state.counters["requests_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations()) *
          static_cast<double>(batch.size()),
      benchmark::Counter::kIsRate);
  state.counters["warm_cache"] = warm ? 1.0 : 0.0;
}
BENCHMARK(BM_ServiceBatch)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// ---------------------------------------------------------------------------
// Async-server saturation: an open-loop arrival sweep against the epoll
// server over a real loopback socket, warm-cache requests so the measured
// path is framing + queueing + serving, not prediction compute. Open-loop
// means requests are sent on a fixed schedule whether or not earlier ones
// completed — the honest way to find the knee, since a closed-loop client
// self-throttles exactly when the server saturates. Per offered rate the
// counters report achieved throughput, client-observed latency
// percentiles, shed responses, and a `past_knee` marker (achieved < 90% of
// offered). Quick scale: one pass per rate in CI; the sweep's shape (knee
// between the low and high rates), not the absolute numbers, is the
// portable signal.

bool BenchSendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool BenchReadFrame(int fd, std::string* buffer,
                    service::wire::FrameHeader* header, std::string* payload) {
  namespace wire = service::wire;
  while (true) {
    size_t consumed = 0;
    std::string_view view;
    std::string error;
    const wire::FrameStatus status =
        wire::NextFrame(*buffer, wire::kDefaultMaxPayload, &consumed, header,
                        &view, &error);
    if (status == wire::FrameStatus::kError) return false;
    if (status == wire::FrameStatus::kFrame) {
      payload->assign(view);
      buffer->erase(0, consumed);
      return true;
    }
    char chunk[1 << 16];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer->append(chunk, static_cast<size_t>(n));
  }
}

void BM_ServiceSaturation(benchmark::State& state) {
  namespace wire = service::wire;
  using Clock = std::chrono::steady_clock;
  const double offered_rps = static_cast<double>(state.range(0));
  constexpr size_t kRequestsPerPass = 64;

  service::PredictionService& svc = SweepService();
  svc.ClearCaches();
  // Every request in the open-loop stream cycles through this batch, so
  // one warm pass makes the serving path pure cache hits.
  const auto batch = ServiceBatch();
  benchmark::DoNotOptimize(svc.ProcessBatch(batch));

  service::AsyncServerOptions options;
  options.shard_queue_capacity = 16;
  service::AsyncServer server(&svc, options);
  std::string error;
  if (!server.Start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = wire::HostToNet16(server.port());
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (fd < 0 || ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) != 0) {
    state.SkipWithError("cannot connect to the bench server");
    server.Stop();
    server.Wait();
    return;
  }

  // Pre-encode the stream; ids are 1-based indices so the reader can map a
  // response back to its send timestamp.
  std::vector<std::string> frames(kRequestsPerPass);
  for (size_t i = 0; i < kRequestsPerPass; ++i) {
    service::ServiceRequest request = batch[i % batch.size()];
    request.id = i + 1;
    frames[i] = wire::EncodePredictRequest(request);
  }

  std::vector<double> latencies_ms;
  uint64_t completed = 0;
  uint64_t shed = 0;
  double elapsed_s = 0.0;
  for (auto _ : state) {
    // Send timestamps as atomic ns-since-start: written by the sender,
    // read by the reader once the matching response arrives.
    std::vector<std::atomic<int64_t>> sent_at_ns(kRequestsPerPass + 1);
    const auto start = Clock::now();
    const auto interval =
        std::chrono::duration<double>(1.0 / offered_rps);
    // Open-loop sender: fixed schedule, deaf to completions.
    std::thread sender([&] {
      for (size_t i = 0; i < kRequestsPerPass; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        interval * static_cast<double>(i)));
        sent_at_ns[i + 1].store(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - start)
                .count(),
            std::memory_order_release);
        BenchSendAll(fd, frames[i]);
      }
    });
    std::string buffer;
    for (size_t i = 0; i < kRequestsPerPass; ++i) {
      wire::FrameHeader header;
      std::string payload;
      if (!BenchReadFrame(fd, &buffer, &header, &payload)) break;
      const auto now = Clock::now();
      if ((header.flags & wire::kFlagShed) != 0) {
        ++shed;
        continue;
      }
      ++completed;
      if (header.id >= 1 && header.id <= kRequestsPerPass) {
        const int64_t sent_ns =
            sent_at_ns[header.id].load(std::memory_order_acquire);
        const int64_t now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - start)
                .count();
        latencies_ms.push_back(static_cast<double>(now_ns - sent_ns) / 1e6);
      }
    }
    sender.join();
    elapsed_s +=
        std::chrono::duration<double>(Clock::now() - start).count();
  }
  close(fd);
  server.Stop();
  server.Wait();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto percentile = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    const size_t index = static_cast<size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[index];
  };
  const double achieved_rps =
      elapsed_s > 0.0 ? static_cast<double>(completed) / elapsed_s : 0.0;
  state.counters["offered_rps"] = offered_rps;
  state.counters["achieved_rps"] = achieved_rps;
  state.counters["latency_p50_ms"] = percentile(0.50);
  state.counters["latency_p90_ms"] = percentile(0.90);
  state.counters["latency_p99_ms"] = percentile(0.99);
  state.counters["shed"] = static_cast<double>(shed);
  state.counters["past_knee"] =
      achieved_rps < 0.9 * offered_rps ? 1.0 : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(completed));
}
BENCHMARK(BM_ServiceSaturation)
    ->Arg(200)->Arg(2000)->Arg(20000)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
