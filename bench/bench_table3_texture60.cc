// E4 / Table 3: relative error and I/O cost of all approaches on TEXTURE60
// with memory M ~ 3.6% of N (the paper's M = 10,000 for N = 275,465).
//
// Paper rows (M = 10,000): on-disk 0% / 4,460 s; resampled h=2 -32%,
// h=3 +3%, h=4 +17% at 14-66 s; cutoff -64%/-27%/-16% at 8.5 s.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/external_build.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Table 3: relative error and I/O cost (TEXTURE60, M ~ 3.6% of N)",
      "Lang & Singh, SIGMOD 2001, Section 5, Table 3");

  const size_t n = bench::Scaled(30000, 275465);
  const size_t q = bench::Scaled(60, 500);
  const size_t memory = bench::Scaled(1100, 10000);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/31);
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  std::printf("N=%zu d=%zu M=%zu height=%zu leaves=%zu\n\n", dataset.size(),
              dataset.dim(), memory, topology.height(), topology.NumLeaves());

  common::Rng rng(32);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  // Ground truth: on-disk bulk load (charged) + charged queries.
  io::PagedFile build_file = io::PagedFile::FromDataset(dataset, disk);
  index::ExternalBuildOptions build;
  build.topology = &topology;
  build.memory_points = memory;
  const index::ExternalBuildResult on_disk =
      index::BuildOnDisk(&build_file, build);
  io::IoStats query_io;
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      on_disk.tree, workload.queries(), workload.radii(), &query_io));

  std::printf("%-34s %10s %12s %14s %12s\n", "Method", "Rel.err",
              "Page seeks", "Page xfers", "I/O cost(s)");
  std::printf("%-34s %10s %6llu+%-6llu %7llu+%-7llu %12.3f\n", "On-disk",
              "0%", static_cast<unsigned long long>(on_disk.io.page_seeks),
              static_cast<unsigned long long>(query_io.page_seeks),
              static_cast<unsigned long long>(on_disk.io.page_transfers),
              static_cast<unsigned long long>(query_io.page_transfers),
              (on_disk.io + query_io).CostSeconds(disk));

  char label[80];
  for (size_t h = 2; h <= topology.height() - 1; ++h) {
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    core::ResampledParams params;
    params.memory_points = memory;
    params.h_upper = h;
    params.seed = 33;
    const core::PredictionResult r =
        core::PredictWithResampledTree(&file, topology, workload, params);
    std::snprintf(label, sizeof(label),
                  "Resampled (h=%zu, su=%.4f, sl=%.4f)", h, r.sigma_upper,
                  r.sigma_lower);
    std::printf("%-34s %9.0f%% %12llu %14llu %12.3f\n", label,
                100 * common::RelativeError(r.avg_leaf_accesses, measured),
                static_cast<unsigned long long>(r.io.page_seeks),
                static_cast<unsigned long long>(r.io.page_transfers),
                r.io.CostSeconds(disk));
  }
  for (size_t h = 2; h <= topology.height() - 1; ++h) {
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    core::CutoffParams params;
    params.memory_points = memory;
    params.h_upper = h;
    params.seed = 33;
    const core::PredictionResult r =
        core::PredictWithCutoffTree(&file, topology, workload, params);
    std::snprintf(label, sizeof(label), "Cutoff (h=%zu, su=%.4f)", h,
                  r.sigma_upper);
    std::printf("%-34s %9.0f%% %12llu %14llu %12.3f\n", label,
                100 * common::RelativeError(r.avg_leaf_accesses, measured),
                static_cast<unsigned long long>(r.io.page_seeks),
                static_cast<unsigned long long>(r.io.page_transfers),
                r.io.CostSeconds(disk));
  }

  std::printf("\nMeasured avg leaf accesses: %.1f; chosen h_upper rule picks "
              "h=%zu.\n",
              measured, core::ChooseHupper(topology, memory));
  std::printf("Paper shape: resampled underestimates at small h, is most "
              "accurate when\nsigma_lower reaches 1, overestimates beyond; "
              "cutoff is cheapest but least\naccurate; both are 1-2 orders "
              "of magnitude cheaper than on-disk.\n");
  return 0;
}
