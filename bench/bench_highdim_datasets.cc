// E10 / Section 5.3 tail: the very high-dimensional datasets.
//
// Paper: on STOCK360 (6,500 x 360) and ISOLET617 (7,800 x 617) the fractal
// approach is no longer applicable (too few points for the dimensionality)
// while the resampled predictor keeps errors between -8% and +0.7%.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "baselines/fractal.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace {

std::string RunDataset(const char* name, const hdidx::data::Dataset& dataset,
                       size_t q, size_t memory) {
  using namespace hdidx;
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);

  common::Rng rng(92);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &rng);

  index::BulkLoadOptions full;
  full.topology = &topology;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr));

  double predicted = 0.0;
  size_t h_upper = 0;
  if (topology.height() >= 3) {
    io::PagedFile file = io::PagedFile::FromDataset(dataset, disk);
    core::ResampledParams params;
    params.memory_points = memory;
    params.h_upper = core::ChooseHupper(topology, memory);
    params.seed = 93;
    h_upper = params.h_upper;
    predicted =
        core::PredictWithResampledTree(&file, topology, workload, params)
            .avg_leaf_accesses;
  } else {
    core::MiniIndexParams params;
    params.sampling_fraction =
        std::min(1.0, static_cast<double>(memory) /
                          static_cast<double>(dataset.size()));
    params.seed = 93;
    predicted = core::PredictWithMiniIndex(dataset, topology, workload, params)
                    .avg_leaf_accesses;
  }

  // Fractal applicability check: the paper notes the fractal approach fails
  // when N is too small for d. Flag it when the estimate is degenerate or
  // built from too few resolvable scales.
  const auto dims = baselines::EstimateFractalDimensions(dataset, 8);
  const bool fractal_ok =
      dims.fitted_levels.size() >= 3 && dims.d2 > 1e-3 &&
      static_cast<double>(dataset.size()) >= std::pow(2.0, dims.d0 + 2.0);

  char row[160];
  std::snprintf(row, sizeof(row),
                "%-10s %7zu %5zu %8zu %6zu %10.1f %10.1f %9.1f%% %10s\n", name,
                dataset.size(), dataset.dim(), topology.NumLeaves(), h_upper,
                measured, predicted,
                100 * common::RelativeError(predicted, measured),
                fractal_ok ? "yes" : "no");
  return std::string(row);
}

}  // namespace

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Section 5.3: very high-dimensional datasets (STOCK360, ISOLET617)",
      "Lang & Singh, SIGMOD 2001, Sections 5.1/5.3 (360/617-d datasets)");

  const size_t q = bench::Scaled(50, 500);
  const size_t memory = bench::Scaled(1500, 2000);
  std::printf("%-10s %7s %5s %8s %6s %10s %10s %10s %10s\n", "dataset", "N",
              "d", "leaves", "h_up", "measured", "predicted", "rel.err",
              "fractal?");

  // The three datasets are independent configurations: each job builds its
  // own dataset and simulated file, so they run concurrently while the
  // output stays in configuration order.
  bench::RunAndPrintExperiments({
      [&] {
        return RunDataset("STOCK360",
                          data::Stock360Surrogate(bench::Scaled(3000, 6500), 91),
                          q, memory);
      },
      [&] {
        return RunDataset("ISOLET617",
                          data::Isolet617Surrogate(bench::Scaled(3000, 7800), 91),
                          q, memory);
      },
      [&] {
        return RunDataset("TEXTURE48",
                          data::Texture48Surrogate(bench::Scaled(8000, 26697), 91),
                          q, memory);
      },
  });

  std::printf("\nPaper shape: sampling still predicts within single-digit "
              "percent errors at\n360-617 dimensions, where the fractal "
              "approach is no longer applicable.\n");
  return 0;
}
