// E16 (extension): the related-work argument of Section 2, executable.
//
// The paper's Section 2 sorts prior models into four families and argues
// the first three fail on high-dimensional clustered data:
//   2.1 uniform        -> saturates (Table 4; bench_table4 covers it);
//   2.2 fractal        -> degenerate dimensions (bench_table4 covers it);
//   2.3 locally parametric -> histograms collapse or go empty in high d,
//       M-tree distance-distribution models need the built index and lose
//       per-query fidelity;
//   2.4 sampling       -> this paper.
// This bench quantifies the 2.3 claims with the GridHistogram and the
// Ciaccia-Patella-style distance-distribution model.

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "baselines/histogram.h"
#include "baselines/mtree_model.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/sstree_predict.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/sstree.h"
#include "index/topology.h"
#include "workload/query_workload.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Extension: limits of locally parametric models (Section 2.3)",
      "Lang & Singh, SIGMOD 2001, Section 2.3");

  // Part 1: histogram selectivity error vs dimensionality at a fixed
  // bucket budget.
  std::printf("Grid histogram, 4096-bucket budget, box queries of ~100 "
              "points:\n");
  std::printf("%6s %12s %12s %16s %18s\n", "dim", "resolution", "cells",
              "empty cells", "median rel.err");
  const size_t n = bench::Scaled(20000, 100000);
  for (size_t d : {2u, 4u, 8u, 16u, 32u}) {
    common::Rng gen(91 + d);
    data::ClusteredConfig config;
    config.num_points = n;
    config.dim = d;
    config.num_clusters = 12;
    config.intrinsic_dim = std::max(2.0, static_cast<double>(d) / 3.0);
    const auto data = data::GenerateClustered(config, &gen);
    const baselines::GridHistogram hist(data, 4096);

    common::Rng qrng(92);
    std::vector<double> errors;
    for (int trial = 0; trial < 25; ++trial) {
      const size_t row = qrng.NextBounded(data.size());
      // Cube around a data point sized for ~100 points by L-inf rank.
      std::vector<double> linf(data.size());
      const auto center = data.row(row);
      for (size_t j = 0; j < data.size(); ++j) {
        double m = 0.0;
        for (size_t k = 0; k < d; ++k) {
          m = std::max(m, std::abs(static_cast<double>(data.row(j)[k]) -
                                   center[k]));
        }
        linf[j] = m;
      }
      std::nth_element(linf.begin(), linf.begin() + 100, linf.end());
      const float h = static_cast<float>(linf[100]);
      std::vector<float> lo(d), hi(d);
      for (size_t k = 0; k < d; ++k) {
        lo[k] = center[k] - h;
        hi[k] = center[k] + h;
      }
      const geometry::BoundingBox box(lo, hi);
      const double exact = static_cast<double>(
          baselines::GridHistogram::ExactBoxCardinality(data, box));
      const double estimate = hist.EstimateBoxCardinality(box);
      errors.push_back(std::abs(common::RelativeError(estimate, exact)));
    }
    std::sort(errors.begin(), errors.end());
    std::printf("%6zu %12zu %12zu %15.0f%% %17.0f%%\n", d, hist.resolution(),
                hist.num_cells(), 100.0 * hist.EmptyCellFraction(),
                100.0 * errors[errors.size() / 2]);
  }

  // Part 2: the M-tree-style distance-distribution model vs the sampling
  // predictor on sphere pages.
  std::printf("\nDistance-distribution model vs sampling (sphere pages, "
              "21-NN):\n");
  common::Rng gen(93);
  data::ClusteredConfig config;
  config.num_points = n;
  config.dim = 16;
  config.num_clusters = 12;
  config.intrinsic_dim = 5.0;
  config.noise_fraction = 0.0;
  const auto data = data::GenerateClustered(config, &gen);
  const index::TreeTopology topo =
      index::TreeTopology::FromDisk(data.size(), data.dim(), io::DiskModel{});
  index::BulkLoadOptions full;
  full.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, full);
  const auto leaves = index::ComputeLeafSpheres(tree, data);
  common::Rng wrng(94);
  const auto workload = workload::QueryWorkload::Create(
      data, bench::Scaled(50u, 500u), 21, &wrng);
  const std::vector<double> measured_pq =
      core::MeasureSsTreeLeafAccesses(leaves, workload);
  const double measured = common::Mean(measured_pq);

  common::Rng drng(95);
  const baselines::DistanceDistribution dist(data, 30000, &drng);
  const double mtree_pred = baselines::PredictAverageSphereAccesses(
      dist, leaves, workload.radii());
  std::vector<double> mtree_pq(workload.num_queries());
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    mtree_pq[i] =
        baselines::PredictSphereAccesses(dist, leaves, workload.radius(i));
  }

  core::MiniIndexParams params;
  params.sampling_fraction = 0.2;
  params.seed = 96;
  const auto sampled =
      core::PredictSsTreeWithMiniIndex(data, topo, workload, params);

  std::printf("%-28s %10s %10s %12s\n", "model", "predicted", "rel.err",
              "per-q corr");
  std::printf("%-28s %10.1f %9s %12s\n", "measured", measured, "-", "-");
  std::printf("%-28s %10.1f %9.0f%% %12.2f\n", "distance distribution",
              mtree_pred, 100 * common::RelativeError(mtree_pred, measured),
              common::PearsonCorrelation(mtree_pq, measured_pq));
  std::printf("%-28s %10.1f %9.0f%% %12.2f\n", "sampling (this paper)",
              sampled.avg_leaf_accesses,
              100 * common::RelativeError(sampled.avg_leaf_accesses,
                                          measured),
              common::PearsonCorrelation(sampled.per_query_accesses,
                                         measured_pq));

  std::printf("\nShape: the histogram's resolution collapses to 1 cell per "
              "dimension by\nd=16 (pure-uniform fallback) while its finer "
              "variants go mostly empty;\nthe distance-distribution model "
              "needs the built index's radii and trails\nthe sampling "
              "predictor in per-query correlation.\n");
  return 0;
}
