// E14 (extension): the Section 4.7 claim — the technique covers "all index
// structures that organize the data in fixed-capacity pages". Five members
// beyond the VAMSplit R*-tree:
//   * k-d-B-tree-style layout (round-robin split dimensions),
//   * max-extent-split R-tree packing,
//   * dynamically built R*-tree (insertion with forced reinsert),
//   * X-tree (supernodes at MAX_OVERLAP = 0.2),
//   * SS-tree (bounding-sphere pages).
// Each is measured and predicted with the same sampling model.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/compensation.h"
#include "core/dynamic_mini_index.h"
#include "core/mini_index.h"
#include "core/predictor.h"
#include "core/sstree_predict.h"
#include "data/generators.h"
#include "index/bulk_loader.h"
#include "index/rstar.h"
#include "index/sstree.h"
#include "workload/query_workload.h"

namespace {

using namespace hdidx;

/// Measured and mini-index-predicted accesses for a bulk split strategy.
void RunBulkVariant(const char* name, const data::Dataset& dataset,
                    const index::TreeTopology& topology,
                    const workload::QueryWorkload& workload,
                    index::SplitStrategy strategy, double zeta) {
  index::BulkLoadOptions full;
  full.topology = &topology;
  full.split_strategy = strategy;
  const index::RTree tree = index::BulkLoadInMemory(dataset, full);
  const double measured =
      common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));

  // Mini-index with the SAME split strategy (Section 3.1: reuse the
  // construction algorithm).
  common::Rng rng(71);
  std::vector<size_t> rows;
  rng.SampleIndices(dataset.size(),
                    static_cast<size_t>(zeta * dataset.size()), &rows);
  const data::Dataset sample = dataset.Select(rows);
  index::BulkLoadOptions mini;
  mini.topology = &topology;
  mini.scale = zeta;
  mini.split_strategy = strategy;
  const index::RTree mini_tree = index::BulkLoadInMemory(sample, mini);
  std::vector<geometry::BoundingBox> leaves;
  for (uint32_t id : mini_tree.leaf_ids()) {
    geometry::BoundingBox box = mini_tree.node(id).box;
    const double c = mini_tree.node(id).count / zeta;
    box.InflateAboutCenter(core::CompensationGrowthPerDim(c, zeta));
    leaves.push_back(box);
  }
  core::PredictionResult result;
  core::CountLeafIntersections(leaves, workload, &result);

  std::printf("%-28s %10.1f %10.1f %9.0f%% %10zu\n", name, measured,
              result.avg_leaf_accesses,
              100 * common::RelativeError(result.avg_leaf_accesses, measured),
              tree.num_leaves());
}

}  // namespace

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Extension: other fixed-capacity-page index structures (Section 4.7)",
      "Lang & Singh, SIGMOD 2001, Section 4.7");

  const size_t n = bench::Scaled(25000, 100000);
  const size_t q = bench::Scaled(50, 500);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/72);
  // Insertion-built trees cost ~1 ms/point at 60 dimensions: the dynamic
  // rows run on a subset so the whole bench stays interactive.
  const data::Dataset dynamic_dataset =
      bench::FullScale() ? dataset : [&] {
        std::vector<size_t> head(10000);
        for (size_t i = 0; i < head.size(); ++i) head[i] = i;
        return dataset.Select(head);
      }();
  const io::DiskModel disk;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset.size(), dataset.dim(), disk);
  common::Rng wrng(73);
  const workload::QueryWorkload workload =
      workload::QueryWorkload::Create(dataset, q, /*k=*/21, &wrng);
  const double zeta = 0.2;

  std::printf("%-28s %10s %10s %10s %10s\n", "structure", "measured",
              "predicted", "rel.err", "leaves");
  RunBulkVariant("VAMSplit R*-tree (max-var)", dataset, topology, workload,
                 index::SplitStrategy::kMaxVariance, zeta);
  RunBulkVariant("R-tree packing (max-extent)", dataset, topology, workload,
                 index::SplitStrategy::kMaxExtent, zeta);
  RunBulkVariant("k-d-B-tree (round-robin)", dataset, topology, workload,
                 index::SplitStrategy::kRoundRobin, zeta);

  // Dynamic R*-tree.
  {
    index::RStarTree::Options options;
    options.max_data_entries = topology.data_capacity();
    options.max_dir_entries = topology.dir_capacity();
    const index::RTree tree =
        index::RStarTree::BuildByInsertion(dynamic_dataset, options)
            .ToRTree();
    const double measured =
        common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));
    core::DynamicMiniIndexParams params;
    params.sampling_fraction = zeta;
    params.seed = 74;
    const core::PredictionResult result =
        core::PredictDynamicRStar(dynamic_dataset, options, workload, params);
    std::printf("%-28s %10.1f %10.1f %9.0f%% %10zu\n",
                "dynamic R*-tree (insertion)", measured,
                result.avg_leaf_accesses,
                100 * common::RelativeError(result.avg_leaf_accesses,
                                            measured),
                tree.num_leaves());
  }

  // X-tree: dynamic R*-tree with supernodes (entry-overlap MAX_OVERLAP).
  {
    index::RStarTree::Options options;
    options.max_data_entries = topology.data_capacity();
    options.max_dir_entries = topology.dir_capacity();
    options.supernode_overlap_threshold = 0.2;
    const index::RStarTree built =
        index::RStarTree::BuildByInsertion(dynamic_dataset, options);
    const index::RTree tree = built.ToRTree();
    const double measured =
        common::Mean(core::MeasureLeafAccesses(tree, workload, nullptr));
    core::DynamicMiniIndexParams params;
    params.sampling_fraction = zeta;
    params.seed = 76;
    const core::PredictionResult result =
        core::PredictDynamicRStar(dynamic_dataset, options, workload, params);
    char label[64];
    std::snprintf(label, sizeof(label), "X-tree (%zu supernodes)",
                  built.CountSupernodes());
    std::printf("%-28s %10.1f %10.1f %9.0f%% %10zu\n", label, measured,
                result.avg_leaf_accesses,
                100 * common::RelativeError(result.avg_leaf_accesses,
                                            measured),
                tree.num_leaves());
  }

  // SS-tree (sphere pages).
  {
    index::BulkLoadOptions full;
    full.topology = &topology;
    const index::RTree tree = index::BulkLoadInMemory(dataset, full);
    const auto spheres = index::ComputeLeafSpheres(tree, dataset);
    const double measured =
        common::Mean(core::MeasureSsTreeLeafAccesses(spheres, workload));
    core::MiniIndexParams params;
    params.sampling_fraction = zeta;
    params.seed = 75;
    const auto result =
        core::PredictSsTreeWithMiniIndex(dataset, topology, workload, params);
    std::printf("%-28s %10.1f %10.1f %9.0f%% %10zu\n",
                "SS-tree (sphere pages)", measured, result.avg_leaf_accesses,
                100 * common::RelativeError(result.avg_leaf_accesses,
                                            measured),
                spheres.size());
  }

  std::printf("\nShape: one sampling model, one construction-replay recipe, "
              "six page\nlayouts. Sphere pages are the hardest (radius = "
              "outlier-driven maximum\nstatistic; see EXPERIMENTS.md).\n");
  return 0;
}
