// E2 / Figure 9: analytic I/O cost of the three approaches for different
// memory sizes M (N = 1,000,000 points, d = 60, log-scale y in the paper).
//
// Paper shape: all costs decrease with M; resampled stays about one order
// of magnitude below on-disk, cutoff up to two orders.

#include <cstdio>

#include "bench_common.h"
#include "core/cost_model.h"
#include "core/hupper.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader("Figure 9: I/O cost for different memory sizes M",
                     "Lang & Singh, SIGMOD 2001, Section 4.6, Figure 9");

  std::printf("N = 1,000,000 points, d = 60, q = 500 query points\n\n");
  std::printf("%10s %8s %14s %14s %14s %10s %10s\n", "M", "h_up",
              "on-disk (s)", "resampled (s)", "cutoff (s)", "dsk/rsmp",
              "dsk/cut");

  for (size_t m = 2500; m <= 160000; m *= 2) {
    core::CostModelInputs in;
    in.num_points = 1000000;
    in.dim = 60;
    in.memory_points = m;
    in.num_query_points = 500;
    const auto topo = in.Topology();
    const size_t h = core::ChooseHupper(topo, m);
    const double on_disk = core::OnDiskBuildCost(in).CostSeconds(in.disk);
    const double resampled = core::ResampledCost(in, h).CostSeconds(in.disk);
    const double cutoff = core::CutoffCost(in).CostSeconds(in.disk);
    std::printf("%10zu %8zu %14.1f %14.1f %14.1f %9.1fx %9.1fx\n", m, h,
                on_disk, resampled, cutoff, on_disk / resampled,
                on_disk / cutoff);
  }
  std::printf("\nPaper shape: monotone decrease in M; resampled ~1 order of "
              "magnitude\nbelow on-disk, cutoff up to 2 orders (jumps stem "
              "from h_upper changes).\n");
  return 0;
}
