// E9 / Figure 14: index page accesses for 21-NN queries vs the number of
// dimensions stored in the index (LANDSAT), under the optimal multi-step
// search of Seidl-Kriegel.
//
// Paper shape: page accesses increase with the indexed dimensionality
// (page capacity drops), with prediction tracking measurement closely.

#include <cstdio>

#include "apps/dim_selector.h"
#include "bench_common.h"
#include "data/generators.h"

int main() {
  using namespace hdidx;
  bench::PrintHeader(
      "Figure 14: feature page accesses vs indexed dimensionality (LANDSAT)",
      "Lang & Singh, SIGMOD 2001, Section 6.2, Figure 14");

  const size_t n = bench::Scaled(20000, 275465);
  const data::Dataset dataset = data::Texture60Surrogate(n, /*seed=*/81);

  apps::DimSelectorConfig config;
  config.index_dims = {6, 12, 18, 24, 30, 36, 48, 60};
  config.memory_points = bench::Scaled(3000u, 10000u);
  config.num_queries = bench::Scaled(50u, 500u);
  config.k = 21;
  config.seed = 82;

  const auto points = apps::EvaluateIndexDims(dataset, config);
  std::printf("%8s %11s %11s %11s %11s %10s %10s\n", "dims", "pred acc",
              "meas acc", "pred refine", "meas refine", "pred s", "meas s");
  for (const auto& p : points) {
    std::printf("%8zu %11.1f %11.1f %11.1f %11.1f %10.3f %10.3f\n",
                p.index_dims, p.predicted_accesses, p.measured_accesses,
                p.predicted_refinements, p.measured_refinements,
                p.predicted_cost_s, p.measured_cost_s);
  }
  std::printf("\nPaper shape: index accesses grow with the indexed "
              "dimensionality (smaller\npage capacity) while object-server "
              "refinements shrink (better filtering);\nprediction resembles "
              "measurement closely for both access types.\n");
  return 0;
}
