#include "apps/page_size_tuner.h"

#include <algorithm>

#include "common/check.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace hdidx::apps {

std::vector<PageSizePoint> TunePageSize(const data::Dataset& data,
                                        const PageSizeTunerConfig& config) {
  HDIDX_CHECK(!data.empty());
  common::Rng rng(config.seed);
  // The k-NN spheres depend only on the data, not on the page size: one
  // workload serves the whole sweep.
  const workload::QueryWorkload workload = workload::QueryWorkload::Create(
      data, config.num_queries, config.k, &rng);

  std::vector<PageSizePoint> points;
  points.reserve(config.page_sizes_bytes.size());
  for (size_t page_bytes : config.page_sizes_bytes) {
    io::DiskModel disk;
    disk.page_bytes = page_bytes;
    const index::TreeTopology topology =
        index::TreeTopology::FromDisk(data.size(), data.dim(), disk);

    PageSizePoint point;
    point.page_bytes = page_bytes;

    // Measurement: full in-memory build, count sphere/leaf intersections.
    index::BulkLoadOptions full;
    full.topology = &topology;
    const index::RTree tree = index::BulkLoadInMemory(data, full);
    const std::vector<double> measured = index::CountSphereLeafAccesses(
        tree, workload.queries(), workload.radii(), nullptr);
    double sum = 0.0;
    for (double v : measured) sum += v;
    point.measured_accesses = sum / static_cast<double>(measured.size());

    // Prediction: the resampled technique when the tree is tall enough for
    // an upper/lower split, the basic mini-index model otherwise.
    io::PagedFile file = io::PagedFile::FromDataset(data, disk);
    if (topology.height() >= 3) {
      core::ResampledParams params;
      params.memory_points = config.memory_points;
      params.h_upper = core::ChooseHupper(topology, config.memory_points);
      params.seed = config.seed + 17;
      const core::PredictionResult prediction =
          core::PredictWithResampledTree(&file, topology, workload, params);
      point.predicted_accesses = prediction.avg_leaf_accesses;
      point.h_upper = params.h_upper;
    } else {
      core::MiniIndexParams params;
      params.sampling_fraction =
          std::min(1.0, static_cast<double>(config.memory_points) /
                            static_cast<double>(data.size()));
      params.seed = config.seed + 17;
      const core::PredictionResult prediction =
          core::PredictWithMiniIndex(data, topology, workload, params);
      point.predicted_accesses = prediction.avg_leaf_accesses;
      point.h_upper = 0;
    }

    // Query cost: all page accesses random — one seek plus one transfer of
    // this page size each.
    const double per_access = disk.seek_time_s + disk.transfer_time_s();
    point.predicted_cost_s = point.predicted_accesses * per_access;
    point.measured_cost_s = point.measured_accesses * per_access;
    points.push_back(point);
  }
  return points;
}

size_t BestPageSize(const std::vector<PageSizePoint>& points, bool measured) {
  HDIDX_CHECK(!points.empty());
  const PageSizePoint* best = &points[0];
  for (const auto& p : points) {
    const double cost = measured ? p.measured_cost_s : p.predicted_cost_s;
    const double best_cost =
        measured ? best->measured_cost_s : best->predicted_cost_s;
    if (cost < best_cost) best = &p;
  }
  return best->page_bytes;
}

}  // namespace hdidx::apps
