#include "apps/dim_selector.h"

#include <algorithm>

#include "common/check.h"
#include "core/hupper.h"
#include "geometry/distance.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace hdidx::apps {

std::vector<DimPoint> EvaluateIndexDims(const data::Dataset& data,
                                        const DimSelectorConfig& config) {
  HDIDX_CHECK(!data.empty());
  common::Rng rng(config.seed);
  // Full-space workload: the multi-step filter radius is the exact k-NN
  // distance in the original space.
  const workload::QueryWorkload full_workload =
      workload::QueryWorkload::Create(data, config.num_queries, config.k,
                                      &rng);

  std::vector<DimPoint> points;
  points.reserve(config.index_dims.size());
  const io::DiskModel disk;

  // One uniform sample serves the refinement estimates of the whole sweep
  // (drawn exactly like the predictors' upper-tree sample).
  common::Rng sample_rng(config.seed + 97);
  std::vector<size_t> sample_rows;
  sample_rng.SampleIndices(data.size(),
                           std::min(config.memory_points, data.size()),
                           &sample_rows);
  const data::Dataset sample = data.Select(sample_rows);
  const double zeta =
      static_cast<double>(sample.size()) / static_cast<double>(data.size());

  for (size_t d_index : config.index_dims) {
    HDIDX_CHECK(d_index >= 1 && d_index <= data.dim());
    const data::Dataset projected = data.ProjectPrefix(d_index);
    const data::Dataset projected_queries =
        full_workload.queries().ProjectPrefix(d_index);
    // Reduced-space workload with full-space radii: same spheres the
    // multi-step search prunes against.
    const workload::QueryWorkload workload(
        projected_queries, full_workload.radii(),
        full_workload.query_rows(), config.k);

    const index::TreeTopology topology =
        index::TreeTopology::FromDisk(projected.size(), d_index, disk);

    DimPoint point;
    point.index_dims = d_index;
    point.num_leaf_pages = topology.NumLeaves();

    // Measurement on the fully built reduced-dimensional index.
    index::BulkLoadOptions full;
    full.topology = &topology;
    const index::RTree tree = index::BulkLoadInMemory(projected, full);
    const std::vector<double> measured = index::CountSphereLeafAccesses(
        tree, workload.queries(), workload.radii(), nullptr);
    double sum = 0.0;
    for (double v : measured) sum += v;
    point.measured_accesses = sum / static_cast<double>(measured.size());

    // Prediction.
    io::PagedFile file = io::PagedFile::FromDataset(projected, disk);
    if (topology.height() >= 3) {
      core::ResampledParams params;
      params.memory_points = config.memory_points;
      params.h_upper = core::ChooseHupper(topology, config.memory_points);
      params.seed = config.seed + 31;
      const core::PredictionResult prediction =
          core::PredictWithResampledTree(&file, topology, workload, params);
      point.predicted_accesses = prediction.avg_leaf_accesses;
      point.h_upper = params.h_upper;
    } else {
      core::MiniIndexParams params;
      params.sampling_fraction =
          std::min(1.0, static_cast<double>(config.memory_points) /
                            static_cast<double>(projected.size()));
      params.seed = config.seed + 31;
      const core::PredictionResult prediction =
          core::PredictWithMiniIndex(projected, topology, workload, params);
      point.predicted_accesses = prediction.avg_leaf_accesses;
    }

    // Object-server refinements: candidates within the full-space k-NN
    // radius in the reduced space. Measured exactly; predicted from the
    // sample scaled by 1/zeta.
    const data::Dataset projected_sample = sample.ProjectPrefix(d_index);
    double measured_ref = 0.0;
    double predicted_ref = 0.0;
    for (size_t qi = 0; qi < workload.num_queries(); ++qi) {
      const auto q = workload.queries().row(qi);
      const double r2 = workload.radius(qi) * workload.radius(qi);
      size_t exact = 0;
      for (size_t j = 0; j < projected.size(); ++j) {
        if (geometry::SquaredL2(projected.row(j), q) <= r2) ++exact;
      }
      size_t in_sample = 0;
      for (size_t j = 0; j < projected_sample.size(); ++j) {
        if (geometry::SquaredL2(projected_sample.row(j), q) <= r2) {
          ++in_sample;
        }
      }
      measured_ref += static_cast<double>(exact);
      predicted_ref += static_cast<double>(in_sample) / zeta;
    }
    const double q_count = static_cast<double>(workload.num_queries());
    point.measured_refinements = measured_ref / q_count;
    point.predicted_refinements = predicted_ref / q_count;

    // Total cost: index page accesses plus object-server refinements, all
    // random accesses of one page each.
    const double per_access = disk.seek_time_s + disk.transfer_time_s();
    point.measured_cost_s =
        (point.measured_accesses + point.measured_refinements) * per_access;
    point.predicted_cost_s =
        (point.predicted_accesses + point.predicted_refinements) *
        per_access;
    points.push_back(point);
  }
  return points;
}

}  // namespace hdidx::apps
