#ifndef HDIDX_APPS_DIM_SELECTOR_H_
#define HDIDX_APPS_DIM_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hdidx::apps {

/// Configuration of the indexed-dimensionality study (Section 6.2 /
/// Figure 14): index only the first d' (KLT-ordered) dimensions and keep
/// the rest in an object server, searching with the optimal multi-step k-NN
/// algorithm of Seidl and Kriegel.
struct DimSelectorConfig {
  /// Candidate numbers of indexed dimensions. Must be <= data dim.
  std::vector<size_t> index_dims;
  size_t memory_points = 10000;
  size_t num_queries = 500;
  size_t k = 21;
  uint64_t seed = 1;
};

/// One sweep point: index page accesses and object-server refinements
/// under the multi-step search.
struct DimPoint {
  size_t index_dims = 0;
  double predicted_accesses = 0.0;
  double measured_accesses = 0.0;
  size_t h_upper = 0;
  size_t num_leaf_pages = 0;
  /// Candidates the optimal multi-step algorithm must refine against the
  /// object server: points whose reduced-space distance is within the
  /// full-space k-NN radius (Seidl-Kriegel's minimal candidate set). Each
  /// refinement is one random object-server page access.
  double measured_refinements = 0.0;
  /// Sampling-based refinement estimate: candidates in the M-point sample,
  /// scaled by 1/zeta (classic sample-based selectivity estimation).
  double predicted_refinements = 0.0;
  /// Total per-query I/O seconds (index accesses + refinements, all
  /// random) for measurement and prediction.
  double measured_cost_s = 0.0;
  double predicted_cost_s = 0.0;
};

/// Runs the sweep. The multi-step search must fetch every index entry whose
/// reduced-space MINDIST is within the *full-space* k-NN distance (the
/// filter step's conservative radius), so both measurement and prediction
/// count reduced-dimensional leaf pages against spheres with full-space
/// radii. Page capacity grows as dimensions shrink, which is why the page
/// accesses in Figure 14 increase with the indexed dimensionality.
///
/// `data` must already be KLT-ordered (variance decreasing with dimension
/// index) — the paper's datasets are stored that way.
std::vector<DimPoint> EvaluateIndexDims(const data::Dataset& data,
                                        const DimSelectorConfig& config);

}  // namespace hdidx::apps

#endif  // HDIDX_APPS_DIM_SELECTOR_H_
