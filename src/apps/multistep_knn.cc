#include "apps/multistep_knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::apps {

namespace {

/// Lazy ascending-distance ranking of dataset rows through the tree
/// (Hjaltason-Samet incremental NN), counting page accesses.
class IncrementalRanking {
 public:
  IncrementalRanking(const index::RTree& tree, const data::Dataset& projected,
                     std::span<const float> query)
      : tree_(tree), projected_(projected), query_(query) {
    if (!tree_.empty()) {
      queue_.push(Entry{
          geometry::SquaredMinDist(query_, tree_.node(tree_.root()).box),
          tree_.root(), kNode});
    }
  }

  /// Next row in ascending reduced-space distance; false when exhausted.
  /// `*distance_sq` receives the reduced-space squared distance.
  bool Next(size_t* row, double* distance_sq) {
    while (!queue_.empty()) {
      const Entry top = queue_.top();
      queue_.pop();
      if (top.kind == kPoint) {
        *row = top.id;
        *distance_sq = top.key;
        return true;
      }
      const index::RTreeNode& node = tree_.node(top.id);
      if (node.is_leaf()) {
        ++accesses_.leaf_accesses;
        for (uint32_t pos = node.start; pos < node.start + node.count;
             ++pos) {
          const size_t point_row = tree_.OrderedIndex(pos);
          queue_.push(Entry{
              geometry::SquaredL2(projected_.row(point_row), query_),
              static_cast<uint32_t>(point_row), kPoint});
        }
      } else {
        ++accesses_.dir_accesses;
        for (uint32_t child : node.children) {
          queue_.push(Entry{
              geometry::SquaredMinDist(query_, tree_.node(child).box), child,
              kNode});
        }
      }
    }
    return false;
  }

  const index::RTree::AccessCount& accesses() const { return accesses_; }

 private:
  enum Kind : uint8_t { kNode, kPoint };
  struct Entry {
    double key;
    uint32_t id;
    Kind kind;
    bool operator>(const Entry& other) const {
      // Points before nodes at equal keys: a point's key is final while a
      // node only promises its children are no closer.
      if (key != other.key) return key > other.key;
      return kind == kNode && other.kind == kPoint;
    }
  };

  const index::RTree& tree_;
  const data::Dataset& projected_;
  std::span<const float> query_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue_;
  index::RTree::AccessCount accesses_;
};

}  // namespace

MultiStepResult MultiStepKnn(const index::RTree& index_tree,
                             const data::Dataset& projected,
                             const data::Dataset& full,
                             std::span<const float> query_full, size_t k) {
  HDIDX_CHECK(k >= 1);
  HDIDX_CHECK(projected.size() == full.size());
  HDIDX_CHECK(projected.dim() <= full.dim());
  HDIDX_CHECK(query_full.size() == full.dim());

  const std::span<const float> query_reduced =
      query_full.subspan(0, projected.dim());
  IncrementalRanking ranking(index_tree, projected, query_reduced);

  MultiStepResult result;
  std::priority_queue<std::pair<double, size_t>> best;  // max-heap of k
  auto kth_sq = [&]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().first;
  };

  size_t row = 0;
  double reduced_sq = 0.0;
  while (ranking.Next(&row, &reduced_sq)) {
    // Optimal stopping rule: the reduced distance lower-bounds the full
    // distance, and the ranking is ascending — once it passes the exact
    // k-th distance, no later candidate can improve the result.
    if (reduced_sq > kth_sq()) break;
    ++result.refinements;  // fetch the full vector from the object server
    const double full_sq = geometry::SquaredL2(full.row(row), query_full);
    if (best.size() < k) {
      best.emplace(full_sq, row);
    } else if (full_sq < best.top().first) {
      best.pop();
      best.emplace(full_sq, row);
    }
  }

  result.neighbors.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    result.neighbors[i] = best.top().second;
    result.kth_distance =
        std::max(result.kth_distance, std::sqrt(best.top().first));
    best.pop();
  }
  result.index_accesses = ranking.accesses();
  const size_t random_accesses =
      result.index_accesses.total() + result.refinements;
  result.io.page_seeks = random_accesses;
  result.io.page_transfers = random_accesses;
  return result;
}

}  // namespace hdidx::apps
