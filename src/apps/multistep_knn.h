#ifndef HDIDX_APPS_MULTISTEP_KNN_H_
#define HDIDX_APPS_MULTISTEP_KNN_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "index/rtree.h"
#include "io/io_stats.h"

namespace hdidx::apps {

/// The optimal multi-step k-NN algorithm of Seidl and Kriegel [30], which
/// Section 6.2 builds on: an index over a (KLT-ordered) prefix of the
/// dimensions serves as the filter, an object server holding the full
/// vectors as the refiner.
///
/// The algorithm consumes an incremental ranking of the index (points in
/// ascending reduced-space distance, produced lazily from the tree via a
/// Hjaltason-Samet priority queue) and refines candidates until the next
/// reduced-space distance exceeds the current exact k-th distance. Because
/// the reduced-space distance lower-bounds the full-space distance (a
/// projection never increases L2), the result is exactly the full-space
/// k-NN, and the number of refinements is provably minimal.
struct MultiStepResult {
  /// Row ids of the k nearest points in the FULL space, ascending.
  std::vector<size_t> neighbors;
  double kth_distance = 0.0;
  /// Index pages read by the incremental ranking (leaves + directory).
  index::RTree::AccessCount index_accesses;
  /// Object-server fetches (one full vector each — the filter step's
  /// survivors).
  size_t refinements = 0;
  /// Simulated I/O: index pages + refinements, all random.
  io::IoStats io;
};

/// Runs the search. `index_tree` must be built over `projected` (the first
/// projected.dim() dimensions of `full`); `query_full` has full
/// dimensionality. k must be >= 1 and <= full.size().
MultiStepResult MultiStepKnn(const index::RTree& index_tree,
                             const data::Dataset& projected,
                             const data::Dataset& full,
                             std::span<const float> query_full, size_t k);

}  // namespace hdidx::apps

#endif  // HDIDX_APPS_MULTISTEP_KNN_H_
