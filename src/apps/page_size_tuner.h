#ifndef HDIDX_APPS_PAGE_SIZE_TUNER_H_
#define HDIDX_APPS_PAGE_SIZE_TUNER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"

namespace hdidx::apps {

/// Configuration of the page-size tuning study (Section 6.1 / Figure 13).
struct PageSizeTunerConfig {
  /// Candidate page sizes in bytes (the paper sweeps 8..256 KB).
  std::vector<size_t> page_sizes_bytes = {8192,  16384, 32768,
                                          65536, 131072, 262144};
  /// Memory size M in points for the predictor.
  size_t memory_points = 10000;
  size_t num_queries = 500;
  size_t k = 21;
  uint64_t seed = 1;
};

/// One sweep point: predicted and measured average leaf accesses and the
/// resulting per-query I/O cost (all accesses random: seek + one page
/// transfer at that page size).
struct PageSizePoint {
  size_t page_bytes = 0;
  double predicted_accesses = 0.0;
  double measured_accesses = 0.0;
  double predicted_cost_s = 0.0;
  double measured_cost_s = 0.0;
  /// h_upper the predictor used (0 when the tree was too flat for the
  /// phased predictor and the basic mini-index model was used instead).
  size_t h_upper = 0;
};

/// Runs the sweep: for every page size, predicts the query cost with the
/// resampled technique and measures it on a fully built index. The paper's
/// point is that both curves share the same minimum (64 KB for LANDSAT) but
/// the predicted curve costs minutes instead of hours.
std::vector<PageSizePoint> TunePageSize(const data::Dataset& data,
                                        const PageSizeTunerConfig& config);

/// Page size minimizing the chosen cost column.
size_t BestPageSize(const std::vector<PageSizePoint>& points, bool measured);

}  // namespace hdidx::apps

#endif  // HDIDX_APPS_PAGE_SIZE_TUNER_H_
