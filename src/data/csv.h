#ifndef HDIDX_DATA_CSV_H_
#define HDIDX_DATA_CSV_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace hdidx::data {

/// Options for CSV import.
struct CsvOptions {
  char delimiter = ',';
  /// Skip the first line (column headers).
  bool has_header = false;
  /// Ignore this many leading columns per row (id/label columns).
  size_t skip_columns = 0;
};

/// Reads a dataset from a delimiter-separated text file: one point per
/// line, one coordinate per field. The dimensionality is inferred from the
/// first data row; every subsequent row must match it. Returns std::nullopt
/// and fills `*error` (with a line number) on malformed input.
///
/// This is the practical ingestion path for users with their own feature
/// vectors: `hdidx_gen` covers synthetic data, CSV covers everything else.
std::optional<Dataset> ReadCsv(const std::string& path,
                               const CsvOptions& options, std::string* error);

/// Writes `data` as CSV (full float precision). Returns false and fills
/// `*error` on failure.
bool WriteCsv(const Dataset& data, const std::string& path,
              const CsvOptions& options, std::string* error);

}  // namespace hdidx::data

#endif  // HDIDX_DATA_CSV_H_
