#include "data/transforms.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace hdidx::data {

void JacobiEigenSymmetric(std::vector<double> a, size_t n,
                          std::vector<double>* eigenvalues,
                          std::vector<double>* eigenvectors) {
  HDIDX_CHECK(a.size() == n * n);
  // v starts as the identity and accumulates the rotations; its columns are
  // the eigenvectors of the original matrix.
  std::vector<double> v(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) s += a[p * n + q] * a[p * n + q];
    }
    return std::sqrt(s);
  };

  const int kMaxSweeps = 64;
  const double kTolerance = 1e-12;
  // Scale tolerance by the matrix magnitude so that covariances of very
  // different scales converge equally.
  double scale = 0.0;
  for (size_t i = 0; i < n; ++i) scale = std::max(scale, std::abs(a[i * n + i]));
  const double threshold = kTolerance * std::max(scale, 1.0);

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (off_diagonal_norm() <= threshold) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) <= threshold / static_cast<double>(n * n)) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = 0.5 * (aqq - app) / apq;
        // Rotation angle via the numerically stable tangent formula.
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort by decreasing eigenvalue; emit eigenvectors as rows.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return a[x * n + x] > a[y * n + y];
  });

  eigenvalues->resize(n);
  eigenvectors->assign(n * n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const size_t col = order[i];
    (*eigenvalues)[i] = a[col * n + col];
    for (size_t k = 0; k < n; ++k) {
      (*eigenvectors)[i * n + k] = v[k * n + col];
    }
  }
}

KltTransform KltTransform::Fit(const Dataset& data) {
  const size_t n = data.size();
  const size_t d = data.dim();
  HDIDX_CHECK(n >= 2);

  KltTransform t;
  t.mean_.assign(d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    for (size_t k = 0; k < d; ++k) t.mean_[k] += row[k];
  }
  for (double& m : t.mean_) m /= static_cast<double>(n);

  std::vector<double> cov(d * d, 0.0);
  std::vector<double> centered(d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    for (size_t k = 0; k < d; ++k) centered[k] = row[k] - t.mean_[k];
    for (size_t p = 0; p < d; ++p) {
      const double cp = centered[p];
      for (size_t q = p; q < d; ++q) cov[p * d + q] += cp * centered[q];
    }
  }
  const double inv_n = 1.0 / static_cast<double>(n);
  for (size_t p = 0; p < d; ++p) {
    for (size_t q = p; q < d; ++q) {
      cov[p * d + q] *= inv_n;
      cov[q * d + p] = cov[p * d + q];
    }
  }

  JacobiEigenSymmetric(std::move(cov), d, &t.eigenvalues_, &t.components_);
  return t;
}

Dataset KltTransform::Apply(const Dataset& data) const {
  const size_t d = dim();
  HDIDX_CHECK(data.dim() == d);
  Dataset out(data.size(), d);
  std::vector<double> centered(d);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t k = 0; k < d; ++k) centered[k] = row[k] - mean_[k];
    auto out_row = out.mutable_row(i);
    for (size_t c = 0; c < d; ++c) {
      double s = 0.0;
      const double* axis = components_.data() + c * d;
      for (size_t k = 0; k < d; ++k) s += axis[k] * centered[k];
      out_row[c] = static_cast<float>(s);
    }
  }
  return out;
}

Dataset DftTransform(const Dataset& data) {
  const size_t d = data.dim();
  const size_t n = data.size();
  Dataset out(n, d);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(d));
  // Precompute the cosine/sine tables for all (frequency, sample) pairs.
  std::vector<double> cos_table(d * d), sin_table(d * d);
  for (size_t f = 0; f < d; ++f) {
    for (size_t k = 0; k < d; ++k) {
      const double angle =
          -2.0 * M_PI * static_cast<double>(f) * static_cast<double>(k) /
          static_cast<double>(d);
      cos_table[f * d + k] = std::cos(angle);
      sin_table[f * d + k] = std::sin(angle);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.row(i);
    auto out_row = out.mutable_row(i);
    size_t slot = 0;
    // DC component first, then interleaved (Re, Im) of increasing
    // frequencies until d output slots are filled.
    for (size_t f = 0; slot < d; ++f) {
      double re = 0.0, im = 0.0;
      for (size_t k = 0; k < d; ++k) {
        re += row[k] * cos_table[f * d + k];
        im += row[k] * sin_table[f * d + k];
      }
      out_row[slot++] = static_cast<float>(re * inv_sqrt_d);
      if (f > 0 && slot < d) {
        out_row[slot++] = static_cast<float>(im * inv_sqrt_d);
      }
    }
  }
  return out;
}

}  // namespace hdidx::data
