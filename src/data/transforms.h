#ifndef HDIDX_DATA_TRANSFORMS_H_
#define HDIDX_DATA_TRANSFORMS_H_

#include <vector>

#include "data/dataset.h"

namespace hdidx::data {

/// A fitted Karhunen-Loeve transform (principal component analysis).
///
/// The paper's COLOR64/TEXTURE datasets are "transformed using KLT": rotated
/// into the eigenbasis of their covariance matrix so that variance decreases
/// with dimension index. The dimensionality-selection application (Section
/// 6.2) relies on this ordering when it indexes a prefix of the dimensions.
class KltTransform {
 public:
  /// Fits the transform to `data`: computes the mean and covariance and
  /// diagonalizes the covariance with the cyclic Jacobi eigenvalue method.
  /// Components are ordered by decreasing eigenvalue. O(N d^2 + d^3).
  static KltTransform Fit(const Dataset& data);

  /// Applies the transform: centers each point and projects it onto the
  /// eigenbasis. Output dimension i carries the i-th largest variance.
  Dataset Apply(const Dataset& data) const;

  /// Eigenvalues (variances along the principal axes), decreasing.
  const std::vector<double>& eigenvalues() const { return eigenvalues_; }

  /// Row-major d x d matrix whose i-th row is the i-th principal axis.
  const std::vector<double>& components() const { return components_; }

  size_t dim() const { return mean_.size(); }

 private:
  std::vector<double> mean_;
  std::vector<double> eigenvalues_;
  std::vector<double> components_;
};

/// Diagonalizes the symmetric `matrix` (row-major n x n) in place using
/// cyclic Jacobi rotations. On return `eigenvalues` holds the n eigenvalues
/// and `eigenvectors` the corresponding orthonormal eigenvectors as rows,
/// both sorted by decreasing eigenvalue. Exposed for testing.
void JacobiEigenSymmetric(std::vector<double> matrix, size_t n,
                          std::vector<double>* eigenvalues,
                          std::vector<double>* eigenvectors);

/// Discrete Fourier transform magnitudes of each row.
///
/// The paper's STOCK360 dataset stores one year of prices per stock
/// "transformed using DFT". For a length-d real input row this produces a
/// length-d feature row: [Re(F_0), Re(F_1), Im(F_1), Re(F_2), Im(F_2), ...]
/// scaled by 1/sqrt(d), i.e. an energy-preserving real repacking of the
/// first half of the spectrum (the second half is redundant for real
/// signals).
Dataset DftTransform(const Dataset& data);

}  // namespace hdidx::data

#endif  // HDIDX_DATA_TRANSFORMS_H_
