#ifndef HDIDX_DATA_DATASET_H_
#define HDIDX_DATA_DATASET_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "geometry/bounding_box.h"

namespace hdidx::data {

/// A dense row-major collection of d-dimensional float points — the in-memory
/// representation of every dataset in the library.
///
/// Rows are points, columns are dimensions. The class is a thin wrapper over
/// a contiguous float buffer so that index construction and distance scans
/// stay cache-friendly; it deliberately exposes the raw layout via data() and
/// row() spans.
class Dataset {
 public:
  /// Creates an empty dataset of the given dimensionality.
  explicit Dataset(size_t dim);

  /// Creates a dataset of `n` zero-initialized points.
  Dataset(size_t n, size_t dim);

  /// Takes ownership of a prefilled buffer; values.size() must be a multiple
  /// of dim.
  Dataset(std::vector<float> values, size_t dim);

  size_t size() const { return size_; }
  size_t dim() const { return dim_; }
  bool empty() const { return size_ == 0; }

  /// Read-only view of point `i`.
  std::span<const float> row(size_t i) const {
    return {values_.data() + i * dim_, dim_};
  }

  /// Mutable view of point `i`.
  std::span<float> mutable_row(size_t i) {
    return {values_.data() + i * dim_, dim_};
  }

  /// The full row-major buffer.
  std::span<const float> data() const { return values_; }
  std::span<float> mutable_data() { return values_; }

  /// Appends a point (size must equal dim()).
  void Append(std::span<const float> point);

  /// Reserves capacity for `n` points.
  void Reserve(size_t n);

  /// MBR of all points.
  geometry::BoundingBox Bounds() const;

  /// Returns a new dataset consisting of the rows at `indices` (in order).
  Dataset Select(const std::vector<size_t>& indices) const;

  /// Returns a new dataset keeping only the first `k` dimensions of every
  /// point. Used by the dimensionality-selection application, which indexes
  /// a KLT-ordered prefix of the dimensions.
  Dataset ProjectPrefix(size_t k) const;

  friend bool operator==(const Dataset& a, const Dataset& b) {
    return a.dim_ == b.dim_ && a.values_ == b.values_;
  }

 private:
  size_t dim_;
  size_t size_;
  /// Row storage starts on a cacheline boundary so the row-scan kernels'
  /// aligned-block loads stream whole lines (see common::AlignedVector).
  common::AlignedVector<float> values_;
};

}  // namespace hdidx::data

#endif  // HDIDX_DATA_DATASET_H_
