#ifndef HDIDX_DATA_DATASET_IO_H_
#define HDIDX_DATA_DATASET_IO_H_

#include <optional>
#include <string>

#include "data/dataset.h"

namespace hdidx::data {

/// Binary on-disk dataset format: a fixed little-endian header
/// (magic "HDIX", version, point count, dimensionality) followed by the
/// row-major float payload. This is the file layout the simulated disk scans
/// assume: N*dim*4 bytes of points packed into 8 KB pages.
///
/// Writes `data` to `path`. Returns false and fills `*error` on failure.
bool WriteDataset(const Dataset& data, const std::string& path,
                  std::string* error);

/// Reads a dataset previously written by WriteDataset. Returns std::nullopt
/// and fills `*error` on failure (missing file, bad magic, truncation).
std::optional<Dataset> ReadDataset(const std::string& path,
                                   std::string* error);

}  // namespace hdidx::data

#endif  // HDIDX_DATA_DATASET_IO_H_
