#include "data/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace hdidx::data {

namespace {

/// Splits `line` on the delimiter; empty fields stay empty.
std::vector<std::string> SplitLine(const std::string& line, char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) {
    fields.push_back(field);
  }
  if (!line.empty() && line.back() == delimiter) fields.emplace_back();
  return fields;
}

bool ParseFloat(const std::string& field, float* out) {
  const char* begin = field.c_str();
  char* end = nullptr;
  errno = 0;
  const float value = std::strtof(begin, &end);
  if (end == begin || errno == ERANGE) return false;
  // Trailing whitespace is fine; trailing garbage is not.
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  if (*end != '\0') return false;
  *out = value;
  return true;
}

}  // namespace

std::optional<Dataset> ReadCsv(const std::string& path,
                               const CsvOptions& options,
                               std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open for reading: " + path;
    return std::nullopt;
  }
  std::string line;
  size_t line_number = 0;
  size_t dim = 0;
  Dataset dataset(1);
  std::vector<float> point;
  bool first_data_row = true;

  while (std::getline(in, line)) {
    ++line_number;
    if (line_number == 1 && options.has_header) continue;
    // Skip blank lines.
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    const std::vector<std::string> fields =
        SplitLine(line, options.delimiter);
    if (fields.size() <= options.skip_columns) {
      *error = path + ":" + std::to_string(line_number) +
               ": fewer fields than skip_columns";
      return std::nullopt;
    }
    const size_t coords = fields.size() - options.skip_columns;
    if (first_data_row) {
      dim = coords;
      dataset = Dataset(dim);
      point.resize(dim);
      first_data_row = false;
    } else if (coords != dim) {
      *error = path + ":" + std::to_string(line_number) + ": expected " +
               std::to_string(dim) + " coordinates, got " +
               std::to_string(coords);
      return std::nullopt;
    }
    for (size_t k = 0; k < dim; ++k) {
      if (!ParseFloat(fields[options.skip_columns + k], &point[k])) {
        *error = path + ":" + std::to_string(line_number) +
                 ": cannot parse '" + fields[options.skip_columns + k] + "'";
        return std::nullopt;
      }
    }
    dataset.Append(point);
  }
  if (first_data_row) {
    *error = "no data rows in " + path;
    return std::nullopt;
  }
  return dataset;
}

bool WriteCsv(const Dataset& data, const std::string& path,
              const CsvOptions& options, std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    *error = "cannot open for writing: " + path;
    return false;
  }
  out.precision(9);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t k = 0; k < data.dim(); ++k) {
      if (k > 0) out << options.delimiter;
      out << row[k];
    }
    out << '\n';
  }
  if (!out) {
    *error = "short write: " + path;
    return false;
  }
  return true;
}

}  // namespace hdidx::data
