#include "data/dataset.h"

#include "common/check.h"

namespace hdidx::data {

Dataset::Dataset(size_t dim) : dim_(dim), size_(0) { HDIDX_CHECK(dim > 0); }

Dataset::Dataset(size_t n, size_t dim)
    : dim_(dim), size_(n), values_(n * dim, 0.0f) {
  HDIDX_CHECK(dim > 0);
}

Dataset::Dataset(std::vector<float> values, size_t dim)
    // Copies rather than adopts: the buffer moves into 64B-aligned storage
    // (the incoming vector's default-allocator buffer can't be).
    : dim_(dim), size_(values.size() / dim),
      values_(values.begin(), values.end()) {
  HDIDX_CHECK(dim > 0);
  HDIDX_CHECK(values_.size() % dim_ == 0);
}

void Dataset::Append(std::span<const float> point) {
  HDIDX_CHECK(point.size() == dim_);
  values_.insert(values_.end(), point.begin(), point.end());
  ++size_;
}

void Dataset::Reserve(size_t n) { values_.reserve(n * dim_); }

geometry::BoundingBox Dataset::Bounds() const {
  return geometry::BoundingBox::OfPoints(values_, size_, dim_);
}

Dataset Dataset::Select(const std::vector<size_t>& indices) const {
  Dataset out(dim_);
  out.Reserve(indices.size());
  for (size_t i : indices) {
    HDIDX_CHECK(i < size_);
    out.Append(row(i));
  }
  return out;
}

Dataset Dataset::ProjectPrefix(size_t k) const {
  HDIDX_CHECK(k > 0 && k <= dim_);
  Dataset out(k);
  out.Reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.Append(row(i).subspan(0, k));
  }
  return out;
}

}  // namespace hdidx::data
