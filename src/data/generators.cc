#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "data/transforms.h"

namespace hdidx::data {

Dataset GenerateUniform(size_t n, size_t dim, common::Rng* rng) {
  Dataset out(n, dim);
  auto buf = out.mutable_data();
  for (float& v : buf) v = static_cast<float>(rng->NextDouble());
  return out;
}

Dataset GenerateClustered(const ClusteredConfig& config, common::Rng* rng) {
  HDIDX_CHECK(config.num_clusters > 0);
  HDIDX_CHECK(config.dim > 0);
  const size_t d = config.dim;

  // Per-dimension scale decays exponentially so the intrinsic
  // dimensionality is approximately config.intrinsic_dim. It applies to the
  // cluster centers as well as the within-cluster spread: KLT-rotated
  // feature data concentrates both kinds of variance in the leading
  // components.
  std::vector<double> decay(d);
  for (size_t k = 0; k < d; ++k) {
    decay[k] = std::exp(-static_cast<double>(k) / config.intrinsic_dim);
  }

  // Cluster centers spread across the (decayed) space; populations
  // geometrically skewed so some regions are much denser than others.
  std::vector<std::vector<float>> centers(config.num_clusters);
  for (auto& c : centers) {
    c.resize(d);
    for (size_t k = 0; k < d; ++k) {
      c[k] = static_cast<float>(0.5 + (rng->NextDouble() - 0.5) * decay[k]);
    }
  }
  std::vector<double> cumulative(config.num_clusters);
  double total = 0.0;
  for (size_t i = 0; i < config.num_clusters; ++i) {
    total += std::pow(config.population_skew, static_cast<double>(i));
    cumulative[i] = total;
  }

  // Within-cluster standard deviations follow the same decay.
  std::vector<double> sigma(d);
  for (size_t k = 0; k < d; ++k) {
    sigma[k] = config.cluster_spread * decay[k];
  }

  Dataset out(config.num_points, d);
  for (size_t i = 0; i < config.num_points; ++i) {
    auto row = out.mutable_row(i);
    if (rng->NextBernoulli(config.noise_fraction)) {
      for (size_t k = 0; k < d; ++k) {
        row[k] = static_cast<float>(rng->NextDouble());
      }
      continue;
    }
    const double pick = rng->NextDouble() * total;
    const size_t cluster = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), pick) -
        cumulative.begin());
    const auto& center = centers[std::min(cluster, config.num_clusters - 1)];
    for (size_t k = 0; k < d; ++k) {
      row[k] =
          static_cast<float>(center[k] + sigma[k] * rng->NextGaussian());
    }
  }
  return out;
}

Dataset GenerateLine(size_t n, size_t dim, double jitter, common::Rng* rng) {
  HDIDX_CHECK(dim > 0);
  // A fixed random direction through the cube center.
  std::vector<double> direction(dim);
  double norm = 0.0;
  for (double& v : direction) {
    v = rng->NextGaussian();
    norm += v * v;
  }
  norm = std::sqrt(norm);
  for (double& v : direction) v /= norm;

  Dataset out(n, dim);
  for (size_t i = 0; i < n; ++i) {
    const double t = rng->NextDouble() - 0.5;
    auto row = out.mutable_row(i);
    for (size_t k = 0; k < dim; ++k) {
      row[k] = static_cast<float>(0.5 + t * direction[k] +
                                  jitter * rng->NextGaussian());
    }
  }
  return out;
}

namespace {

// Shared recipe for the KLT-transformed feature-vector surrogates. KLT is
// applied for moderate dimensionalities; beyond kMaxKltDim the generator's
// variance-decayed axes already provide the KLT ordering and the O(d^3)
// diagonalization would dominate the runtime for no modeling benefit.
Dataset FeatureSurrogate(size_t n, size_t dim, size_t clusters,
                         double intrinsic_dim, uint64_t seed) {
  constexpr size_t kMaxKltDim = 128;
  common::Rng rng(seed);
  ClusteredConfig config;
  config.num_points = n;
  config.dim = dim;
  config.num_clusters = clusters;
  config.intrinsic_dim = intrinsic_dim;
  Dataset raw = GenerateClustered(config, &rng);
  if (dim <= kMaxKltDim) {
    return KltTransform::Fit(raw).Apply(raw);
  }
  return raw;
}

}  // namespace

Dataset Color64Surrogate(size_t num_points, uint64_t seed) {
  const size_t n = num_points != 0 ? num_points : 112361;
  return FeatureSurrogate(n, 64, 48, 7.0, seed);
}

Dataset Texture48Surrogate(size_t num_points, uint64_t seed) {
  const size_t n = num_points != 0 ? num_points : 26697;
  return FeatureSurrogate(n, 48, 32, 6.0, seed);
}

Dataset Texture60Surrogate(size_t num_points, uint64_t seed) {
  const size_t n = num_points != 0 ? num_points : 275465;
  return FeatureSurrogate(n, 60, 64, 6.0, seed);
}

Dataset Isolet617Surrogate(size_t num_points, uint64_t seed) {
  const size_t n = num_points != 0 ? num_points : 7800;
  // 52 letters spoken by 150 speakers: one cluster per letter.
  return FeatureSurrogate(n, 617, 52, 10.0, seed);
}

Dataset Stock360Surrogate(size_t num_points, uint64_t seed) {
  const size_t n = num_points != 0 ? num_points : 6500;
  const size_t d = 360;
  common::Rng rng(seed);
  // One year of prices per stock: geometric-style random walks with a few
  // distinct market regimes (drift/volatility pairs) to induce clustering.
  struct Regime {
    double drift;
    double volatility;
  };
  const Regime regimes[] = {
      {0.0005, 0.01}, {-0.0003, 0.02}, {0.001, 0.005}, {0.0, 0.03}};
  Dataset prices(n, d);
  for (size_t i = 0; i < n; ++i) {
    const Regime& regime =
        regimes[rng.NextBounded(sizeof(regimes) / sizeof(regimes[0]))];
    double level = 1.0 + rng.NextDouble();
    auto row = prices.mutable_row(i);
    for (size_t t = 0; t < d; ++t) {
      level *= 1.0 + regime.drift + regime.volatility * rng.NextGaussian();
      row[t] = static_cast<float>(level);
    }
  }
  return DftTransform(prices);
}

}  // namespace hdidx::data
