#include "data/dataset_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace hdidx::data {

namespace {

constexpr char kMagic[4] = {'H', 'D', 'I', 'X'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[4];
  uint32_t version;
  uint64_t num_points;
  uint64_t dim;
};

}  // namespace

bool WriteDataset(const Dataset& data, const std::string& path,
                  std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot open for writing: " + path;
    return false;
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_points = data.size();
  header.dim = data.dim();
  out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  const auto buf = data.data();
  out.write(reinterpret_cast<const char*>(buf.data()),
            static_cast<std::streamsize>(buf.size() * sizeof(float)));
  if (!out) {
    *error = "short write: " + path;
    return false;
  }
  return true;
}

std::optional<Dataset> ReadDataset(const std::string& path,
                                   std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open for reading: " + path;
    return std::nullopt;
  }
  Header header;
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    *error = "bad magic or truncated header: " + path;
    return std::nullopt;
  }
  if (header.version != kVersion) {
    *error = "unsupported version in " + path;
    return std::nullopt;
  }
  if (header.dim == 0) {
    *error = "zero dimensionality in " + path;
    return std::nullopt;
  }
  std::vector<float> values(header.num_points * header.dim);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(values.size() * sizeof(float)));
  if (!in) {
    *error = "truncated payload: " + path;
    return std::nullopt;
  }
  return Dataset(std::move(values), static_cast<size_t>(header.dim));
}

}  // namespace hdidx::data
