#ifndef HDIDX_DATA_GENERATORS_H_
#define HDIDX_DATA_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "data/dataset.h"

namespace hdidx::data {

/// Configuration for the clustered (Gaussian mixture) generator that stands
/// in for the paper's real feature-vector datasets.
///
/// Real image/texture/speech feature vectors are strongly clustered and have
/// a low *intrinsic* dimensionality embedded in a high-dimensional space —
/// precisely the properties the sampling predictor exploits and the
/// uniform/fractal baselines mishandle. The generator reproduces them:
/// cluster populations follow a skewed (geometric) distribution, per-cluster
/// variances decay exponentially with the dimension index (KLT-style
/// ordering), and a small uniform background adds outliers.
struct ClusteredConfig {
  size_t num_points = 10000;
  size_t dim = 16;
  size_t num_clusters = 20;
  /// Approximate intrinsic dimensionality: the per-dimension standard
  /// deviation decays as exp(-k / intrinsic_dim).
  double intrinsic_dim = 6.0;
  /// Standard deviation of a cluster along its most significant dimension,
  /// relative to the unit data space.
  double cluster_spread = 0.05;
  /// Fraction of points drawn uniformly from the whole space instead of a
  /// cluster.
  double noise_fraction = 0.02;
  /// Skew of cluster populations: cluster i receives a share proportional to
  /// skew^i (1.0 = equal-sized clusters).
  double population_skew = 0.85;
};

/// Generates `n` points uniformly distributed in [0,1]^dim — the data model
/// assumed by the baseline cost models and used by the paper's Section 5.2
/// validation experiment.
Dataset GenerateUniform(size_t n, size_t dim, common::Rng* rng);

/// Generates a clustered Gaussian-mixture dataset per `config`.
Dataset GenerateClustered(const ClusteredConfig& config, common::Rng* rng);

/// Generates `n` points on a 1-dimensional line segment embedded in
/// [0,1]^dim with additive jitter. Its fractal dimensionality is ~1
/// regardless of dim; used to validate the fractal estimators.
Dataset GenerateLine(size_t n, size_t dim, double jitter, common::Rng* rng);

/// Surrogates for the paper's five experimental datasets (Table 1).
///
/// The originals (color histograms, texture features, spoken-letter
/// features, stock price series) are not redistributable; these generators
/// produce synthetic datasets with the same cardinality and dimensionality
/// and the same qualitative structure (clustered, skewed, low intrinsic
/// dimension, KLT/DFT-transformed). Pass num_points = 0 for the paper's
/// cardinality or a smaller value for quick runs.
///
/// COLOR64: 112,361 64-d color histograms (KLT).
Dataset Color64Surrogate(size_t num_points, uint64_t seed);
/// TEXTURE48: 26,697 48-d Corel texture features (KLT).
Dataset Texture48Surrogate(size_t num_points, uint64_t seed);
/// TEXTURE60 (a.k.a. LANDSAT): 275,465 60-d Landsat texture features (KLT).
Dataset Texture60Surrogate(size_t num_points, uint64_t seed);
/// ISOLET617: 7,800 617-d spoken-letter features.
Dataset Isolet617Surrogate(size_t num_points, uint64_t seed);
/// STOCK360: 6,500 360-d one-year price series, DFT-transformed.
Dataset Stock360Surrogate(size_t num_points, uint64_t seed);

}  // namespace hdidx::data

#endif  // HDIDX_DATA_GENERATORS_H_
