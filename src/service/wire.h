#ifndef HDIDX_SERVICE_WIRE_H_
#define HDIDX_SERVICE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/prediction_service.h"
#include "service/protocol.h"

namespace hdidx::service::wire {

/// The service's binary transport: length-prefixed frames over a byte
/// stream (TCP), designed for pipelining — a client may write any number
/// of request frames before reading responses, and responses to predict
/// requests may arrive out of order (match them by `id`).
///
/// Frame layout (all integers little-endian; this header + wire.cc are the
/// only place in the tree that touches byte order — hdidx_lint's
/// `byteswap` rule enforces that):
///
///   offset  size  field
///        0     2  magic     0x4448 ("HD" on the wire)
///        2     1  version   kVersion (currently 1)
///        3     1  op        WireOp
///        4     2  flags     kFlag* bits
///        6     2  reserved  must be zero
///        8     4  length    payload bytes following the header
///       12     8  id        caller-chosen request id, echoed in responses
///       20     -  payload   op-specific (see wire.cc encoders)
///
/// Doubles travel as their raw IEEE-754 bits (8 bytes, little-endian), so
/// a decoded response reproduces the JSON transport's %.17g text exactly:
/// the determinism contract is byte-identity of the serialized `result`
/// payload across transports. Per-query access vectors are appended as one
/// contiguous f64 array — memcpy in and out on little-endian hosts.
///
/// Error handling is two-level: a frame whose *header* is malformed (bad
/// magic/version/reserved, oversized length) poisons the stream — the
/// server answers with one kError frame (id 0) and closes the connection.
/// A well-framed payload that fails to decode only poisons that request —
/// the server answers with a kError frame echoing the id and keeps serving
/// the connection.

inline constexpr uint16_t kMagic = 0x4448;
inline constexpr uint8_t kVersion = 1;
inline constexpr size_t kHeaderBytes = 20;
/// Upper bound a server accepts for `length` (guards allocation on
/// garbage headers). 16 MiB fits ~2M per-query doubles.
inline constexpr size_t kDefaultMaxPayload = 16u << 20;

enum class WireOp : uint8_t {
  kPredict = 0,
  kLoad = 1,
  kStats = 2,
  kShutdown = 3,
  /// Response-only: protocol or per-request decode error.
  kError = 4,
};

/// Frame flag bits.
inline constexpr uint16_t kFlagResponse = 1u << 0;
inline constexpr uint16_t kFlagOk = 1u << 1;
/// Predict: the per-query f64 array is present (request: asks for it).
inline constexpr uint16_t kFlagPerQuery = 1u << 2;
inline constexpr uint16_t kFlagCacheHit = 1u << 3;
inline constexpr uint16_t kFlagWorkloadCacheHit = 1u << 4;
/// Response was load-shed by admission control; payload carries a
/// retry-after hint instead of a result.
inline constexpr uint16_t kFlagShed = 1u << 5;

struct FrameHeader {
  uint8_t version = kVersion;
  WireOp op = WireOp::kPredict;
  uint16_t flags = 0;
  uint32_t length = 0;
  uint64_t id = 0;
};

// --- byte-order primitives (the tree's only byte-swapping code) ---------

void AppendU16(std::string* out, uint16_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
/// Raw IEEE-754 bits, little-endian.
void AppendF64(std::string* out, double v);
/// u16 length prefix + bytes. Length must fit 16 bits (HDIDX_CHECK).
void AppendString(std::string* out, std::string_view s);
/// Contiguous f64 array (no count prefix — the caller encodes the count).
/// Single memcpy on little-endian hosts.
void AppendF64Array(std::string* out, const double* values, size_t count);

/// Big-endian 16-bit conversion for sockaddr port fields, so the sockets
/// layer never byte-swaps by hand.
uint16_t HostToNet16(uint16_t v);

/// Sequential reader over a payload. All Read* return false (and stay
/// false) once the payload is exhausted or a length prefix overruns it.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  bool ReadU8(uint8_t* v);
  bool ReadU16(uint16_t* v);
  bool ReadU32(uint32_t* v);
  bool ReadU64(uint64_t* v);
  bool ReadF64(double* v);
  bool ReadString(std::string* v);
  bool ReadF64Array(size_t count, std::vector<double>* v);

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Take(size_t n, const char** p);

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- framing ------------------------------------------------------------

/// Serializes header + payload into one wire frame.
std::string EncodeFrame(WireOp op, uint16_t flags, uint64_t id,
                        std::string_view payload);

enum class FrameStatus : uint8_t {
  /// The buffer holds no complete frame yet; read more bytes.
  kNeedMore = 0,
  /// One frame extracted; `*consumed` bytes may be discarded.
  kFrame = 1,
  /// The stream is not speaking this protocol (bad magic/version/reserved
  /// or oversized length) — unrecoverable, close the connection.
  kError = 2,
};

/// Extracts the next frame from an accumulation buffer. On kFrame,
/// `*header` and `*payload` (a view into `buffer`) are valid and
/// `*consumed` is the frame's total size. On kError, `*error` says why.
FrameStatus NextFrame(std::string_view buffer, size_t max_payload,
                      size_t* consumed, FrameHeader* header,
                      std::string_view* payload, std::string* error);

// --- request frames -----------------------------------------------------

std::string EncodePredictRequest(const ServiceRequest& request);
std::string EncodeLoadRequest(uint64_t id, std::string_view dataset,
                              std::string_view path);
std::string EncodeStatsRequest(uint64_t id);
std::string EncodeShutdownRequest(uint64_t id);

/// Decodes any request frame into the parsed-request struct shared with
/// the JSON transport (predict id/per_query come from the header). Fails
/// on response flags, kError op, or payload mismatch.
bool DecodeRequest(const FrameHeader& header, std::string_view payload,
                   RequestLine* out, std::string* error);

/// Reads just the leading dataset string of a predict request payload (the
/// routing key — enough for a reactor to pick the target shard without
/// decoding the rest). Returns false when the payload is too short to hold
/// it; full validation stays with DecodeRequest on the worker.
bool PeekPredictDataset(std::string_view payload, std::string* dataset);

// --- response frames ----------------------------------------------------

std::string EncodePredictResponse(const ServiceResponse& response,
                                  bool per_query);
std::string EncodeShedResponse(uint64_t id, uint32_t shard,
                               uint32_t retry_after_ms);
std::string EncodeErrorFrame(uint64_t id, std::string_view message);
std::string EncodeShutdownResponse(uint64_t id, uint64_t served);
std::string EncodeStatsResponse(uint64_t id, const ServiceMetrics& metrics);

/// Load outcome, both directions.
struct LoadResult {
  bool ok = false;
  std::string dataset;
  uint64_t points = 0;
  uint32_t dims = 0;
  uint32_t shard = 0;
  std::string error;
};
std::string EncodeLoadResponse(uint64_t id, const LoadResult& result);

/// A decoded predict response. When `shed`, only id/shard/retry_after_ms
/// are meaningful; otherwise `response` carries everything the JSON
/// transport would have (per-query accesses zero-filled to their count
/// when the array was not requested, so SerializeResult round-trips).
struct PredictReply {
  ServiceResponse response;
  bool per_query = false;
  bool shed = false;
  uint32_t retry_after_ms = 0;
};

bool DecodePredictResponse(const FrameHeader& header, std::string_view payload,
                           PredictReply* out, std::string* error);
bool DecodeLoadResponse(const FrameHeader& header, std::string_view payload,
                        LoadResult* out, std::string* error);
bool DecodeStatsResponse(const FrameHeader& header, std::string_view payload,
                         ServiceMetrics* out, std::string* error);
bool DecodeShutdownResponse(const FrameHeader& header,
                            std::string_view payload, uint64_t* served,
                            std::string* error);
bool DecodeErrorFrame(const FrameHeader& header, std::string_view payload,
                      std::string* message, std::string* error);

}  // namespace hdidx::service::wire

#endif  // HDIDX_SERVICE_WIRE_H_
