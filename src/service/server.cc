#include "service/server.h"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "service/protocol.h"

namespace hdidx::service {

namespace {

/// True if the line is whitespace only (a batch flush marker).
bool IsBlank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

size_t RunServer(std::istream& in, std::ostream& out,
                 PredictionService* service) {
  std::vector<ServiceRequest> pending;
  std::vector<bool> pending_per_query;
  size_t served = 0;
  uint64_t next_id = 1;

  const auto flush = [&] {
    if (pending.empty()) return;
    const std::vector<ServiceResponse> responses =
        service->ProcessBatch(pending);
    for (size_t i = 0; i < responses.size(); ++i) {
      out << SerializePredictResponse(responses[i], pending_per_query[i])
          << "\n";
      out.flush();
    }
    served += pending.size();
    pending.clear();
    pending_per_query.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    if (IsBlank(line)) {
      flush();
      continue;
    }
    RequestLine request;
    std::string error;
    if (!ParseRequestLine(line, &request, &error)) {
      flush();
      out << "{\"op\":\"error\",\"ok\":false,\"error\":" << JsonQuote(error)
          << "}\n";
      out.flush();
      continue;
    }
    switch (request.op) {
      case RequestLine::Op::kPredict:
        if (!request.has_id) request.predict.id = next_id;
        ++next_id;
        pending.push_back(request.predict);
        pending_per_query.push_back(request.predict.per_query);
        break;
      case RequestLine::Op::kLoad: {
        flush();
        std::string load_error;
        const bool ok = service->registry().LoadFile(
            request.load_dataset, request.load_path, &load_error);
        out << "{\"op\":\"load\",\"ok\":" << (ok ? "true" : "false")
            << ",\"dataset\":" << JsonQuote(request.load_dataset);
        if (ok) {
          const data::Dataset* dataset =
              service->registry().Find(request.load_dataset);
          out << ",\"points\":" << dataset->size()
              << ",\"dims\":" << dataset->dim() << ",\"shard\":"
              << service->registry().ShardOf(request.load_dataset);
        } else {
          out << ",\"error\":" << JsonQuote(load_error);
        }
        out << "}\n";
        out.flush();
        break;
      }
      case RequestLine::Op::kStats:
        flush();
        out << SerializeMetrics(service->Metrics()) << "\n";
        out.flush();
        break;
      case RequestLine::Op::kShutdown:
        flush();
        out << "{\"op\":\"shutdown\",\"ok\":true,\"served\":" << served
            << "}\n";
        out.flush();
        return served;
    }
  }
  flush();
  return served;
}

}  // namespace hdidx::service
