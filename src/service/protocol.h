#ifndef HDIDX_SERVICE_PROTOCOL_H_
#define HDIDX_SERVICE_PROTOCOL_H_

#include <map>
#include <string>

#include "service/prediction_service.h"

namespace hdidx::service {

/// The service's wire format: one JSON object per line, over stdin/stdout.
///
/// Requests are *flat* objects (string/number/bool values only; nesting is
/// rejected with a parse error) — responses may contain nested objects and
/// arrays, so a picky client can still parse them with a full JSON parser
/// while the server side stays dependency-free.
///
/// Request ops:
///   {"op":"load","dataset":"d1","path":"/data/d1.hdx"}
///   {"op":"predict","dataset":"d1","method":"resampled","memory":10000,
///    "num_queries":100,"k":10,"seed":1,"page_bytes":8192,"id":7,
///    "per_query":false}
///   {"op":"stats"}
///   {"op":"shutdown"}
///
/// Every numeric request field is optional and defaults to the
/// ServiceRequest defaults; "dataset" is required for load/predict, "path"
/// for load. Consecutive predict lines form one batch, flushed by a blank
/// line, a non-predict op, or end of input.
///
/// The predict response nests the deterministic payload under "result":
///   {"op":"predict","id":7,"ok":true,"cache":"hit","shard":0,
///    "served_seeks":0,"served_transfers":0,"result":{...}}
/// Everything outside "result" is serving metadata; the "result" object is
/// bit-identical for a given request regardless of shard count, arrival
/// order, or cache state (doubles are printed with %.17g, which
/// round-trips IEEE doubles exactly).

/// A scalar JSON value as the flat parser produces it.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;     // kString
  double num = 0.0;    // kNumber
  bool boolean = false;  // kBool
};

/// Parses one flat JSON object (no nested objects/arrays). Returns false
/// and fills `*error` on malformed input.
bool ParseFlatJsonObject(const std::string& line,
                         std::map<std::string, JsonValue>* out,
                         std::string* error);

/// A parsed request line.
struct RequestLine {
  enum class Op { kLoad, kPredict, kStats, kShutdown };
  Op op = Op::kPredict;
  /// Valid when op == kPredict.
  ServiceRequest predict;
  /// Whether the predict line carried an explicit "id".
  bool has_id = false;
  /// Valid when op == kLoad.
  std::string load_dataset;
  std::string load_path;
};

/// Parses a request line. Returns false and fills `*error` on malformed
/// JSON, unknown op, missing required fields, or non-integral numerics.
bool ParseRequestLine(const std::string& line, RequestLine* out,
                      std::string* error);

/// Serializes only the deterministic payload (the "result" object, or an
/// error object when !ok) — the byte string the determinism tests compare.
std::string SerializeResult(const ServiceResponse& response, bool per_query);

/// Serializes a full predict response line (metadata + result), newline
/// not included.
std::string SerializePredictResponse(const ServiceResponse& response,
                                     bool per_query);

/// Serializes a metrics snapshot as a stats response line.
std::string SerializeMetrics(const ServiceMetrics& metrics);

/// Escapes a string for embedding in JSON output (adds the quotes).
std::string JsonQuote(const std::string& s);

}  // namespace hdidx::service

#endif  // HDIDX_SERVICE_PROTOCOL_H_
