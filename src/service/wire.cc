#include "service/wire.h"

#include <bit>
#include <cstring>

#include "common/check.h"

namespace hdidx::service::wire {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Payload-level sanity cap on per-query counts: a count that could not
/// have fit in a maximum-size frame is garbage, refuse to allocate for it.
constexpr uint64_t kMaxPerQueryCount = kDefaultMaxPayload / sizeof(double);

}  // namespace

// --- byte-order primitives ----------------------------------------------
//
// Everything below spells byte order out as shifts against a little-endian
// wire layout; no htonl/bswap anywhere, so the same code is correct (and
// identically tested) on either host endianness. On little-endian hosts
// the f64 array paths collapse to memcpy.

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((v >> shift) & 0xff));
  }
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

void AppendString(std::string* out, std::string_view s) {
  HDIDX_CHECK(s.size() <= 0xffff)
      << "wire string too long: " << s.size() << " bytes";
  AppendU16(out, static_cast<uint16_t>(s.size()));
  out->append(s.data(), s.size());
}

void AppendF64Array(std::string* out, const double* values, size_t count) {
  if constexpr (std::endian::native == std::endian::little) {
    // IEEE-754 bits are already in wire order: one bulk copy.
    out->append(reinterpret_cast<const char*>(values),
                count * sizeof(double));
  } else {
    for (size_t i = 0; i < count; ++i) AppendF64(out, values[i]);
  }
}

uint16_t HostToNet16(uint16_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    return v;
  } else {
    return static_cast<uint16_t>((v >> 8) | (v << 8));
  }
}

bool WireReader::Take(size_t n, const char** p) {
  if (!ok_ || n > bytes_.size() - pos_) {
    ok_ = false;
    return false;
  }
  *p = bytes_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::ReadU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(p[0]);
  return true;
}

bool WireReader::ReadU16(uint16_t* v) {
  const char* p = nullptr;
  if (!Take(2, &p)) return false;
  *v = static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                             (static_cast<uint16_t>(
                                  static_cast<uint8_t>(p[1]))
                              << 8));
  return true;
}

bool WireReader::ReadU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::ReadF64(double* v) {
  uint64_t bits = 0;
  if (!ReadU64(&bits)) return false;
  *v = std::bit_cast<double>(bits);
  return true;
}

bool WireReader::ReadString(std::string* v) {
  uint16_t len = 0;
  if (!ReadU16(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  v->assign(p, len);
  return true;
}

bool WireReader::ReadF64Array(size_t count, std::vector<double>* v) {
  // Bounds-check before any multiply so a garbage count cannot overflow.
  if (!ok_ || count > (bytes_.size() - pos_) / sizeof(double)) {
    ok_ = false;
    return false;
  }
  v->resize(count);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(v->data(), bytes_.data() + pos_, count * sizeof(double));
    pos_ += count * sizeof(double);
    return true;
  } else {
    for (size_t i = 0; i < count; ++i) {
      if (!ReadF64(&(*v)[i])) return false;
    }
    return true;
  }
}

// --- framing ------------------------------------------------------------

std::string EncodeFrame(WireOp op, uint16_t flags, uint64_t id,
                        std::string_view payload) {
  HDIDX_CHECK(payload.size() <= kDefaultMaxPayload)
      << "frame payload too large: " << payload.size();
  std::string out;
  out.reserve(kHeaderBytes + payload.size());
  AppendU16(&out, kMagic);
  out.push_back(static_cast<char>(kVersion));
  out.push_back(static_cast<char>(op));
  AppendU16(&out, flags);
  AppendU16(&out, 0);  // reserved
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU64(&out, id);
  out.append(payload.data(), payload.size());
  return out;
}

FrameStatus NextFrame(std::string_view buffer, size_t max_payload,
                      size_t* consumed, FrameHeader* header,
                      std::string_view* payload, std::string* error) {
  if (buffer.size() < kHeaderBytes) return FrameStatus::kNeedMore;
  WireReader reader(buffer.substr(0, kHeaderBytes));
  uint16_t magic = 0;
  uint8_t version = 0;
  uint8_t op = 0;
  uint16_t flags = 0;
  uint16_t reserved = 0;
  uint32_t length = 0;
  uint64_t id = 0;
  reader.ReadU16(&magic);
  reader.ReadU8(&version);
  reader.ReadU8(&op);
  reader.ReadU16(&flags);
  reader.ReadU16(&reserved);
  reader.ReadU32(&length);
  reader.ReadU64(&id);
  HDIDX_DCHECK(reader.AtEnd());
  if (magic != kMagic) {
    Fail(error, "bad magic: not the hdidx wire protocol");
    return FrameStatus::kError;
  }
  if (version != kVersion) {
    Fail(error,
         "unsupported wire version " + std::to_string(version) +
             " (this server speaks " + std::to_string(kVersion) + ")");
    return FrameStatus::kError;
  }
  if (reserved != 0) {
    Fail(error, "nonzero reserved header bytes");
    return FrameStatus::kError;
  }
  if (op > static_cast<uint8_t>(WireOp::kError)) {
    Fail(error, "unknown op " + std::to_string(op));
    return FrameStatus::kError;
  }
  if (length > max_payload) {
    Fail(error, "oversized frame: " + std::to_string(length) +
                    " payload bytes (cap " + std::to_string(max_payload) +
                    ")");
    return FrameStatus::kError;
  }
  if (buffer.size() < kHeaderBytes + length) return FrameStatus::kNeedMore;
  header->version = version;
  header->op = static_cast<WireOp>(op);
  header->flags = flags;
  header->length = length;
  header->id = id;
  *payload = buffer.substr(kHeaderBytes, length);
  *consumed = kHeaderBytes + length;
  return FrameStatus::kFrame;
}

// --- request frames -----------------------------------------------------

std::string EncodePredictRequest(const ServiceRequest& request) {
  std::string payload;
  AppendString(&payload, request.dataset);
  AppendString(&payload, request.method);
  AppendU64(&payload, request.memory);
  AppendU64(&payload, request.num_queries);
  AppendU64(&payload, request.k);
  AppendU64(&payload, request.seed);
  AppendU64(&payload, request.page_bytes);
  const uint16_t flags = request.per_query ? kFlagPerQuery : 0;
  return EncodeFrame(WireOp::kPredict, flags, request.id, payload);
}

std::string EncodeLoadRequest(uint64_t id, std::string_view dataset,
                              std::string_view path) {
  std::string payload;
  AppendString(&payload, dataset);
  AppendString(&payload, path);
  return EncodeFrame(WireOp::kLoad, 0, id, payload);
}

std::string EncodeStatsRequest(uint64_t id) {
  return EncodeFrame(WireOp::kStats, 0, id, {});
}

std::string EncodeShutdownRequest(uint64_t id) {
  return EncodeFrame(WireOp::kShutdown, 0, id, {});
}

bool PeekPredictDataset(std::string_view payload, std::string* dataset) {
  WireReader reader(payload);
  return reader.ReadString(dataset);
}

bool DecodeRequest(const FrameHeader& header, std::string_view payload,
                   RequestLine* out, std::string* error) {
  if ((header.flags & kFlagResponse) != 0) {
    return Fail(error, "response flag set on a request frame");
  }
  *out = RequestLine{};
  WireReader reader(payload);
  switch (header.op) {
    case WireOp::kPredict: {
      out->op = RequestLine::Op::kPredict;
      ServiceRequest& r = out->predict;
      uint64_t memory = 0;
      uint64_t num_queries = 0;
      uint64_t k = 0;
      uint64_t page_bytes = 0;
      if (!reader.ReadString(&r.dataset) || !reader.ReadString(&r.method) ||
          !reader.ReadU64(&memory) || !reader.ReadU64(&num_queries) ||
          !reader.ReadU64(&k) || !reader.ReadU64(&r.seed) ||
          !reader.ReadU64(&page_bytes) || !reader.AtEnd()) {
        return Fail(error, "malformed predict payload");
      }
      r.memory = static_cast<size_t>(memory);
      r.num_queries = static_cast<size_t>(num_queries);
      r.k = static_cast<size_t>(k);
      r.page_bytes = static_cast<size_t>(page_bytes);
      r.id = header.id;
      r.per_query = (header.flags & kFlagPerQuery) != 0;
      out->has_id = true;
      if (r.dataset.empty()) return Fail(error, "predict needs 'dataset'");
      return true;
    }
    case WireOp::kLoad:
      out->op = RequestLine::Op::kLoad;
      if (!reader.ReadString(&out->load_dataset) ||
          !reader.ReadString(&out->load_path) || !reader.AtEnd()) {
        return Fail(error, "malformed load payload");
      }
      if (out->load_dataset.empty()) {
        return Fail(error, "load needs 'dataset'");
      }
      if (out->load_path.empty()) return Fail(error, "load needs 'path'");
      return true;
    case WireOp::kStats:
      out->op = RequestLine::Op::kStats;
      if (!payload.empty()) return Fail(error, "stats takes no payload");
      return true;
    case WireOp::kShutdown:
      out->op = RequestLine::Op::kShutdown;
      if (!payload.empty()) return Fail(error, "shutdown takes no payload");
      return true;
    case WireOp::kError:
      return Fail(error, "op kError is response-only");
  }
  return Fail(error, "unknown op");
}

// --- response frames ----------------------------------------------------

std::string EncodePredictResponse(const ServiceResponse& response,
                                  bool per_query) {
  uint16_t flags = kFlagResponse;
  if (response.ok) flags |= kFlagOk;
  if (per_query) flags |= kFlagPerQuery;
  if (response.cache_hit) flags |= kFlagCacheHit;
  if (response.workload_cache_hit) flags |= kFlagWorkloadCacheHit;
  std::string payload;
  AppendU32(&payload, static_cast<uint32_t>(response.shard));
  AppendF64(&payload, response.latency_ms);
  if (response.ok) {
    const core::PredictionResult& r = response.result;
    AppendU64(&payload, response.served_io.page_seeks);
    AppendU64(&payload, response.served_io.page_transfers);
    AppendF64(&payload, r.avg_leaf_accesses);
    AppendU64(&payload, r.per_query_accesses.size());
    AppendU64(&payload, r.num_predicted_leaves);
    AppendU64(&payload, r.h_upper);
    AppendF64(&payload, r.sigma_upper);
    AppendF64(&payload, r.sigma_lower);
    AppendU64(&payload, r.io.page_seeks);
    AppendU64(&payload, r.io.page_transfers);
    if (per_query) {
      AppendF64Array(&payload, r.per_query_accesses.data(),
                     r.per_query_accesses.size());
    }
  } else {
    AppendString(&payload, response.error);
  }
  return EncodeFrame(WireOp::kPredict, flags, response.id, payload);
}

std::string EncodeShedResponse(uint64_t id, uint32_t shard,
                               uint32_t retry_after_ms) {
  std::string payload;
  AppendU32(&payload, shard);
  AppendU32(&payload, retry_after_ms);
  return EncodeFrame(WireOp::kPredict, kFlagResponse | kFlagShed, id,
                     payload);
}

std::string EncodeErrorFrame(uint64_t id, std::string_view message) {
  std::string payload;
  AppendString(&payload, message);
  return EncodeFrame(WireOp::kError, kFlagResponse, id, payload);
}

std::string EncodeShutdownResponse(uint64_t id, uint64_t served) {
  std::string payload;
  AppendU64(&payload, served);
  return EncodeFrame(WireOp::kShutdown, kFlagResponse | kFlagOk, id,
                     payload);
}

std::string EncodeStatsResponse(uint64_t id, const ServiceMetrics& metrics) {
  std::string payload;
  AppendU64(&payload, metrics.requests);
  AppendU64(&payload, metrics.batches);
  AppendU64(&payload, metrics.errors);
  AppendF64(&payload, metrics.mean_batch_size);
  AppendU64(&payload, metrics.result_hits);
  AppendU64(&payload, metrics.result_misses);
  AppendU64(&payload, metrics.result_evictions);
  AppendU64(&payload, metrics.workload_hits);
  AppendU64(&payload, metrics.workload_misses);
  AppendU64(&payload, metrics.workload_evictions);
  AppendU64(&payload, metrics.shed_total);
  AppendU64(&payload, metrics.shards.size());
  for (const ServiceMetrics::Shard& shard : metrics.shards) {
    AppendU64(&payload, shard.requests);
    AppendF64(&payload, shard.p50_ms);
    AppendF64(&payload, shard.p90_ms);
    AppendF64(&payload, shard.p99_ms);
    AppendU64(&payload, shard.queue_depth);
    AppendU64(&payload, shard.peak_queue_depth);
    AppendU64(&payload, shard.shed);
  }
  return EncodeFrame(WireOp::kStats, kFlagResponse | kFlagOk, id, payload);
}

std::string EncodeLoadResponse(uint64_t id, const LoadResult& result) {
  uint16_t flags = kFlagResponse;
  if (result.ok) flags |= kFlagOk;
  std::string payload;
  AppendString(&payload, result.dataset);
  if (result.ok) {
    AppendU64(&payload, result.points);
    AppendU32(&payload, result.dims);
    AppendU32(&payload, result.shard);
  } else {
    AppendString(&payload, result.error);
  }
  return EncodeFrame(WireOp::kLoad, flags, id, payload);
}

bool DecodePredictResponse(const FrameHeader& header, std::string_view payload,
                           PredictReply* out, std::string* error) {
  if (header.op != WireOp::kPredict ||
      (header.flags & kFlagResponse) == 0) {
    return Fail(error, "not a predict response frame");
  }
  *out = PredictReply{};
  out->response.id = header.id;
  WireReader reader(payload);
  if ((header.flags & kFlagShed) != 0) {
    out->shed = true;
    uint32_t shard = 0;
    if (!reader.ReadU32(&shard) || !reader.ReadU32(&out->retry_after_ms) ||
        !reader.AtEnd()) {
      return Fail(error, "malformed shed payload");
    }
    out->response.shard = shard;
    return true;
  }
  out->per_query = (header.flags & kFlagPerQuery) != 0;
  out->response.ok = (header.flags & kFlagOk) != 0;
  out->response.cache_hit = (header.flags & kFlagCacheHit) != 0;
  out->response.workload_cache_hit =
      (header.flags & kFlagWorkloadCacheHit) != 0;
  uint32_t shard = 0;
  if (!reader.ReadU32(&shard) || !reader.ReadF64(&out->response.latency_ms)) {
    return Fail(error, "malformed predict response payload");
  }
  out->response.shard = shard;
  if (!out->response.ok) {
    if (!reader.ReadString(&out->response.error) || !reader.AtEnd()) {
      return Fail(error, "malformed predict error payload");
    }
    return true;
  }
  core::PredictionResult& r = out->response.result;
  uint64_t per_query_count = 0;
  uint64_t num_predicted_leaves = 0;
  uint64_t h_upper = 0;
  if (!reader.ReadU64(&out->response.served_io.page_seeks) ||
      !reader.ReadU64(&out->response.served_io.page_transfers) ||
      !reader.ReadF64(&r.avg_leaf_accesses) ||
      !reader.ReadU64(&per_query_count) ||
      !reader.ReadU64(&num_predicted_leaves) || !reader.ReadU64(&h_upper) ||
      !reader.ReadF64(&r.sigma_upper) || !reader.ReadF64(&r.sigma_lower) ||
      !reader.ReadU64(&r.io.page_seeks) ||
      !reader.ReadU64(&r.io.page_transfers)) {
    return Fail(error, "malformed predict result payload");
  }
  if (per_query_count > kMaxPerQueryCount) {
    return Fail(error, "implausible per-query count");
  }
  r.num_predicted_leaves = static_cast<size_t>(num_predicted_leaves);
  r.h_upper = static_cast<size_t>(h_upper);
  if (out->per_query) {
    if (!reader.ReadF64Array(static_cast<size_t>(per_query_count),
                             &r.per_query_accesses)) {
      return Fail(error, "malformed per-query array");
    }
  } else {
    // The count still travels so SerializeResult's "num_queries" field
    // (and anything keyed on the vector's size) round-trips exactly.
    r.per_query_accesses.assign(static_cast<size_t>(per_query_count), 0.0);
  }
  if (!reader.AtEnd()) return Fail(error, "trailing predict response bytes");
  return true;
}

bool DecodeLoadResponse(const FrameHeader& header, std::string_view payload,
                        LoadResult* out, std::string* error) {
  if (header.op != WireOp::kLoad || (header.flags & kFlagResponse) == 0) {
    return Fail(error, "not a load response frame");
  }
  *out = LoadResult{};
  out->ok = (header.flags & kFlagOk) != 0;
  WireReader reader(payload);
  if (!reader.ReadString(&out->dataset)) {
    return Fail(error, "malformed load response payload");
  }
  if (out->ok) {
    if (!reader.ReadU64(&out->points) || !reader.ReadU32(&out->dims) ||
        !reader.ReadU32(&out->shard) || !reader.AtEnd()) {
      return Fail(error, "malformed load response payload");
    }
  } else if (!reader.ReadString(&out->error) || !reader.AtEnd()) {
    return Fail(error, "malformed load error payload");
  }
  return true;
}

bool DecodeStatsResponse(const FrameHeader& header, std::string_view payload,
                         ServiceMetrics* out, std::string* error) {
  if (header.op != WireOp::kStats || (header.flags & kFlagResponse) == 0) {
    return Fail(error, "not a stats response frame");
  }
  *out = ServiceMetrics{};
  WireReader reader(payload);
  uint64_t num_shards = 0;
  if (!reader.ReadU64(&out->requests) || !reader.ReadU64(&out->batches) ||
      !reader.ReadU64(&out->errors) ||
      !reader.ReadF64(&out->mean_batch_size) ||
      !reader.ReadU64(&out->result_hits) ||
      !reader.ReadU64(&out->result_misses) ||
      !reader.ReadU64(&out->result_evictions) ||
      !reader.ReadU64(&out->workload_hits) ||
      !reader.ReadU64(&out->workload_misses) ||
      !reader.ReadU64(&out->workload_evictions) ||
      !reader.ReadU64(&out->shed_total) || !reader.ReadU64(&num_shards)) {
    return Fail(error, "malformed stats payload");
  }
  // Each shard record is 7 fixed 8-byte fields; bound before allocating.
  if (num_shards > payload.size() / 56) {
    return Fail(error, "implausible shard count");
  }
  out->shards.resize(static_cast<size_t>(num_shards));
  for (ServiceMetrics::Shard& shard : out->shards) {
    uint64_t queue_depth = 0;
    uint64_t peak_queue_depth = 0;
    if (!reader.ReadU64(&shard.requests) || !reader.ReadF64(&shard.p50_ms) ||
        !reader.ReadF64(&shard.p90_ms) || !reader.ReadF64(&shard.p99_ms) ||
        !reader.ReadU64(&queue_depth) || !reader.ReadU64(&peak_queue_depth) ||
        !reader.ReadU64(&shard.shed)) {
      return Fail(error, "malformed stats shard record");
    }
    shard.queue_depth = static_cast<size_t>(queue_depth);
    shard.peak_queue_depth = static_cast<size_t>(peak_queue_depth);
  }
  if (!reader.AtEnd()) return Fail(error, "trailing stats bytes");
  return true;
}

bool DecodeShutdownResponse(const FrameHeader& header,
                            std::string_view payload, uint64_t* served,
                            std::string* error) {
  if (header.op != WireOp::kShutdown ||
      (header.flags & kFlagResponse) == 0) {
    return Fail(error, "not a shutdown response frame");
  }
  WireReader reader(payload);
  if (!reader.ReadU64(served) || !reader.AtEnd()) {
    return Fail(error, "malformed shutdown payload");
  }
  return true;
}

bool DecodeErrorFrame(const FrameHeader& header, std::string_view payload,
                      std::string* message, std::string* error) {
  if (header.op != WireOp::kError || (header.flags & kFlagResponse) == 0) {
    return Fail(error, "not an error frame");
  }
  WireReader reader(payload);
  if (!reader.ReadString(message) || !reader.AtEnd()) {
    return Fail(error, "malformed error frame payload");
  }
  return true;
}

}  // namespace hdidx::service::wire
