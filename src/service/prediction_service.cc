#include "service/prediction_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/mutex.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/thread_annotations.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "index/topology.h"
#include "io/disk_model.h"
#include "io/paged_file.h"

namespace hdidx::service {

namespace {

/// Everything a cached result is a function of. per_query is serialization
/// only and deliberately absent: the result bits are the same either way.
using ResultKey = std::tuple<std::string /*dataset*/, std::string /*method*/,
                             size_t /*memory*/, size_t /*num_queries*/,
                             size_t /*k*/, uint64_t /*seed*/,
                             size_t /*page_bytes*/>;

/// Workloads depend only on the dataset and the draw parameters — they are
/// shared across methods and memory budgets, which is where the second
/// amortization of a resident service comes from.
using WorkloadKey = std::tuple<std::string /*dataset*/, size_t /*num_queries*/,
                               size_t /*k*/, uint64_t /*seed*/>;

ResultKey KeyOf(const ServiceRequest& r) {
  return {r.dataset, r.method, r.memory, r.num_queries, r.k, r.seed,
          r.page_bytes};
}

}  // namespace

struct PredictionService::Shard {
  explicit Shard(const ServiceOptions& options, size_t threads)
      : pool(threads),
        results(options.result_cache_entries),
        workloads(options.workload_cache_entries) {}

  /// Internally synchronized (its own job mutex + lock-free chunk claim).
  common::ThreadPool pool HDIDX_UNGUARDED;
  common::Mutex mu;
  io::KeyedLruCache<ResultKey, core::PredictionResult> results
      HDIDX_GUARDED_BY(mu);
  io::KeyedLruCache<WorkloadKey, workload::QueryWorkload> workloads
      HDIDX_GUARDED_BY(mu);
  std::vector<double> latencies_ms HDIDX_GUARDED_BY(mu);
};

PredictionService::PredictionService(const ServiceOptions& options)
    : registry_(options.num_shards) {
  const size_t num_shards = std::max<size_t>(1, options.num_shards);
  const size_t total = options.total_threads != 0 ? options.total_threads
                                                  : common::ThreadCount();
  const size_t per_shard = std::max<size_t>(1, total / num_shards);
  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>(options, per_shard));
  }
}

PredictionService::~PredictionService() = default;

size_t PredictionService::threads_per_shard() const {
  return shards_.front()->pool.num_threads();
}

ServiceResponse PredictionService::Serve(size_t shard_index,
                                         const ServiceRequest& request) {
  Shard* shard = shards_[shard_index].get();
  ServiceResponse response = Compute(shard, request);
  response.shard = shard_index;
  common::MutexLock lock(&shard->mu);
  shard->latencies_ms.push_back(response.latency_ms);
  return response;
}

ServiceResponse PredictionService::ServeOnShard(size_t shard_index,
                                                const ServiceRequest& request) {
  HDIDX_CHECK(shard_index == registry_.ShardOf(request.dataset))
      << "request for '" << request.dataset << "' routed to wrong shard "
      << shard_index;
  ServiceResponse response = Serve(shard_index, request);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (!response.ok) errors_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

ServiceResponse PredictionService::Compute(Shard* shard,
                                           const ServiceRequest& request) {
  ServiceResponse response;
  response.id = request.id;
  const auto started = std::chrono::steady_clock::now();

  const data::Dataset* dataset = registry_.Find(request.dataset);
  if (dataset == nullptr) {
    response.error = "unknown dataset: " + request.dataset;
    return response;
  }
  if (request.method != "mini" && request.method != "cutoff" &&
      request.method != "resampled") {
    response.error = "unknown method: " + request.method;
    return response;
  }
  if (request.num_queries == 0 || request.k == 0 || request.memory == 0 ||
      request.page_bytes == 0) {
    response.error = "num_queries, k, memory, and page_bytes must be > 0";
    return response;
  }

  const ResultKey key = KeyOf(request);
  std::shared_ptr<const core::PredictionResult> cached;
  {
    common::MutexLock lock(&shard->mu);
    cached = shard->results.Get(key);
  }
  if (cached != nullptr) {
    // Warm path: the cached result was computed from exactly (request,
    // dataset), so returning it is bit-identical to recomputing — at zero
    // simulated I/O.
    response.ok = true;
    response.result = *cached;
    response.cache_hit = true;
    response.latency_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - started)
                              .count();
    return response;
  }

  io::DiskModel disk;
  disk.page_bytes = request.page_bytes;
  const index::TreeTopology topology =
      index::TreeTopology::FromDisk(dataset->size(), dataset->dim(), disk);
  if (request.method != "mini" && topology.height() < 3) {
    response.error =
        "dataset too small for the " + request.method +
        " method (index height < 3); use method=mini";
    return response;
  }

  const common::ExecutionContext ctx(&shard->pool, request.seed);

  // Workload: drawn with Rng(seed) exactly as hdidx_predict does, shared
  // across methods and memory budgets via the per-shard workload cache.
  const WorkloadKey wkey{request.dataset, request.num_queries, request.k,
                         request.seed};
  std::shared_ptr<const workload::QueryWorkload> workload;
  {
    common::MutexLock lock(&shard->mu);
    workload = shard->workloads.Get(wkey);
  }
  if (workload != nullptr) {
    response.workload_cache_hit = true;
  } else {
    // Created outside the shard mutex — two concurrent misses may both
    // build; both arrive at the same bits, so last-Put-wins is harmless.
    common::Rng rng(request.seed);
    auto fresh = std::make_shared<workload::QueryWorkload>(
        workload::QueryWorkload::Create(*dataset, request.num_queries,
                                        request.k, &rng, ctx));
    common::MutexLock lock(&shard->mu);
    shard->workloads.Put(wkey, fresh);
    workload = std::move(fresh);
  }

  const uint64_t prediction_seed = request.seed + 1;
  if (request.method == "mini") {
    core::MiniIndexParams params;
    params.sampling_fraction =
        std::min(1.0, static_cast<double>(request.memory) /
                          static_cast<double>(dataset->size()));
    params.seed = prediction_seed;
    response.result = core::PredictWithMiniIndex(*dataset, topology,
                                                 *workload, params, ctx);
  } else if (request.method == "cutoff") {
    io::PagedFile file = io::PagedFile::FromDataset(*dataset, disk);
    core::CutoffParams params;
    params.memory_points = request.memory;
    params.h_upper = core::ChooseHupper(topology, request.memory);
    params.seed = prediction_seed;
    response.result =
        core::PredictWithCutoffTree(&file, topology, *workload, params, ctx);
  } else {
    io::PagedFile file = io::PagedFile::FromDataset(*dataset, disk);
    core::ResampledParams params;
    params.memory_points = request.memory;
    params.h_upper = core::ChooseHupper(topology, request.memory);
    params.seed = prediction_seed;
    response.result = core::PredictWithResampledTree(&file, topology,
                                                     *workload, params, ctx);
  }
  response.ok = true;
  response.served_io = response.result.io;
  {
    common::MutexLock lock(&shard->mu);
    shard->results.Put(
        key, std::make_shared<core::PredictionResult>(response.result));
  }
  response.latency_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - started)
                            .count();
  return response;
}

std::vector<ServiceResponse> PredictionService::ProcessBatch(
    const std::vector<ServiceRequest>& requests) {
  std::vector<ServiceResponse> responses(requests.size());
  if (requests.empty()) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    return responses;
  }

  // Partition by owning shard, keeping arrival order within a shard.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    by_shard[registry_.ShardOf(requests[i].dataset)].push_back(i);
  }

  // One worker thread per nonempty shard; each serves its queue serially
  // and fans out internally on its own pool. Responses land in their
  // original batch slots, so output order is arrival order.
  auto run_shard = [&](size_t s) {
    for (const size_t i : by_shard[s]) {
      responses[i] = Serve(s, requests[i]);
    }
  };
  std::vector<std::thread> workers;
  size_t last_nonempty = shards_.size();
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!by_shard[s].empty()) last_nonempty = s;
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty() || s == last_nonempty) continue;
    workers.emplace_back(run_shard, s);
  }
  if (last_nonempty < shards_.size()) run_shard(last_nonempty);
  for (auto& w : workers) w.join();

  batches_.fetch_add(1, std::memory_order_relaxed);
  requests_.fetch_add(requests.size(), std::memory_order_relaxed);
  for (const auto& response : responses) {
    if (!response.ok) errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return responses;
}

ServiceResponse PredictionService::Process(const ServiceRequest& request) {
  return ProcessBatch({request}).front();
}

ServiceMetrics PredictionService::Metrics() const {
  ServiceMetrics m;
  m.requests = requests_.load(std::memory_order_relaxed);
  m.batches = batches_.load(std::memory_order_relaxed);
  m.errors = errors_.load(std::memory_order_relaxed);
  m.mean_batch_size =
      m.batches == 0 ? 0.0
                     : static_cast<double>(m.requests) /
                           static_cast<double>(m.batches);
  for (const auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    m.result_hits += shard->results.hits();
    m.result_misses += shard->results.misses();
    m.result_evictions += shard->results.evictions();
    m.workload_hits += shard->workloads.hits();
    m.workload_misses += shard->workloads.misses();
    m.workload_evictions += shard->workloads.evictions();
    ServiceMetrics::Shard sm;
    sm.requests = shard->latencies_ms.size();
    sm.p50_ms = common::Percentile(shard->latencies_ms, 0.50);
    sm.p90_ms = common::Percentile(shard->latencies_ms, 0.90);
    sm.p99_ms = common::Percentile(shard->latencies_ms, 0.99);
    m.shards.push_back(sm);
  }
  return m;
}

void PredictionService::ClearCaches() {
  for (auto& shard : shards_) {
    common::MutexLock lock(&shard->mu);
    shard->results.Clear();
    shard->workloads.Clear();
  }
}

}  // namespace hdidx::service
