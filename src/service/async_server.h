#ifndef HDIDX_SERVICE_ASYNC_SERVER_H_
#define HDIDX_SERVICE_ASYNC_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "service/prediction_service.h"
#include "service/wire.h"

namespace hdidx::service {

/// Tuning knobs for the event-driven server.
struct AsyncServerOptions {
  /// IPv4 address to bind (dotted quad).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Event-loop threads connections are round-robined across.
  size_t num_reactors = 1;
  /// Admission-control bound on each shard's request queue; a predict
  /// arriving at a full queue is answered with a load-shed frame.
  size_t shard_queue_capacity = 64;
  /// Retry-after hint carried by load-shed responses.
  uint32_t retry_after_ms = 50;
  /// Largest accepted frame payload.
  size_t max_frame_payload = wire::kDefaultMaxPayload;
  /// Per-connection outbound high watermark: above this many buffered
  /// bytes the reactor stops reading the connection (pipelining
  /// backpressure) until the peer drains half of it.
  size_t write_buffer_limit = 4u << 20;
};

/// Epoll-based binary-protocol front-end over a PredictionService.
///
/// Architecture: one non-blocking acceptor thread round-robins incoming
/// connections across `num_reactors` epoll event loops; reactors only read
/// and frame requests (see wire.h) — for predicts they peek the leading
/// dataset string to pick a shard and enqueue the still-encoded frame onto
/// that shard's bounded queue, so payload decode runs on the shard worker,
/// not the shared event loop. One worker thread per shard decodes, serves
/// via PredictionService::ServeOnShard, and hands the encoded response back
/// to the owning reactor to write. A well-framed payload that fails to
/// decode on the worker is answered with a kError frame echoing the id,
/// in per-shard FIFO order, and the connection keeps serving (the
/// two-level error contract of wire.h is placement-invariant). Control
/// ops (load/stats/shutdown) stay reactor-inline. Connections are fully
/// pipelined: any number of in-flight requests, responses matched by frame
/// id (responses may interleave across shards, not within one).
///
/// Admission control: a predict that finds its shard queue full is
/// answered immediately with a kFlagShed frame carrying retry_after_ms;
/// queue depth, peak depth, and shed counts surface per shard through the
/// stats op. A connection whose outbound buffer passes write_buffer_limit
/// stops being read until it drains — slow readers throttle themselves,
/// not the server.
///
/// The deterministic payload of every predict response is bit-identical
/// to what the JSON transport would serve for the same request (the
/// service's determinism contract; doubles travel as raw IEEE-754 bits).
class AsyncServer {
 public:
  /// `service` must outlive the server.
  AsyncServer(PredictionService* service, const AsyncServerOptions& options);
  ~AsyncServer();

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  /// Binds, listens, and spawns the acceptor/reactor/worker threads.
  /// Returns false (with *error set) on socket failures.
  bool Start(std::string* error);

  /// The bound port (valid after Start; the actual port when options.port
  /// was 0).
  uint16_t port() const;

  /// Blocks until the server stops — via Stop() or a shutdown frame —
  /// then joins all threads. Returns the number of predict responses
  /// served (shed responses excluded), matching the JSON loop's count.
  uint64_t Wait();

  /// Signals the server to stop; safe from any thread (including a
  /// reactor). Threads are joined by Wait() or the destructor.
  void Stop();

  /// Predict responses served so far (shed responses excluded).
  uint64_t served() const;

  /// Service metrics plus this server's per-shard queue-depth / peak /
  /// shed gauges and the shed total.
  ServiceMetrics MetricsSnapshot() const;

  /// Test seam: parks every shard worker so queued requests accumulate —
  /// with traffic `shard_queue_capacity + K` deep, exactly K predicts are
  /// shed, deterministically. The `load` op quiesces the same way (pause,
  /// then wait for in-flight serves only — queued predicts stay queued
  /// and run against the updated registry after resume), and a shutdown
  /// frame resumes serving so its drain-before-ack stays finite even if
  /// a pause is in effect.
  void PauseServingForTest();
  void ResumeServingForTest();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hdidx::service

#endif  // HDIDX_SERVICE_ASYNC_SERVER_H_
