#ifndef HDIDX_SERVICE_SERVER_H_
#define HDIDX_SERVICE_SERVER_H_

#include <iosfwd>

#include "service/prediction_service.h"

namespace hdidx::service {

/// Drives a PredictionService over the line protocol (service/protocol.h):
/// reads request lines from `in`, writes one response line per request to
/// `out`, until a shutdown op or end of input.
///
/// Batching: consecutive predict lines accumulate into one batch, flushed
/// by a blank line, by any non-predict op, or by end of input — so a client
/// that pipes N predict lines plus a terminator gets them served as one
/// ProcessBatch (amortizing shard fan-out), with responses in request
/// order. Predict lines without an explicit "id" get a running sequence
/// number starting at 1.
///
/// Malformed lines produce {"op":"error",...} responses (after flushing
/// the pending batch, to keep response order aligned with request order)
/// and do not kill the server.
///
/// Returns the number of predict requests served. `out` is flushed after
/// every response line, so interactive clients see answers promptly.
size_t RunServer(std::istream& in, std::ostream& out,
                 PredictionService* service);

}  // namespace hdidx::service

#endif  // HDIDX_SERVICE_SERVER_H_
