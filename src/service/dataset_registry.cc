#include "service/dataset_registry.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "data/csv.h"
#include "data/dataset_io.h"

namespace hdidx::service {

DatasetRegistry::DatasetRegistry(size_t num_shards)
    : num_shards_(std::max<size_t>(1, num_shards)) {}

bool DatasetRegistry::LoadFile(const std::string& name,
                               const std::string& path, std::string* error) {
  std::optional<data::Dataset> loaded;
  std::string io_error;
  if (path.size() >= 4 && path.substr(path.size() - 4) == ".csv") {
    loaded = data::ReadCsv(path, data::CsvOptions{}, &io_error);
  } else {
    loaded = data::ReadDataset(path, &io_error);
  }
  if (!loaded.has_value()) {
    if (error != nullptr) *error = "cannot read " + path + ": " + io_error;
    return false;
  }
  return Add(name, std::move(*loaded), error);
}

bool DatasetRegistry::Add(const std::string& name, data::Dataset dataset,
                          std::string* error) {
  if (name.empty()) {
    if (error != nullptr) *error = "dataset name must be non-empty";
    return false;
  }
  if (datasets_.count(name) != 0) {
    if (error != nullptr) *error = "dataset already registered: " + name;
    return false;
  }
  if (dataset.empty()) {
    if (error != nullptr) *error = "dataset is empty: " + name;
    return false;
  }
  datasets_[name] = std::make_unique<data::Dataset>(std::move(dataset));
  return true;
}

const data::Dataset* DatasetRegistry::Find(const std::string& name) const {
  const auto it = datasets_.find(name);
  return it != datasets_.end() ? it->second.get() : nullptr;
}

size_t DatasetRegistry::ShardOf(const std::string& name) const {
  // FNV-1a, 64-bit: stable across platforms and standard-library versions
  // (std::hash is not), so routing never changes under a rebuild.
  uint64_t h = 14695981039346656037ull;
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h % num_shards_);
}

std::vector<std::string> DatasetRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& [name, unused] : datasets_) names.push_back(name);
  return names;
}

}  // namespace hdidx::service
