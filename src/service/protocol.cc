#include "service/protocol.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.h"

namespace hdidx::service {

namespace {

/// Cursor over the line being parsed.
struct Scanner {
  const std::string& s;
  size_t pos = 0;

  void SkipWs() {
    while (pos < s.size() &&
           std::isspace(static_cast<unsigned char>(s[pos])) != 0) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos >= s.size();
  }
  bool Consume(char c) {
    SkipWs();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool ParseString(Scanner* in, std::string* out, std::string* error) {
  if (!in->Consume('"')) return Fail(error, "expected '\"'");
  out->clear();
  while (in->pos < in->s.size()) {
    const char c = in->s[in->pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (in->pos >= in->s.size()) break;
    const char esc = in->s[in->pos++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'n': out->push_back('\n'); break;
      case 't': out->push_back('\t'); break;
      case 'r': out->push_back('\r'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'u': {
        if (in->pos + 4 > in->s.size()) {
          return Fail(error, "truncated \\u escape");
        }
        const std::string hex = in->s.substr(in->pos, 4);
        char* end = nullptr;
        const long code = std::strtol(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4) return Fail(error, "bad \\u escape");
        if (code > 0x7f) {
          return Fail(error, "non-ASCII \\u escapes are not supported");
        }
        out->push_back(static_cast<char>(code));
        in->pos += 4;
        break;
      }
      default:
        return Fail(error, std::string("unknown escape: \\") + esc);
    }
  }
  return Fail(error, "unterminated string");
}

bool ParseValue(Scanner* in, JsonValue* out, std::string* error) {
  in->SkipWs();
  if (in->pos >= in->s.size()) return Fail(error, "expected a value");
  const char c = in->s[in->pos];
  if (c == '"') {
    out->kind = JsonValue::Kind::kString;
    return ParseString(in, &out->str, error);
  }
  if (c == '{' || c == '[') {
    return Fail(error, "nested objects/arrays are not supported in requests");
  }
  if (in->s.compare(in->pos, 4, "true") == 0) {
    out->kind = JsonValue::Kind::kBool;
    out->boolean = true;
    in->pos += 4;
    return true;
  }
  if (in->s.compare(in->pos, 5, "false") == 0) {
    out->kind = JsonValue::Kind::kBool;
    out->boolean = false;
    in->pos += 5;
    return true;
  }
  if (in->s.compare(in->pos, 4, "null") == 0) {
    out->kind = JsonValue::Kind::kNull;
    in->pos += 4;
    return true;
  }
  char* end = nullptr;
  const double value = std::strtod(in->s.c_str() + in->pos, &end);
  if (end == in->s.c_str() + in->pos) {
    return Fail(error, "expected a value at '" + in->s.substr(in->pos) + "'");
  }
  out->kind = JsonValue::Kind::kNumber;
  out->num = value;
  in->pos = static_cast<size_t>(end - in->s.c_str());
  return true;
}

/// Fetches an integral field into `*out` if present; type/shape errors fail.
bool ReadUintField(const std::map<std::string, JsonValue>& fields,
                   const std::string& name, uint64_t* out,
                   std::string* error) {
  const auto it = fields.find(name);
  if (it == fields.end()) return true;
  if (it->second.kind != JsonValue::Kind::kNumber) {
    return Fail(error, "field '" + name + "' must be a number");
  }
  const double v = it->second.num;
  if (v < 0 || std::floor(v) != v || v > 1.8e19) {
    return Fail(error, "field '" + name + "' must be a non-negative integer");
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ReadSizeField(const std::map<std::string, JsonValue>& fields,
                   const std::string& name, size_t* out, std::string* error) {
  uint64_t v = *out;
  if (!ReadUintField(fields, name, &v, error)) return false;
  *out = static_cast<size_t>(v);
  return true;
}

bool ReadStringField(const std::map<std::string, JsonValue>& fields,
                     const std::string& name, std::string* out,
                     std::string* error) {
  const auto it = fields.find(name);
  if (it == fields.end()) return true;
  if (it->second.kind != JsonValue::Kind::kString) {
    return Fail(error, "field '" + name + "' must be a string");
  }
  *out = it->second.str;
  return true;
}

std::string FormatDouble(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Framing invariant of the line-delimited protocol: a serialized message
/// is exactly one line. JsonQuote escapes every control character, so a
/// newline here means a serializer emitted raw text it should have quoted.
const std::string& CheckedOneLine(const std::string& message) {
  HDIDX_DCHECK(message.find('\n') == std::string::npos)
      << "serialized protocol message spans lines: " << message;
  return message;
}

}  // namespace

bool ParseFlatJsonObject(const std::string& line,
                         std::map<std::string, JsonValue>* out,
                         std::string* error) {
  out->clear();
  Scanner in{line};
  if (!in.Consume('{')) return Fail(error, "expected '{'");
  if (in.Consume('}')) {
    return in.AtEnd() ? true : Fail(error, "trailing content after object");
  }
  while (true) {
    std::string key;
    if (!ParseString(&in, &key, error)) return false;
    if (!in.Consume(':')) return Fail(error, "expected ':' after key");
    JsonValue value;
    if (!ParseValue(&in, &value, error)) return false;
    (*out)[key] = std::move(value);
    if (in.Consume(',')) continue;
    if (in.Consume('}')) break;
    return Fail(error, "expected ',' or '}'");
  }
  return in.AtEnd() ? true : Fail(error, "trailing content after object");
}

bool ParseRequestLine(const std::string& line, RequestLine* out,
                      std::string* error) {
  std::map<std::string, JsonValue> fields;
  if (!ParseFlatJsonObject(line, &fields, error)) return false;

  std::string op = "predict";
  if (!ReadStringField(fields, "op", &op, error)) return false;

  *out = RequestLine{};
  if (op == "stats") {
    out->op = RequestLine::Op::kStats;
    return true;
  }
  if (op == "shutdown") {
    out->op = RequestLine::Op::kShutdown;
    return true;
  }
  if (op == "load") {
    out->op = RequestLine::Op::kLoad;
    if (!ReadStringField(fields, "dataset", &out->load_dataset, error) ||
        !ReadStringField(fields, "path", &out->load_path, error)) {
      return false;
    }
    if (out->load_dataset.empty()) return Fail(error, "load needs 'dataset'");
    if (out->load_path.empty()) return Fail(error, "load needs 'path'");
    return true;
  }
  if (op != "predict") return Fail(error, "unknown op: " + op);

  out->op = RequestLine::Op::kPredict;
  ServiceRequest& r = out->predict;
  if (!ReadStringField(fields, "dataset", &r.dataset, error) ||
      !ReadStringField(fields, "method", &r.method, error) ||
      !ReadSizeField(fields, "memory", &r.memory, error) ||
      !ReadSizeField(fields, "num_queries", &r.num_queries, error) ||
      !ReadSizeField(fields, "k", &r.k, error) ||
      !ReadUintField(fields, "seed", &r.seed, error) ||
      !ReadSizeField(fields, "page_bytes", &r.page_bytes, error)) {
    return false;
  }
  if (r.dataset.empty()) return Fail(error, "predict needs 'dataset'");
  out->has_id = fields.count("id") != 0;
  if (!ReadUintField(fields, "id", &r.id, error)) return false;
  const auto pq = fields.find("per_query");
  if (pq != fields.end()) {
    if (pq->second.kind != JsonValue::Kind::kBool) {
      return Fail(error, "field 'per_query' must be a bool");
    }
    r.per_query = pq->second.boolean;
  }
  return true;
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string SerializeResult(const ServiceResponse& response, bool per_query) {
  if (!response.ok) {
    return "{\"error\":" + JsonQuote(response.error) + "}";
  }
  const core::PredictionResult& r = response.result;
  std::string out = "{";
  out += "\"avg_leaf_accesses\":" + FormatDouble(r.avg_leaf_accesses);
  out += ",\"num_queries\":" + std::to_string(r.per_query_accesses.size());
  out += ",\"num_predicted_leaves\":" + std::to_string(r.num_predicted_leaves);
  out += ",\"h_upper\":" + std::to_string(r.h_upper);
  out += ",\"sigma_upper\":" + FormatDouble(r.sigma_upper);
  out += ",\"sigma_lower\":" + FormatDouble(r.sigma_lower);
  out += ",\"io_seeks\":" + std::to_string(r.io.page_seeks);
  out += ",\"io_transfers\":" + std::to_string(r.io.page_transfers);
  if (per_query) {
    out += ",\"per_query\":[";
    for (size_t i = 0; i < r.per_query_accesses.size(); ++i) {
      if (i != 0) out.push_back(',');
      out += FormatDouble(r.per_query_accesses[i]);
    }
    out.push_back(']');
  }
  out.push_back('}');
  return out;
}

std::string SerializePredictResponse(const ServiceResponse& response,
                                     bool per_query) {
  std::string out = "{\"op\":\"predict\"";
  out += ",\"id\":" + std::to_string(response.id);
  out += response.ok ? ",\"ok\":true" : ",\"ok\":false";
  out += ",\"shard\":" + std::to_string(response.shard);
  out += std::string(",\"cache\":") +
         (response.cache_hit ? "\"hit\"" : "\"miss\"");
  out += std::string(",\"workload_cache\":") +
         (response.workload_cache_hit ? "\"hit\"" : "\"miss\"");
  out += ",\"served_seeks\":" + std::to_string(response.served_io.page_seeks);
  out += ",\"served_transfers\":" +
         std::to_string(response.served_io.page_transfers);
  out += ",\"latency_ms\":" + FormatDouble(response.latency_ms);
  out += ",\"result\":" + SerializeResult(response, per_query);
  out.push_back('}');
  return CheckedOneLine(out);
}

std::string SerializeMetrics(const ServiceMetrics& metrics) {
  std::string out = "{\"op\":\"stats\",\"ok\":true";
  out += ",\"requests\":" + std::to_string(metrics.requests);
  out += ",\"batches\":" + std::to_string(metrics.batches);
  out += ",\"errors\":" + std::to_string(metrics.errors);
  out += ",\"mean_batch_size\":" + FormatDouble(metrics.mean_batch_size);
  out += ",\"result_cache\":{\"hits\":" + std::to_string(metrics.result_hits) +
         ",\"misses\":" + std::to_string(metrics.result_misses) +
         ",\"evictions\":" + std::to_string(metrics.result_evictions) + "}";
  out += ",\"workload_cache\":{\"hits\":" +
         std::to_string(metrics.workload_hits) +
         ",\"misses\":" + std::to_string(metrics.workload_misses) +
         ",\"evictions\":" + std::to_string(metrics.workload_evictions) + "}";
  out += ",\"shed_total\":" + std::to_string(metrics.shed_total);
  out += ",\"shards\":[";
  for (size_t s = 0; s < metrics.shards.size(); ++s) {
    if (s != 0) out.push_back(',');
    const ServiceMetrics::Shard& shard = metrics.shards[s];
    out += "{\"requests\":" + std::to_string(shard.requests);
    out += ",\"p50_ms\":" + FormatDouble(shard.p50_ms);
    out += ",\"p90_ms\":" + FormatDouble(shard.p90_ms);
    out += ",\"p99_ms\":" + FormatDouble(shard.p99_ms);
    out += ",\"queue_depth\":" + std::to_string(shard.queue_depth);
    out += ",\"peak_queue_depth\":" + std::to_string(shard.peak_queue_depth);
    out += ",\"shed\":" + std::to_string(shard.shed);
    out.push_back('}');
  }
  out += "]}";
  return CheckedOneLine(out);
}

}  // namespace hdidx::service
