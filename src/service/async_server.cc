#include "service/async_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace hdidx::service {

namespace {

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message + ": " + std::strerror(errno);
  return false;
}

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Every socket write goes through here: MSG_NOSIGNAL turns a peer that
/// vanished mid-response into an EPIPE return (handled at the call site)
/// instead of a process-killing SIGPIPE.
ssize_t SendBytes(int fd, const char* data, size_t size) {
  return ::send(fd, data, size, MSG_NOSIGNAL);
}

/// Final-flush grace at shutdown: per connection, at most this many
/// POLLOUT waits of kFlushPollMs each before the fd is closed anyway.
constexpr int kFlushPollRounds = 10;
constexpr int kFlushPollMs = 20;

void WakeEventFd(int fd) {
  const uint64_t one = 1;
  // An eventfd write only fails if the counter would overflow, in which
  // case the reader is already signaled — safe to ignore.
  (void)!::write(fd, &one, sizeof(one));
}

void DrainEventFd(int fd) {
  uint64_t value = 0;
  while (::read(fd, &value, sizeof(value)) > 0) {
  }
}

/// One accepted socket. The reactor that owns the connection is the only
/// thread that reads it and the only thread that writes the fd; shard
/// workers hand response bytes over through the mutex-guarded outbound
/// buffer and an eventfd nudge.
struct Connection {
  Connection(int fd_in, size_t reactor_in) : fd(fd_in), reactor(reactor_in) {}

  const int fd;
  /// Index of the owning reactor (fixed at accept time).
  const size_t reactor;

  common::Mutex mu;
  /// Bytes awaiting write; [out_offset, size) is the undrained suffix.
  std::string outbound HDIDX_GUARDED_BY(mu);
  size_t out_offset HDIDX_GUARDED_BY(mu) = 0;
  bool closed HDIDX_GUARDED_BY(mu) = false;
  bool close_after_flush HDIDX_GUARDED_BY(mu) = false;

  /// Read/framing state, touched only by the owning reactor thread.
  std::string inbound HDIDX_UNGUARDED;
  /// Epoll interest currently registered — owning reactor only.
  uint32_t armed_events HDIDX_UNGUARDED = 0;
  bool reading_paused HDIDX_UNGUARDED = false;
};

/// A predict frame waiting for its shard worker, still encoded: the
/// reactor only peeks the routing key (dataset → shard), so payload decode
/// cost lands on the worker, not the shared event loop. The payload is
/// copied out of the connection's inbound buffer, which the reactor
/// compacts as soon as the frame is consumed.
struct QueueItem {
  std::shared_ptr<Connection> conn;
  wire::FrameHeader header;
  std::string payload;
};

/// Bounded admission queue in front of one shard worker. TryPush refuses
/// (and counts a shed) at capacity; Pause/WaitIdle quiesce the worker for
/// registry loads and the deterministic backpressure tests.
class ShardQueue {
 public:
  explicit ShardQueue(size_t capacity) : capacity_(capacity) {}

  /// False (shed counted) when the queue is at capacity or draining.
  bool TryPush(QueueItem item) {
    common::MutexLock lock(&mu_);
    if (draining_ || items_.size() >= capacity_) {
      ++shed_;
      return false;
    }
    items_.push_back(std::move(item));
    if (items_.size() > peak_depth_) peak_depth_ = items_.size();
    cv_.NotifyAll();
    return true;
  }

  /// Blocks for the next item; false once Shutdown() was called. The
  /// caller must FinishItem() after serving each popped item.
  bool Pop(QueueItem* out) {
    common::MutexLock lock(&mu_);
    while (shutdown_ ? false : (paused_ || items_.empty())) {
      cv_.Wait(mu_);
    }
    if (shutdown_) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    ++active_;
    return true;
  }

  void FinishItem() {
    common::MutexLock lock(&mu_);
    --active_;
    cv_.NotifyAll();
  }

  void Shutdown() {
    common::MutexLock lock(&mu_);
    shutdown_ = true;
    cv_.NotifyAll();
  }

  void Pause() {
    common::MutexLock lock(&mu_);
    paused_ = true;
  }

  void Resume() {
    common::MutexLock lock(&mu_);
    paused_ = false;
    cv_.NotifyAll();
  }

  /// After this every TryPush sheds — the queue admits no new work, so a
  /// subsequent WaitIdle() has a finite frontier even under sustained
  /// arrivals. Used by the shutdown path; never cleared.
  void BeginDrain() {
    common::MutexLock lock(&mu_);
    draining_ = true;
  }

  /// Blocks until no popped item is still being served. Queued items may
  /// remain: this is the quiesce to pair with Pause(), which parks the
  /// worker and therefore makes waiting for an *empty* queue a deadlock.
  void WaitActiveDrained() {
    common::MutexLock lock(&mu_);
    while (active_ != 0) cv_.Wait(mu_);
  }

  /// Blocks until nothing is queued or being served (responses for all
  /// admitted requests are buffered on their connections by then). The
  /// worker must be running (not paused) for the queue to drain.
  void WaitIdle() {
    common::MutexLock lock(&mu_);
    while (!items_.empty() || active_ != 0) cv_.Wait(mu_);
  }

  size_t depth() const {
    common::MutexLock lock(&mu_);
    return items_.size();
  }
  size_t peak_depth() const {
    common::MutexLock lock(&mu_);
    return peak_depth_;
  }
  uint64_t shed() const {
    common::MutexLock lock(&mu_);
    return shed_;
  }

 private:
  const size_t capacity_;
  mutable common::Mutex mu_;
  common::CondVar cv_;
  std::deque<QueueItem> items_ HDIDX_GUARDED_BY(mu_);
  size_t active_ HDIDX_GUARDED_BY(mu_) = 0;
  size_t peak_depth_ HDIDX_GUARDED_BY(mu_) = 0;
  uint64_t shed_ HDIDX_GUARDED_BY(mu_) = 0;
  bool paused_ HDIDX_GUARDED_BY(mu_) = false;
  bool draining_ HDIDX_GUARDED_BY(mu_) = false;
  bool shutdown_ HDIDX_GUARDED_BY(mu_) = false;
};

/// One epoll event loop. `conns` is owned by the loop thread; other
/// threads communicate through the inbox + eventfd.
struct Reactor {
  Reactor(int epoll_fd_in, int wake_fd_in)
      : epoll_fd(epoll_fd_in), wake_fd(wake_fd_in) {}

  const int epoll_fd;
  const int wake_fd;

  /// Live connections by fd — owning reactor thread only.
  std::unordered_map<int, std::shared_ptr<Connection>> conns HDIDX_UNGUARDED;

  common::Mutex inbox_mu;
  std::vector<std::shared_ptr<Connection>> pending_adds
      HDIDX_GUARDED_BY(inbox_mu);
  std::vector<std::shared_ptr<Connection>> pending_flushes
      HDIDX_GUARDED_BY(inbox_mu);
};

}  // namespace

class AsyncServer::Impl {
 public:
  Impl(PredictionService* service, const AsyncServerOptions& options)
      : service_(service), options_(options) {}

  ~Impl() {
    Stop();
    JoinAll();
  }

  bool Start(std::string* error);
  uint64_t Wait();
  void Stop();

  uint16_t port() const { return port_; }
  uint64_t served() const {
    return served_.load(std::memory_order_relaxed);
  }

  ServiceMetrics MetricsSnapshot() const;
  void PauseServing();
  void ResumeServing();

 private:
  void AcceptLoop();
  void ReactorLoop(size_t index);
  void WorkerLoop(size_t shard);

  void HandleInbox(Reactor& r);
  void ReadConnection(Reactor& r, const std::shared_ptr<Connection>& conn);
  void ProcessInbound(Reactor& r, const std::shared_ptr<Connection>& conn);
  void HandleFrame(Reactor& r, const std::shared_ptr<Connection>& conn,
                   const wire::FrameHeader& header, std::string_view payload);
  void HandleLoad(Reactor& r, const std::shared_ptr<Connection>& conn,
                  uint64_t id, const RequestLine& request);
  void HandleShutdown(Reactor& r, const std::shared_ptr<Connection>& conn,
                      uint64_t id);

  /// Appends bytes on the reactor's own thread and flushes immediately.
  void ReactorSend(Reactor& r, const std::shared_ptr<Connection>& conn,
                   std::string frame, bool close_after = false);
  /// Appends bytes from a shard worker and nudges the owning reactor.
  void SendFromWorker(const std::shared_ptr<Connection>& conn,
                      std::string frame);
  void FlushConnection(Reactor& r, const std::shared_ptr<Connection>& conn);
  void UpdateInterest(Reactor& r, const std::shared_ptr<Connection>& conn,
                      bool want_write, size_t pending_bytes);
  void CloseConnection(Reactor& r, const std::shared_ptr<Connection>& conn);
  void CleanupReactor(Reactor& r);
  void JoinAll();
  void CloseFds();

  static bool IsClosed(const std::shared_ptr<Connection>& conn) {
    common::MutexLock lock(&conn->mu);
    return conn->closed;
  }

  PredictionService* const service_;
  const AsyncServerOptions options_;

  /// Sockets and thread/queue containers are created in Start() before
  /// any server thread exists and are structurally immutable afterwards.
  int listen_fd_ HDIDX_UNGUARDED = -1;
  int accept_epoll_ HDIDX_UNGUARDED = -1;
  int accept_wake_ HDIDX_UNGUARDED = -1;
  uint16_t port_ HDIDX_UNGUARDED = 0;
  std::vector<std::unique_ptr<Reactor>> reactors_ HDIDX_UNGUARDED;
  std::vector<std::unique_ptr<ShardQueue>> queues_ HDIDX_UNGUARDED;
  std::vector<std::thread> threads_ HDIDX_UNGUARDED;
  /// Acceptor-thread-owned round-robin cursor.
  size_t next_reactor_ HDIDX_UNGUARDED = 0;

  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> joined_{false};

  common::Mutex state_mu_;
  common::CondVar state_cv_;
  bool stop_requested_ HDIDX_GUARDED_BY(state_mu_) = false;

  /// Serializes registry mutation (the `load` op) across reactors.
  common::Mutex load_mu_;
};

bool AsyncServer::Impl::Start(std::string* error) {
  HDIDX_CHECK(threads_.empty()) << "Start() called twice";

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Fail(error, "socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = wire::HostToNet16(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad host address: " + options_.host;
    CloseFds();
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const bool ok = Fail(error, "bind " + options_.host + ":" +
                                    std::to_string(options_.port));
    CloseFds();
    return ok;
  }
  if (::listen(listen_fd_, 128) != 0) {
    const bool ok = Fail(error, "listen");
    CloseFds();
    return ok;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const bool ok = Fail(error, "getsockname");
    CloseFds();
    return ok;
  }
  // HostToNet16 is an involution, so it also converts net->host.
  port_ = wire::HostToNet16(bound.sin_port);
  SetNonBlocking(listen_fd_);

  accept_epoll_ = ::epoll_create1(0);
  accept_wake_ = ::eventfd(0, EFD_NONBLOCK);
  if (accept_epoll_ < 0 || accept_wake_ < 0) {
    const bool ok = Fail(error, "epoll/eventfd");
    CloseFds();
    return ok;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(accept_epoll_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = accept_wake_;
  ::epoll_ctl(accept_epoll_, EPOLL_CTL_ADD, accept_wake_, &ev);

  const size_t num_reactors = std::max<size_t>(1, options_.num_reactors);
  reactors_.reserve(num_reactors);
  for (size_t i = 0; i < num_reactors; ++i) {
    const int epoll_fd = ::epoll_create1(0);
    const int wake_fd = ::eventfd(0, EFD_NONBLOCK);
    if (epoll_fd < 0 || wake_fd < 0) {
      const bool ok = Fail(error, "reactor epoll/eventfd");
      CloseFds();
      return ok;
    }
    epoll_event wake_ev{};
    wake_ev.events = EPOLLIN;
    wake_ev.data.fd = wake_fd;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &wake_ev);
    reactors_.push_back(std::make_unique<Reactor>(epoll_fd, wake_fd));
  }

  const size_t num_shards = service_->num_shards();
  queues_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    queues_.push_back(std::make_unique<ShardQueue>(
        std::max<size_t>(1, options_.shard_queue_capacity)));
  }

  threads_.emplace_back([this] { AcceptLoop(); });
  for (size_t i = 0; i < num_reactors; ++i) {
    threads_.emplace_back([this, i] { ReactorLoop(i); });
  }
  for (size_t s = 0; s < num_shards; ++s) {
    threads_.emplace_back([this, s] { WorkerLoop(s); });
  }
  return true;
}

uint64_t AsyncServer::Impl::Wait() {
  {
    common::MutexLock lock(&state_mu_);
    while (!stop_requested_) state_cv_.Wait(state_mu_);
  }
  JoinAll();
  return served();
}

void AsyncServer::Impl::Stop() {
  {
    common::MutexLock lock(&state_mu_);
    if (stop_requested_) return;
    stop_requested_ = true;
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& queue : queues_) queue->Shutdown();
  if (accept_wake_ >= 0) WakeEventFd(accept_wake_);
  for (auto& reactor : reactors_) WakeEventFd(reactor->wake_fd);
  {
    common::MutexLock lock(&state_mu_);
    state_cv_.NotifyAll();
  }
}

void AsyncServer::Impl::JoinAll() {
  if (joined_.exchange(true)) return;
  for (auto& thread : threads_) {
    if (thread.joinable()) thread.join();
  }
  CloseFds();
}

void AsyncServer::Impl::CloseFds() {
  for (auto& reactor : reactors_) {
    if (reactor->epoll_fd >= 0) ::close(reactor->epoll_fd);
    if (reactor->wake_fd >= 0) ::close(reactor->wake_fd);
  }
  reactors_.clear();
  if (accept_epoll_ >= 0) ::close(accept_epoll_);
  if (accept_wake_ >= 0) ::close(accept_wake_);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  accept_epoll_ = accept_wake_ = listen_fd_ = -1;
}

ServiceMetrics AsyncServer::Impl::MetricsSnapshot() const {
  ServiceMetrics m = service_->Metrics();
  HDIDX_DCHECK(m.shards.size() == queues_.size());
  uint64_t shed_total = 0;
  for (size_t s = 0; s < queues_.size() && s < m.shards.size(); ++s) {
    m.shards[s].queue_depth = queues_[s]->depth();
    m.shards[s].peak_queue_depth = queues_[s]->peak_depth();
    m.shards[s].shed = queues_[s]->shed();
    shed_total += m.shards[s].shed;
  }
  m.shed_total = shed_total;
  return m;
}

void AsyncServer::Impl::PauseServing() {
  for (auto& queue : queues_) queue->Pause();
}

void AsyncServer::Impl::ResumeServing() {
  for (auto& queue : queues_) queue->Resume();
}

void AsyncServer::Impl::AcceptLoop() {
  epoll_event events[8];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(accept_epoll_, events, 8, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == accept_wake_) {
        DrainEventFd(accept_wake_);
        continue;
      }
      while (true) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
          if (errno == EINTR) continue;
          if (errno == ECONNABORTED) continue;  // that peer is gone; next
          if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
              errno == ENOMEM) {
            // Out of descriptors/buffers: the backlog entry stays, so
            // level-triggered epoll re-fires immediately — back off
            // briefly instead of busy-spinning, and retry once existing
            // connections close and free fds.
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          break;  // EAGAIN (backlog drained) or a hard error
        }
        SetNonBlocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const size_t index = next_reactor_ % reactors_.size();
        ++next_reactor_;
        auto conn = std::make_shared<Connection>(fd, index);
        Reactor& r = *reactors_[index];
        {
          common::MutexLock lock(&r.inbox_mu);
          r.pending_adds.push_back(std::move(conn));
        }
        WakeEventFd(r.wake_fd);
      }
    }
  }
}

void AsyncServer::Impl::ReactorLoop(size_t index) {
  Reactor& r = *reactors_[index];
  epoll_event events[64];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(r.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == r.wake_fd) {
        DrainEventFd(r.wake_fd);
        HandleInbox(r);
        continue;
      }
      const auto it = r.conns.find(events[i].data.fd);
      if (it == r.conns.end()) continue;
      // Copy: handlers may erase the map entry.
      const std::shared_ptr<Connection> conn = it->second;
      const uint32_t mask = events[i].events;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(r, conn);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) FlushConnection(r, conn);
      if ((mask & EPOLLIN) != 0) ReadConnection(r, conn);
    }
  }
  CleanupReactor(r);
}

void AsyncServer::Impl::WorkerLoop(size_t shard) {
  ShardQueue& queue = *queues_[shard];
  QueueItem item;
  while (queue.Pop(&item)) {
    // Decode here, off the reactor. The frame boundary was already sound
    // (NextFrame accepted it), so a decode failure only poisons this
    // request: report against its id and leave the connection serving.
    // Per-shard FIFO keeps the error in admission order relative to the
    // connection's other predicts.
    RequestLine request;
    std::string error;
    if (!wire::DecodeRequest(item.header, item.payload, &request, &error)) {
      SendFromWorker(item.conn, wire::EncodeErrorFrame(item.header.id, error));
    } else {
      const ServiceResponse response =
          service_->ServeOnShard(shard, request.predict);
      served_.fetch_add(1, std::memory_order_relaxed);
      SendFromWorker(item.conn,
                     wire::EncodePredictResponse(response,
                                                 request.predict.per_query));
    }
    queue.FinishItem();
    // Drop the connection reference before blocking on the next item.
    item = QueueItem{};
  }
}

void AsyncServer::Impl::HandleInbox(Reactor& r) {
  std::vector<std::shared_ptr<Connection>> adds;
  std::vector<std::shared_ptr<Connection>> flushes;
  {
    common::MutexLock lock(&r.inbox_mu);
    adds.swap(r.pending_adds);
    flushes.swap(r.pending_flushes);
  }
  for (auto& conn : adds) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd;
    if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_ADD, conn->fd, &ev) != 0) {
      ::close(conn->fd);
      continue;
    }
    conn->armed_events = EPOLLIN;
    r.conns.emplace(conn->fd, std::move(conn));
  }
  for (auto& conn : flushes) {
    if (r.conns.count(conn->fd) != 0) FlushConnection(r, conn);
  }
}

void AsyncServer::Impl::ReadConnection(
    Reactor& r, const std::shared_ptr<Connection>& conn) {
  char buffer[64 * 1024];
  bool peer_done = false;
  while (!conn->reading_paused) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->inbound.append(buffer, static_cast<size_t>(n));
      ProcessInbound(r, conn);
      if (r.conns.count(conn->fd) == 0) return;  // handler closed it
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    peer_done = true;  // EOF or hard error
    break;
  }
  if (peer_done) CloseConnection(r, conn);
}

void AsyncServer::Impl::ProcessInbound(
    Reactor& r, const std::shared_ptr<Connection>& conn) {
  size_t offset = 0;
  bool poisoned = false;
  bool done = false;
  while (!done) {
    wire::FrameHeader header;
    std::string_view payload;
    std::string error;
    size_t consumed = 0;
    const std::string_view rest(conn->inbound.data() + offset,
                                conn->inbound.size() - offset);
    const wire::FrameStatus status =
        wire::NextFrame(rest, options_.max_frame_payload, &consumed, &header,
                        &payload, &error);
    switch (status) {
      case wire::FrameStatus::kNeedMore:
        done = true;
        break;
      case wire::FrameStatus::kFrame:
        offset += consumed;
        HandleFrame(r, conn, header, payload);
        if (r.conns.count(conn->fd) == 0 || IsClosed(conn)) {
          done = true;
        }
        break;
      case wire::FrameStatus::kError:
        // Framing is lost: answer with one protocol-error frame and close
        // once it is flushed. Nothing after this point is parseable.
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        ReactorSend(r, conn, wire::EncodeErrorFrame(0, error),
                    /*close_after=*/true);
        poisoned = true;
        done = true;
        break;
    }
  }
  if (poisoned) {
    conn->inbound.clear();
  } else if (offset > 0) {
    conn->inbound.erase(0, offset);
  }
}

void AsyncServer::Impl::HandleFrame(Reactor& r,
                                    const std::shared_ptr<Connection>& conn,
                                    const wire::FrameHeader& header,
                                    std::string_view payload) {
  if (header.op == wire::WireOp::kPredict &&
      (header.flags & wire::kFlagResponse) == 0) {
    // Predicts are the hot path: the reactor peeks only the routing key
    // and hands the still-encoded frame to the shard worker, which decodes
    // before serving. Admission control stays here so shed responses are
    // deterministic under backpressure (a full queue answers immediately,
    // in arrival order, regardless of worker progress).
    std::string dataset;
    if (!wire::PeekPredictDataset(payload, &dataset)) {
      // Too short to carry a routing key — no shard to decode it on, so
      // this is the one predict decode error reported from the reactor.
      ReactorSend(r, conn,
                  wire::EncodeErrorFrame(header.id,
                                         "malformed predict payload"));
      return;
    }
    const size_t shard = service_->registry().ShardOf(dataset);
    QueueItem item;
    item.conn = conn;
    item.header = header;
    item.payload = std::string(payload);
    if (!queues_[shard]->TryPush(std::move(item))) {
      ReactorSend(r, conn,
                  wire::EncodeShedResponse(header.id,
                                           static_cast<uint32_t>(shard),
                                           options_.retry_after_ms));
    }
    return;
  }
  // Control-plane ops (load/stats/shutdown) are rare and tiny: decode and
  // handle inline on the reactor.
  RequestLine request;
  std::string error;
  if (!wire::DecodeRequest(header, payload, &request, &error)) {
    // The frame boundary was sound, so the stream stays usable: report
    // against this id and keep serving the connection.
    ReactorSend(r, conn, wire::EncodeErrorFrame(header.id, error));
    return;
  }
  switch (request.op) {
    case RequestLine::Op::kPredict:
      // Unreachable: predicts took the peek-and-enqueue path above.
      break;
    case RequestLine::Op::kLoad:
      HandleLoad(r, conn, header.id, request);
      break;
    case RequestLine::Op::kStats:
      ReactorSend(r, conn,
                  wire::EncodeStatsResponse(header.id, MetricsSnapshot()));
      break;
    case RequestLine::Op::kShutdown:
      HandleShutdown(r, conn, header.id);
      break;
  }
}

void AsyncServer::Impl::HandleLoad(Reactor& r,
                                   const std::shared_ptr<Connection>& conn,
                                   uint64_t id, const RequestLine& request) {
  wire::LoadResult result;
  result.dataset = request.load_dataset;
  {
    // Registry mutation is HDIDX_BUILD_ONLY: park every shard worker and
    // wait out the in-flight serves so no Find() races the load. Only
    // in-flight — queued predicts stay queued (a parked worker cannot
    // drain them, so waiting for empty queues here would deadlock the
    // reactor) and are served against the updated registry after Resume.
    // Other reactors keep accepting; their predicts queue up, or shed
    // when the paused queues fill.
    common::MutexLock lock(&load_mu_);
    for (auto& queue : queues_) queue->Pause();
    for (auto& queue : queues_) queue->WaitActiveDrained();
    std::string load_error;
    result.ok = service_->registry().LoadFile(request.load_dataset,
                                              request.load_path, &load_error);
    if (result.ok) {
      const data::Dataset* dataset =
          service_->registry().Find(request.load_dataset);
      result.points = dataset->size();
      result.dims = static_cast<uint32_t>(dataset->dim());
      result.shard = static_cast<uint32_t>(
          service_->registry().ShardOf(request.load_dataset));
    } else {
      result.error = load_error;
    }
    for (auto& queue : queues_) queue->Resume();
  }
  ReactorSend(r, conn, wire::EncodeLoadResponse(id, result));
}

void AsyncServer::Impl::HandleShutdown(
    Reactor& r, const std::shared_ptr<Connection>& conn, uint64_t id) {
  // Drain first so every admitted predict's response is buffered on its
  // connection before the ack — a pipelined client that reads to the ack
  // has, by then, every response it was owed. Three things keep the
  // drain finite: BeginDrain sheds new predicts (sustained arrivals from
  // other reactors cannot extend the wait), Resume unparks workers (a
  // test-seam pause would otherwise stall WaitIdle forever), and
  // load_mu_ keeps the Resume from unparking workers in the middle of a
  // concurrent registry load.
  {
    common::MutexLock lock(&load_mu_);
    for (auto& queue : queues_) queue->BeginDrain();
    for (auto& queue : queues_) queue->Resume();
    for (auto& queue : queues_) queue->WaitIdle();
  }
  ReactorSend(r, conn, wire::EncodeShutdownResponse(
                           id, served_.load(std::memory_order_relaxed)));
  Stop();
}

void AsyncServer::Impl::ReactorSend(Reactor& r,
                                    const std::shared_ptr<Connection>& conn,
                                    std::string frame, bool close_after) {
  {
    common::MutexLock lock(&conn->mu);
    if (conn->closed) return;
    conn->outbound.append(frame);
    if (close_after) conn->close_after_flush = true;
  }
  FlushConnection(r, conn);
}

void AsyncServer::Impl::SendFromWorker(
    const std::shared_ptr<Connection>& conn, std::string frame) {
  bool was_drained = false;
  {
    common::MutexLock lock(&conn->mu);
    if (conn->closed) return;
    was_drained = conn->out_offset == conn->outbound.size();
    conn->outbound.append(frame);
  }
  if (was_drained) {
    // First bytes since the last full drain: the reactor has neither
    // EPOLLOUT armed nor a flush pending, so nudge it.
    Reactor& r = *reactors_[conn->reactor];
    {
      common::MutexLock lock(&r.inbox_mu);
      r.pending_flushes.push_back(conn);
    }
    WakeEventFd(r.wake_fd);
  }
}

void AsyncServer::Impl::FlushConnection(
    Reactor& r, const std::shared_ptr<Connection>& conn) {
  bool close_now = false;
  bool want_write = false;
  size_t pending = 0;
  {
    common::MutexLock lock(&conn->mu);
    if (conn->closed) return;
    while (conn->out_offset < conn->outbound.size()) {
      const ssize_t n =
          SendBytes(conn->fd, conn->outbound.data() + conn->out_offset,
                    conn->outbound.size() - conn->out_offset);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (n < 0 && errno == EINTR) continue;
      close_now = true;  // peer vanished mid-write
      break;
    }
    if (!close_now) {
      if (conn->out_offset == conn->outbound.size()) {
        conn->outbound.clear();
        conn->out_offset = 0;
        if (conn->close_after_flush) close_now = true;
      } else {
        want_write = true;
      }
      pending = conn->outbound.size() - conn->out_offset;
    }
  }
  if (close_now) {
    CloseConnection(r, conn);
    return;
  }
  UpdateInterest(r, conn, want_write, pending);
}

void AsyncServer::Impl::UpdateInterest(
    Reactor& r, const std::shared_ptr<Connection>& conn, bool want_write,
    size_t pending_bytes) {
  // Backpressure: a peer that stops reading accumulates outbound bytes;
  // past the limit we stop reading *it* until its buffer fully drains, so
  // a slow consumer cannot pin unbounded response memory.
  if (pending_bytes > options_.write_buffer_limit) {
    conn->reading_paused = true;
  } else if (pending_bytes == 0) {
    conn->reading_paused = false;
  }
  const uint32_t wanted = (conn->reading_paused ? 0u : EPOLLIN) |
                          (want_write ? EPOLLOUT : 0u);
  if (wanted == conn->armed_events) return;
  epoll_event ev{};
  ev.events = wanted;
  ev.data.fd = conn->fd;
  if (::epoll_ctl(r.epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->armed_events = wanted;
  }
}

void AsyncServer::Impl::CloseConnection(
    Reactor& r, const std::shared_ptr<Connection>& conn) {
  const auto it = r.conns.find(conn->fd);
  if (it == r.conns.end()) return;  // already closed
  {
    common::MutexLock lock(&conn->mu);
    conn->closed = true;
  }
  ::epoll_ctl(r.epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  r.conns.erase(it);
}

void AsyncServer::Impl::CleanupReactor(Reactor& r) {
  // Deliver what is already buffered (e.g. the shutdown ack) with a
  // bounded best-effort flush, then close everything. The fd stays
  // non-blocking throughout: a peer that stopped reading gets a small
  // POLLOUT grace budget, not a hold on shutdown — an unflushed tail is
  // the peer's loss, a wedged Wait()/JoinAll() would be everyone's.
  for (auto& [fd, conn] : r.conns) {
    common::MutexLock lock(&conn->mu);
    conn->closed = true;
    int budget = kFlushPollRounds;
    while (conn->out_offset < conn->outbound.size()) {
      const ssize_t n =
          SendBytes(fd, conn->outbound.data() + conn->out_offset,
                    conn->outbound.size() - conn->out_offset);
      if (n > 0) {
        conn->out_offset += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
          budget > 0) {
        --budget;
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, kFlushPollMs);
        continue;
      }
      break;  // peer vanished, or the grace budget is spent
    }
    ::close(fd);
  }
  r.conns.clear();
}

AsyncServer::AsyncServer(PredictionService* service,
                         const AsyncServerOptions& options)
    : impl_(std::make_unique<Impl>(service, options)) {}

AsyncServer::~AsyncServer() = default;

bool AsyncServer::Start(std::string* error) { return impl_->Start(error); }
uint16_t AsyncServer::port() const { return impl_->port(); }
uint64_t AsyncServer::Wait() { return impl_->Wait(); }
void AsyncServer::Stop() { impl_->Stop(); }
uint64_t AsyncServer::served() const { return impl_->served(); }
ServiceMetrics AsyncServer::MetricsSnapshot() const {
  return impl_->MetricsSnapshot();
}
void AsyncServer::PauseServingForTest() { impl_->PauseServing(); }
void AsyncServer::ResumeServingForTest() { impl_->ResumeServing(); }

}  // namespace hdidx::service
