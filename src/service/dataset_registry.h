#ifndef HDIDX_SERVICE_DATASET_REGISTRY_H_
#define HDIDX_SERVICE_DATASET_REGISTRY_H_

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "data/dataset.h"

namespace hdidx::service {

/// Owns every dataset a prediction service can answer questions about, each
/// loaded from disk exactly once and pinned for the life of the process —
/// the amortization that makes a resident service worth running at all.
///
/// Each dataset is deterministically assigned to one of `num_shards` shard
/// workers by a stable hash of its name, so a given dataset is always served
/// by the shard that owns it (and its cached artifacts), independent of
/// arrival order. The assignment depends only on (name, num_shards) — never
/// on load order — keeping routing reproducible across restarts.
///
/// Thread-safety: registration (LoadFile/Add) must happen on the control
/// thread between batches; Find() is safe to call concurrently from shard
/// workers because entries are immutable once registered and never removed.
class DatasetRegistry {
 public:
  /// Registry routing across `num_shards` shards (clamped to >= 1).
  explicit DatasetRegistry(size_t num_shards);

  /// Loads `path` under `name`: .csv files go through the text importer
  /// (default options), anything else through the binary .hdx reader.
  /// Re-registering an existing name is an error (datasets are immutable).
  /// Returns false and fills `*error` on failure.
  HDIDX_BUILD_ONLY bool LoadFile(const std::string& name,
                                 const std::string& path, std::string* error);

  /// Registers an in-memory dataset (tests, benchmarks). Same uniqueness
  /// rule as LoadFile.
  HDIDX_BUILD_ONLY bool Add(const std::string& name, data::Dataset dataset,
                            std::string* error);

  /// The dataset registered under `name`, or nullptr.
  HDIDX_CONCURRENT_READ const data::Dataset* Find(
      const std::string& name) const;

  /// Shard owning `name`: stable FNV-1a hash of the name mod num_shards.
  /// Defined for any name, registered or not.
  HDIDX_CONCURRENT_READ size_t ShardOf(const std::string& name) const;

  size_t num_shards() const { return num_shards_; }
  size_t size() const { return datasets_.size(); }

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

 private:
  size_t num_shards_;
  std::map<std::string, std::unique_ptr<data::Dataset>> datasets_;
};

}  // namespace hdidx::service

#endif  // HDIDX_SERVICE_DATASET_REGISTRY_H_
