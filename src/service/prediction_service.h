#ifndef HDIDX_SERVICE_PREDICTION_SERVICE_H_
#define HDIDX_SERVICE_PREDICTION_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "core/predictor.h"
#include "io/io_stats.h"
#include "io/keyed_lru_cache.h"
#include "service/dataset_registry.h"
#include "workload/query_workload.h"

namespace hdidx::service {

/// One prediction question: "what would a k-NN workload cost on an index
/// over this dataset, predicted by this method under this memory budget?"
struct ServiceRequest {
  /// Caller-chosen identifier echoed in the response (the line protocol
  /// assigns a running sequence number when absent).
  uint64_t id = 0;
  /// Name of a dataset registered with the service's DatasetRegistry.
  std::string dataset;
  /// Prediction technique: "mini", "cutoff", or "resampled".
  std::string method = "resampled";
  /// Memory budget M in points (mini: sampling fraction min(M/N, 1)).
  size_t memory = 10000;
  /// Number of density-biased k-NN queries in the workload.
  size_t num_queries = 100;
  /// Neighbors per query.
  size_t k = 10;
  /// Base seed: the workload is drawn with Rng(seed), the prediction runs
  /// with seed+1 — exactly hdidx_predict's seeding, so serving a request
  /// reproduces the CLI bit for bit.
  uint64_t seed = 1;
  /// Page size of the modeled disk.
  size_t page_bytes = 8192;
  /// Include the per-query access vector in the serialized response.
  bool per_query = false;
};

/// The deterministic payload plus serving metadata. Everything under
/// `result` (and `result_valid`/`error`) is bit-identical for a given
/// request regardless of shard count, arrival order, or cache state; the
/// remaining fields describe how this particular serving went.
struct ServiceResponse {
  uint64_t id = 0;
  bool ok = false;
  std::string error;

  /// The prediction payload (valid iff ok).
  core::PredictionResult result;

  // --- serving metadata (excluded from the determinism contract) ---
  /// Shard that computed or retrieved the result.
  size_t shard = 0;
  /// Whether the full result came out of the mini-index cache.
  bool cache_hit = false;
  /// Whether the workload came out of the workload cache (mini method).
  bool workload_cache_hit = false;
  /// Simulated I/O actually charged while serving this request: equals
  /// result.io on a cold run, zero on a cache hit — the operational saving
  /// the cache exists for.
  io::IoStats served_io;
  /// Wall-clock serving latency in milliseconds.
  double latency_ms = 0.0;
};

/// Point-in-time counters for monitoring.
struct ServiceMetrics {
  uint64_t requests = 0;
  uint64_t batches = 0;
  uint64_t errors = 0;
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_evictions = 0;
  uint64_t workload_hits = 0;
  uint64_t workload_misses = 0;
  uint64_t workload_evictions = 0;
  double mean_batch_size = 0.0;
  /// Requests refused by async admission control (always 0 for the
  /// synchronous ProcessBatch path; filled in by AsyncServer).
  uint64_t shed_total = 0;

  struct Shard {
    uint64_t requests = 0;
    double p50_ms = 0.0;
    double p90_ms = 0.0;
    double p99_ms = 0.0;
    /// Async admission-queue gauges (0 on the synchronous path).
    size_t queue_depth = 0;
    size_t peak_queue_depth = 0;
    uint64_t shed = 0;
  };
  std::vector<Shard> shards;
};

struct ServiceOptions {
  /// Number of shard workers; each owns the datasets hashed to it.
  size_t num_shards = 1;
  /// Total worker threads split evenly across shards (each shard gets
  /// max(1, total/num_shards)); 0 means common::ThreadCount().
  size_t total_threads = 0;
  /// Capacity, in entries, of each shard's result (mini-index) cache.
  size_t result_cache_entries = 64;
  /// Capacity, in entries, of each shard's workload cache.
  size_t workload_cache_entries = 32;
};

/// A resident, sharded front-end over the library's predictors.
///
/// Datasets are partitioned across shards by the registry's stable hash;
/// each shard owns a ThreadPool-backed ExecutionContext (threads split
/// evenly) plus an LRU cache of built prediction results and generated
/// workloads. ProcessBatch routes each request to its dataset's shard, runs
/// the shards concurrently, and returns responses in request order.
///
/// Determinism contract: every response's `result` is derived only from the
/// request fields and the registered dataset — workloads are seeded with
/// Rng(request.seed) and predictions with request.seed + 1, and each
/// prediction runs on the shard's ExecutionContext whose ParallelFor is
/// bit-identical for any thread count. A request therefore yields the same
/// bits for 1, 2, or N shards, for any arrival order, and whether it was
/// computed cold or returned from cache.
///
/// Thread-safety: each shard's caches and latency records are guarded by a
/// per-shard mutex, and the global counters are atomic, so ServeOnShard may
/// be called concurrently from any number of threads (the async server's
/// per-shard workers). ProcessBatch remains a single-control-thread batch
/// front-end (its internal shard fan-out is the service's own). Registry
/// mutation (LoadFile/Add) must still be externally quiesced against
/// in-flight serving — see DatasetRegistry's phase contract.
class PredictionService {
 public:
  explicit PredictionService(const ServiceOptions& options);
  ~PredictionService();

  PredictionService(const PredictionService&) = delete;
  PredictionService& operator=(const PredictionService&) = delete;

  DatasetRegistry& registry() { return registry_; }
  const DatasetRegistry& registry() const { return registry_; }

  size_t num_shards() const { return shards_.size(); }
  size_t threads_per_shard() const;

  /// Serves a batch: partitions requests per shard (preserving arrival
  /// order within a shard), runs all shards concurrently, and returns one
  /// response per request in the batch's original order.
  std::vector<ServiceResponse> ProcessBatch(
      const std::vector<ServiceRequest>& requests);

  /// Convenience for single requests (a batch of one).
  ServiceResponse Process(const ServiceRequest& request);

  /// Serves one request directly on shard `shard_index`, which must be
  /// `registry().ShardOf(request.dataset)` (checked). Safe to call
  /// concurrently; does not count toward batch statistics. This is the
  /// async server's entry point — one call per dequeued request.
  ServiceResponse ServeOnShard(size_t shard_index,
                               const ServiceRequest& request);

  ServiceMetrics Metrics() const;

  /// Drops all cached artifacts (counters included); datasets stay loaded.
  /// Used by benchmarks to measure the cold path repeatedly.
  void ClearCaches();

 private:
  struct Shard;

  /// Computes or retrieves the response for one request on shard
  /// `shard_index` and records its latency (thread-safe).
  ServiceResponse Serve(size_t shard_index, const ServiceRequest& request);

  /// The cache-or-compute body; takes the shard mutex only around cache
  /// and latency accesses, never across a prediction.
  ServiceResponse Compute(Shard* shard, const ServiceRequest& request);

  DatasetRegistry registry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace hdidx::service

#endif  // HDIDX_SERVICE_PREDICTION_SERVICE_H_
