#ifndef HDIDX_CORE_PREDICTOR_H_
#define HDIDX_CORE_PREDICTOR_H_

#include <cstddef>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "data/dataset.h"
#include "geometry/bounding_box.h"
#include "index/rtree.h"
#include "index/topology.h"
#include "io/io_stats.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace hdidx::core {

/// Common output of every prediction technique in this library (mini-index,
/// cutoff, resampled) and of the measurement harness: the paper's headline
/// quantity (average leaf page accesses per query), the per-query values
/// behind the correlation diagrams of Figures 11-12, and the I/O the
/// prediction itself cost.
struct PredictionResult {
  /// Average number of leaf page accesses per query — the model's output.
  double avg_leaf_accesses = 0.0;

  /// Per-query access counts, aligned with the workload's query order.
  std::vector<double> per_query_accesses;

  /// Disk activity charged to the prediction (its own cost, not the
  /// predicted index's cost).
  io::IoStats io;

  /// Number of leaf pages in the predicted layout; should track the full
  /// index's leaf count when the structure is replicated faithfully.
  size_t num_predicted_leaves = 0;

  /// Echo of the parameters the prediction ran with.
  size_t h_upper = 0;
  double sigma_upper = 1.0;
  double sigma_lower = 1.0;
};

/// Counts, for each query region, how many of `leaf_boxes` it intersects
/// (k-NN spheres or range boxes alike), and fills the result's access
/// fields. Shared by all predictors.
///
/// Queries are counted concurrently on `ctx`; each writes only its own
/// per_query_accesses slot and the average is reduced serially in query
/// order afterwards, so every result field is bit-identical for any thread
/// count (including 1).
void CountLeafIntersections(
    const std::vector<geometry::BoundingBox>& leaf_boxes,
    const workload::QueryRegions& queries, PredictionResult* result,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

/// Measures per-query leaf page accesses on a real tree for any region
/// type: a DFS from the root prunes subtrees whose MBR the region misses.
/// If `io` is non-null every page touched (leaf and directory) is charged
/// as one random access.
///
/// Parallel over queries on `ctx`; per-query page counts are reduced into
/// `io` serially in query order, keeping the counters bit-identical to the
/// serial implementation.
std::vector<double> MeasureLeafAccesses(
    const index::RTree& tree, const workload::QueryRegions& queries,
    io::IoStats* io,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

/// Charges the I/O of the predictors' first pass (Figures 5 and 7, steps
/// 2-4) against `file` — q random query-point reads (Equation 2) plus one
/// sequential full scan (cost_ScanDataset) — and returns the uniform sample
/// of min(sample_size, N) points the scan extracts. The workload itself is
/// supplied externally so that measurement and prediction share identical
/// query spheres.
data::Dataset ChargeScanAndDrawSample(io::PagedFile* file,
                                      size_t num_query_points,
                                      size_t sample_size, common::Rng* rng);

/// The upper tree shared by the cutoff and resampled predictors: built on
/// the memory-sized sample with the full tree's structure down to
/// StopLevel(h_upper), leaves grown by the compensation factor.
struct UpperTreeResult {
  /// Grown upper-tree leaf boxes (k of them).
  std::vector<geometry::BoundingBox> grown_leaves;
  /// Estimated full-index point count under each leaf (leaf sample count
  /// divided by sigma_upper).
  std::vector<double> full_points_per_leaf;
  double sigma_upper = 1.0;
  size_t stop_level = 1;
};
/// The upper-tree bulk load fans out on `ctx` with a bit-identical layout
/// for every thread count (see BulkLoadOptions::exec).
UpperTreeResult BuildGrownUpperTree(
    const data::Dataset& sample, const index::TreeTopology& topology,
    size_t h_upper, double sigma_upper,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::core

#endif  // HDIDX_CORE_PREDICTOR_H_
