#ifndef HDIDX_CORE_HUPPER_H_
#define HDIDX_CORE_HUPPER_H_

#include <cstddef>

#include "index/topology.h"

namespace hdidx::core {

/// Helpers for choosing the upper-tree height h_upper (Section 4.5).
///
/// The upper tree spans full-tree levels height .. height-h_upper+1; its
/// leaves sit at StopLevel(h_upper) = height - h_upper + 1, and one lower
/// tree hangs below each of them.

/// Full-tree level of the upper tree's leaves.
size_t StopLevel(const index::TreeTopology& topology, size_t h_upper);

/// Sampling ratio of the upper tree: sigma_upper = min(M/N, 1).
double SigmaUpper(const index::TreeTopology& topology, size_t memory_points);

/// Sampling ratio of the lower trees: sigma_lower = min(k*M/N, 1) where k is
/// the number of upper-tree leaf pages.
double SigmaLower(const index::TreeTopology& topology, size_t memory_points,
                  size_t h_upper);

/// Valid h_upper range [lower, upper] per Section 4.5.1: the upper bound
/// keeps upper-tree leaf pages at >= 2 sample points; the lower bound
/// (resampled variant only — the cutoff tree has none) keeps lower-tree leaf
/// pages at >= 2 resampled points. Both are clamped to [2, height-1]; for
/// trees too small to satisfy a bound the range collapses to a single
/// feasible value.
struct HupperBounds {
  size_t lower = 2;
  size_t upper = 2;
};
HupperBounds ComputeHupperBounds(const index::TreeTopology& topology,
                                 size_t memory_points, bool resampled);

/// The paper's empirically best choice (Section 4.5.2): the h_upper whose
/// lower trees would hold approximately M points before sampling, i.e.
/// pts(StopLevel) closest to M (log-scale distance), over the structural
/// range [2, height-1]. The capacity bounds are reported separately by
/// ComputeHupperBounds and are advisory — the paper itself runs borderline
/// configurations.
size_t ChooseHupper(const index::TreeTopology& topology, size_t memory_points);

}  // namespace hdidx::core

#endif  // HDIDX_CORE_HUPPER_H_
