#ifndef HDIDX_CORE_RESAMPLED_H_
#define HDIDX_CORE_RESAMPLED_H_

#include <cstdint>

#include "core/predictor.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace hdidx::core {

/// Parameters of the resampled index tree (Section 4.4).
struct ResampledParams {
  /// Memory size M in points.
  size_t memory_points = 0;
  /// Height of the upper tree; core/hupper.h implements the paper's choice
  /// rule (lower trees of ~M unsampled points).
  size_t h_upper = 2;
  /// Seed for the sampling steps.
  uint64_t seed = 1;
};

/// The resampled prediction (Figure 7) — the paper's primary technique.
///
/// After building and growing the upper tree exactly as the cutoff variant
/// does, a second pass samples the dataset at the k-fold higher rate
/// sigma_lower = min(k*M/N, 1), assigns every sampled point to the grown
/// upper leaf containing it (or the nearest one by Euclidean MINDIST —
/// Figure 6), and stages each leaf's points in one of k consecutive
/// simulated disk areas using the chunked write pattern of Figure 8, whose
/// I/O is Equation 4. Each lower tree is then bulk-loaded in memory on up to
/// M points (overflow beyond M is discarded, footnote 5), its data pages
/// grown by the compensation factor for sigma_lower, and query-sphere
/// intersections counted over all lower-tree data pages.
///
/// Total prediction I/O is Equation 5: query-point reads + dataset scan +
/// resampling pass + lower-tree area reads — one to two orders of magnitude
/// below building the index on disk, at typically <5% relative error when
/// h_upper follows the Section 4.5 rule.
PredictionResult PredictWithResampledTree(
    io::PagedFile* file, const index::TreeTopology& topology,
    const workload::QueryRegions& queries, const ResampledParams& params,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::core

#endif  // HDIDX_CORE_RESAMPLED_H_
