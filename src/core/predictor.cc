#include "core/predictor.h"

#include <algorithm>

#include "core/compensation.h"
#include "geometry/distance.h"
#include "geometry/kernels.h"
#include "index/bulk_loader.h"
#include "index/rtree.h"

namespace hdidx::core {

void CountLeafIntersections(
    const std::vector<geometry::BoundingBox>& leaf_boxes,
    const workload::QueryRegions& queries, PredictionResult* result,
    const common::ExecutionContext& ctx) {
  const size_t q = queries.size();
  result->per_query_accesses.assign(q, 0.0);
  result->num_predicted_leaves = leaf_boxes.size();
  // One SoA slab over the predicted leaf layout, built once per prediction
  // and read concurrently by every query chunk. On the scalar escape hatch
  // (HDIDX_KERNEL=scalar) the slab stays empty and CountIntersections falls
  // back to the retained per-box Intersects loop.
  geometry::kernels::BoxSlab slab;
  if (geometry::kernels::ActiveKernelMode() !=
      geometry::kernels::KernelMode::kScalar) {
    slab = geometry::kernels::BoxSlab(std::span(leaf_boxes));
  }
  ctx.ParallelFor(0, q, /*grain=*/0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      result->per_query_accesses[i] = static_cast<double>(
          queries.CountIntersections(i, leaf_boxes, slab));
    }
  });
  // Serial reduction in query order: the same floating-point additions, in
  // the same order, as the serial loop.
  double total = 0.0;
  for (size_t i = 0; i < q; ++i) total += result->per_query_accesses[i];
  result->avg_leaf_accesses = q > 0 ? total / static_cast<double>(q) : 0.0;
}

std::vector<double> MeasureLeafAccesses(const index::RTree& tree,
                                        const workload::QueryRegions& queries,
                                        io::IoStats* io,
                                        const common::ExecutionContext& ctx) {
  const size_t q = queries.size();
  std::vector<double> result(q, 0.0);
  if (tree.empty()) return result;
  std::vector<uint64_t> pages_touched(q, 0);
  ctx.ParallelFor(0, q, /*grain=*/0, [&](size_t begin, size_t end) {
    std::vector<uint32_t> stack;  // reused DFS stack, private to the chunk
    for (size_t i = begin; i < end; ++i) {
      size_t leaves = 0;
      size_t dirs = 0;
      const index::RTreeNode& root = tree.node(tree.root());
      if (root.is_leaf()) {
        leaves = root.pages;  // the single page is always read
      } else {
        dirs = root.pages;  // the root page is always read
        if (queries.Intersects(i, root.box)) {
          stack.assign(root.children.begin(), root.children.end());
          while (!stack.empty()) {
            const uint32_t id = stack.back();
            stack.pop_back();
            const index::RTreeNode& n = tree.node(id);
            if (!queries.Intersects(i, n.box)) continue;
            if (n.is_leaf()) {
              leaves += n.pages;
            } else {
              dirs += n.pages;
              for (uint32_t child : n.children) stack.push_back(child);
            }
          }
        }
      }
      result[i] = static_cast<double>(leaves);
      pages_touched[i] = leaves + dirs;
    }
  });
  if (io != nullptr) {
    // Reduced serially in query order — bit-identical to the serial loop.
    for (size_t i = 0; i < q; ++i) {
      io->page_seeks += pages_touched[i];
      io->page_transfers += pages_touched[i];
    }
  }
  return result;
}

data::Dataset ChargeScanAndDrawSample(io::PagedFile* file,
                                      size_t num_query_points,
                                      size_t sample_size, common::Rng* rng) {
  const size_t n = file->size();
  const size_t dim = file->dim();

  // Step 2: q random accesses for the query points (Equation 2). The bytes
  // themselves come from the shared workload; only the cost is charged.
  for (size_t i = 0; i < num_query_points; ++i) {
    file->InvalidateHead();
    file->ChargeAccess(static_cast<size_t>(rng->NextBounded(n)), 1);
  }

  // Step 3: one sequential scan of the whole dataset; the sample positions
  // are chosen up front and collected on the way through.
  std::vector<size_t> rows;
  rng->SampleIndices(n, std::min(sample_size, n), &rows);
  file->InvalidateHead();
  file->ChargeAccess(0, n);
  const auto raw = file->raw();
  data::Dataset sample(dim);
  sample.Reserve(rows.size());
  for (size_t row : rows) {
    sample.Append(raw.subspan(row * dim, dim));
  }
  return sample;
}

UpperTreeResult BuildGrownUpperTree(const data::Dataset& sample,
                                    const index::TreeTopology& topology,
                                    size_t h_upper, double sigma_upper,
                                    const common::ExecutionContext& ctx) {
  UpperTreeResult result;
  result.sigma_upper = sigma_upper;
  result.stop_level = topology.height() - h_upper + 1;

  index::BulkLoadOptions options;
  options.topology = &topology;
  options.scale = sigma_upper;
  options.root_level = topology.height();
  options.stop_level = result.stop_level;
  options.exec = &ctx;
  const index::RTree upper = index::BulkLoadInMemory(sample, options);

  result.grown_leaves.reserve(upper.num_leaves());
  result.full_points_per_leaf.reserve(upper.num_leaves());
  for (uint32_t id : upper.leaf_ids()) {
    const index::RTreeNode& node = upper.node(id);
    const double full_points =
        static_cast<double>(node.count) / sigma_upper;
    geometry::BoundingBox box = node.box;
    box.InflateAboutCenter(
        CompensationGrowthPerDim(full_points, sigma_upper));
    result.grown_leaves.push_back(std::move(box));
    result.full_points_per_leaf.push_back(full_points);
  }
  return result;
}

}  // namespace hdidx::core
