#include "core/mini_index.h"

#include <algorithm>

#include "common/check.h"
#include "core/compensation.h"
#include "index/bulk_loader.h"

namespace hdidx::core {

std::vector<geometry::BoundingBox> BuildGrownMiniIndexLeaves(
    const data::Dataset& data, const index::TreeTopology& topology,
    const MiniIndexParams& params, const common::ExecutionContext& ctx) {
  HDIDX_CHECK(params.sampling_fraction > 0.0 && params.sampling_fraction <= 1.0);

  // Draw the uniform sample.
  common::Rng rng(params.seed);
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(data.size()) *
                             params.sampling_fraction));
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), sample_size, &rows);
  const data::Dataset sample = data.Select(rows);
  const double zeta =
      static_cast<double>(sample.size()) / static_cast<double>(data.size());

  // Bulk-load the miniature index with the full tree's structure: same
  // construction algorithm, partition targets scaled by zeta.
  index::BulkLoadOptions options;
  options.topology = &topology;
  options.scale = zeta;
  options.root_level = topology.height();
  options.stop_level = 1;
  options.split_strategy = params.split_strategy;
  options.adaptive = params.adaptive;
  options.exec = &ctx;
  const index::RTree mini = index::BulkLoadInMemory(sample, options);

  // Grow every leaf by the compensation factor. The page capacity entering
  // Theorem 1 is each leaf's own (estimated) full occupancy c/zeta — the
  // per-page analogue of C_eff,data.
  std::vector<geometry::BoundingBox> leaves;
  leaves.reserve(mini.num_leaves());
  for (uint32_t id : mini.leaf_ids()) {
    const index::RTreeNode& node = mini.node(id);
    geometry::BoundingBox box = node.box;
    if (params.compensate) {
      const double full_capacity = static_cast<double>(node.count) / zeta;
      box.InflateAboutCenter(CompensationGrowthPerDim(full_capacity, zeta));
    }
    leaves.push_back(std::move(box));
  }
  return leaves;
}

PredictionResult PredictWithMiniIndex(const data::Dataset& data,
                                      const index::TreeTopology& topology,
                                      const workload::QueryRegions& queries,
                                      const MiniIndexParams& params,
                                      const common::ExecutionContext& ctx) {
  PredictionResult result;
  result.sigma_upper = params.sampling_fraction;
  const std::vector<geometry::BoundingBox> leaves =
      BuildGrownMiniIndexLeaves(data, topology, params, ctx);
  CountLeafIntersections(leaves, queries, &result, ctx);
  return result;
}

}  // namespace hdidx::core
