#include "core/resampled.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "core/compensation.h"
#include "core/hupper.h"
#include "geometry/distance.h"
#include "geometry/kernels.h"
#include "index/bulk_loader.h"
#include "index/rtree.h"

namespace hdidx::core {

namespace {

/// Index of the grown upper leaf a point belongs to: the first box
/// containing it, else the box with minimal MINDIST (squared, with early
/// abandoning against the best so far). Retained scalar reference for the
/// batched kernels::NearestBox, which computes the identical index (same
/// accumulation order, same strict-< tie-break) from the SoA slab.
size_t AssignToBox(std::span<const float> point,
                   const std::vector<geometry::BoundingBox>& boxes) {
  size_t best = 0;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (size_t b = 0; b < boxes.size(); ++b) {
    const auto& lo = boxes[b].lo();
    const auto& hi = boxes[b].hi();
    double d2 = 0.0;
    for (size_t k = 0; k < point.size(); ++k) {
      double diff = 0.0;
      if (point[k] < lo[k]) {
        diff = static_cast<double>(lo[k]) - point[k];
      } else if (point[k] > hi[k]) {
        diff = static_cast<double>(point[k]) - hi[k];
      }
      d2 += diff * diff;
      if (d2 >= best_d2) break;
    }
    if (d2 < best_d2) {
      best_d2 = d2;
      best = b;
      if (d2 == 0.0) break;  // containment: no closer box exists
    }
  }
  return best;
}

}  // namespace

PredictionResult PredictWithResampledTree(
    io::PagedFile* file, const index::TreeTopology& topology,
    const workload::QueryRegions& queries, const ResampledParams& params,
    const common::ExecutionContext& ctx) {
  HDIDX_CHECK(params.memory_points > 0);
  HDIDX_CHECK(params.h_upper >= 1 && params.h_upper < topology.height());

  PredictionResult result;
  result.h_upper = params.h_upper;
  result.sigma_upper = SigmaUpper(topology, params.memory_points);

  const io::IoStats before = file->stats();
  common::Rng rng(params.seed);
  const size_t n = file->size();
  const size_t dim = file->dim();
  const size_t m = params.memory_points;

  // Steps 2-4: query-point reads plus the scan that yields the upper
  // sample.
  const data::Dataset sample =
      ChargeScanAndDrawSample(file, queries.size(), m, &rng);

  // Step 5: upper tree with grown leaves; k = number of upper leaf pages.
  const UpperTreeResult upper = BuildGrownUpperTree(
      sample, topology, params.h_upper, result.sigma_upper, ctx);
  const size_t k = upper.grown_leaves.size();
  const double sigma_lower = std::min(
      1.0, static_cast<double>(k) * static_cast<double>(m) /
               static_cast<double>(n));
  result.sigma_lower = sigma_lower;

  // Steps 6-7: the resampling pass (Figure 8). Sample positions are chosen
  // up front; the pass reads the file sequentially in chunks of M sampled
  // points, distributes each chunk among the k consecutive disk areas, and
  // pays Equation 4's seeks/transfers through the PagedFile charging.
  std::vector<size_t> resample_rows;
  rng.SampleIndices(
      n,
      static_cast<size_t>(
          std::llround(sigma_lower * static_cast<double>(n))),
      &resample_rows);

  io::PagedFile areas(dim, file->disk());
  areas.Resize(k * m);
  std::vector<size_t> area_fill(k, 0);  // points stored per area
  const auto raw = file->raw();

  // One SoA slab over the grown upper leaves (never empty boxes), reused by
  // every chunk's point assignment below; scalar mode keeps AssignToBox.
  const geometry::kernels::KernelMode kernel_mode =
      geometry::kernels::ActiveKernelMode();
  geometry::kernels::BoxSlab leaf_slab;
  if (kernel_mode != geometry::kernels::KernelMode::kScalar) {
    leaf_slab = geometry::kernels::BoxSlab(std::span(upper.grown_leaves));
  }

  size_t next = 0;
  std::vector<std::vector<float>> chunk_groups(k);
  while (next < resample_rows.size()) {
    const size_t chunk_begin_row = resample_rows[next];
    const size_t chunk_count = std::min<size_t>(m, resample_rows.size() - next);
    const size_t chunk_end_row = resample_rows[next + chunk_count - 1] + 1;
    // Sequential read over the file span covering this chunk's samples.
    file->ChargeAccess(chunk_begin_row, chunk_end_row - chunk_begin_row);

    for (auto& group : chunk_groups) group.clear();
    for (size_t i = 0; i < chunk_count; ++i) {
      const size_t row = resample_rows[next + i];
      const std::span<const float> point = raw.subspan(row * dim, dim);
      const size_t box =
          kernel_mode != geometry::kernels::KernelMode::kScalar
              ? geometry::kernels::NearestBox(point, leaf_slab, kernel_mode)
              : AssignToBox(point, upper.grown_leaves);
      chunk_groups[box].insert(chunk_groups[box].end(), point.begin(),
                               point.end());
    }
    // Write each group to its area; overflow beyond M points per area is
    // discarded (footnote 5).
    for (size_t b = 0; b < k; ++b) {
      const size_t group_points = chunk_groups[b].size() / dim;
      if (group_points == 0) continue;
      const size_t space = m - area_fill[b];
      const size_t take = std::min(group_points, space);
      if (take > 0) {
        areas.Write(b * m + area_fill[b], take, chunk_groups[b].data());
        area_fill[b] += take;
      }
    }
    // The head returns to the data file for the next chunk: next chunk's
    // read pays its seek.
    file->InvalidateHead();
    next += chunk_count;
  }

  // Steps 8-11: read each area back (k random area reads) and bulk-load the
  // lower tree in memory; grow its data pages for sigma_lower.
  std::vector<geometry::BoundingBox> leaves;
  leaves.reserve(topology.NumLeaves());
  std::vector<float> area_points;
  for (size_t b = 0; b < k; ++b) {
    const size_t count = area_fill[b];
    if (count == 0) {
      // No resampled point landed in this box; fall back to the grown upper
      // leaf itself so the page is not lost from the layout.
      leaves.push_back(upper.grown_leaves[b]);
      continue;
    }
    area_points.resize(count * dim);
    areas.InvalidateHead();
    areas.Read(b * m, count, area_points.data());
    const data::Dataset lower_points(area_points, dim);

    // Effective sampling ratio of THIS lower tree: what its area actually
    // holds over the upper tree's estimate of the subtree's full
    // population. Using the global sigma_lower instead would break
    // structural similarity whenever an area overflowed M and discarded
    // points (footnote 5) or the subtree sizes are uneven — the lower tree
    // would come out with the wrong number of pages. Values above 1 are
    // legitimate: a grown box can attract more resampled points than the
    // subtree it models holds, and scaling keeps its page count at the
    // upper tree's estimate.
    const double zeta = static_cast<double>(count) /
                        std::max(1.0, upper.full_points_per_leaf[b]);

    index::BulkLoadOptions options;
    options.topology = &topology;
    options.scale = zeta;
    options.root_level = upper.stop_level;
    options.stop_level = 1;
    options.exec = &ctx;
    const index::RTree lower = index::BulkLoadInMemory(lower_points, options);

    for (uint32_t id : lower.leaf_ids()) {
      const index::RTreeNode& node = lower.node(id);
      geometry::BoundingBox box = node.box;
      const double full_capacity = static_cast<double>(node.count) / zeta;
      box.InflateAboutCenter(CompensationGrowthPerDim(full_capacity, zeta));
      leaves.push_back(std::move(box));
    }
  }

  // Step 12: intersection counting (the only parallel section — the
  // resampling pass above charges all its I/O serially on this thread).
  CountLeafIntersections(leaves, queries, &result, ctx);
  result.io = file->stats() + areas.stats();
  result.io.page_seeks -= before.page_seeks;
  result.io.page_transfers -= before.page_transfers;
  return result;
}

}  // namespace hdidx::core
