#include "core/compensation.h"

#include <algorithm>
#include <cmath>

namespace hdidx::core {

double CompensationGrowthPerDim(double capacity, double zeta) {
  if (zeta >= 1.0) return 1.0;
  // Clamp into the theorem's domain: the full page must hold more than one
  // point and the sampled page at least slightly more than one, otherwise
  // there is no extent to compare. A sampled page at the clamp (1.5 points)
  // caps the per-dimension growth at 5*(C-1)/(C+1) < 5 — unbounded growth
  // from near-single-point pages would dominate every prediction.
  const double c = std::max(capacity, 1.5);
  const double kMinSampledPoints = 1.5;
  const double c_zeta = std::max(c * zeta, kMinSampledPoints);
  return ((c_zeta + 1.0) * (c - 1.0)) / ((c_zeta - 1.0) * (c + 1.0));
}

double CompensationDelta(double capacity, double zeta, size_t dim) {
  return std::pow(CompensationGrowthPerDim(capacity, zeta),
                  static_cast<double>(dim));
}

}  // namespace hdidx::core
