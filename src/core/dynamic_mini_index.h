#ifndef HDIDX_CORE_DYNAMIC_MINI_INDEX_H_
#define HDIDX_CORE_DYNAMIC_MINI_INDEX_H_

#include <cstdint>

#include "core/predictor.h"
#include "data/dataset.h"
#include "index/rstar.h"
#include "workload/query_workload.h"

namespace hdidx::core {

/// Parameters of the sampling model applied to a *dynamically built*
/// R*-tree.
struct DynamicMiniIndexParams {
  /// Sampling fraction zeta in (0, 1].
  double sampling_fraction = 0.1;
  /// Whether to grow the sampled leaf pages by the compensation factor.
  bool compensate = true;
  /// Seed for drawing the sample (the insertion order is the sample order).
  uint64_t seed = 1;
};

/// Section 3.1 applied to the insertion-built R*-tree: "the bulk-loading
/// algorithm of a given index structure can be simply reused" — for a
/// dynamic structure the construction algorithm *is* the insertion
/// algorithm, so the mini-index runs the same R* insertions on a
/// zeta-sample with the data-page capacity reduced to ~C*zeta (directory
/// capacity unchanged: the number of leaves, and hence the directory
/// structure above them, is preserved). Leaf pages are then grown by the
/// Theorem 1 compensation factor and query-region intersections counted.
PredictionResult PredictDynamicRStar(
    const data::Dataset& data, const index::RStarTree::Options& options,
    const workload::QueryRegions& queries, const DynamicMiniIndexParams& params,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::core

#endif  // HDIDX_CORE_DYNAMIC_MINI_INDEX_H_
