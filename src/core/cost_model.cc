#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/hupper.h"

namespace hdidx::core {

namespace {

size_t CeilDiv(size_t a, size_t b) { return (a + b - 1) / b; }

/// Best-case cost of recursively partitioning `n` points at `level` of the
/// tree, per the derivation in the header comment.
void BuildLevelCost(const index::TreeTopology& topo, size_t level, size_t n,
                    size_t memory_points, size_t points_per_page,
                    io::IoStats* io) {
  if (n == 0) return;
  if (n <= memory_points) {
    // Read the range, finish the whole subtree in memory, write the data
    // pages back.
    io->page_seeks += 2;
    io->page_transfers += 2 * CeilDiv(n, points_per_page);
    return;
  }
  if (level == 1) {
    // Degenerate (M below the page capacity): write-only.
    io->page_seeks += 1;
    io->page_transfers += CeilDiv(n, points_per_page);
    return;
  }
  const size_t child_cap = topo.SubtreeCapacity(level - 1);
  const size_t fanout = CeilDiv(n, child_cap);
  // Binary split recursion, charging one best-case partition pass per
  // binary split over the subrange it touches.
  struct Frame {
    size_t lo_points;
    size_t fanout;
  };
  // Explicit recursion over (points, fanout) pairs.
  std::vector<Frame> stack = {{n, fanout}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    if (f.fanout <= 1) {
      BuildLevelCost(topo, level - 1, f.lo_points, memory_points,
                     points_per_page, io);
      continue;
    }
    if (f.lo_points <= memory_points) {
      // The whole range fits: handled as an in-memory subtree.
      io->page_seeks += 2;
      io->page_transfers += 2 * CeilDiv(f.lo_points, points_per_page);
      continue;
    }
    // One best-case external partition pass: the range is read in
    // sequential memory-sized chunks, but the in-place write-back of the
    // partitioned pages scatters between the low and high frontiers, so
    // every written page is a random access. This reconstruction reproduces
    // the paper's Figure 9 relations (on-disk about one order of magnitude
    // above resampled and up to two above cutoff); a fully sequential
    // write-back model would make on-disk build only ~2x the resampled
    // prediction, contradicting both Figure 9 and the measured Table 3.
    const size_t pages = CeilDiv(f.lo_points, points_per_page);
    io->page_seeks += CeilDiv(f.lo_points, memory_points) + pages;
    io->page_transfers += 2 * pages;
    const size_t left_fanout = (f.fanout + 1) / 2;
    const size_t left_points =
        std::min(f.lo_points, left_fanout * child_cap);
    stack.push_back({left_points, left_fanout});
    stack.push_back({f.lo_points - left_points, f.fanout - left_fanout});
  }
}

}  // namespace

io::IoStats ReadQueryPointsCost(const CostModelInputs& in) {
  io::IoStats io;
  io.page_seeks = in.num_query_points;
  io.page_transfers = in.num_query_points;
  return io;
}

io::IoStats ScanDatasetCost(const CostModelInputs& in) {
  io::IoStats io;
  io.page_seeks = 1;
  io.page_transfers = CeilDiv(in.num_points, in.PointsPerPage());
  return io;
}

io::IoStats OnDiskBuildCost(const CostModelInputs& in) {
  const index::TreeTopology topo = in.Topology();
  io::IoStats io;
  BuildLevelCost(topo, topo.height(), in.num_points, in.memory_points,
                 in.PointsPerPage(), &io);
  // Directory pages: one sequential write.
  size_t dir_nodes = 0;
  for (size_t level = 2; level <= topo.height(); ++level) {
    dir_nodes += topo.NodesAtLevel(level);
  }
  io.page_seeks += 1;
  io.page_transfers += dir_nodes;
  return io;
}

io::IoStats CutoffCost(const CostModelInputs& in) {
  return ReadQueryPointsCost(in) + ScanDatasetCost(in);
}

io::IoStats ResamplingPassCost(const CostModelInputs& in, size_t h_upper) {
  const index::TreeTopology topo = in.Topology();
  const double sigma_lower = SigmaLower(topo, in.memory_points, h_upper);
  const size_t k = topo.NodesAtLevel(StopLevel(topo, h_upper));
  const size_t b = in.PointsPerPage();
  const size_t m = in.memory_points;
  const double n = static_cast<double>(in.num_points);

  const size_t chunks = static_cast<size_t>(
      std::ceil(n * sigma_lower / static_cast<double>(m)));
  io::IoStats io;
  // Per chunk (Equation 4): one seek + ceil(M/(B*sigma_lower)) transfers to
  // scan the span containing M sampled points, then k seeks +
  // ceil(M/B) transfers to distribute them over the areas.
  const size_t scan_pages = static_cast<size_t>(std::ceil(
      static_cast<double>(m) / (static_cast<double>(b) * sigma_lower)));
  const size_t write_pages = CeilDiv(m, b);
  io.page_seeks = chunks * (1 + k);
  io.page_transfers = chunks * (scan_pages + write_pages);
  return io;
}

io::IoStats ResampledCost(const CostModelInputs& in, size_t h_upper) {
  const index::TreeTopology topo = in.Topology();
  const size_t k = topo.NodesAtLevel(StopLevel(topo, h_upper));
  io::IoStats io = ReadQueryPointsCost(in);
  io += ScanDatasetCost(in);
  io += ResamplingPassCost(in, h_upper);
  // cost_BuildLowerSubtrees: k reads of ~M points each.
  io::IoStats lower;
  lower.page_seeks = k;
  lower.page_transfers = k * CeilDiv(in.memory_points, in.PointsPerPage());
  io += lower;
  return io;
}

}  // namespace hdidx::core
