#include "core/sstree_predict.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "index/bulk_loader.h"
#include "index/sstree.h"

namespace hdidx::core {

double SphereCompensationGrowth(double capacity, double zeta, size_t dim) {
  if (zeta >= 1.0) return 1.0;
  const double d = static_cast<double>(dim);
  const double c = std::max(capacity, 1.5);
  const double c_zeta = std::max(c * zeta, 1.5);
  const double full_fraction = c * d / (c * d + 1.0);
  const double sampled_fraction = c_zeta * d / (c_zeta * d + 1.0);
  return full_fraction / sampled_fraction;
}

double AdaptiveSphereGrowth(double mean_distance, double max_distance,
                            size_t sample_count, double zeta) {
  if (zeta >= 1.0 || sample_count < 2) return 1.0;
  if (max_distance <= 0.0 || mean_distance <= 0.0) return 1.0;
  const double n = static_cast<double>(sample_count);
  // Target ratio mean/max = [p/(p+1)] * [(np+1)/(np)], monotone increasing
  // in p from 1/n (p -> 0) towards 1 (p -> inf): solve by bisection.
  const double ratio =
      std::clamp(mean_distance / max_distance, 1.05 / n, 0.999);
  double lo = 1e-3, hi = 1e3;
  for (int iter = 0; iter < 80; ++iter) {
    const double p = 0.5 * (lo + hi);
    const double r = (p / (p + 1.0)) * ((n * p + 1.0) / (n * p));
    if (r < ratio) {
      lo = p;
    } else {
      hi = p;
    }
  }
  const double p = 0.5 * (lo + hi);
  const double full_n = n / zeta;
  // growth = E[max of n/zeta] / E[max of n] under F(r) = (r/R)^p.
  return (full_n * p / (full_n * p + 1.0)) * ((n * p + 1.0) / (n * p));
}

SsTreePredictionResult PredictSsTreeWithMiniIndex(
    const data::Dataset& data, const index::TreeTopology& topology,
    const workload::QueryWorkload& workload, const MiniIndexParams& params,
    const common::ExecutionContext& ctx) {
  HDIDX_CHECK(params.sampling_fraction > 0.0 && params.sampling_fraction <= 1.0);
  common::Rng rng(params.seed);
  const size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(data.size()) *
                             params.sampling_fraction));
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), sample_size, &rows);
  const data::Dataset sample = data.Select(rows);
  const double zeta =
      static_cast<double>(sample.size()) / static_cast<double>(data.size());

  index::BulkLoadOptions options;
  options.topology = &topology;
  options.scale = zeta;
  options.exec = &ctx;
  const index::RTree mini = index::BulkLoadInMemory(sample, options);

  std::vector<geometry::BoundingSphere> leaves =
      index::ComputeLeafSpheres(mini, sample);
  if (params.compensate) {
    // Adaptive compensation: each leaf's own distance distribution decides
    // how much its bounding radius would grow with the full population.
    for (size_t i = 0; i < leaves.size(); ++i) {
      const index::RTreeNode& node = mini.node(mini.leaf_ids()[i]);
      double sum = 0.0;
      for (uint32_t pos = node.start; pos < node.start + node.count; ++pos) {
        double s = 0.0;
        const auto row = sample.row(mini.OrderedIndex(pos));
        for (size_t k = 0; k < sample.dim(); ++k) {
          const double diff =
              static_cast<double>(row[k]) - leaves[i].center()[k];
          s += diff * diff;
        }
        sum += std::sqrt(s);
      }
      const double mean_dist = sum / static_cast<double>(node.count);
      leaves[i].InflateRadius(AdaptiveSphereGrowth(
          mean_dist, leaves[i].radius(), node.count, zeta));
    }
  }

  SsTreePredictionResult result;
  result.num_predicted_leaves = leaves.size();
  result.per_query_accesses = MeasureSsTreeLeafAccesses(leaves, workload, ctx);
  // Serial reduction in query order keeps the average bit-identical for any
  // thread count.
  double total = 0.0;
  for (double v : result.per_query_accesses) total += v;
  result.avg_leaf_accesses =
      workload.num_queries() > 0
          ? total / static_cast<double>(workload.num_queries())
          : 0.0;
  return result;
}

std::vector<double> MeasureSsTreeLeafAccesses(
    const std::vector<geometry::BoundingSphere>& leaves,
    const workload::QueryWorkload& workload,
    const common::ExecutionContext& ctx) {
  std::vector<double> result(workload.num_queries(), 0.0);
  ctx.ParallelFor(0, workload.num_queries(), /*grain=*/0,
                  [&](size_t begin, size_t end) {
                    for (size_t i = begin; i < end; ++i) {
                      result[i] = static_cast<double>(index::CountSphereAccesses(
                          leaves, workload.queries().row(i),
                          workload.radius(i)));
                    }
                  });
  return result;
}

}  // namespace hdidx::core
