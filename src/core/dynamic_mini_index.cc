#include "core/dynamic_mini_index.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/compensation.h"

namespace hdidx::core {

PredictionResult PredictDynamicRStar(const data::Dataset& data,
                                     const index::RStarTree::Options& options,
                                     const workload::QueryRegions& queries,
                                     const DynamicMiniIndexParams& params,
                                     const common::ExecutionContext& ctx) {
  HDIDX_CHECK(params.sampling_fraction > 0.0 && params.sampling_fraction <= 1.0);
  PredictionResult result;
  result.sigma_upper = params.sampling_fraction;

  common::Rng rng(params.seed);
  const size_t sample_size = std::max<size_t>(
      4, static_cast<size_t>(static_cast<double>(data.size()) *
                             params.sampling_fraction));
  std::vector<size_t> rows;
  rng.SampleIndices(data.size(), sample_size, &rows);
  // A uniform sample preserves the (arbitrary) insertion order of the
  // original build, since SampleIndices returns rows in file order.
  const data::Dataset sample = data.Select(rows);
  const double zeta =
      static_cast<double>(sample.size()) / static_cast<double>(data.size());

  // Scale the data page capacity; R* needs at least 4 entries per page for
  // its min-fill/split machinery.
  index::RStarTree::Options mini_options = options;
  mini_options.max_data_entries = std::max<size_t>(
      4, static_cast<size_t>(std::llround(
             static_cast<double>(options.max_data_entries) * zeta)));
  const index::RStarTree mini =
      index::RStarTree::BuildByInsertion(sample, mini_options);

  const index::RTree snapshot = mini.ToRTree();
  std::vector<geometry::BoundingBox> leaves;
  leaves.reserve(snapshot.num_leaves());
  for (uint32_t id : snapshot.leaf_ids()) {
    const index::RTreeNode& node = snapshot.node(id);
    geometry::BoundingBox box = node.box;
    if (params.compensate) {
      const double full_capacity = static_cast<double>(node.count) / zeta;
      box.InflateAboutCenter(CompensationGrowthPerDim(full_capacity, zeta));
    }
    leaves.push_back(std::move(box));
  }
  // Intersection counting runs on the batched geometry kernels: one SoA
  // slab over the mini R*-tree's (optionally compensated) leaves, shared by
  // all query chunks (HDIDX_KERNEL=scalar falls back to per-box tests).
  CountLeafIntersections(leaves, queries, &result, ctx);
  return result;
}

}  // namespace hdidx::core
