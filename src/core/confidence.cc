#include "core/confidence.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace hdidx::core {

namespace {

// Two-sided critical values t_{alpha/2, df} for df = 1..30; beyond 30 the
// normal quantile is used.
constexpr double kT90[] = {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895,
                           1.860, 1.833, 1.812, 1.796, 1.782, 1.771, 1.761,
                           1.753, 1.746, 1.740, 1.734, 1.729, 1.725, 1.721,
                           1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701,
                           1.699, 1.697};
constexpr double kT95[] = {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365,
                           2.306,  2.262, 2.228, 2.201, 2.179, 2.160, 2.145,
                           2.131,  2.120, 2.110, 2.101, 2.093, 2.086, 2.080,
                           2.074,  2.069, 2.064, 2.060, 2.056, 2.052, 2.048,
                           2.045,  2.042};
constexpr double kT99[] = {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499,
                           3.355,  3.250, 3.169, 3.106, 3.055, 3.012, 2.977,
                           2.947,  2.921, 2.898, 2.878, 2.861, 2.845, 2.831,
                           2.819,  2.807, 2.797, 2.787, 2.779, 2.771, 2.763,
                           2.756,  2.750};

}  // namespace

double StudentTCritical(size_t runs, double confidence) {
  HDIDX_CHECK(runs >= 2);
  const size_t df = runs - 1;
  const double* table;
  double normal;
  if (confidence >= 0.985) {
    table = kT99;
    normal = 2.576;
  } else if (confidence >= 0.925) {
    table = kT95;
    normal = 1.960;
  } else {
    table = kT90;
    normal = 1.645;
  }
  if (df <= 30) return table[df - 1];
  return normal;
}

ConfidenceInterval EstimateWithConfidence(
    const std::function<double(uint64_t)>& predict, size_t runs,
    uint64_t base_seed, double confidence) {
  HDIDX_CHECK(runs >= 2);
  std::vector<double> values(runs);
  for (size_t r = 0; r < runs; ++r) {
    values[r] = predict(base_seed + r);
  }
  double sum = 0.0;
  for (double v : values) sum += v;
  const double mean = sum / static_cast<double>(runs);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  const double stddev =
      std::sqrt(ss / static_cast<double>(runs - 1));  // sample stddev
  const double half = StudentTCritical(runs, confidence) * stddev /
                      std::sqrt(static_cast<double>(runs));

  ConfidenceInterval ci;
  ci.mean = mean;
  ci.stddev = stddev;
  ci.lo = mean - half;
  ci.hi = mean + half;
  ci.runs = runs;
  ci.confidence = confidence;
  return ci;
}

}  // namespace hdidx::core
