#ifndef HDIDX_CORE_COST_MODEL_H_
#define HDIDX_CORE_COST_MODEL_H_

#include <cstddef>

#include "index/topology.h"
#include "io/disk_model.h"
#include "io/io_stats.h"

namespace hdidx::core {

/// Analytic I/O-cost formulas of Sections 4.1-4.6 (Equations 1-5), used by
/// the paper's Figures 9 and 10 to compare the approaches across memory
/// sizes and dimensionalities without running anything.
///
/// All counts are in the paper's units: `page_seeks` random repositionings
/// and `page_transfers` page-sized transfers, convertible to seconds with a
/// DiskModel. Fractional intermediate values are accumulated in doubles and
/// reported as rounded IoStats.

/// Inputs shared by all formulas.
struct CostModelInputs {
  /// Number of data points N.
  size_t num_points = 0;
  /// Dimensionality d (determines points per page B and page capacities).
  size_t dim = 0;
  /// Memory size M in points.
  size_t memory_points = 0;
  /// Number of query points q.
  size_t num_query_points = 500;
  io::DiskModel disk;

  /// Points per disk page (the paper's B).
  size_t PointsPerPage() const { return disk.PointsPerPage(dim); }

  /// Topology of the index these costs refer to.
  index::TreeTopology Topology() const {
    return index::TreeTopology::FromDisk(num_points, dim, disk);
  }
};

/// Equation 2: cost of reading q query points at random positions,
/// q * (t_seek + t_xfer).
io::IoStats ReadQueryPointsCost(const CostModelInputs& in);

/// cost_ScanDataset = t_seek + ceil(N/B) * t_xfer.
io::IoStats ScanDatasetCost(const CostModelInputs& in);

/// Equation 1: best-case cost of bulk-loading the on-disk index
/// (cost_BuildTreeLevel(height, 0, N)).
///
/// Derivation (the recursive definition lives in the paper's tech report;
/// this is the reconstruction documented in DESIGN.md): partitioning a
/// range of n > M points for fanout f performs ceil(log2(f)) best-case
/// Hoare passes over the range, each reading and writing n points
/// sequentially in memory-sized chunks (2*ceil(n/B) transfers,
/// 2*ceil(n/M) seeks); once a range fits in memory the whole subtree below
/// it costs one read and one write of the range. Writing the directory
/// pages adds one transfer per directory node.
io::IoStats OnDiskBuildCost(const CostModelInputs& in);

/// Equation 3: cost_Cutoff = cost_ReadQueryPoints + cost_ScanDataset.
io::IoStats CutoffCost(const CostModelInputs& in);

/// Equation 4: the resampling pass for a given upper-tree height:
/// ceil(N*sigma_lower/M) chunks, each costing one sequential data-file read
/// of M/sigma_lower points plus k area writes of M/B pages total.
io::IoStats ResamplingPassCost(const CostModelInputs& in, size_t h_upper);

/// Equation 5: cost_Resampled = cost_ReadQueryPoints + cost_ScanDataset +
/// cost_Resampling + cost_BuildLowerSubtrees.
io::IoStats ResampledCost(const CostModelInputs& in, size_t h_upper);

}  // namespace hdidx::core

#endif  // HDIDX_CORE_COST_MODEL_H_
