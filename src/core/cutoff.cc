#include "core/cutoff.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/compensation.h"
#include "core/hupper.h"

namespace hdidx::core {

namespace {

/// Splits `region` holding `points` uniform points into `fanout` partitions
/// by recursive binary splits along the longest dimension (the
/// maximum-variance dimension under uniformity), slice widths proportional
/// to partition point counts, then descends one tree level per partition.
void SplitCell(const geometry::BoundingBox& region, double points,
               size_t fanout, double child_target, size_t level,
               const index::TreeTopology& topology,
               std::vector<geometry::BoundingBox>* out);

void SynthesizeLevel(const geometry::BoundingBox& region, double points,
                     size_t level, const index::TreeTopology& topology,
                     std::vector<geometry::BoundingBox>* out) {
  if (level == 1) {
    // Final data page: the MBR of `points` uniform points in the cell
    // spans (points-1)/(points+1) of each side.
    geometry::BoundingBox leaf = region;
    const double shrink =
        points > 1.0 ? (points - 1.0) / (points + 1.0) : 0.0;
    leaf.InflateAboutCenter(shrink);
    out->push_back(std::move(leaf));
    return;
  }
  const double child_target =
      static_cast<double>(topology.SubtreeCapacity(level - 1));
  const size_t fanout =
      static_cast<size_t>(std::ceil(points / child_target - 1e-9));
  SplitCell(region, points, std::max<size_t>(fanout, 1), child_target, level,
            topology, out);
}

void SplitCell(const geometry::BoundingBox& region, double points,
               size_t fanout, double child_target, size_t level,
               const index::TreeTopology& topology,
               std::vector<geometry::BoundingBox>* out) {
  if (fanout <= 1) {
    SynthesizeLevel(region, points, level - 1, topology, out);
    return;
  }
  const size_t left_fanout = (fanout + 1) / 2;
  const double left_points =
      std::min(points, static_cast<double>(left_fanout) * child_target);
  const double fraction = points > 0.0 ? left_points / points : 0.5;

  const size_t dim = region.LongestDimension();
  std::vector<float> left_hi = region.hi();
  std::vector<float> right_lo = region.lo();
  const double cut =
      region.lo()[dim] + fraction * (static_cast<double>(region.hi()[dim]) -
                                     region.lo()[dim]);
  left_hi[dim] = static_cast<float>(cut);
  right_lo[dim] = static_cast<float>(cut);

  const geometry::BoundingBox left(region.lo(), left_hi);
  const geometry::BoundingBox right(std::move(right_lo), region.hi());
  SplitCell(left, left_points, left_fanout, child_target, level, topology,
            out);
  SplitCell(right, points - left_points, fanout - left_fanout, child_target,
            level, topology, out);
}

}  // namespace

void SynthesizeUniformLeaves(const geometry::BoundingBox& grown_leaf,
                             double full_points, size_t level,
                             const index::TreeTopology& topology,
                             std::vector<geometry::BoundingBox>* out) {
  if (grown_leaf.empty() || full_points <= 0.0) return;
  // The grown leaf approximates the MBR of full_points uniform points; the
  // uniform *region* they were drawn from is larger by (n+1)/(n-1) per
  // side. Splits partition the region, not the MBR.
  geometry::BoundingBox region = grown_leaf;
  if (full_points > 1.0) {
    region.InflateAboutCenter((full_points + 1.0) / (full_points - 1.0));
  }
  SynthesizeLevel(region, full_points, level, topology, out);
}

PredictionResult PredictWithCutoffTree(io::PagedFile* file,
                                       const index::TreeTopology& topology,
                                       const workload::QueryRegions& queries,
                                       const CutoffParams& params,
                                       const common::ExecutionContext& ctx) {
  HDIDX_CHECK(params.memory_points > 0);
  HDIDX_CHECK(params.h_upper >= 1 && params.h_upper < topology.height());

  PredictionResult result;
  result.h_upper = params.h_upper;
  result.sigma_upper = SigmaUpper(topology, params.memory_points);

  const io::IoStats before = file->stats();
  common::Rng rng(params.seed);

  // Steps 2-4: query-point reads plus the scan that yields the sample.
  const data::Dataset sample = ChargeScanAndDrawSample(
      file, queries.size(), params.memory_points, &rng);

  // Step 5: upper tree, leaves grown by the compensation factor.
  const UpperTreeResult upper = BuildGrownUpperTree(
      sample, topology, params.h_upper, result.sigma_upper, ctx);

  // Steps 6-7: synthesize every lower tree from geometry alone.
  std::vector<geometry::BoundingBox> leaves;
  leaves.reserve(topology.NumLeaves());
  for (size_t i = 0; i < upper.grown_leaves.size(); ++i) {
    SynthesizeUniformLeaves(upper.grown_leaves[i],
                            upper.full_points_per_leaf[i], upper.stop_level,
                            topology, &leaves);
  }

  // Steps 8-9: intersection counting (the only parallel section — all I/O
  // charging above runs serially on this thread). Runs on the batched
  // geometry kernels: one SoA slab over the synthesized leaves, shared by
  // all query chunks (HDIDX_KERNEL=scalar falls back to per-box tests).
  CountLeafIntersections(leaves, queries, &result, ctx);
  result.io = file->stats();
  result.io.page_seeks -= before.page_seeks;
  result.io.page_transfers -= before.page_transfers;
  return result;
}

}  // namespace hdidx::core
