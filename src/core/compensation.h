#ifndef HDIDX_CORE_COMPENSATION_H_
#define HDIDX_CORE_COMPENSATION_H_

#include <cstddef>

namespace hdidx::core {

/// Theorem 1 (Section 3.2): under within-page uniformity, reducing the
/// number of points in a page from C to C*zeta shrinks the MBR volume by
///
///   delta(C, zeta)^-1 = ( (C*zeta - 1)(C + 1) / ((C*zeta + 1)(C - 1)) )^d.
///
/// The underlying fact is one-dimensional: the MBR of n uniform points in an
/// interval of length L spans an expected L*(n-1)/(n+1), so each side of the
/// box shrinks by the ratio of those expectations.
///
/// These functions return the *growth* quantities used to compensate: the
/// per-dimension factor to inflate a sampled page's sides by, and the
/// volume factor delta itself.

/// Per-dimension growth ratio ((C*zeta + 1)(C - 1)) / ((C*zeta - 1)(C + 1)).
/// Defined for C > 1 and C*zeta > 1; inputs below those bounds are clamped
/// (a page of a single point has no extent to rescale — the paper's
/// observation that the sample rate can never be below 1/C). zeta >= 1
/// returns exactly 1.
double CompensationGrowthPerDim(double capacity, double zeta);

/// The volume growth factor delta(C, zeta) = growth^dim.
double CompensationDelta(double capacity, double zeta, size_t dim);

}  // namespace hdidx::core

#endif  // HDIDX_CORE_COMPENSATION_H_
