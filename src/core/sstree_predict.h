#ifndef HDIDX_CORE_SSTREE_PREDICT_H_
#define HDIDX_CORE_SSTREE_PREDICT_H_

#include <cstddef>
#include <vector>

#include "core/mini_index.h"
#include "data/dataset.h"
#include "geometry/bounding_sphere.h"
#include "index/topology.h"
#include "workload/query_workload.h"

namespace hdidx::core {

/// Sphere-page analogue of Theorem 1's per-dimension growth under the
/// *uniform-ball* model.
///
/// For points uniformly distributed in a d-dimensional ball, the distance
/// of a point from the center has CDF (r/R)^d, so the expected bounding
/// radius of n points is R * nd/(nd+1). Reducing the page population from C
/// to C*zeta therefore shrinks the radius by
///   [C*zeta*d/(C*zeta*d+1)] / [C*d/(C*d+1)],
/// and this function returns the inverse (the growth to compensate with).
/// Inputs below ~1 sampled point are clamped like the MBR version.
///
/// On real clustered pages the radius is driven by outliers and shrinks far
/// more than this law predicts; the predictor therefore uses the adaptive
/// estimate below and this closed form serves as the validated uniform-ball
/// reference.
double SphereCompensationGrowth(double capacity, double zeta, size_t dim);

/// Adaptive per-leaf radius growth: fits a power-law distance CDF
/// F(r) = (r/R)^p to the sampled page's own distances via the
/// mean-to-maximum ratio (E[dist] = R*p/(p+1), E[max of n] = R*np/(np+1)),
/// then extrapolates the expected bounding radius from the n sampled points
/// to the n/zeta the full page holds. `mean_distance` and `max_distance`
/// are the sample's distances from the page centroid. Returns the factor to
/// multiply the sampled radius by (>= 1).
double AdaptiveSphereGrowth(double mean_distance, double max_distance,
                            size_t sample_count, double zeta);

/// Result of an SS-tree prediction (sphere pages).
struct SsTreePredictionResult {
  double avg_leaf_accesses = 0.0;
  std::vector<double> per_query_accesses;
  size_t num_predicted_leaves = 0;
};

/// The Section 3 sampling model applied to the SS-tree: build the
/// mini-index with the shared bulk loader, bound its leaves with centroid
/// spheres, grow the radii by AdaptiveSphereGrowth, and count query-sphere /
/// page-sphere intersections. Demonstrates the Section 4.7 claim that the
/// technique transfers to other fixed-capacity-page structures with only
/// the page geometry swapped.
///
/// Limitation (documented in EXPERIMENTS.md): the bounding radius is a
/// maximum statistic inflated in *every* direction by a single outlier, so
/// on data with a uniform background component the sampled radii are far
/// less stable than MBR extents, and predictions degrade accordingly — an
/// inherent property of centroid-sphere pages, not of the sampling model.
SsTreePredictionResult PredictSsTreeWithMiniIndex(
    const data::Dataset& data, const index::TreeTopology& topology,
    const workload::QueryWorkload& workload, const MiniIndexParams& params,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

/// Measurement counterpart: per-query counts of leaf spheres intersecting
/// the workload's k-NN spheres. Parallel over queries on `ctx`; each query
/// writes only its own slot, so the result is thread-count independent.
std::vector<double> MeasureSsTreeLeafAccesses(
    const std::vector<geometry::BoundingSphere>& leaves,
    const workload::QueryWorkload& workload,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::core

#endif  // HDIDX_CORE_SSTREE_PREDICT_H_
