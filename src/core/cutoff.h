#ifndef HDIDX_CORE_CUTOFF_H_
#define HDIDX_CORE_CUTOFF_H_

#include <cstdint>
#include <vector>

#include "core/predictor.h"
#include "geometry/bounding_box.h"
#include "index/topology.h"
#include "io/paged_file.h"
#include "workload/query_workload.h"

namespace hdidx::core {

/// Parameters of the cutoff index tree (Section 4.3).
struct CutoffParams {
  /// Memory size M in points; the upper-tree sample holds min(M, N) points.
  size_t memory_points = 0;
  /// Height of the upper tree (Section 4.5 discusses the choice).
  size_t h_upper = 2;
  /// Seed for the sampling steps.
  uint64_t seed = 1;
};

/// The cutoff prediction (Figure 5): build the upper tree on an M-point
/// sample, grow its leaves by the compensation factor, then synthesize each
/// lower tree *without further I/O* by replaying the bulk loader's
/// maximum-variance splits inside the grown leaf under a within-page
/// uniformity assumption (Figure 4), and count query-sphere intersections
/// with the synthesized data pages.
///
/// Its I/O cost is just cost_ReadQueryPoints + cost_ScanDataset
/// (Equation 3) — the cheapest of all predictors — but because the lower
/// levels are derived from uniformity alone, accuracy degrades on clustered
/// high-dimensional data (the paper's Table 3 shows -64%..-16% errors and
/// uncorrelated per-query predictions).
PredictionResult PredictWithCutoffTree(
    io::PagedFile* file, const index::TreeTopology& topology,
    const workload::QueryRegions& queries, const CutoffParams& params,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

/// Synthesizes the data-page boxes the bulk loader would produce for
/// `full_points` uniformly distributed points whose MBR is `grown_leaf` at
/// full-tree level `level`. Exposed for tests.
void SynthesizeUniformLeaves(const geometry::BoundingBox& grown_leaf,
                             double full_points, size_t level,
                             const index::TreeTopology& topology,
                             std::vector<geometry::BoundingBox>* out);

}  // namespace hdidx::core

#endif  // HDIDX_CORE_CUTOFF_H_
