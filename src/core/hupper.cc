#include "core/hupper.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace hdidx::core {

size_t StopLevel(const index::TreeTopology& topology, size_t h_upper) {
  HDIDX_CHECK(h_upper >= 1 && h_upper <= topology.height());
  return topology.height() - h_upper + 1;
}

double SigmaUpper(const index::TreeTopology& topology, size_t memory_points) {
  return std::min(1.0, static_cast<double>(memory_points) /
                           static_cast<double>(topology.num_points()));
}

double SigmaLower(const index::TreeTopology& topology, size_t memory_points,
                  size_t h_upper) {
  const size_t k = topology.NodesAtLevel(StopLevel(topology, h_upper));
  return std::min(1.0, static_cast<double>(k) *
                           static_cast<double>(memory_points) /
                           static_cast<double>(topology.num_points()));
}

HupperBounds ComputeHupperBounds(const index::TreeTopology& topology,
                                 size_t memory_points, bool resampled) {
  const size_t height = topology.height();
  HupperBounds bounds;
  if (height <= 2) {
    // Degenerate trees: the only sensible split is directly below the root.
    bounds.lower = bounds.upper = std::max<size_t>(height, 1) == 1 ? 1 : 2;
    return bounds;
  }

  const double n = static_cast<double>(topology.num_points());
  const double m = static_cast<double>(memory_points);

  // Upper bound: upper-tree leaf pages hold >= 2 sample points. The upper
  // tree is built on min(M, N) points spread over NodesAtLevel(stop) leaves.
  size_t upper = 2;
  for (size_t h = 2; h <= height - 1; ++h) {
    const double pts_per_leaf =
        std::min(m, n) /
        static_cast<double>(topology.NodesAtLevel(StopLevel(topology, h)));
    if (pts_per_leaf >= 2.0) upper = h;
  }

  // Lower bound (resampled only): a full-height tree on N*sigma_lower
  // points keeps >= 2 points per data page.
  size_t lower = 2;
  if (resampled) {
    for (size_t h = 2; h <= height - 1; ++h) {
      const double resampled_points = SigmaLower(topology, memory_points, h) * n;
      const double pts_per_leaf =
          resampled_points / static_cast<double>(topology.NumLeaves());
      if (pts_per_leaf >= 2.0) {
        lower = h;
        break;
      }
    }
  }

  bounds.lower = std::min(lower, upper);
  bounds.upper = std::max(lower, upper);
  return bounds;
}

size_t ChooseHupper(const index::TreeTopology& topology,
                    size_t memory_points) {
  const size_t height = topology.height();
  if (height <= 2) return 2;
  // Section 4.5.2 / Table 3: the error minimum sits where sigma_lower first
  // reaches 1 — equivalently where the unsampled lower trees hold at most M
  // points. Among those, the smallest h_upper also minimizes the
  // resampling I/O. A height is only considered feasible while the upper
  // tree's leaves keep at least ~1.5 sample points on average (the
  // Section 4.5.1 occupancy constraint with enough slack to admit the
  // paper's own borderline M = 1,000 / h_upper = 4 configuration on
  // TEXTURE60, where upper leaves average 1.9 sample points).
  const double sample_points =
      std::min(static_cast<double>(memory_points),
               static_cast<double>(topology.num_points()));
  auto feasible = [&](size_t h) {
    const double per_leaf =
        sample_points /
        static_cast<double>(topology.NodesAtLevel(StopLevel(topology, h)));
    return per_leaf >= 1.5;
  };
  // Among feasible heights, pick the one whose lower trees hold closest to
  // M unsampled points, measured on a log scale with an asymmetric
  // penalty: lower trees larger than M force sigma_lower < 1 and a
  // systematic underestimation (Table 3's h=2 row), which hurts twice as
  // much as the extra I/O and upper-leaf sparsity of lower trees smaller
  // than M. The asymmetry reproduces all of the paper's reported choices
  // (TEXTURE60: h=3 at M=10,000, h=4 at M=1,000; Figures 9/10: lower trees
  // of approximately M points).
  size_t best = 2;
  double best_distance = std::numeric_limits<double>::infinity();
  for (size_t h = 2; h <= height - 1; ++h) {
    if (h > 2 && !feasible(h)) break;
    const double pts = topology.PointsPerSubtree(StopLevel(topology, h));
    const double m = static_cast<double>(memory_points);
    const double distance =
        pts > m ? std::log(pts / m) : 0.5 * std::log(m / pts);
    if (distance < best_distance) {
      best_distance = distance;
      best = h;
    }
  }
  return best;
}

}  // namespace hdidx::core
