#ifndef HDIDX_CORE_MINI_INDEX_H_
#define HDIDX_CORE_MINI_INDEX_H_

#include <cstdint>

#include "core/predictor.h"
#include "data/dataset.h"
#include "index/bulk_loader.h"
#include "index/rtree.h"
#include "index/topology.h"
#include "workload/query_workload.h"

namespace hdidx::core {

/// Parameters of the basic (unlimited-memory) sampling model of Section 3.
struct MiniIndexParams {
  /// Sampling fraction zeta in (0, 1]; the mini-index is built on a uniform
  /// zeta-sample of the data.
  double sampling_fraction = 0.1;
  /// Whether to grow the sampled leaf pages by the compensation factor of
  /// Theorem 1 (Figure 2 compares both settings).
  bool compensate = true;
  /// Seed for drawing the sample.
  uint64_t seed = 1;
  /// The split strategy the full index was (or will be) built with; the
  /// mini-index must run the same construction algorithm for the
  /// structural-similarity argument of Section 3.1 to hold.
  index::SplitStrategy split_strategy = index::SplitStrategy::kMaxVariance;
  /// Tuning carried into the mini build when split_strategy is
  /// kAdaptiveSample. To model an external adaptive build, set
  /// adaptive.memory_points to the external build's M: bucket-level
  /// placement compares unscaled subtree capacities, so the mini-index
  /// derives the same bucket level as the full build regardless of zeta.
  index::AdaptiveOptions adaptive;
};

/// The basic sampling-based prediction model (Section 3.1): draw a sample,
/// bulk-load a miniature index with the same structure as the full index,
/// grow its leaf pages by the compensation factor, and count query-sphere /
/// leaf intersections.
///
/// This variant assumes the dataset and the mini-index fit in memory, so the
/// result's I/O counters stay zero; the restricted-memory implementations
/// are core/cutoff.h and core/resampled.h.
PredictionResult PredictWithMiniIndex(
    const data::Dataset& data, const index::TreeTopology& topology,
    const workload::QueryRegions& queries, const MiniIndexParams& params,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

/// Builds the grown mini-index leaf boxes without counting intersections;
/// exposed for tests and for inspecting predicted page layouts. The
/// mini-index bulk load fans out on `ctx` with a bit-identical layout for
/// every thread count (see BulkLoadOptions::exec).
std::vector<geometry::BoundingBox> BuildGrownMiniIndexLeaves(
    const data::Dataset& data, const index::TreeTopology& topology,
    const MiniIndexParams& params,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::core

#endif  // HDIDX_CORE_MINI_INDEX_H_
