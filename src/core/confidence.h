#ifndef HDIDX_CORE_CONFIDENCE_H_
#define HDIDX_CORE_CONFIDENCE_H_

#include <cstdint>
#include <functional>

namespace hdidx::core {

/// A mean estimate with a Student-t confidence interval.
struct ConfidenceInterval {
  double mean = 0.0;
  /// Sample standard deviation across runs.
  double stddev = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  size_t runs = 0;
  double confidence = 0.95;
};

/// Repeats a randomized prediction across independent sample draws and
/// reports the mean with a confidence interval.
///
/// Sampling-based estimators come with sampling error; the related work the
/// paper builds on (Lipton, Naughton, Schneider [25]) frames selectivity
/// estimation exactly this way. Running the predictor with `runs`
/// independent seeds and applying the Student-t interval gives the error
/// bar the single-number prediction hides.
///
/// `predict` is invoked with seeds base_seed, base_seed+1, ... and must
/// return the prediction (e.g. avg leaf accesses). `confidence` supports
/// 0.90, 0.95 and 0.99; `runs` must be at least 2.
ConfidenceInterval EstimateWithConfidence(
    const std::function<double(uint64_t)>& predict, size_t runs,
    uint64_t base_seed, double confidence = 0.95);

/// Two-sided Student-t critical value for `runs - 1` degrees of freedom at
/// the given confidence level (0.90 / 0.95 / 0.99). Exposed for tests.
double StudentTCritical(size_t runs, double confidence);

}  // namespace hdidx::core

#endif  // HDIDX_CORE_CONFIDENCE_H_
