#include "workload/range_workload.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geometry/kernels.h"

namespace hdidx::workload {

namespace {

geometry::BoundingBox BoxAround(std::span<const float> center,
                                std::span<const float> half_extents) {
  std::vector<float> lo(center.size()), hi(center.size());
  for (size_t k = 0; k < center.size(); ++k) {
    lo[k] = center[k] - half_extents[k];
    hi[k] = center[k] + half_extents[k];
  }
  return geometry::BoundingBox(std::move(lo), std::move(hi));
}

}  // namespace

RangeWorkload::RangeWorkload(std::vector<geometry::BoundingBox> boxes,
                             std::vector<size_t> rows)
    : boxes_(std::move(boxes)), query_rows_(std::move(rows)) {}

RangeWorkload RangeWorkload::Create(const data::Dataset& data, size_t q,
                                    std::vector<float> half_extents,
                                    common::Rng* rng) {
  HDIDX_CHECK(!data.empty());
  HDIDX_CHECK(half_extents.size() == data.dim());
  std::vector<geometry::BoundingBox> boxes;
  std::vector<size_t> rows;
  boxes.reserve(q);
  rows.reserve(q);
  for (size_t i = 0; i < q; ++i) {
    const size_t row = static_cast<size_t>(rng->NextBounded(data.size()));
    rows.push_back(row);
    boxes.push_back(BoxAround(data.row(row), half_extents));
  }
  return RangeWorkload(std::move(boxes), std::move(rows));
}

RangeWorkload RangeWorkload::CreateWithCardinality(const data::Dataset& data,
                                                   size_t q,
                                                   size_t target_cardinality,
                                                   common::Rng* rng) {
  HDIDX_CHECK(!data.empty());
  HDIDX_CHECK(target_cardinality > 0);
  const size_t d = data.dim();
  std::vector<geometry::BoundingBox> boxes;
  std::vector<size_t> rows;
  boxes.reserve(q);
  rows.reserve(q);
  std::vector<double> linf(data.size());
  std::vector<float> half(d);
  for (size_t i = 0; i < q; ++i) {
    const size_t row = static_cast<size_t>(rng->NextBounded(data.size()));
    rows.push_back(row);
    const auto center = data.row(row);
    // L-infinity distance to every point; the target-th smallest is the
    // cube half-side containing that many points.
    for (size_t j = 0; j < data.size(); ++j) {
      const auto p = data.row(j);
      double m = 0.0;
      for (size_t k = 0; k < d; ++k) {
        m = std::max(m, std::abs(static_cast<double>(p[k]) - center[k]));
      }
      linf[j] = m;
    }
    const size_t rank = std::min(target_cardinality, data.size() - 1);
    std::nth_element(linf.begin(), linf.begin() + static_cast<ptrdiff_t>(rank),
                     linf.end());
    const float h = static_cast<float>(linf[rank]);
    std::fill(half.begin(), half.end(), h);
    boxes.push_back(BoxAround(center, half));
  }
  return RangeWorkload(std::move(boxes), std::move(rows));
}

bool RangeWorkload::Intersects(size_t i,
                               const geometry::BoundingBox& box) const {
  return boxes_[i].Intersects(box);
}

size_t RangeWorkload::CountIntersections(
    size_t i, std::span<const geometry::BoundingBox> boxes,
    const geometry::kernels::BoxSlab& slab) const {
  if (slab.size() != boxes.size() || slab.size() == 0) {
    return QueryRegions::CountIntersections(i, boxes, slab);
  }
  return geometry::kernels::CountBoxHits(
      boxes_[i], slab, geometry::kernels::ActiveKernelMode());
}

}  // namespace hdidx::workload
