#ifndef HDIDX_WORKLOAD_RANGE_WORKLOAD_H_
#define HDIDX_WORKLOAD_RANGE_WORKLOAD_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "workload/query_workload.h"

namespace hdidx::workload {

/// A density-biased range-query workload: q axis-aligned query boxes
/// centered at points drawn from the dataset (Section 1 notes the
/// prediction technique "can also be applied to range queries" — the page
/// layout estimation is identical; only the region/page intersection test
/// changes from sphere to box).
class RangeWorkload : public QueryRegions {
 public:
  /// Builds q box queries with the given half-extent per dimension (all
  /// boxes congruent, centers drawn from the data — the standard
  /// density-biased range workload).
  static RangeWorkload Create(const data::Dataset& data, size_t q,
                              std::vector<float> half_extents,
                              common::Rng* rng);

  /// Builds q box queries sized to contain approximately
  /// `target_cardinality` points each: for every query center, the
  /// half-extent is the L-infinity distance to the target_cardinality-th
  /// nearest point (a cube-shaped analogue of the k-NN sphere). O(q * N).
  static RangeWorkload CreateWithCardinality(const data::Dataset& data,
                                             size_t q,
                                             size_t target_cardinality,
                                             common::Rng* rng);

  // QueryRegions:
  size_t size() const override { return boxes_.size(); }
  bool Intersects(size_t i,
                  const geometry::BoundingBox& box) const override;
  size_t CountIntersections(
      size_t i, std::span<const geometry::BoundingBox> boxes,
      const geometry::kernels::BoxSlab& slab) const override;

  const geometry::BoundingBox& box(size_t i) const { return boxes_[i]; }

  /// Row indices the query centers were drawn from.
  const std::vector<size_t>& query_rows() const { return query_rows_; }

 private:
  RangeWorkload(std::vector<geometry::BoundingBox> boxes,
                std::vector<size_t> rows);

  std::vector<geometry::BoundingBox> boxes_;
  std::vector<size_t> query_rows_;
};

}  // namespace hdidx::workload

#endif  // HDIDX_WORKLOAD_RANGE_WORKLOAD_H_
