#include "workload/query_workload.h"

#include <cmath>

#include "common/check.h"
#include "geometry/distance.h"
#include "geometry/kernels.h"
#include "index/knn.h"

namespace hdidx::workload {

size_t QueryRegions::CountIntersections(
    size_t i, std::span<const geometry::BoundingBox> boxes,
    const geometry::kernels::BoxSlab& /*slab*/) const {
  size_t hits = 0;
  for (const auto& box : boxes) {
    if (Intersects(i, box)) ++hits;
  }
  return hits;
}

QueryWorkload::QueryWorkload(data::Dataset queries, std::vector<double> radii,
                             std::vector<size_t> rows, size_t k)
    : queries_(std::move(queries)),
      radii_(std::move(radii)),
      query_rows_(std::move(rows)),
      k_(k) {}

bool QueryWorkload::Intersects(size_t i,
                               const geometry::BoundingBox& box) const {
  return geometry::SquaredMinDist(queries_.row(i), box) <=
         radii_[i] * radii_[i];
}

size_t QueryWorkload::CountIntersections(
    size_t i, std::span<const geometry::BoundingBox> boxes,
    const geometry::kernels::BoxSlab& slab) const {
  if (slab.size() != boxes.size() || slab.size() == 0) {
    return QueryRegions::CountIntersections(i, boxes, slab);
  }
  // The caller built the slab, so it already chose a batched path; every
  // non-scalar mode returns identical counts, so re-reading the active mode
  // here cannot change results even if the override flips mid-prediction.
  return geometry::kernels::CountSphereHits(queries_.row(i),
                                            radii_[i] * radii_[i], slab,
                                            geometry::kernels::ActiveKernelMode());
}

QueryWorkload QueryWorkload::Create(const data::Dataset& data, size_t q,
                                    size_t k, common::Rng* rng,
                                    const common::ExecutionContext& ctx) {
  HDIDX_CHECK(!data.empty());
  // The RNG is consumed serially so the draws match the serial run for any
  // thread count.
  std::vector<size_t> rows(q);
  for (size_t i = 0; i < q; ++i) {
    rows[i] = static_cast<size_t>(rng->NextBounded(data.size()));
  }
  data::Dataset queries = data.Select(rows);
  // Each query's exact scan is independent and writes only its own slot.
  std::vector<double> radii(q);
  ctx.ParallelFor(0, q, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      radii[i] =
          index::ExactKthDistanceExcludingRow(data, queries.row(i), k, rows[i]);
    }
  });
  return QueryWorkload(std::move(queries), std::move(radii), std::move(rows),
                       k);
}

ScanResult ScanForWorkloadAndSample(io::PagedFile* file, size_t q, size_t k,
                                    size_t sample_size, common::Rng* rng,
                                    const common::ExecutionContext& ctx) {
  const size_t n = file->size();
  const size_t dim = file->dim();
  HDIDX_CHECK(n > 0);

  // Step 1: q random point reads (Equation 2: q * (t_seek + t_xfer)).
  // PagedFile charges a seek per non-adjacent access automatically; reading
  // each query point touches one page.
  std::vector<size_t> rows(q);
  data::Dataset queries(dim);
  queries.Reserve(q);
  std::vector<float> point(dim);
  for (size_t i = 0; i < q; ++i) {
    rows[i] = static_cast<size_t>(rng->NextBounded(n));
    file->ReadPoint(rows[i], point.data());
    queries.Append(point);
  }

  // Choose the sample positions up front so the sequential pass can pick
  // them up in order.
  std::vector<size_t> sample_rows;
  rng->SampleIndices(n, sample_size, &sample_rows);

  // Step 2: one sequential scan feeding every query's k-NN heap and
  // collecting the sample. Memory-chunked in reality; charging the scan as
  // one sequential access is I/O-equivalent (1 seek + N/B transfers). The
  // charge happens serially here, before any compute fans out — the
  // simulated disk sees the exact same accesses as the serial code.
  file->ChargeAccess(0, n);
  const auto raw = file->raw();

  // Sample collection (sample_rows is ascending, so this is the file-order
  // pass the interleaved loop performed).
  data::Dataset sample(dim);
  sample.Reserve(sample_rows.size());
  for (size_t row : sample_rows) {
    sample.Append(raw.subspan(row * dim, dim));
  }

  // The in-memory distance loop, parallel over queries: each query's scan
  // is independent and streams the dataset in row order on the batched
  // kernel (early-terminating against its heap threshold), so every radius
  // is bit-identical to the serial scalar pass for any thread count. The
  // exclusion rule is the original one: the query's own row is skipped only
  // at distance zero, so duplicates of the query point still count.
  std::vector<double> radii(q);
  ctx.ParallelFor(0, q, /*grain=*/1, [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      geometry::kernels::ScanOptions opts;
      opts.exclude_row = rows[j];
      opts.exclude_row_only_if_zero = true;
      radii[j] = std::sqrt(
          geometry::kernels::KthDistanceScan(queries.row(j), raw, dim, k,
                                             opts));
    }
  });

  ScanResult result{
      QueryWorkload(std::move(queries), std::move(radii), std::move(rows), k),
      std::move(sample),
      std::min(1.0, static_cast<double>(sample_size) / static_cast<double>(n))};
  return result;
}

}  // namespace hdidx::workload
