#ifndef HDIDX_WORKLOAD_QUERY_WORKLOAD_H_
#define HDIDX_WORKLOAD_QUERY_WORKLOAD_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "geometry/bounding_box.h"
#include "io/paged_file.h"

namespace hdidx::geometry::kernels {
class BoxSlab;
}  // namespace hdidx::geometry::kernels

namespace hdidx::workload {

/// A batch of query regions tested against page MBRs — the common face of
/// nearest-neighbor (sphere) and range (box) workloads. The paper's
/// prediction pipeline only ever asks one question of a query: does its
/// region intersect this page? Everything downstream of workload
/// construction (predictors, measurement) is therefore written against this
/// interface and serves both query types.
class QueryRegions {
 public:
  virtual ~QueryRegions() = default;

  /// Number of queries in the batch.
  virtual size_t size() const = 0;

  /// True iff query i's region intersects `box` — i.e. an exact search for
  /// query i would read a page with this MBR.
  HDIDX_CONCURRENT_READ virtual bool Intersects(
      size_t i, const geometry::BoundingBox& box) const = 0;

  /// Number of `boxes` query i's region intersects. `slab` is a BoxSlab the
  /// caller built over the same boxes — or an empty slab on the scalar
  /// path, in which case (and for workload types without a batched kernel)
  /// the default per-box Intersects loop runs. Overrides are
  /// decision-identical to that loop for every box.
  HDIDX_CONCURRENT_READ virtual size_t CountIntersections(
      size_t i, std::span<const geometry::BoundingBox> boxes,
      const geometry::kernels::BoxSlab& slab) const;
};

/// A density-biased k-NN query workload: q query points drawn uniformly from
/// the dataset itself (so dense regions receive proportionally more
/// queries, Section 4.2) together with each query's exact k-NN sphere
/// radius computed by a full scan.
///
/// Both measurement and prediction consume the same workload: the number of
/// leaf pages an optimal NN search reads equals the number of leaf MBRs the
/// k-NN sphere intersects, so a fixed sphere per query makes
/// measured-vs-predicted comparisons exact and repeatable.
class QueryWorkload : public QueryRegions {
 public:
  /// Builds a workload of `q` k-NN queries over an in-memory dataset
  /// (no I/O accounting). Exactly the query's own row is excluded from its
  /// neighbor set — duplicates of the query point still count as neighbors —
  /// matching ScanForWorkloadAndSample, so both constructors produce
  /// identical radii for the same query rows.
  ///
  /// `rng` is consumed serially (the row draws), so the random stream is
  /// identical for every thread count; only the per-query exact k-NN scans
  /// fan out on `ctx`, each writing its own radius slot. Radii are therefore
  /// bit-identical to the single-threaded run.
  static QueryWorkload Create(
      const data::Dataset& data, size_t q, size_t k, common::Rng* rng,
      const common::ExecutionContext& ctx = common::DefaultExecutionContext());

  // QueryRegions: sphere-vs-box intersection with the exact k-NN radius.
  size_t size() const override { return queries_.size(); }
  bool Intersects(size_t i, const geometry::BoundingBox& box) const override;
  size_t CountIntersections(
      size_t i, std::span<const geometry::BoundingBox> boxes,
      const geometry::kernels::BoxSlab& slab) const override;

  size_t num_queries() const { return queries_.size(); }
  size_t k() const { return k_; }
  const data::Dataset& queries() const { return queries_; }
  const std::vector<double>& radii() const { return radii_; }
  double radius(size_t i) const { return radii_[i]; }

  /// Row indices in the source dataset the queries were drawn from.
  const std::vector<size_t>& query_rows() const { return query_rows_; }

  /// Direct constructor for callers that computed radii themselves (the
  /// accounted scan); prefer Create() elsewhere.
  QueryWorkload(data::Dataset queries, std::vector<double> radii,
                std::vector<size_t> rows, size_t k);

 private:
 data::Dataset queries_;
  std::vector<double> radii_;
  std::vector<size_t> query_rows_;
  size_t k_;
};

/// Result of the predictors' combined first pass (Figures 5 and 7, steps
/// 2-4): the query workload plus the upper-tree sample, with all I/O charged
/// to `file`.
struct ScanResult {
  QueryWorkload workload;
  data::Dataset sample;
  /// The sampling ratio actually used: min(sample_size / N, 1).
  double sampling_ratio = 1.0;
};

/// Executes the accounted workload-and-sample pass over the simulated disk
/// file:
///   1. reads `q` query points at random positions — q random accesses,
///      the paper's cost_ReadQueryPoints (Equation 2);
///   2. scans the whole dataset sequentially once — cost_ScanDataset —
///      feeding every query's k-NN heap and extracting a uniform sample of
///      min(sample_size, N) points.
///
/// All I/O charging (the q random reads and the one sequential scan) happens
/// serially on the calling thread exactly as before — the simulated disk's
/// seek/transfer accounting is byte-identical for every thread count. Only
/// the in-memory distance loop fans out on `ctx`, over queries (each query's
/// heap is private to its chunk), so radii are bit-identical too.
ScanResult ScanForWorkloadAndSample(
    io::PagedFile* file, size_t q, size_t k, size_t sample_size,
    common::Rng* rng,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::workload

#endif  // HDIDX_WORKLOAD_QUERY_WORKLOAD_H_
