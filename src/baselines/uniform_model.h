#ifndef HDIDX_BASELINES_UNIFORM_MODEL_H_
#define HDIDX_BASELINES_UNIFORM_MODEL_H_

#include <cstddef>

#include "data/dataset.h"
#include "index/topology.h"

namespace hdidx::baselines {

/// The uniformity-based cost model the paper compares against in Table 4
/// (Weber, Schek, Blott [33] / Berchtold, Böhm, Keim, Kriegel [4] style).
///
/// Assumptions the model makes — and which the paper shows break down in
/// high dimensions:
///  * data uniformly distributed in the (normalized) data cube;
///  * pages created by recursively splitting the space *in the middle*:
///    with P leaf pages, d' = ceil(log2 P) splits are spread round-robin
///    over the embedding dimensions, so a page spans 2^-s_i of dimension i
///    after s_i splits;
///  * the expected k-NN sphere radius follows from equating the expected
///    number of neighbors inside the sphere with k:
///    r = (k / (N * V_unit(d)))^(1/d);
///  * a page is accessed iff the sphere intersects it, estimated with the
///    Minkowski-sum probability prod_i min(1, extent_i + 2r).
struct UniformModelParams {
  size_t num_points = 0;
  size_t dim = 0;
  /// Number of leaf pages of the index being modeled.
  size_t num_leaf_pages = 0;
  /// k of the k-NN queries.
  size_t k = 1;
};

struct UniformModelResult {
  /// Expected k-NN sphere radius in the normalized unit cube.
  double radius = 0.0;
  /// Number of dimensions the model splits (d' = ceil(log2 P)).
  size_t split_dims = 0;
  /// Probability that a query sphere intersects a page.
  double access_probability = 0.0;
  /// Predicted number of leaf page accesses per query.
  double predicted_accesses = 0.0;
};

/// Evaluates the model. The prediction saturates at num_leaf_pages — the
/// paper's observation that from moderate dimensionality onwards the
/// uniform model predicts that *every* page is accessed.
UniformModelResult PredictUniformModel(const UniformModelParams& params);

}  // namespace hdidx::baselines

#endif  // HDIDX_BASELINES_UNIFORM_MODEL_H_
