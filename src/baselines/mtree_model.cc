#include "baselines/mtree_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::baselines {

DistanceDistribution::DistanceDistribution(const data::Dataset& data,
                                           size_t num_pairs,
                                           common::Rng* rng) {
  HDIDX_CHECK(data.size() >= 2);
  HDIDX_CHECK(num_pairs >= 1);
  distances_.reserve(num_pairs);
  for (size_t i = 0; i < num_pairs; ++i) {
    const size_t a = static_cast<size_t>(rng->NextBounded(data.size()));
    size_t b = static_cast<size_t>(rng->NextBounded(data.size() - 1));
    if (b >= a) ++b;  // distinct pair, uniform over off-diagonal pairs
    distances_.push_back(geometry::L2(data.row(a), data.row(b)));
  }
  std::sort(distances_.begin(), distances_.end());
}

double DistanceDistribution::Cdf(double x) const {
  const auto it =
      std::upper_bound(distances_.begin(), distances_.end(), x);
  return static_cast<double>(it - distances_.begin()) /
         static_cast<double>(distances_.size());
}

double DistanceDistribution::Quantile(double q) const {
  if (q <= 0.0) return 0.0;
  const size_t rank = std::min(
      distances_.size() - 1,
      static_cast<size_t>(std::ceil(q * static_cast<double>(
                                            distances_.size()))) -
          1);
  return distances_[rank];
}

double DistanceDistribution::ExpectedKnnRadius(size_t k, size_t n) const {
  HDIDX_CHECK(n >= 2);
  return Quantile(static_cast<double>(k) / static_cast<double>(n - 1));
}

double PredictSphereAccesses(
    const DistanceDistribution& distribution,
    const std::vector<geometry::BoundingSphere>& leaves, double radius) {
  double expected = 0.0;
  for (const auto& leaf : leaves) {
    // A query anchored at a data-like point reaches the leaf iff its
    // distance to the leaf center is <= radius + r_leaf; the center is
    // itself data-like, so the pairwise distance distribution applies.
    expected += distribution.Cdf(radius + leaf.radius());
  }
  return expected;
}

double PredictAverageSphereAccesses(
    const DistanceDistribution& distribution,
    const std::vector<geometry::BoundingSphere>& leaves,
    const std::vector<double>& radii) {
  if (radii.empty()) return 0.0;
  double total = 0.0;
  for (double r : radii) {
    total += PredictSphereAccesses(distribution, leaves, r);
  }
  return total / static_cast<double>(radii.size());
}

}  // namespace hdidx::baselines
