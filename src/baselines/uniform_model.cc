#include "baselines/uniform_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::baselines {

UniformModelResult PredictUniformModel(const UniformModelParams& params) {
  HDIDX_CHECK(params.num_points > 0);
  HDIDX_CHECK(params.dim > 0);
  HDIDX_CHECK(params.num_leaf_pages > 0);
  UniformModelResult result;

  const double n = static_cast<double>(params.num_points);
  const double d = static_cast<double>(params.dim);
  const double pages = static_cast<double>(params.num_leaf_pages);

  // Expected k-NN radius: N * V_sphere(r) = k, V_sphere(r) = V_unit * r^d.
  // Computed in log space: in high d, V_unit underflows and r exceeds 1 —
  // the sphere out-grows the data cube, which is exactly the curse-of-
  // dimensionality regime the model mishandles.
  const double log_v_unit =
      0.5 * d * std::log(M_PI) - std::lgamma(0.5 * d + 1.0);
  const double log_r =
      (std::log(static_cast<double>(params.k) / n) - log_v_unit) / d;
  result.radius = std::exp(log_r);

  // Midpoint splits spread round-robin over the dimensions.
  result.split_dims = static_cast<size_t>(std::ceil(std::log2(pages)));
  double log_prob = 0.0;
  for (size_t i = 0; i < params.dim && i < result.split_dims; ++i) {
    // Splits per dimension: dimensions i < (split_dims % dim) get one more
    // when split_dims > dim.
    const size_t splits =
        result.split_dims / params.dim +
        (i < result.split_dims % params.dim ? 1 : 0);
    const double extent = std::pow(0.5, static_cast<double>(splits));
    log_prob += std::log(std::min(1.0, extent + 2.0 * result.radius));
  }
  result.access_probability = std::exp(log_prob);
  result.predicted_accesses =
      std::min(pages, pages * result.access_probability);
  return result;
}

}  // namespace hdidx::baselines
