#include "baselines/fractal.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/stats.h"
#include "geometry/bounding_box.h"

namespace hdidx::baselines {

namespace {

/// 64-bit mix for combining cell coordinates into a hash key
/// (SplitMix64 finalizer).
uint64_t Mix(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

FractalDimensions EstimateFractalDimensions(const data::Dataset& data,
                                            int max_levels) {
  HDIDX_CHECK(!data.empty());
  HDIDX_CHECK(max_levels >= 2);
  const size_t n = data.size();
  const size_t d = data.dim();

  // Normalize to the unit cube.
  const geometry::BoundingBox bounds = data.Bounds();
  std::vector<double> lo(d), inv_extent(d);
  for (size_t k = 0; k < d; ++k) {
    lo[k] = bounds.lo()[k];
    const double extent = bounds.Extent(k);
    inv_extent[k] = extent > 0.0 ? 1.0 / extent : 0.0;
  }

  FractalDimensions result;
  std::vector<double> level_log_occupied;  // log2 N(eps_j)
  std::vector<double> level_log_s2;        // log2 sum p_i^2
  std::vector<int> levels;

  std::unordered_map<uint64_t, uint32_t> cells;
  for (int j = 1; j <= max_levels; ++j) {
    const double cells_per_axis = std::pow(2.0, j);
    cells.clear();
    cells.reserve(std::min<size_t>(n, 1u << 20));
    for (size_t i = 0; i < n; ++i) {
      const auto row = data.row(i);
      uint64_t key = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(j);
      for (size_t k = 0; k < d; ++k) {
        const double t =
            (static_cast<double>(row[k]) - lo[k]) * inv_extent[k];
        const double clamped = std::clamp(t, 0.0, 1.0 - 1e-12);
        const uint64_t cell = static_cast<uint64_t>(clamped * cells_per_axis);
        key = Mix(key ^ (cell + 0x165667b19e3779f9ULL * (k + 1)));
      }
      ++cells[key];
    }
    double s2 = 0.0;
    for (const auto& [key, count] : cells) {
      const double p = static_cast<double>(count) / static_cast<double>(n);
      s2 += p * p;
    }
    result.occupied_cells.push_back(cells.size());
    level_log_occupied.push_back(std::log2(static_cast<double>(cells.size())));
    level_log_s2.push_back(std::log2(s2));
    levels.push_back(j);
    // Finer levels add nothing once nearly every point is alone in its
    // cell; stop early.
    if (cells.size() > n * 9 / 10) break;
  }

  // Fit over the non-saturated region: levels where occupancy is still
  // growing and below half the points.
  std::vector<double> fit_x0, fit_y0, fit_x2, fit_y2;
  for (size_t idx = 0; idx < levels.size(); ++idx) {
    const bool saturated =
        result.occupied_cells[idx] > n / 2 ||
        (idx > 0 &&
         result.occupied_cells[idx] == result.occupied_cells[idx - 1]);
    if (saturated && fit_x0.size() >= 2) break;
    // x = log2(1/eps) = j for D0; x = log2(eps) = -j for D2.
    fit_x0.push_back(static_cast<double>(levels[idx]));
    fit_y0.push_back(level_log_occupied[idx]);
    fit_x2.push_back(-static_cast<double>(levels[idx]));
    fit_y2.push_back(level_log_s2[idx]);
    result.fitted_levels.push_back(levels[idx]);
  }
  if (fit_x0.size() < 2) {
    // Degenerate data (single cell at every level): dimension 0.
    result.d0 = 0.0;
    result.d2 = 0.0;
    result.d2_intercept_log2 = level_log_s2.empty() ? 0.0 : level_log_s2[0];
    return result;
  }

  const common::LineFit fit0 = common::FitLine(fit_x0, fit_y0);
  const common::LineFit fit2 = common::FitLine(fit_x2, fit_y2);
  result.d0 = std::max(0.0, fit0.slope);
  result.d2 = std::max(0.0, fit2.slope);
  result.d2_intercept_log2 = fit2.intercept;
  return result;
}

FractalModelResult PredictFractalModel(const FractalDimensions& dims,
                                       const FractalModelParams& params) {
  HDIDX_CHECK(params.num_points > 1);
  HDIDX_CHECK(params.num_leaf_pages > 0);
  FractalModelResult result;

  const double n = static_cast<double>(params.num_points);
  const double pages = static_cast<double>(params.num_leaf_pages);

  if (dims.d2 <= 1e-6 || dims.d0 <= 1e-6) {
    // The power laws are degenerate; the model cannot produce a radius.
    result.applicable = false;
    result.predicted_accesses = pages;
    return result;
  }

  // Radius: solve (N-1) * 2^c2 * r^D2 = k in log2 space.
  const double log2_r =
      (std::log2(static_cast<double>(params.k) / (n - 1.0)) -
       dims.d2_intercept_log2) /
      dims.d2;
  result.radius = std::exp2(log2_r);

  // Square pages tiling the D0-dimensional support.
  result.page_side = std::pow(1.0 / pages, 1.0 / dims.d0);
  result.effective_dims = std::max<size_t>(
      1, static_cast<size_t>(std::llround(dims.d0)));

  const double per_dim =
      std::min(1.0, result.page_side + 2.0 * result.radius);
  result.predicted_accesses = std::min(
      pages,
      pages * std::pow(per_dim, static_cast<double>(result.effective_dims)));
  return result;
}

}  // namespace hdidx::baselines
