#ifndef HDIDX_BASELINES_MTREE_MODEL_H_
#define HDIDX_BASELINES_MTREE_MODEL_H_

#include <cstddef>
#include <vector>

#include "common/random.h"
#include "data/dataset.h"
#include "geometry/bounding_sphere.h"

namespace hdidx::baselines {

/// The distance-distribution cost model of Ciaccia and Patella for
/// ball-region (M-tree / SS-tree style) nodes — the data-partitioning
/// representative of the paper's "locally parametric" family (Section 2.3).
///
/// The model annotates the index with one global statistic, the pairwise
/// distance distribution F(x) = P(dist(p, q) <= x), estimated from a sample
/// of point pairs. A node with region radius r_i is accessed by a
/// range query of radius r with probability F(r + r_i) (the query anchor is
/// distributed like the data); the expected page accesses of a workload are
/// the sum of those probabilities.
///
/// Exposed as a baseline: it needs the real index's node radii (so it does
/// not avoid the index build the sampling technique avoids), and the paper
/// notes the family is "restricted to other index structures (like the
/// M-tree)" — this module quantifies how it fares on sphere pages next to
/// the sampling predictor.
class DistanceDistribution {
 public:
  /// Estimates F from `num_pairs` random point pairs of `data`.
  DistanceDistribution(const data::Dataset& data, size_t num_pairs,
                       common::Rng* rng);

  /// P(dist <= x) by interpolation on the sampled distances.
  double Cdf(double x) const;

  /// Quantile: smallest sampled distance d with P(dist <= d) >= q.
  double Quantile(double q) const;

  /// Expected k-NN radius of a density-biased query against `n` points:
  /// the distance at which the expected number of neighbors reaches k,
  /// i.e. Quantile(k / (n-1)).
  double ExpectedKnnRadius(size_t k, size_t n) const;

  const std::vector<double>& sorted_distances() const { return distances_; }

 private:
  std::vector<double> distances_;  // sorted
};

/// Expected page accesses for a query of radius `radius`: sum over leaves
/// of F(radius + r_leaf).
double PredictSphereAccesses(const DistanceDistribution& distribution,
                             const std::vector<geometry::BoundingSphere>& leaves,
                             double radius);

/// Workload-level prediction: averages PredictSphereAccesses over per-query
/// radii (use the workload's exact radii, or ExpectedKnnRadius for a fully
/// model-driven estimate).
double PredictAverageSphereAccesses(
    const DistanceDistribution& distribution,
    const std::vector<geometry::BoundingSphere>& leaves,
    const std::vector<double>& radii);

}  // namespace hdidx::baselines

#endif  // HDIDX_BASELINES_MTREE_MODEL_H_
