#ifndef HDIDX_BASELINES_FRACTAL_H_
#define HDIDX_BASELINES_FRACTAL_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"

namespace hdidx::baselines {

/// Fractal-dimension estimates of a dataset, produced by grid box counting
/// over dyadic resolutions (cell side 2^-j of the normalized data cube).
struct FractalDimensions {
  /// Box-counting (Hausdorff) dimension D0: slope of log N(eps) vs
  /// log(1/eps) over the fitted linear region.
  double d0 = 0.0;
  /// Correlation dimension D2: slope of log sum(p_i^2) vs log(eps).
  double d2 = 0.0;
  /// Intercept of the D2 fit in log2 space: sum(p_i^2) ~ 2^intercept *
  /// eps^D2. Used to calibrate the k-NN radius law.
  double d2_intercept_log2 = 0.0;
  /// Grid levels j used for the fits.
  std::vector<int> fitted_levels;
  /// Occupied-cell counts per level (diagnostics).
  std::vector<size_t> occupied_cells;
};

/// Estimates D0 and D2 with grid box counting at levels j = 1..max_levels
/// (cells of side 2^-j after normalizing the data MBR to the unit cube).
/// The fit automatically excludes saturated fine levels where almost every
/// point sits alone in its cell. O(N * d * max_levels).
FractalDimensions EstimateFractalDimensions(const data::Dataset& data,
                                            int max_levels);

/// The fractal-dimensionality cost model the paper compares against in
/// Table 4 (Korn, Pagel, Faloutsos [22] style, building on Faloutsos-Kamel
/// [12] and Belussi-Faloutsos).
///
/// Reconstruction documented in DESIGN.md: the expected k-NN radius comes
/// from the correlation power law nb(r) = (N-1) * 2^c2 * r^D2 calibrated
/// with the measured intercept c2; pages are assumed square within the
/// D0-dimensional data support, side (1/P)^(1/D0); accesses follow the
/// Minkowski-sum probability over round(D0) effective split dimensions.
struct FractalModelParams {
  size_t num_points = 0;
  size_t num_leaf_pages = 0;
  size_t k = 1;
};

struct FractalModelResult {
  double radius = 0.0;
  double page_side = 0.0;
  size_t effective_dims = 0;
  double predicted_accesses = 0.0;
  /// False when the estimate is unusable (too few points relative to the
  /// dimensionality — the paper notes the approach "is not applicable
  /// anymore" for its 360- and 617-dimensional datasets).
  bool applicable = true;
};

FractalModelResult PredictFractalModel(const FractalDimensions& dims,
                                       const FractalModelParams& params);

}  // namespace hdidx::baselines

#endif  // HDIDX_BASELINES_FRACTAL_H_
