#include "baselines/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hdidx::baselines {

GridHistogram::GridHistogram(const data::Dataset& data, size_t bucket_budget)
    : dim_(data.dim()), bounds_(data.Bounds()) {
  HDIDX_CHECK(!data.empty());
  HDIDX_CHECK(bucket_budget >= 1);
  // Per-dimension resolution from the budget; collapses to 1 in high d.
  resolution_ = std::max<size_t>(
      1, static_cast<size_t>(std::floor(std::pow(
             static_cast<double>(bucket_budget),
             1.0 / static_cast<double>(dim_)))));

  cell_lo_.resize(dim_);
  cell_width_.resize(dim_);
  size_t total_cells = 1;
  for (size_t k = 0; k < dim_; ++k) {
    cell_lo_[k] = bounds_.lo()[k];
    const double extent = bounds_.Extent(k);
    cell_width_[k] =
        extent > 0.0 ? extent / static_cast<double>(resolution_) : 1.0;
    total_cells *= resolution_;
  }
  counts_.assign(total_cells, 0);

  std::vector<size_t> coords(dim_);
  for (size_t i = 0; i < data.size(); ++i) {
    const auto row = data.row(i);
    for (size_t k = 0; k < dim_; ++k) {
      const double t = (static_cast<double>(row[k]) - cell_lo_[k]) /
                       cell_width_[k];
      coords[k] = std::min<size_t>(resolution_ - 1,
                                   static_cast<size_t>(std::max(0.0, t)));
    }
    ++counts_[CellIndex(coords)];
  }
}

size_t GridHistogram::CellIndex(const std::vector<size_t>& coords) const {
  size_t index = 0;
  for (size_t k = 0; k < dim_; ++k) {
    index = index * resolution_ + coords[k];
  }
  return index;
}

double GridHistogram::EmptyCellFraction() const {
  size_t empty = 0;
  for (uint32_t c : counts_) empty += c == 0 ? 1 : 0;
  return static_cast<double>(empty) / static_cast<double>(counts_.size());
}

double GridHistogram::EstimateBoxCardinality(
    const geometry::BoundingBox& box) const {
  if (box.empty()) return 0.0;
  // Per dimension: the range of overlapped cells and, per cell, the
  // covered fraction. Enumerate the (bounded) cell product space.
  std::vector<size_t> first(dim_), last(dim_);
  for (size_t k = 0; k < dim_; ++k) {
    const double lo = (static_cast<double>(box.lo()[k]) - cell_lo_[k]) /
                      cell_width_[k];
    const double hi = (static_cast<double>(box.hi()[k]) - cell_lo_[k]) /
                      cell_width_[k];
    if (hi < 0.0 || lo > static_cast<double>(resolution_)) return 0.0;
    first[k] = static_cast<size_t>(
        std::clamp(std::floor(lo), 0.0, static_cast<double>(resolution_ - 1)));
    last[k] = static_cast<size_t>(std::clamp(
        std::floor(hi), 0.0, static_cast<double>(resolution_ - 1)));
  }

  double total = 0.0;
  std::vector<size_t> coords = first;
  for (;;) {
    // Covered volume fraction of this cell.
    double fraction = 1.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double cell_a =
          cell_lo_[k] + static_cast<double>(coords[k]) * cell_width_[k];
      const double cell_b = cell_a + cell_width_[k];
      const double overlap =
          std::min(cell_b, static_cast<double>(box.hi()[k])) -
          std::max(cell_a, static_cast<double>(box.lo()[k]));
      fraction *= std::clamp(overlap / cell_width_[k], 0.0, 1.0);
    }
    total += fraction * counts_[CellIndex(coords)];

    // Advance the multi-index.
    size_t k = dim_;
    while (k-- > 0) {
      if (coords[k] < last[k]) {
        ++coords[k];
        std::fill(coords.begin() + static_cast<ptrdiff_t>(k) + 1,
                  coords.end(), 0);
        for (size_t j = k + 1; j < dim_; ++j) coords[j] = first[j];
        break;
      }
      if (k == 0) return total;
    }
  }
}

size_t GridHistogram::ExactBoxCardinality(const data::Dataset& data,
                                          const geometry::BoundingBox& box) {
  size_t count = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (box.Contains(data.row(i))) ++count;
  }
  return count;
}

}  // namespace hdidx::baselines
