#ifndef HDIDX_BASELINES_HISTOGRAM_H_
#define HDIDX_BASELINES_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "geometry/bounding_box.h"

namespace hdidx::baselines {

/// A regular-grid histogram over the data space — the locally parametric
/// model family of the paper's Section 2.3 (Theodoridis-Sellis density
/// surfaces, Acharya et al. spatial histograms).
///
/// The paper excludes this family from its comparison because it is "not
/// applicable in high dimensions since either the number of histogram
/// regions becomes too large, or these regions contain too much empty
/// space". This implementation makes the argument executable: with a fixed
/// bucket budget B, the per-dimension resolution is floor(B^(1/d)), which
/// collapses to 1 once d exceeds log2(B) — at that point the histogram
/// degenerates into the global uniform model (`bench_baseline_limits`).
class GridHistogram {
 public:
  /// Builds a histogram over `data` using at most `bucket_budget` cells:
  /// resolution per dimension = max(1, floor(budget^(1/d))).
  GridHistogram(const data::Dataset& data, size_t bucket_budget);

  size_t dim() const { return dim_; }
  /// Cells per dimension actually used.
  size_t resolution() const { return resolution_; }
  /// Total number of cells (resolution^dim, capped by the budget rule).
  size_t num_cells() const { return counts_.size(); }
  /// Fraction of cells containing no points — the "too much empty space"
  /// failure mode.
  double EmptyCellFraction() const;

  /// Estimated number of points inside `box`: full counts of covered
  /// cells plus volume-fractional counts of partially covered ones
  /// (within-cell uniformity).
  double EstimateBoxCardinality(const geometry::BoundingBox& box) const;

  /// Exact number of points of `data` in `box` (helper for evaluating the
  /// estimator; O(N)).
  static size_t ExactBoxCardinality(const data::Dataset& data,
                                    const geometry::BoundingBox& box);

 private:
  size_t CellIndex(const std::vector<size_t>& coords) const;

  size_t dim_;
  size_t resolution_;
  geometry::BoundingBox bounds_;
  std::vector<double> cell_lo_;      // per dim, grid origin
  std::vector<double> cell_width_;   // per dim
  std::vector<uint32_t> counts_;
};

}  // namespace hdidx::baselines

#endif  // HDIDX_BASELINES_HISTOGRAM_H_
