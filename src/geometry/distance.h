#ifndef HDIDX_GEOMETRY_DISTANCE_H_
#define HDIDX_GEOMETRY_DISTANCE_H_

#include <span>

#include "geometry/bounding_box.h"

namespace hdidx::geometry {

/// Squared Euclidean (L2) distance between two points of equal size.
double SquaredL2(std::span<const float> a, std::span<const float> b);

/// Euclidean (L2) distance between two points of equal size.
double L2(std::span<const float> a, std::span<const float> b);

/// MINDIST: the smallest Euclidean distance between `point` and any point of
/// `box` (0 if the point is inside). This is the standard R-tree pruning
/// metric; a k-NN sphere of radius r intersects `box` iff
/// MinDist(point, box) <= r.
double MinDist(std::span<const float> point, const BoundingBox& box);

/// Squared MINDIST; cheaper when only comparisons against a squared radius
/// are needed.
double SquaredMinDist(std::span<const float> point, const BoundingBox& box);

/// MAXDIST: the largest Euclidean distance between `point` and any point of
/// `box`. An NN sphere of radius r fully covers the box iff
/// MaxDist(point, box) <= r.
double MaxDist(std::span<const float> point, const BoundingBox& box);

/// Squared MAXDIST; the sqrt-free form for covering checks that compare
/// against a squared radius (MaxDist is its exact sqrt).
double SquaredMaxDist(std::span<const float> point, const BoundingBox& box);

/// True iff the sphere (center, radius) intersects `box`, i.e. the query
/// region of an NN query with this radius would access a page with this MBR.
/// Requires radius >= 0 (a NaN radius fails the check too — it used to make
/// every page count as missed, silently).
bool SphereIntersectsBox(std::span<const float> center, double radius,
                         const BoundingBox& box);

/// True iff the sphere (center, radius) fully covers `box`: every corner is
/// within the radius. Sqrt-free (squared MAXDIST against squared radius).
/// Empty boxes are vacuously covered. Requires radius >= 0.
bool SphereCoversBox(std::span<const float> center, double radius,
                     const BoundingBox& box);

/// Volume of the d-dimensional unit hypersphere. Computed via the
/// log-gamma function for numerical stability in hundreds of dimensions.
double UnitSphereVolume(size_t dim);

}  // namespace hdidx::geometry

#endif  // HDIDX_GEOMETRY_DISTANCE_H_
