#include "geometry/kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <queue>
#include <string_view>

#include "common/check.h"
#include "geometry/isa/block_ops.h"

namespace hdidx::geometry::kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr size_t kBlock = BoxSlab::kBlock;

static_assert(BoxSlab::kPlaneStride % kBlock == 0,
              "plane padding must cover whole kernel blocks");

// Test/bench override for the kernel mode; -1 = no override, the
// HDIDX_KERNEL environment default applies.
//
// Happens-before: SetKernelMode / ClearKernelModeOverride store with
// release semantics and ActiveKernelMode loads with acquire, so a thread
// that observes an override also observes everything the overriding
// thread did first (e.g. a test arranging slab state before forcing a
// mode). The once-only stderr warning for garbage HDIDX_KERNEL values
// lives in a function-local static below, whose initialization the
// language runs exactly once under its own guard — both pieces of mutable
// kernel-mode state are race-free by construction, not merely unobserved
// by TSan.
std::atomic<int> g_mode_override{-1};  // (hdidx-lint: allow-global)

/// Whether the running CPU has the ISA `mode` needs. Compile-target
/// availability (was the isa/ TU built for this arch?) is a separate check;
/// both must hold for KernelModeSupported.
bool CpuSupportsIsa(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
    case KernelMode::kGeneric:
      return true;
    case KernelMode::kAvx2:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case KernelMode::kAvx512:
#if defined(__x86_64__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case KernelMode::kNeon:
      // NEON is architecturally mandatory on aarch64, so compile-target
      // support (NeonOps() != nullptr) implies runtime support.
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

/// The block-op table for `mode` (null for kScalar, which runs the inline
/// oracle loops below). Callers must pass a supported mode.
const isa::BlockOps* OpsFor(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return nullptr;
    case KernelMode::kGeneric:
      return isa::GenericOps();
    case KernelMode::kAvx2:
      return isa::Avx2Ops();
    case KernelMode::kAvx512:
      return isa::Avx512Ops();
    case KernelMode::kNeon:
      return isa::NeonOps();
  }
  return nullptr;
}

/// The per-dimension MINDIST term, branchless: max(0, lo - q, q - hi) as
/// doubles. Bit-identical to the branches in geometry::SquaredMinDist
/// (whichever side is positive is the same subtraction), and the std::max
/// argument order makes a NaN coordinate yield 0 exactly like both scalar
/// branches failing.
inline double MinDistTerm(double q, float lo, float hi) {
  return std::max(std::max(0.0, static_cast<double>(lo) - q),
                  q - static_cast<double>(hi));
}

/// SquaredMinDist of `center` to slab lane `b`, full accumulation in
/// dimension order. Sentinel lanes (empty boxes, padding) accumulate +inf —
/// the value geometry::SquaredMinDist returns for an empty box.
double LaneSquaredMinDist(std::span<const float> center, const BoxSlab& slab,
                          size_t b) {
  double s = 0.0;
  for (size_t d = 0; d < slab.dim(); ++d) {
    const double diff = MinDistTerm(center[d], slab.lo_plane(d)[b],
                                    slab.hi_plane(d)[b]);
    s += diff * diff;
  }
  return s;
}

/// KnnHeap's exact semantics (bounded max-heap of the k smallest squared
/// distances), local so the geometry layer does not depend on index/.
class BoundedDistanceHeap {
 public:
  explicit BoundedDistanceHeap(size_t k) : k_(k) {}

  void Push(double d2) {
    if (heap_.size() < k_) {
      heap_.push(d2);
    } else if (d2 < heap_.top()) {
      heap_.pop();
      heap_.push(d2);
    }
  }

  /// Current k-th smallest squared distance; +inf until k were collected.
  double Threshold() const { return heap_.size() == k_ ? heap_.top() : kInf; }

 private:
  size_t k_;
  std::priority_queue<double> heap_;
};

/// Bounded max-heap of the k smallest (squared distance, row) pairs under
/// pair ordering — retains exactly the first k elements a partial_sort of
/// all pairs would produce (rows are unique, so the order is total).
class BoundedPairHeap {
 public:
  explicit BoundedPairHeap(size_t k) : k_(k) {}

  void Push(double d2, size_t row) {
    const std::pair<double, size_t> p(d2, row);
    if (heap_.size() < k_) {
      heap_.push(p);
    } else if (p < heap_.top()) {
      heap_.pop();
      heap_.push(p);
    }
  }

  double Threshold() const {
    return heap_.size() == k_ ? heap_.top().first : kInf;
  }

  std::vector<std::pair<double, size_t>> TakeSortedAscending() {
    std::vector<std::pair<double, size_t>> result(heap_.size());
    for (size_t i = heap_.size(); i > 0; --i) {
      result[i - 1] = heap_.top();
      heap_.pop();
    }
    return result;
  }

 private:
  size_t k_;
  std::priority_queue<std::pair<double, size_t>> heap_;
};

/// Shared skeleton of the two k-NN scan kernels: streams rows in order,
/// applies the exclusion rules, and feeds `push(d2, row)`. `threshold()`
/// returns the current no-op-push bound (k-th distance once k rows were
/// collected); a batched block abandons once every lane's partial sum
/// exceeds the bound captured at block start — the bound only shrinks, so
/// an abandoned row's push would have been a no-op.
template <typename Heap>
void ScanRows(std::span<const float> query, std::span<const float> rows,
              size_t dim, const ScanOptions& opts, KernelMode mode,
              Heap* heap) {
  HDIDX_CHECK(dim > 0);
  HDIDX_CHECK(rows.size() % dim == 0);
  HDIDX_CHECK(query.size() == dim);
  const size_t n = rows.size() / dim;
  const float* base_ptr = rows.data();

  const auto consider = [&](size_t row, double d2) {
    if (row == opts.exclude_row) {
      // Unconditional exclusion (the query's own row), or the accounted
      // scan's rule: only skip the row when it sits at distance zero, so
      // duplicates of the query point still count as neighbors.
      if (!opts.exclude_row_only_if_zero) return;
      if (d2 <= 0.0) return;
    }
    if (d2 <= opts.exclude_within_sq) return;
    heap->Push(d2, row);
  };

  const auto scalar_row = [&](size_t row) {
    if (row == opts.exclude_row && !opts.exclude_row_only_if_zero) return;
    const float* p = base_ptr + row * dim;
    double d2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = static_cast<double>(p[d]) - query[d];
      d2 += diff * diff;
    }
    consider(row, d2);
  };

  size_t next = 0;
  if (mode != KernelMode::kScalar) {
    const isa::BlockOps* ops = OpsFor(mode);
    std::array<double, kBlock> acc;
    for (; next + kBlock <= n; next += kBlock) {
      // Abandonment needs a full heap (threshold < +inf), so the skipped
      // pushes were no-ops and the exclusion rules are moot for them too:
      // every abandoned lane has d2 > threshold >= 0.
      if (!ops->row_block(query.data(), base_ptr + next * dim, dim,
                          heap->Threshold(), acc.data())) {
        continue;
      }
      for (size_t l = 0; l < kBlock; ++l) consider(next + l, acc[l]);
    }
  }
  for (; next < n; ++next) scalar_row(next);
}

/// Adapter so BoundedDistanceHeap fits the ScanRows push signature.
struct DistanceHeapAdapter {
  BoundedDistanceHeap heap;
  explicit DistanceHeapAdapter(size_t k) : heap(k) {}
  void Push(double d2, size_t) { heap.Push(d2); }
  double Threshold() const { return heap.Threshold(); }
};

}  // namespace

bool KernelModeSupported(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
    case KernelMode::kGeneric:
      return true;
    case KernelMode::kAvx2:
    case KernelMode::kAvx512:
    case KernelMode::kNeon:
      return OpsFor(mode) != nullptr && CpuSupportsIsa(mode);
  }
  return false;
}

KernelMode ResolveKernelMode(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
    case KernelMode::kGeneric:
      return mode;
    case KernelMode::kAvx512:
      if (KernelModeSupported(KernelMode::kAvx512)) {
        return KernelMode::kAvx512;
      }
      [[fallthrough]];
    case KernelMode::kAvx2:
      if (KernelModeSupported(KernelMode::kAvx2)) return KernelMode::kAvx2;
      return KernelMode::kGeneric;
    case KernelMode::kNeon:
      if (KernelModeSupported(KernelMode::kNeon)) return KernelMode::kNeon;
      return KernelMode::kGeneric;
  }
  return KernelMode::kGeneric;
}

KernelMode BestKernelMode() {
  if (KernelModeSupported(KernelMode::kAvx512)) return KernelMode::kAvx512;
  if (KernelModeSupported(KernelMode::kAvx2)) return KernelMode::kAvx2;
  if (KernelModeSupported(KernelMode::kNeon)) return KernelMode::kNeon;
  return KernelMode::kGeneric;
}

std::vector<KernelMode> SupportedKernelModes() {
  std::vector<KernelMode> modes;
  for (const KernelMode mode :
       {KernelMode::kScalar, KernelMode::kGeneric, KernelMode::kAvx2,
        KernelMode::kAvx512, KernelMode::kNeon}) {
    if (KernelModeSupported(mode)) modes.push_back(mode);
  }
  return modes;
}

std::string_view KernelModeName(KernelMode mode) {
  switch (mode) {
    case KernelMode::kScalar:
      return "scalar";
    case KernelMode::kGeneric:
      return "generic";
    case KernelMode::kAvx2:
      return "avx2";
    case KernelMode::kAvx512:
      return "avx512";
    case KernelMode::kNeon:
      return "neon";
  }
  return "unknown";
}

bool ParseKernelMode(std::string_view name, KernelMode* mode) {
  if (name == "scalar") {
    *mode = KernelMode::kScalar;
    return true;
  }
  if (name == "generic" || name == "batched") {  // "batched" = PR 5 name
    *mode = KernelMode::kGeneric;
    return true;
  }
  if (name == "avx2") {
    *mode = KernelMode::kAvx2;
    return true;
  }
  if (name == "avx512") {
    *mode = KernelMode::kAvx512;
    return true;
  }
  if (name == "neon") {
    *mode = KernelMode::kNeon;
    return true;
  }
  *mode = BestKernelMode();
  return false;
}

KernelMode ActiveKernelMode() {
  const int forced = g_mode_override.load(std::memory_order_acquire);
  if (forced >= 0) return ResolveKernelMode(static_cast<KernelMode>(forced));
  static const KernelMode from_env = [] {
    const char* env = std::getenv("HDIDX_KERNEL");
    // An empty value (e.g. `HDIDX_KERNEL= prog`) means unset, not garbage.
    if (env == nullptr || *env == '\0') return BestKernelMode();
    KernelMode parsed = KernelMode::kGeneric;
    if (!ParseKernelMode(env, &parsed)) {
      // Deterministic fallback, never UB: warn once (stderr — stdout is the
      // serving protocol) and run the host's best mode.
      std::cerr << "hdidx: unknown HDIDX_KERNEL value \"" << env
                << "\"; falling back to " << KernelModeName(parsed) << "\n";
    }
    return ResolveKernelMode(parsed);
  }();
  return from_env;
}

void SetKernelMode(KernelMode mode) {
  g_mode_override.store(static_cast<int>(mode), std::memory_order_release);
}

void ClearKernelModeOverride() {
  g_mode_override.store(-1, std::memory_order_release);
}

void BoxSlab::Fill(size_t count, size_t dim,
                   const BoundingBox& (*get)(const void*, size_t),
                   const void* ctx, common::Arena* arena) {
  size_ = count;
  dim_ = dim;
  padded_ = (count + kPlaneStride - 1) / kPlaneStride * kPlaneStride;
  common::Arena* backing = arena != nullptr ? arena : &owned_;
  // Two 64B-aligned arena arrays; padded_ is a multiple of 16 floats, so
  // every per-dimension plane inside them starts on a cacheline boundary.
  // Writing the planes here is the first touch, on the building thread.
  lo_ = backing->AllocateArray<float>(dim_ * padded_);
  hi_ = backing->AllocateArray<float>(dim_ * padded_);
  std::fill_n(lo_, dim_ * padded_, std::numeric_limits<float>::infinity());
  std::fill_n(hi_, dim_ * padded_, -std::numeric_limits<float>::infinity());
  for (size_t b = 0; b < count; ++b) {
    const BoundingBox& box = get(ctx, b);
    HDIDX_CHECK(box.dim() == dim_);
    if (box.empty()) continue;  // keep the sentinel: infinitely far
    for (size_t d = 0; d < dim_; ++d) {
      lo_[d * padded_ + b] = box.lo()[d];
      hi_[d * padded_ + b] = box.hi()[d];
    }
  }
}

BoxSlab::BoxSlab(std::span<const BoundingBox> boxes, common::Arena* arena) {
  if (boxes.empty()) return;
  Fill(
      boxes.size(), boxes[0].dim(),
      [](const void* ctx, size_t i) -> const BoundingBox& {
        return static_cast<const BoundingBox*>(ctx)[i];
      },
      boxes.data(), arena);
}

BoxSlab::BoxSlab(std::span<const BoundingBox* const> boxes,
                 common::Arena* arena) {
  if (boxes.empty()) return;
  Fill(
      boxes.size(), boxes[0]->dim(),
      [](const void* ctx, size_t i) -> const BoundingBox& {
        return *static_cast<const BoundingBox* const*>(ctx)[i];
      },
      boxes.data(), arena);
}

size_t CountSphereHits(std::span<const float> center, double r2,
                       const BoxSlab& slab) {
  return CountSphereHits(center, r2, slab, ActiveKernelMode());
}

size_t CountSphereHits(std::span<const float> center, double r2,
                       const BoxSlab& slab, KernelMode mode) {
  if (slab.size() == 0) return 0;
  HDIDX_CHECK(center.size() == slab.dim());
  mode = ResolveKernelMode(mode);
  size_t count = 0;
  if (mode == KernelMode::kScalar) {
    for (size_t b = 0; b < slab.size(); ++b) {
      if (LaneSquaredMinDist(center, slab, b) <= r2) ++count;
    }
    return count;
  }
  const isa::BlockOps* ops = OpsFor(mode);
  std::array<double, kBlock> acc;
  for (size_t base = 0; base < slab.size(); base += kBlock) {
    const size_t lanes = std::min(kBlock, slab.size() - base);
    if (!ops->sphere_block(center.data(), slab, base, r2, acc.data())) {
      continue;
    }
    for (size_t l = 0; l < lanes; ++l) {
      if (acc[l] <= r2) ++count;
    }
  }
  return count;
}

void AppendSphereHits(std::span<const float> center, double r2,
                      const BoxSlab& slab, std::vector<uint32_t>* hits) {
  AppendSphereHits(center, r2, slab, hits, ActiveKernelMode());
}

void AppendSphereHits(std::span<const float> center, double r2,
                      const BoxSlab& slab, std::vector<uint32_t>* hits,
                      KernelMode mode) {
  if (slab.size() == 0) return;
  HDIDX_CHECK(center.size() == slab.dim());
  mode = ResolveKernelMode(mode);
  if (mode == KernelMode::kScalar) {
    for (size_t b = 0; b < slab.size(); ++b) {
      if (LaneSquaredMinDist(center, slab, b) <= r2) {
        hits->push_back(static_cast<uint32_t>(b));
      }
    }
    return;
  }
  const isa::BlockOps* ops = OpsFor(mode);
  std::array<double, kBlock> acc;
  for (size_t base = 0; base < slab.size(); base += kBlock) {
    const size_t lanes = std::min(kBlock, slab.size() - base);
    if (!ops->sphere_block(center.data(), slab, base, r2, acc.data())) {
      continue;
    }
    for (size_t l = 0; l < lanes; ++l) {
      if (acc[l] <= r2) hits->push_back(static_cast<uint32_t>(base + l));
    }
  }
}

size_t CountBoxHits(const BoundingBox& query, const BoxSlab& slab) {
  return CountBoxHits(query, slab, ActiveKernelMode());
}

size_t CountBoxHits(const BoundingBox& query, const BoxSlab& slab,
                    KernelMode mode) {
  if (slab.size() == 0 || query.empty()) return 0;
  HDIDX_CHECK(query.dim() == slab.dim());
  mode = ResolveKernelMode(mode);
  const size_t dim = slab.dim();
  size_t count = 0;
  if (mode == KernelMode::kScalar) {
    for (size_t b = 0; b < slab.size(); ++b) {
      bool alive = true;
      for (size_t d = 0; d < dim; ++d) {
        if (slab.lo_plane(d)[b] > query.hi()[d] ||
            query.lo()[d] > slab.hi_plane(d)[b]) {
          alive = false;
          break;
        }
      }
      if (alive) ++count;
    }
    return count;
  }
  const isa::BlockOps* ops = OpsFor(mode);
  std::array<bool, kBlock> alive;
  for (size_t base = 0; base < slab.size(); base += kBlock) {
    const size_t lanes = std::min(kBlock, slab.size() - base);
    ops->box_block(query.lo().data(), query.hi().data(), slab, base,
                   alive.data());
    for (size_t l = 0; l < lanes; ++l) {
      if (alive[l]) ++count;
    }
  }
  return count;
}

size_t NearestBox(std::span<const float> point, const BoxSlab& slab) {
  return NearestBox(point, slab, ActiveKernelMode());
}

size_t NearestBox(std::span<const float> point, const BoxSlab& slab,
                  KernelMode mode) {
  HDIDX_CHECK(slab.size() > 0);
  HDIDX_CHECK(point.size() == slab.dim());
  mode = ResolveKernelMode(mode);
  size_t best = 0;
  double best_d2 = kInf;
  if (mode == KernelMode::kScalar) {
    for (size_t b = 0; b < slab.size(); ++b) {
      double d2 = 0.0;
      for (size_t d = 0; d < slab.dim(); ++d) {
        const double diff = MinDistTerm(point[d], slab.lo_plane(d)[b],
                                        slab.hi_plane(d)[b]);
        d2 += diff * diff;
        if (d2 >= best_d2) break;
      }
      if (d2 < best_d2) {
        best_d2 = d2;
        best = b;
        if (d2 == 0.0) break;  // containment: no closer box exists
      }
    }
    return best;
  }
  const isa::BlockOps* ops = OpsFor(mode);
  std::array<double, kBlock> acc;
  for (size_t base = 0; base < slab.size(); base += kBlock) {
    const size_t lanes = std::min(kBlock, slab.size() - base);
    // A lane whose partial sum already reaches best_d2 cannot win (the
    // update is strict <). sphere_block abandons on partial > threshold,
    // so pass the largest double still allowed to win: nextafter(best_d2,
    // 0) — for positive finite best_d2 (0 returns early), acc >
    // nextafter(best_d2, 0) iff acc >= best_d2.
    const double threshold =
        best_d2 == kInf ? kInf : std::nextafter(best_d2, 0.0);
    if (!ops->sphere_block(point.data(), slab, base, threshold, acc.data())) {
      continue;
    }
    for (size_t l = 0; l < lanes; ++l) {
      if (acc[l] < best_d2) {
        best_d2 = acc[l];
        best = base + l;
        if (best_d2 == 0.0) return best;
      }
    }
  }
  return best;
}

void BatchedSquaredL2(std::span<const float> query, const float* rows,
                      size_t count, size_t dim, double* out) {
  BatchedSquaredL2(query, rows, count, dim, out, ActiveKernelMode());
}

void BatchedSquaredL2(std::span<const float> query, const float* rows,
                      size_t count, size_t dim, double* out,
                      KernelMode mode) {
  HDIDX_CHECK(dim > 0);
  HDIDX_CHECK(query.size() == dim);
  mode = ResolveKernelMode(mode);
  size_t next = 0;
  if (mode != KernelMode::kScalar) {
    const isa::BlockOps* ops = OpsFor(mode);
    for (; next + kBlock <= count; next += kBlock) {
      ops->row_block(query.data(), rows + next * dim, dim, kInf, out + next);
    }
  }
  for (; next < count; ++next) {
    const float* p = rows + next * dim;
    double d2 = 0.0;
    for (size_t d = 0; d < dim; ++d) {
      const double diff = static_cast<double>(p[d]) - query[d];
      d2 += diff * diff;
    }
    out[next] = d2;
  }
}

double KthDistanceScan(std::span<const float> query,
                       std::span<const float> rows, size_t dim, size_t k,
                       const ScanOptions& opts) {
  return KthDistanceScan(query, rows, dim, k, opts, ActiveKernelMode());
}

double KthDistanceScan(std::span<const float> query,
                       std::span<const float> rows, size_t dim, size_t k,
                       const ScanOptions& opts, KernelMode mode) {
  HDIDX_CHECK(k > 0);
  DistanceHeapAdapter heap(k);
  ScanRows(query, rows, dim, opts, ResolveKernelMode(mode), &heap);
  return heap.Threshold();
}

std::vector<std::pair<double, size_t>> TopKNeighborScan(
    std::span<const float> query, std::span<const float> rows, size_t dim,
    size_t k, const ScanOptions& opts) {
  return TopKNeighborScan(query, rows, dim, k, opts, ActiveKernelMode());
}

std::vector<std::pair<double, size_t>> TopKNeighborScan(
    std::span<const float> query, std::span<const float> rows, size_t dim,
    size_t k, const ScanOptions& opts, KernelMode mode) {
  if (k == 0) return {};
  BoundedPairHeap heap(k);
  ScanRows(query, rows, dim, opts, ResolveKernelMode(mode), &heap);
  return heap.TakeSortedAscending();
}

}  // namespace hdidx::geometry::kernels
