// AVX-512 lanes for the kernel block primitives, compiled with -mavx512f
// -ffp-contract=off (fp-contract matters here: AVX-512F brings FMA, and a
// contracted mul+add would change rounding vs the scalar oracle). One
// 512-bit register covers the whole 8-lane block for the double-precision
// reductions; the float32 overlap test stays 256-bit (8 floats), reusing
// the AVX2 shapes, which -mavx512f implies.
//
// maxpd operand-order and NaN notes are in block_ops_avx2.cc; AVX-512
// vmaxpd keeps the same (src1 > src2) ? src1 : src2, NaN -> src2 rule.
#include "geometry/isa/block_ops.h"

#if defined(__x86_64__) && defined(__AVX512F__)

#include <immintrin.h>

#include <cstddef>

namespace hdidx::geometry::kernels::isa {

namespace {

constexpr size_t kBlock = BoxSlab::kBlock;
static_assert(kBlock == 8, "AVX-512 lanes assume 8-wide blocks");

bool SphereBlock(const float* center, const BoxSlab& slab, size_t base,
                 double threshold, double* acc) {
  const size_t dim = slab.dim();
  const __m512d zero = _mm512_setzero_pd();
  const __m512d thresh = _mm512_set1_pd(threshold);
  __m512d acc_v = zero;
  for (size_t d = 0; d < dim; ++d) {
    const __m512d q = _mm512_set1_pd(static_cast<double>(center[d]));
    const __m512d lo =
        _mm512_cvtps_pd(_mm256_load_ps(slab.lo_plane(d) + base));
    const __m512d hi =
        _mm512_cvtps_pd(_mm256_load_ps(slab.hi_plane(d) + base));
    // term = std::max(std::max(0.0, lo - q), q - hi)
    const __m512d t = _mm512_max_pd(
        _mm512_sub_pd(q, hi), _mm512_max_pd(_mm512_sub_pd(lo, q), zero));
    acc_v = _mm512_add_pd(acc_v, _mm512_mul_pd(t, t));
    if ((d & 7) == 7 && d + 1 < dim) {
      if (_mm512_cmp_pd_mask(acc_v, thresh, _CMP_GT_OQ) == 0xFF) {
        return false;
      }
    }
  }
  _mm512_storeu_pd(acc, acc_v);
  return true;
}

void BoxBlock(const float* query_lo, const float* query_hi,
              const BoxSlab& slab, size_t base, bool* alive) {
  const size_t dim = slab.dim();
  __m256 alive_m = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
  for (size_t d = 0; d < dim; ++d) {
    const __m256 q_lo = _mm256_set1_ps(query_lo[d]);
    const __m256 q_hi = _mm256_set1_ps(query_hi[d]);
    const __m256 lo = _mm256_load_ps(slab.lo_plane(d) + base);
    const __m256 hi = _mm256_load_ps(slab.hi_plane(d) + base);
    const __m256 dead = _mm256_or_ps(_mm256_cmp_ps(lo, q_hi, _CMP_GT_OQ),
                                     _mm256_cmp_ps(q_lo, hi, _CMP_GT_OQ));
    alive_m = _mm256_andnot_ps(dead, alive_m);
    if ((d & 7) == 7 && d + 1 < dim) {
      if (_mm256_movemask_ps(alive_m) == 0) break;
    }
  }
  const int mask = _mm256_movemask_ps(alive_m);
  for (size_t l = 0; l < kBlock; ++l) alive[l] = ((mask >> l) & 1) != 0;
}

bool RowBlock(const float* query, const float* rows, size_t dim,
              double threshold, double* acc) {
  const __m512d thresh = _mm512_set1_pd(threshold);
  __m512d acc_v = _mm512_setzero_pd();
  for (size_t d = 0; d < dim; ++d) {
    const __m512d q = _mm512_set1_pd(static_cast<double>(query[d]));
    const float* p = rows + d;
    const __m128 f0 =
        _mm_set_ps(p[3 * dim], p[2 * dim], p[1 * dim], p[0]);
    const __m128 f1 =
        _mm_set_ps(p[7 * dim], p[6 * dim], p[5 * dim], p[4 * dim]);
    const __m512d r = _mm512_cvtps_pd(_mm256_set_m128(f1, f0));
    const __m512d diff = _mm512_sub_pd(r, q);
    acc_v = _mm512_add_pd(acc_v, _mm512_mul_pd(diff, diff));
    if ((d & 7) == 7 && d + 1 < dim) {
      if (_mm512_cmp_pd_mask(acc_v, thresh, _CMP_GT_OQ) == 0xFF) {
        return false;
      }
    }
  }
  _mm512_storeu_pd(acc, acc_v);
  return true;
}

constexpr BlockOps kAvx512Ops = {&SphereBlock, &BoxBlock, &RowBlock};

}  // namespace

const BlockOps* Avx512Ops() { return &kAvx512Ops; }

}  // namespace hdidx::geometry::kernels::isa

#else  // !(__x86_64__ && __AVX512F__)

namespace hdidx::geometry::kernels::isa {
const BlockOps* Avx512Ops() { return nullptr; }
}  // namespace hdidx::geometry::kernels::isa

#endif
