#ifndef HDIDX_GEOMETRY_ISA_BLOCK_OPS_H_
#define HDIDX_GEOMETRY_ISA_BLOCK_OPS_H_

#include <cstddef>

#include "geometry/kernels.h"

namespace hdidx::geometry::kernels::isa {

/// Per-ISA implementations of the three block primitives every dispatching
/// kernel entry point is built from. Each op processes exactly
/// BoxSlab::kBlock lanes and must be bit-identical to the scalar oracle:
/// lanes are whole candidates, SIMD runs *across* candidates, and every
/// per-candidate reduction accumulates in scalar dimension order in double
/// with no FMA contraction. Early exits may fire at different block/lane
/// granularity per ISA — they only ever skip work that is provably a no-op
/// (sums of squares are monotone), so results never depend on the cadence.
///
/// Padding lanes carry the BoxSlab sentinel (lo=+inf, hi=-inf): their
/// accumulated distance is +inf and their overlap test fails, so an op may
/// include them in all-lanes early-exit votes without changing any result.
struct BlockOps {
  /// Accumulates SquaredMinDist(center, lane) for the kBlock lanes at
  /// `base` into acc[0..kBlock), early-exiting once every lane's partial
  /// sum exceeds `threshold` at the shared (d & 7) == 7 cadence. Returns
  /// false on abandonment (acc contents unspecified), true with every
  /// lane's full sum otherwise.
  bool (*sphere_block)(const float* center, const BoxSlab& slab, size_t base,
                       double threshold, double* acc);

  /// alive[l] = whether slab lane base+l intersects the query box
  /// [query_lo, query_hi] (BoundingBox::Intersects semantics), for kBlock
  /// lanes. May stop refining once every lane is dead.
  void (*box_block)(const float* query_lo, const float* query_hi,
                    const BoxSlab& slab, size_t base, bool* alive);

  /// acc[l] = SquaredL2(query, row l) for the kBlock row-major rows
  /// starting at `rows` (the caller pre-offsets to the block's first row),
  /// with the same threshold/early-exit contract as sphere_block. A +inf
  /// threshold never abandons.
  bool (*row_block)(const float* query, const float* rows, size_t dim,
                    double threshold, double* acc);
};

/// Portable batched implementation (plain C++, compiler-autovectorized).
/// Always available; never returns null.
const BlockOps* GenericOps();

/// Explicit-ISA tables. Each returns null when its translation unit was not
/// compiled for the target architecture (the TU self-guards on the arch +
/// feature macros its per-file -m flags define); runtime CPU capability is
/// checked separately by KernelModeSupported().
const BlockOps* Avx2Ops();
const BlockOps* Avx512Ops();
const BlockOps* NeonOps();

}  // namespace hdidx::geometry::kernels::isa

#endif  // HDIDX_GEOMETRY_ISA_BLOCK_OPS_H_
