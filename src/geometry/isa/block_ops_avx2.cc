// AVX2 lanes for the kernel block primitives. This TU is compiled with
// -mavx2 -ffp-contract=off (see src/CMakeLists.txt) and self-guards: on any
// other target it compiles to just the null accessor, so the build never
// needs per-arch source lists.
//
// Bit-identity notes (shared with the scalar oracle in kernels.cc):
//  - std::max(a, b) returns a on NaN and on ties; x86 maxpd(src1, src2)
//    returns src2 on NaN and on ties. Hence std::max(a, b) == maxpd(b, a),
//    which fixes the operand order of every _mm256_max_pd below.
//  - mul then add, never FMA: contraction would change rounding.
//  - _CMP_GT_OQ matches scalar `>` on NaN (false), and early-exit votes may
//    include the two padding-sentinel lanes (always +inf, see block_ops.h).
#include "geometry/isa/block_ops.h"

#if defined(__x86_64__) && defined(__AVX2__)

#include <immintrin.h>

#include <cstddef>

namespace hdidx::geometry::kernels::isa {

namespace {

constexpr size_t kBlock = BoxSlab::kBlock;
static_assert(kBlock == 8, "AVX2 lanes assume 8-wide blocks");

bool SphereBlock(const float* center, const BoxSlab& slab, size_t base,
                 double threshold, double* acc) {
  const size_t dim = slab.dim();
  const __m256d zero = _mm256_setzero_pd();
  const __m256d thresh = _mm256_set1_pd(threshold);
  __m256d acc0 = zero;
  __m256d acc1 = zero;
  for (size_t d = 0; d < dim; ++d) {
    const __m256d q = _mm256_set1_pd(static_cast<double>(center[d]));
    const float* lo = slab.lo_plane(d) + base;
    const float* hi = slab.hi_plane(d) + base;
    // Planes are 64B-aligned and base is a multiple of kBlock, so aligned
    // loads are safe (and assert the arena layout contract).
    const __m256d lo0 = _mm256_cvtps_pd(_mm_load_ps(lo));
    const __m256d lo1 = _mm256_cvtps_pd(_mm_load_ps(lo + 4));
    const __m256d hi0 = _mm256_cvtps_pd(_mm_load_ps(hi));
    const __m256d hi1 = _mm256_cvtps_pd(_mm_load_ps(hi + 4));
    // term = std::max(std::max(0.0, lo - q), q - hi)
    const __m256d t0 = _mm256_max_pd(
        _mm256_sub_pd(q, hi0),
        _mm256_max_pd(_mm256_sub_pd(lo0, q), zero));
    const __m256d t1 = _mm256_max_pd(
        _mm256_sub_pd(q, hi1),
        _mm256_max_pd(_mm256_sub_pd(lo1, q), zero));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(t0, t0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(t1, t1));
    if ((d & 7) == 7 && d + 1 < dim) {
      const __m256d over0 = _mm256_cmp_pd(acc0, thresh, _CMP_GT_OQ);
      const __m256d over1 = _mm256_cmp_pd(acc1, thresh, _CMP_GT_OQ);
      if (_mm256_movemask_pd(_mm256_and_pd(over0, over1)) == 0xF) {
        return false;
      }
    }
  }
  _mm256_storeu_pd(acc, acc0);
  _mm256_storeu_pd(acc + 4, acc1);
  return true;
}

void BoxBlock(const float* query_lo, const float* query_hi,
              const BoxSlab& slab, size_t base, bool* alive) {
  const size_t dim = slab.dim();
  __m256 alive_m = _mm256_castsi256_ps(_mm256_set1_epi32(-1));
  for (size_t d = 0; d < dim; ++d) {
    const __m256 q_lo = _mm256_set1_ps(query_lo[d]);
    const __m256 q_hi = _mm256_set1_ps(query_hi[d]);
    const __m256 lo = _mm256_load_ps(slab.lo_plane(d) + base);
    const __m256 hi = _mm256_load_ps(slab.hi_plane(d) + base);
    const __m256 dead = _mm256_or_ps(_mm256_cmp_ps(lo, q_hi, _CMP_GT_OQ),
                                     _mm256_cmp_ps(q_lo, hi, _CMP_GT_OQ));
    alive_m = _mm256_andnot_ps(dead, alive_m);
    if ((d & 7) == 7 && d + 1 < dim) {
      if (_mm256_movemask_ps(alive_m) == 0) break;
    }
  }
  const int mask = _mm256_movemask_ps(alive_m);
  for (size_t l = 0; l < kBlock; ++l) alive[l] = ((mask >> l) & 1) != 0;
}

bool RowBlock(const float* query, const float* rows, size_t dim,
              double threshold, double* acc) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d thresh = _mm256_set1_pd(threshold);
  __m256d acc0 = zero;
  __m256d acc1 = zero;
  for (size_t d = 0; d < dim; ++d) {
    const __m256d q = _mm256_set1_pd(static_cast<double>(query[d]));
    const float* p = rows + d;
    // Rows are row-major, so lane l's coordinate sits at stride l * dim.
    const __m128 f0 =
        _mm_set_ps(p[3 * dim], p[2 * dim], p[1 * dim], p[0]);
    const __m128 f1 =
        _mm_set_ps(p[7 * dim], p[6 * dim], p[5 * dim], p[4 * dim]);
    const __m256d d0 = _mm256_sub_pd(_mm256_cvtps_pd(f0), q);
    const __m256d d1 = _mm256_sub_pd(_mm256_cvtps_pd(f1), q);
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(d0, d0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(d1, d1));
    if ((d & 7) == 7 && d + 1 < dim) {
      const __m256d over0 = _mm256_cmp_pd(acc0, thresh, _CMP_GT_OQ);
      const __m256d over1 = _mm256_cmp_pd(acc1, thresh, _CMP_GT_OQ);
      if (_mm256_movemask_pd(_mm256_and_pd(over0, over1)) == 0xF) {
        return false;
      }
    }
  }
  _mm256_storeu_pd(acc, acc0);
  _mm256_storeu_pd(acc + 4, acc1);
  return true;
}

constexpr BlockOps kAvx2Ops = {&SphereBlock, &BoxBlock, &RowBlock};

}  // namespace

const BlockOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace hdidx::geometry::kernels::isa

#else  // !(__x86_64__ && __AVX2__)

namespace hdidx::geometry::kernels::isa {
const BlockOps* Avx2Ops() { return nullptr; }
}  // namespace hdidx::geometry::kernels::isa

#endif
