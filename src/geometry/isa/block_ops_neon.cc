// NEON (aarch64) lanes for the kernel block primitives, compiled with
// -ffp-contract=off. NEON is mandatory on aarch64, so no -m flag is needed
// and the TU guards on the architecture alone.
//
// NaN caveat vs x86: vmaxq_f64 PROPAGATES NaN, while the contract (see
// block_ops_avx2.cc) needs x86 maxpd semantics — (a > b) ? a : b with NaN
// resolving to b. MaxPd below emulates that with a greater-than compare
// plus select (vcgtq is false on NaN, so the select falls through to b).
#include "geometry/isa/block_ops.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstddef>

namespace hdidx::geometry::kernels::isa {

namespace {

constexpr size_t kBlock = BoxSlab::kBlock;
static_assert(kBlock == 8, "NEON lanes assume 8-wide blocks");

/// (a > b) ? a : b, NaN -> b: x86 maxpd semantics, i.e. std::max(b, a).
inline float64x2_t MaxPd(float64x2_t a, float64x2_t b) {
  return vbslq_f64(vcgtq_f64(a, b), a, b);
}

/// Widens one float32x4 plane load into two float64x2 halves.
inline void Widen(const float* p, float64x2_t* out) {
  const float32x4_t f = vld1q_f32(p);
  out[0] = vcvt_f64_f32(vget_low_f32(f));
  out[1] = vcvt_high_f64_f32(f);
}

inline bool AllOver(const float64x2_t* acc_v, float64x2_t thresh) {
  uint64x2_t over = vcgtq_f64(acc_v[0], thresh);
  over = vandq_u64(over, vcgtq_f64(acc_v[1], thresh));
  over = vandq_u64(over, vcgtq_f64(acc_v[2], thresh));
  over = vandq_u64(over, vcgtq_f64(acc_v[3], thresh));
  return (vgetq_lane_u64(over, 0) & vgetq_lane_u64(over, 1)) ==
         ~static_cast<uint64_t>(0);
}

bool SphereBlock(const float* center, const BoxSlab& slab, size_t base,
                 double threshold, double* acc) {
  const size_t dim = slab.dim();
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t thresh = vdupq_n_f64(threshold);
  float64x2_t acc_v[4] = {zero, zero, zero, zero};
  for (size_t d = 0; d < dim; ++d) {
    const float64x2_t q = vdupq_n_f64(static_cast<double>(center[d]));
    float64x2_t lo[4];
    float64x2_t hi[4];
    Widen(slab.lo_plane(d) + base, lo);
    Widen(slab.lo_plane(d) + base + 4, lo + 2);
    Widen(slab.hi_plane(d) + base, hi);
    Widen(slab.hi_plane(d) + base + 4, hi + 2);
    for (size_t j = 0; j < 4; ++j) {
      // term = std::max(std::max(0.0, lo - q), q - hi)
      const float64x2_t t =
          MaxPd(vsubq_f64(q, hi[j]), MaxPd(vsubq_f64(lo[j], q), zero));
      acc_v[j] = vaddq_f64(acc_v[j], vmulq_f64(t, t));
    }
    if ((d & 7) == 7 && d + 1 < dim && AllOver(acc_v, thresh)) return false;
  }
  for (size_t j = 0; j < 4; ++j) vst1q_f64(acc + 2 * j, acc_v[j]);
  return true;
}

void BoxBlock(const float* query_lo, const float* query_hi,
              const BoxSlab& slab, size_t base, bool* alive) {
  const size_t dim = slab.dim();
  uint32x4_t alive0 = vdupq_n_u32(~0u);
  uint32x4_t alive1 = vdupq_n_u32(~0u);
  for (size_t d = 0; d < dim; ++d) {
    const float32x4_t q_lo = vdupq_n_f32(query_lo[d]);
    const float32x4_t q_hi = vdupq_n_f32(query_hi[d]);
    const float32x4_t lo0 = vld1q_f32(slab.lo_plane(d) + base);
    const float32x4_t lo1 = vld1q_f32(slab.lo_plane(d) + base + 4);
    const float32x4_t hi0 = vld1q_f32(slab.hi_plane(d) + base);
    const float32x4_t hi1 = vld1q_f32(slab.hi_plane(d) + base + 4);
    const uint32x4_t dead0 =
        vorrq_u32(vcgtq_f32(lo0, q_hi), vcgtq_f32(q_lo, hi0));
    const uint32x4_t dead1 =
        vorrq_u32(vcgtq_f32(lo1, q_hi), vcgtq_f32(q_lo, hi1));
    alive0 = vbicq_u32(alive0, dead0);
    alive1 = vbicq_u32(alive1, dead1);
    if ((d & 7) == 7 && d + 1 < dim) {
      if (vmaxvq_u32(vorrq_u32(alive0, alive1)) == 0) break;
    }
  }
  for (size_t l = 0; l < 4; ++l) {
    alive[l] = vgetq_lane_u32(alive0, 0) != 0;
    alive0 = vextq_u32(alive0, alive0, 1);
    alive[4 + l] = vgetq_lane_u32(alive1, 0) != 0;
    alive1 = vextq_u32(alive1, alive1, 1);
  }
}

bool RowBlock(const float* query, const float* rows, size_t dim,
              double threshold, double* acc) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  const float64x2_t thresh = vdupq_n_f64(threshold);
  float64x2_t acc_v[4] = {zero, zero, zero, zero};
  for (size_t d = 0; d < dim; ++d) {
    const float64x2_t q = vdupq_n_f64(static_cast<double>(query[d]));
    const float* p = rows + d;
    for (size_t j = 0; j < 4; ++j) {
      float64x2_t r = vdupq_n_f64(0.0);
      r = vsetq_lane_f64(static_cast<double>(p[(2 * j) * dim]), r, 0);
      r = vsetq_lane_f64(static_cast<double>(p[(2 * j + 1) * dim]), r, 1);
      const float64x2_t diff = vsubq_f64(r, q);
      acc_v[j] = vaddq_f64(acc_v[j], vmulq_f64(diff, diff));
    }
    if ((d & 7) == 7 && d + 1 < dim && AllOver(acc_v, thresh)) return false;
  }
  for (size_t j = 0; j < 4; ++j) vst1q_f64(acc + 2 * j, acc_v[j]);
  return true;
}

constexpr BlockOps kNeonOps = {&SphereBlock, &BoxBlock, &RowBlock};

}  // namespace

const BlockOps* NeonOps() { return &kNeonOps; }

}  // namespace hdidx::geometry::kernels::isa

#else  // !__aarch64__

namespace hdidx::geometry::kernels::isa {
const BlockOps* NeonOps() { return nullptr; }
}  // namespace hdidx::geometry::kernels::isa

#endif
