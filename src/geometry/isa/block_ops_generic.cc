#include <algorithm>
#include <cstddef>

#include "geometry/isa/block_ops.h"

namespace hdidx::geometry::kernels::isa {

namespace {

constexpr size_t kBlock = BoxSlab::kBlock;

/// The per-dimension MINDIST term, branchless: max(0, lo - q, q - hi) as
/// doubles. The std::max argument order makes a NaN coordinate yield 0
/// exactly like both scalar branches failing.
inline double MinDistTerm(double q, float lo, float hi) {
  return std::max(std::max(0.0, static_cast<double>(lo) - q),
                  q - static_cast<double>(hi));
}

bool SphereBlock(const float* center, const BoxSlab& slab, size_t base,
                 double threshold, double* acc) {
  const size_t dim = slab.dim();
  for (size_t l = 0; l < kBlock; ++l) acc[l] = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double q = center[d];
    const float* lo = slab.lo_plane(d) + base;
    const float* hi = slab.hi_plane(d) + base;
    for (size_t l = 0; l < kBlock; ++l) {
      const double diff = MinDistTerm(q, lo[l], hi[l]);
      acc[l] += diff * diff;
    }
    if ((d & 7) == 7 && d + 1 < dim) {
      bool all_over = true;
      for (size_t l = 0; l < kBlock; ++l) all_over &= acc[l] > threshold;
      if (all_over) return false;
    }
  }
  return true;
}

void BoxBlock(const float* query_lo, const float* query_hi,
              const BoxSlab& slab, size_t base, bool* alive) {
  const size_t dim = slab.dim();
  for (size_t l = 0; l < kBlock; ++l) alive[l] = true;
  for (size_t d = 0; d < dim; ++d) {
    const float q_lo = query_lo[d];
    const float q_hi = query_hi[d];
    const float* lo = slab.lo_plane(d) + base;
    const float* hi = slab.hi_plane(d) + base;
    for (size_t l = 0; l < kBlock; ++l) {
      alive[l] = alive[l] && !(lo[l] > q_hi || q_lo > hi[l]);
    }
    if ((d & 7) == 7 && d + 1 < dim) {
      bool any = false;
      for (size_t l = 0; l < kBlock; ++l) any |= alive[l];
      if (!any) return;
    }
  }
}

bool RowBlock(const float* query, const float* rows, size_t dim,
              double threshold, double* acc) {
  for (size_t l = 0; l < kBlock; ++l) acc[l] = 0.0;
  for (size_t d = 0; d < dim; ++d) {
    const double q = query[d];
    const float* p = rows + d;
    for (size_t l = 0; l < kBlock; ++l) {
      const double diff = static_cast<double>(p[l * dim]) - q;
      acc[l] += diff * diff;
    }
    if ((d & 7) == 7 && d + 1 < dim) {
      bool all_over = true;
      for (size_t l = 0; l < kBlock; ++l) all_over &= acc[l] > threshold;
      if (all_over) return false;
    }
  }
  return true;
}

constexpr BlockOps kGenericOps = {&SphereBlock, &BoxBlock, &RowBlock};

}  // namespace

const BlockOps* GenericOps() { return &kGenericOps; }

}  // namespace hdidx::geometry::kernels::isa
