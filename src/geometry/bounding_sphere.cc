#include "geometry/bounding_sphere.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace hdidx::geometry {

BoundingSphere::BoundingSphere(size_t dim) : center_(dim, 0.0f) {
  HDIDX_CHECK(dim > 0);
}

BoundingSphere::BoundingSphere(std::vector<float> center, double radius)
    : center_(std::move(center)), radius_(radius), empty_(false) {
  HDIDX_CHECK(radius >= 0.0);
}

BoundingSphere BoundingSphere::OfPoints(std::span<const float> points,
                                        size_t count, size_t dim) {
  BoundingSphere sphere(dim);
  if (count == 0) return sphere;
  std::vector<double> centroid(dim, 0.0);
  for (size_t i = 0; i < count; ++i) {
    for (size_t k = 0; k < dim; ++k) centroid[k] += points[i * dim + k];
  }
  for (double& c : centroid) c /= static_cast<double>(count);
  double max_sq = 0.0;
  for (size_t i = 0; i < count; ++i) {
    double s = 0.0;
    for (size_t k = 0; k < dim; ++k) {
      const double diff = points[i * dim + k] - centroid[k];
      s += diff * diff;
    }
    max_sq = std::max(max_sq, s);
  }
  sphere.center_.resize(dim);
  for (size_t k = 0; k < dim; ++k) {
    sphere.center_[k] = static_cast<float>(centroid[k]);
  }
  sphere.radius_ = std::sqrt(max_sq);
  sphere.empty_ = false;
  return sphere;
}

double BoundingSphere::MinDist(std::span<const float> point) const {
  HDIDX_CHECK(point.size() == center_.size());
  if (empty_) return std::numeric_limits<double>::infinity();
  double s = 0.0;
  for (size_t k = 0; k < center_.size(); ++k) {
    const double diff = static_cast<double>(point[k]) - center_[k];
    s += diff * diff;
  }
  return std::max(0.0, std::sqrt(s) - radius_);
}

bool BoundingSphere::IntersectsSphere(std::span<const float> center,
                                      double radius) const {
  HDIDX_CHECK(radius >= 0.0) << "query sphere radius must be non-negative";
  HDIDX_CHECK(center.size() == center_.size());
  if (empty_) {
    // MinDist to an empty sphere is +inf; only an infinite radius reaches
    // it (the old `MinDist(center) <= radius` behaved the same way).
    return std::numeric_limits<double>::infinity() <= radius;
  }
  // Sqrt-free: centers within radius_ + radius of each other, compared in
  // the squared domain. One multiply replaces the per-sphere sqrt the
  // sstree page-counting loop used to pay for every page.
  double s = 0.0;
  for (size_t k = 0; k < center_.size(); ++k) {
    const double diff = static_cast<double>(center[k]) - center_[k];
    s += diff * diff;
  }
  const double reach = radius_ + radius;
  return s <= reach * reach;
}

void BoundingSphere::InflateRadius(double factor) {
  HDIDX_CHECK(factor >= 0.0);
  radius_ *= factor;
}

}  // namespace hdidx::geometry
