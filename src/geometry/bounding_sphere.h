#ifndef HDIDX_GEOMETRY_BOUNDING_SPHERE_H_
#define HDIDX_GEOMETRY_BOUNDING_SPHERE_H_

#include <cstddef>
#include <span>
#include <vector>

namespace hdidx::geometry {

/// A bounding sphere: centroid of a point set plus the maximal distance to
/// it — the page region of the SS-tree (White & Jain [35]), one of the
/// Section 4.7 structures the sampling prediction technique covers.
class BoundingSphere {
 public:
  /// Creates an empty sphere of dimensionality `dim`.
  explicit BoundingSphere(size_t dim);

  /// Sphere of given center and radius (radius >= 0).
  BoundingSphere(std::vector<float> center, double radius);

  /// Centroid-based bounding sphere of `count` contiguous points.
  static BoundingSphere OfPoints(std::span<const float> points, size_t count,
                                 size_t dim);

  size_t dim() const { return center_.size(); }
  bool empty() const { return empty_; }
  const std::vector<float>& center() const { return center_; }
  double radius() const { return radius_; }

  /// Distance from `point` to the sphere surface (0 if inside).
  double MinDist(std::span<const float> point) const;

  /// True iff the query sphere (center, radius) intersects this sphere:
  /// distance of centers <= sum of radii.
  bool IntersectsSphere(std::span<const float> center, double radius) const;

  /// Multiplies the radius by `factor` (the sphere analogue of growing an
  /// MBR by the compensation factor).
  void InflateRadius(double factor);

 private:
  std::vector<float> center_;
  double radius_ = 0.0;
  bool empty_ = true;
};

}  // namespace hdidx::geometry

#endif  // HDIDX_GEOMETRY_BOUNDING_SPHERE_H_
