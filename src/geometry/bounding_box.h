#ifndef HDIDX_GEOMETRY_BOUNDING_BOX_H_
#define HDIDX_GEOMETRY_BOUNDING_BOX_H_

#include <cstddef>
#include <span>
#include <vector>

namespace hdidx::geometry {

/// A d-dimensional axis-aligned minimal bounding rectangle (MBR).
///
/// This is the page geometry object of the whole library: index leaf pages,
/// directory entries, grown mini-index pages and synthesized cutoff pages are
/// all BoundingBoxes. Invariant: lo()[i] <= hi()[i] for every dimension of a
/// non-empty box; an empty (default-constructed or Clear()ed) box contains
/// nothing and extends nowhere.
class BoundingBox {
 public:
  /// Creates an empty box of dimensionality `dim`.
  explicit BoundingBox(size_t dim);

  /// Creates a box spanning [lo, hi] per dimension. Requires lo.size() ==
  /// hi.size() and lo[i] <= hi[i].
  BoundingBox(std::vector<float> lo, std::vector<float> hi);

  size_t dim() const { return lo_.size(); }
  bool empty() const { return empty_; }

  const std::vector<float>& lo() const { return lo_; }
  const std::vector<float>& hi() const { return hi_; }

  /// Resets to the empty box (dimensionality is preserved).
  void Clear();

  /// Extends the box to cover `point` (size must equal dim()).
  void Extend(std::span<const float> point);

  /// Extends the box to cover `other` (dimensions must match; empty `other`
  /// is a no-op).
  void ExtendBox(const BoundingBox& other);

  /// Side length along dimension `d`; 0 for an empty box.
  float Extent(size_t d) const;

  /// Product of all side lengths. Degenerate boxes have volume 0.
  double Volume() const;

  /// Sum of all side lengths (the R*-tree "margin" measure).
  double Margin() const;

  /// Returns the center coordinate along dimension `d`.
  float Center(size_t d) const;

  /// True if `point` lies inside the box (inclusive on both sides).
  bool Contains(std::span<const float> point) const;

  /// True if the two boxes share at least one point. Empty boxes intersect
  /// nothing.
  bool Intersects(const BoundingBox& other) const;

  /// Grows the box symmetrically about its center so that every side length
  /// is multiplied by `factor` (>= 0). The volume is thus multiplied by
  /// factor^dim. Used to apply the paper's compensation factor delta, whose
  /// per-dimension growth ratio is passed here.
  void InflateAboutCenter(double factor);

  /// Index of the dimension with the largest extent (ties broken towards the
  /// lowest index). Under within-page uniformity this is the
  /// maximum-variance split dimension used by the cutoff predictor.
  size_t LongestDimension() const;

  /// Returns the dimension-wise union of `a` and `b`.
  static BoundingBox Union(const BoundingBox& a, const BoundingBox& b);

  /// Computes the MBR of `count` points laid out contiguously
  /// (`points[i * dim + d]`).
  static BoundingBox OfPoints(std::span<const float> points, size_t count,
                              size_t dim);

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.empty_ == b.empty_ && a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  std::vector<float> lo_;
  std::vector<float> hi_;
  bool empty_;
};

}  // namespace hdidx::geometry

#endif  // HDIDX_GEOMETRY_BOUNDING_BOX_H_
