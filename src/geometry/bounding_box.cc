#include "geometry/bounding_box.h"

#include <algorithm>

#include "common/check.h"

namespace hdidx::geometry {

BoundingBox::BoundingBox(size_t dim) : lo_(dim), hi_(dim), empty_(true) {}

BoundingBox::BoundingBox(std::vector<float> lo, std::vector<float> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)), empty_(false) {
  HDIDX_CHECK_OP(==, lo_.size(), hi_.size());
  for (size_t d = 0; d < lo_.size(); ++d) {
    HDIDX_CHECK(lo_[d] <= hi_[d])
        << "inverted box in dimension " << d << ": lo=" << lo_[d]
        << " hi=" << hi_[d];
  }
}

void BoundingBox::Clear() { empty_ = true; }

void BoundingBox::Extend(std::span<const float> point) {
  HDIDX_DCHECK(point.size() == lo_.size());
  if (empty_) {
    std::copy(point.begin(), point.end(), lo_.begin());
    std::copy(point.begin(), point.end(), hi_.begin());
    empty_ = false;
    return;
  }
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], point[d]);
    hi_[d] = std::max(hi_[d], point[d]);
  }
}

void BoundingBox::ExtendBox(const BoundingBox& other) {
  HDIDX_CHECK(other.dim() == dim());
  if (other.empty_) return;
  if (empty_) {
    lo_ = other.lo_;
    hi_ = other.hi_;
    empty_ = false;
    return;
  }
  for (size_t d = 0; d < lo_.size(); ++d) {
    lo_[d] = std::min(lo_[d], other.lo_[d]);
    hi_[d] = std::max(hi_[d], other.hi_[d]);
  }
}

float BoundingBox::Extent(size_t d) const {
  if (empty_) return 0.0f;
  return hi_[d] - lo_[d];
}

double BoundingBox::Volume() const {
  if (empty_) return 0.0;
  double v = 1.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    v *= static_cast<double>(hi_[d] - lo_[d]);
  }
  return v;
}

double BoundingBox::Margin() const {
  if (empty_) return 0.0;
  double m = 0.0;
  for (size_t d = 0; d < lo_.size(); ++d) {
    m += static_cast<double>(hi_[d] - lo_[d]);
  }
  return m;
}

float BoundingBox::Center(size_t d) const {
  return 0.5f * (lo_[d] + hi_[d]);
}

bool BoundingBox::Contains(std::span<const float> point) const {
  HDIDX_DCHECK(point.size() == lo_.size());
  if (empty_) return false;
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (point[d] < lo_[d] || point[d] > hi_[d]) return false;
  }
  return true;
}

bool BoundingBox::Intersects(const BoundingBox& other) const {
  HDIDX_CHECK(other.dim() == dim());
  if (empty_ || other.empty_) return false;
  for (size_t d = 0; d < lo_.size(); ++d) {
    if (lo_[d] > other.hi_[d] || other.lo_[d] > hi_[d]) return false;
  }
  return true;
}

void BoundingBox::InflateAboutCenter(double factor) {
  HDIDX_CHECK(factor >= 0.0);
  if (empty_) return;
  for (size_t d = 0; d < lo_.size(); ++d) {
    const double c = 0.5 * (static_cast<double>(lo_[d]) + hi_[d]);
    const double half = 0.5 * (static_cast<double>(hi_[d]) - lo_[d]) * factor;
    lo_[d] = static_cast<float>(c - half);
    hi_[d] = static_cast<float>(c + half);
  }
}

size_t BoundingBox::LongestDimension() const {
  size_t best = 0;
  float best_extent = Extent(0);
  for (size_t d = 1; d < lo_.size(); ++d) {
    const float e = Extent(d);
    if (e > best_extent) {
      best_extent = e;
      best = d;
    }
  }
  return best;
}

BoundingBox BoundingBox::Union(const BoundingBox& a, const BoundingBox& b) {
  BoundingBox u = a;
  u.ExtendBox(b);
  return u;
}

BoundingBox BoundingBox::OfPoints(std::span<const float> points, size_t count,
                                  size_t dim) {
  HDIDX_CHECK(points.size() >= count * dim);
  BoundingBox box(dim);
  for (size_t i = 0; i < count; ++i) {
    box.Extend(points.subspan(i * dim, dim));
  }
  return box;
}

}  // namespace hdidx::geometry
