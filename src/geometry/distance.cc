#include "geometry/distance.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace hdidx::geometry {

double SquaredL2(std::span<const float> a, std::span<const float> b) {
  HDIDX_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (size_t d = 0; d < a.size(); ++d) {
    const double diff = static_cast<double>(a[d]) - b[d];
    s += diff * diff;
  }
  return s;
}

double L2(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(SquaredL2(a, b));
}

double SquaredMinDist(std::span<const float> point, const BoundingBox& box) {
  HDIDX_DCHECK(point.size() == box.dim());
  if (box.empty()) return std::numeric_limits<double>::infinity();
  double s = 0.0;
  const auto& lo = box.lo();
  const auto& hi = box.hi();
  for (size_t d = 0; d < point.size(); ++d) {
    double diff = 0.0;
    if (point[d] < lo[d]) {
      diff = static_cast<double>(lo[d]) - point[d];
    } else if (point[d] > hi[d]) {
      diff = static_cast<double>(point[d]) - hi[d];
    }
    s += diff * diff;
  }
  return s;
}

double MinDist(std::span<const float> point, const BoundingBox& box) {
  return std::sqrt(SquaredMinDist(point, box));
}

double SquaredMaxDist(std::span<const float> point, const BoundingBox& box) {
  HDIDX_DCHECK(point.size() == box.dim());
  if (box.empty()) return 0.0;
  double s = 0.0;
  const auto& lo = box.lo();
  const auto& hi = box.hi();
  for (size_t d = 0; d < point.size(); ++d) {
    const double to_lo = std::abs(static_cast<double>(point[d]) - lo[d]);
    const double to_hi = std::abs(static_cast<double>(point[d]) - hi[d]);
    const double diff = std::max(to_lo, to_hi);
    s += diff * diff;
  }
  return s;
}

double MaxDist(std::span<const float> point, const BoundingBox& box) {
  return std::sqrt(SquaredMaxDist(point, box));
}

bool SphereIntersectsBox(std::span<const float> center, double radius,
                         const BoundingBox& box) {
  HDIDX_CHECK(radius >= 0.0) << "query sphere radius must be non-negative";
  return SquaredMinDist(center, box) <= radius * radius;
}

bool SphereCoversBox(std::span<const float> center, double radius,
                     const BoundingBox& box) {
  HDIDX_CHECK(radius >= 0.0) << "query sphere radius must be non-negative";
  return SquaredMaxDist(center, box) <= radius * radius;
}

double UnitSphereVolume(size_t dim) {
  // V_d = pi^(d/2) / Gamma(d/2 + 1); evaluate in log space so that very
  // high dimensionalities (ISOLET617) do not underflow prematurely.
  const double d = static_cast<double>(dim);
  const double log_v =
      0.5 * d * std::log(M_PI) - std::lgamma(0.5 * d + 1.0);
  return std::exp(log_v);
}

}  // namespace hdidx::geometry
