#ifndef HDIDX_GEOMETRY_KERNELS_H_
#define HDIDX_GEOMETRY_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/thread_annotations.h"
#include "geometry/bounding_box.h"

namespace hdidx::geometry::kernels {

/// Which implementation the dispatching kernel entry points run.
///
/// kScalar is the retained reference oracle: one candidate at a time,
/// exactly the loops the library shipped with. Every other mode evaluates
/// one query against many candidates at once, vectorizing *across*
/// candidates — never within a single distance reduction — so every
/// individual distance keeps the scalar accumulation order and every
/// count, radius, and assignment is bit-identical to the scalar mode.
/// Early exits only ever use the fact that adding a non-negative term to a
/// non-negative IEEE double is monotone, so abandoning a candidate whose
/// partial sum already exceeds the decision threshold cannot change any
/// decision.
///
/// kGeneric is the portable batched implementation (plain C++, compiler
/// autovectorized — PR 5's "batched" mode). kAvx2/kAvx512/kNeon are
/// explicit-intrinsic lanes in src/geometry/isa/, available only when both
/// the build targets the architecture and the running CPU reports the
/// feature; requesting an unavailable one downgrades (never UB), see
/// ResolveKernelMode().
enum class KernelMode {
  kScalar = 0,
  kGeneric = 1,
  kAvx2 = 2,
  kAvx512 = 3,
  kNeon = 4,
};

/// Number of enumerators in KernelMode (for sweeps).
inline constexpr size_t kNumKernelModes = 5;

/// Whether `mode` can run on this build + CPU (compile-target support and
/// runtime feature detection). kScalar and kGeneric are always supported.
bool KernelModeSupported(KernelMode mode);

/// `mode` if supported, else its deterministic downgrade: kAvx512 falls to
/// kAvx2 then kGeneric; kAvx2 and kNeon fall to kGeneric. The result is
/// always supported.
KernelMode ResolveKernelMode(KernelMode mode);

/// The widest supported mode on this host (never kScalar: kGeneric when no
/// explicit ISA is available).
KernelMode BestKernelMode();

/// All supported modes, deterministic order: kScalar, kGeneric, then any
/// explicit ISAs. The sweep set for equivalence tests and benches.
std::vector<KernelMode> SupportedKernelModes();

/// Stable lowercase name ("scalar", "generic", "avx2", "avx512", "neon") —
/// the accepted HDIDX_KERNEL values.
std::string_view KernelModeName(KernelMode mode);

/// Parses a mode name. Recognized names (plus the legacy alias "batched"
/// for kGeneric) return true and store the named mode, unresolved — the
/// caller decides whether to downgrade. Unknown names return false and
/// store BestKernelMode(), the deterministic fallback ActiveKernelMode()
/// warns about.
bool ParseKernelMode(std::string_view name, KernelMode* mode);

/// The mode the dispatching kernels run in: the process-wide override if one
/// is set (tests/benches), else the HDIDX_KERNEL environment variable (read
/// once; unknown values warn on stderr once and fall back), else
/// BestKernelMode(). Always returns a supported mode — requests for
/// unavailable ISAs resolve through ResolveKernelMode().
KernelMode ActiveKernelMode();

/// Process-wide mode override (A/B tests compare modes in one process).
/// Thread-safe; flip only between queries, not during one.
void SetKernelMode(KernelMode mode);

/// Removes the override, falling back to HDIDX_KERNEL / the default.
void ClearKernelModeOverride();

/// Sentinel for ScanOptions::exclude_row: exclude nothing.
inline constexpr size_t kNoRow = static_cast<size_t>(-1);

/// Structure-of-arrays layout over a set of MBRs: for every dimension d a
/// contiguous plane of lo values and a plane of hi values across all boxes,
/// padded to a multiple of kPlaneStride lanes so kernels process fixed-width
/// blocks without tail branches and every plane starts on a cacheline
/// boundary.
///
/// Storage lives in a common::Arena — either one passed in (a tree placing
/// its directory slabs next to its nodes) or an internally owned one — so
/// planes are 64-byte-aligned and contiguous rather than scattered
/// per-vector heap blocks. The slab writes its planes at build time on the
/// calling thread (first touch), and is immutable afterwards; it is movable
/// but not copyable, like the arena backing it.
///
/// Padding lanes and empty boxes store the sentinel (lo=+inf, hi=-inf):
/// any query coordinate is "outside" by an infinite margin, so their
/// accumulated distance is +inf — exactly SquaredMinDist's value for an
/// empty box — and a box-overlap test fails in every dimension. Padding
/// lanes are additionally excluded from all results by index bound.
class BoxSlab {
 public:
  /// Lanes per kernel block; the padded size is a multiple of this.
  static constexpr size_t kBlock = 8;
  /// Plane padding granularity: 16 floats = one 64-byte cacheline, so
  /// every lo/hi plane is cacheline-aligned inside the arena block.
  static constexpr size_t kPlaneStride = 16;

  /// An empty slab (size() == 0). Dispatching call sites use this as the
  /// "no slab built" placeholder on the scalar path.
  BoxSlab() = default;

  BoxSlab(const BoxSlab&) = delete;
  BoxSlab& operator=(const BoxSlab&) = delete;
  BoxSlab(BoxSlab&&) = default;
  BoxSlab& operator=(BoxSlab&&) = default;

  /// Builds the slab over `boxes` (all of equal dimensionality) into
  /// `arena`, or into an internally owned arena when null.
  HDIDX_BUILD_ONLY explicit BoxSlab(std::span<const BoundingBox> boxes,
                                    common::Arena* arena = nullptr);

  /// Builds the slab over boxes reached through pointers (used by tree
  /// nodes, whose child boxes are not contiguous in memory).
  HDIDX_BUILD_ONLY explicit BoxSlab(std::span<const BoundingBox* const> boxes,
                                    common::Arena* arena = nullptr);

  /// Number of real boxes.
  size_t size() const { return size_; }
  /// Dimensionality (0 for an empty slab).
  size_t dim() const { return dim_; }
  /// size() rounded up to a multiple of kPlaneStride.
  size_t padded_size() const { return padded_; }

  /// Plane of lo (resp. hi) coordinates of dimension `d` across all
  /// padded_size() lanes. 64-byte-aligned.
  const float* lo_plane(size_t d) const { return lo_ + d * padded_; }
  const float* hi_plane(size_t d) const { return hi_ + d * padded_; }

 private:
  HDIDX_BUILD_ONLY void Fill(size_t count, size_t dim,
                             const BoundingBox& (*get)(const void*, size_t),
                             const void* ctx, common::Arena* arena);

  size_t size_ = 0;
  size_t dim_ = 0;
  size_t padded_ = 0;
  float* lo_ = nullptr;  // dim_ planes of padded_ floats each, arena-owned
  float* hi_ = nullptr;
  common::Arena owned_;  // backs lo_/hi_ when no external arena was given
};

/// Number of slab boxes whose SquaredMinDist to `center` is <= r2 — i.e.
/// how many page MBRs a query sphere with squared radius r2 intersects.
/// Decision-identical to testing SquaredMinDist(center, box) <= r2 per box
/// (empty boxes count only when r2 is +inf, matching their infinite
/// SquaredMinDist). The batched paths abandon a block once every lane's
/// partial sum exceeds r2.
HDIDX_CONCURRENT_READ size_t CountSphereHits(std::span<const float> center,
                                             double r2, const BoxSlab& slab);
HDIDX_CONCURRENT_READ size_t CountSphereHits(std::span<const float> center,
                                             double r2, const BoxSlab& slab,
                                             KernelMode mode);

/// Appends (in ascending order) the indices of slab boxes whose
/// SquaredMinDist to `center` is <= r2. The mask variant of CountSphereHits,
/// used by tree traversals that must recurse into the hit children.
HDIDX_CONCURRENT_READ void AppendSphereHits(std::span<const float> center,
                                            double r2, const BoxSlab& slab,
                                            std::vector<uint32_t>* hits);
HDIDX_CONCURRENT_READ void AppendSphereHits(std::span<const float> center,
                                            double r2, const BoxSlab& slab,
                                            std::vector<uint32_t>* hits,
                                            KernelMode mode);

/// Number of slab boxes intersecting `query` (BoundingBox::Intersects
/// semantics: empty boxes intersect nothing).
HDIDX_CONCURRENT_READ size_t CountBoxHits(const BoundingBox& query,
                                          const BoxSlab& slab);
HDIDX_CONCURRENT_READ size_t CountBoxHits(const BoundingBox& query,
                                          const BoxSlab& slab,
                                          KernelMode mode);

/// Index of the first slab box attaining the minimal SquaredMinDist to
/// `point` (ties broken towards the lowest index; containment — distance
/// exactly 0 — short-circuits). Empty boxes are infinitely far and are
/// never chosen unless every box is empty (then index 0). Requires
/// slab.size() > 0.
HDIDX_CONCURRENT_READ size_t NearestBox(std::span<const float> point,
                                        const BoxSlab& slab);
HDIDX_CONCURRENT_READ size_t NearestBox(std::span<const float> point,
                                        const BoxSlab& slab, KernelMode mode);

/// out[i] = SquaredL2(query, rows[i]) for `count` row-major rows, each
/// accumulated in the scalar dimension order (bit-identical to per-row
/// SquaredL2).
HDIDX_CONCURRENT_READ void BatchedSquaredL2(std::span<const float> query,
                                            const float* rows, size_t count,
                                            size_t dim, double* out);
HDIDX_CONCURRENT_READ void BatchedSquaredL2(std::span<const float> query,
                                            const float* rows, size_t count,
                                            size_t dim, double* out,
                                            KernelMode mode);

/// Row-exclusion rules shared by the k-NN scan kernels; mirrors the three
/// scalar loops the kernels replace.
struct ScanOptions {
  /// This row is skipped (kNoRow: none). With exclude_row_only_if_zero the
  /// row is only skipped when its squared distance is <= 0 — the accounted
  /// workload scan's "exclude the query itself, keep duplicates" rule.
  size_t exclude_row = kNoRow;
  bool exclude_row_only_if_zero = false;
  /// Rows at squared distance <= this are skipped (ExactKthDistance's
  /// exclusion band). The default excludes nothing.
  double exclude_within_sq = -std::numeric_limits<double>::infinity();
};

/// k-th smallest squared L2 distance from `query` to the n = rows.size() /
/// dim row-major rows that pass `opts` (+inf when fewer than k qualify).
/// Heap semantics and accumulation order match the scalar KnnHeap loop
/// exactly; the batched paths abandon a row once its partial sum exceeds
/// the current k-th threshold (a no-op push either way).
HDIDX_CONCURRENT_READ double KthDistanceScan(std::span<const float> query,
                                             std::span<const float> rows,
                                             size_t dim, size_t k,
                                             const ScanOptions& opts);
HDIDX_CONCURRENT_READ double KthDistanceScan(std::span<const float> query,
                                             std::span<const float> rows,
                                             size_t dim, size_t k,
                                             const ScanOptions& opts,
                                             KernelMode mode);

/// The k nearest rows as (squared distance, row) pairs in ascending order
/// (ties towards the lower row index — identical to partial_sort over all
/// pairs). Fewer than k pairs when fewer rows qualify.
HDIDX_CONCURRENT_READ std::vector<std::pair<double, size_t>> TopKNeighborScan(
    std::span<const float> query, std::span<const float> rows, size_t dim,
    size_t k, const ScanOptions& opts);
HDIDX_CONCURRENT_READ std::vector<std::pair<double, size_t>> TopKNeighborScan(
    std::span<const float> query, std::span<const float> rows, size_t dim,
    size_t k, const ScanOptions& opts, KernelMode mode);

}  // namespace hdidx::geometry::kernels

#endif  // HDIDX_GEOMETRY_KERNELS_H_
