#ifndef HDIDX_COMMON_RANDOM_H_
#define HDIDX_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace hdidx::common {

/// Deterministic pseudo-random number generator used throughout the library.
///
/// Wraps the xoshiro256** generator (public-domain algorithm by Blackman and
/// Vigna) seeded via SplitMix64. A dedicated implementation — rather than
/// std::mt19937 — keeps sampled index layouts and synthetic datasets
/// bit-identical across standard-library versions, which the regression tests
/// rely on.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds produce equal
  /// streams on every platform.
  explicit Rng(uint64_t seed);

  /// Deterministic substream for parallel sections: a new generator derived
  /// from this generator's current state and a logical `stream_id` (e.g. a
  /// chunk index). The child depends only on (parent state at fork time,
  /// stream_id) — never on which thread calls it or in what order — so
  /// per-chunk streams are bit-identical for every thread count. Does not
  /// advance this generator.
  Rng Fork(uint64_t stream_id) const;

  /// Returns the next raw 64-bit value.
  uint64_t NextU64();

  /// Returns an unbiased integer uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a double uniform in [0, 1) with 53 bits of entropy.
  double NextDouble();

  /// Returns a double uniform in [lo, hi).
  double NextUniform(double lo, double hi);

  /// Returns a standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  /// Fills `out` with a uniformly random sample of `k` distinct indices from
  /// [0, n) in increasing order (reservoir-free sequential sampling,
  /// Vitter's Method A). If `k >= n`, returns all of [0, n).
  void SampleIndices(size_t n, size_t k, std::vector<size_t>* out);

  /// Randomly permutes `v` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBounded(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace hdidx::common

#endif  // HDIDX_COMMON_RANDOM_H_
