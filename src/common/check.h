#ifndef HDIDX_COMMON_CHECK_H_
#define HDIDX_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace hdidx::common {

/// Called with the fully formatted failure message when a check fails. The
/// handler must not return; if it does, the library aborts anyway. The
/// default handler writes the message to stderr and calls std::abort(),
/// which is what the death tests in tests/check_test.cc assert on.
using CheckFailureHandler = void (*)(const std::string& message);

/// Installs `handler` process-wide and returns the previous one. Pass
/// nullptr to restore the default stderr+abort handler. Thread-safe.
CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler);

namespace internal {

/// Invokes the installed failure handler (aborting if it ever returns).
[[noreturn]] void CheckFail(const std::string& message);

/// Collects the failure message for one failed check. The destructor fires
/// the handler, so streamed `<<` context added after the macro lands in the
/// message before the process dies.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* file, int line, const char* expression);
  CheckFailureStream(const char* file, int line, const char* expression,
                     const std::string& operands);
  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;
  ~CheckFailureStream();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

/// Makes the ternary in HDIDX_CHECK type-check: `&` binds looser than `<<`,
/// so the whole streamed chain collapses to void to match the true branch.
struct Voidify {
  void operator&(std::ostream&) const {}
};

/// Renders "lhs vs rhs" for HDIDX_CHECK_OP failures. Takes the operands by
/// value so the macro evaluates each exactly once.
template <typename A, typename B>
std::string FormatOperands(const A& a, const B& b) {
  std::ostringstream out;
  out << a << " vs " << b;
  return out.str();
}

}  // namespace internal
}  // namespace hdidx::common

/// HDIDX_CHECK(cond): aborts (via the failure handler) with file:line and
/// the stringified condition when `cond` is false. Stays on in every build
/// type, including the default RelWithDebInfo (which defines NDEBUG and
/// silently compiled out the bare assert() calls this library replaced).
/// Extra context streams in: HDIDX_CHECK(n > 0) << "n=" << n;
#define HDIDX_CHECK(cond)                                          \
  (cond) ? (void)0                                                 \
         : ::hdidx::common::internal::Voidify() &                  \
               ::hdidx::common::internal::CheckFailureStream(      \
                   __FILE__, __LINE__, "HDIDX_CHECK(" #cond ")")   \
                   .stream()

/// HDIDX_CHECK_OP(==, a, b): like HDIDX_CHECK(a == b) but the failure
/// message includes both operand values. Operands are evaluated once.
#define HDIDX_CHECK_OP(op, lhs, rhs)                                        \
  switch (0)                                                                \
  case 0:                                                                   \
  default:                                                                  \
    if (const auto& hdidx_check_vals_ =                                     \
            ::std::pair((lhs), (rhs));                                      \
        hdidx_check_vals_.first op hdidx_check_vals_.second) {              \
    } else                                                                  \
      ::hdidx::common::internal::Voidify() &                                \
          ::hdidx::common::internal::CheckFailureStream(                    \
              __FILE__, __LINE__,                                           \
              "HDIDX_CHECK_OP(" #lhs " " #op " " #rhs ")",                  \
              ::hdidx::common::internal::FormatOperands(                    \
                  hdidx_check_vals_.first, hdidx_check_vals_.second))       \
              .stream()

/// HDIDX_DCHECK / HDIDX_DCHECK_OP: debug-only twins for per-element checks
/// on hot paths (distance kernels, row accessors). Compiled out under
/// NDEBUG, but the condition stays syntactically checked so variables it
/// mentions never become "unused".
#ifdef NDEBUG
#define HDIDX_DCHECK(cond) \
  while (false) HDIDX_CHECK(cond)
#define HDIDX_DCHECK_OP(op, lhs, rhs) \
  while (false) HDIDX_CHECK_OP(op, lhs, rhs)
#else
#define HDIDX_DCHECK(cond) HDIDX_CHECK(cond)
#define HDIDX_DCHECK_OP(op, lhs, rhs) HDIDX_CHECK_OP(op, lhs, rhs)
#endif

#endif  // HDIDX_COMMON_CHECK_H_
