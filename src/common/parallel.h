#ifndef HDIDX_COMMON_PARALLEL_H_
#define HDIDX_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"

namespace hdidx::common {

/// Number of worker threads the library's parallel sections use, resolved in
/// precedence order:
///   1. the last value passed to SetThreadCount() (if any, and nonzero);
///   2. the HDIDX_THREADS environment variable (if set to a positive int);
///   3. std::thread::hardware_concurrency() (at least 1).
size_t ThreadCount();

/// Overrides the thread-count policy for this process (the --threads flag of
/// the command-line tools). Pass 0 to fall back to HDIDX_THREADS / hardware
/// concurrency. Must be called before the first use of
/// DefaultExecutionContext() to affect the shared pool — later calls only
/// influence pools constructed afterwards.
void SetThreadCount(size_t n);

/// A fixed-size pool of worker threads executing chunked parallel-for loops.
///
/// Determinism contract: ParallelFor splits [begin, end) into chunks of
/// exactly `grain` elements (last chunk possibly shorter). The chunk layout
/// depends only on (begin, end, grain) — never on the thread count or on
/// scheduling — so callers that write per-element outputs, or combine
/// per-chunk partial results in chunk order, produce bit-identical results
/// for every thread count, including 1.
///
/// A pool of 1 thread spawns no workers at all: ParallelFor then runs every
/// chunk inline on the calling thread, making the serial path literally the
/// same code as the parallel one.
class ThreadPool {
 public:
  /// Creates `num_threads` workers (clamped to >= 1; 1 means inline
  /// execution with no spawned threads).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs fn(chunk_begin, chunk_end) for every chunk of [begin, end) and
  /// blocks until all chunks completed. The calling thread participates in
  /// the work. If any invocation of `fn` throws, the first exception (in
  /// completion order) is rethrown here after the loop drains; remaining
  /// chunks still run.
  ///
  /// Reentrancy: a ParallelFor issued from inside a worker (a nested
  /// parallel section) executes serially inline — nesting is safe and
  /// deadlock-free, the inner loop simply doesn't fan out again.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  /// Enqueues a fire-and-forget task (the async read-ahead layer's prefetch
  /// fills). Tasks interleave with ParallelFor jobs: an idle worker prefers
  /// a queued task, a busy pool runs it when a worker frees up. On a
  /// 1-thread pool the task runs inline here — same code path, no threads —
  /// so anything built on Submit is trivially deterministic at 1 thread.
  ///
  /// Tasks must not throw and must synchronize their own completion (the
  /// pool offers no join handle). Tasks still queued when the pool is
  /// destroyed are run — never dropped — on the destroying thread, so a
  /// completion a consumer waits on is always eventually signaled. A nested
  /// ParallelFor inside a task runs inline, like any worker-context call.
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();
  /// Runs one submitted task with the in-parallel-section TLS flag set (so
  /// nested ParallelFor degrades to inline execution).
  static void RunTask(const std::function<void()>& task);
  /// Claims and runs chunks of the job published as `epoch` (which has
  /// `num_chunks` chunks) until the claim counter moves past the job — or to
  /// a newer epoch, whose chunks it then validly serves, having synchronized
  /// with the newer publication through the acquiring claim.
  ///
  /// Reads the mu_-guarded job fields without holding mu_: the releasing
  /// store of claim_ in ParallelFor publishes them, and the acquiring
  /// fetch_add here synchronizes with that publication — a happens-before
  /// edge the lock-based analysis cannot express, hence the opt-out.
  void RunChunks(uint32_t epoch, size_t num_chunks)
      HDIDX_NO_THREAD_SAFETY_ANALYSIS;

  const size_t num_threads_;
  /// Spawned in the constructor, joined in the destructor; never touched
  /// in between — synchronized by construction/join order, not by mu_.
  HDIDX_UNGUARDED std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;  // workers wait here for a new job
  CondVar done_cv_;  // ParallelFor waits here for completion
  bool shutdown_ HDIDX_GUARDED_BY(mu_) = false;
  Mutex submit_mu_;  // serializes concurrent ParallelFor publishers
  /// Fire-and-forget tasks (Submit); drained by idle workers ahead of job
  /// chunks, and by the destructor after the workers joined.
  std::deque<std::function<void()>> tasks_ HDIDX_GUARDED_BY(mu_);

  // State of the single in-flight job (ParallelFor blocks, and publishers
  // are serialized, so there is at most one), written under mu_. A chunk is
  // claimed by a fetch_add on `claim_`, whose high 32 bits carry the job
  // epoch: a straggler from the previous job either sees its own epoch with
  // an exhausted chunk index (and stops), or the new epoch (and, having
  // synchronized with the publication through the acquire claim, validly
  // executes the chunk it just claimed — see RunChunks). No claim is ever
  // lost or run with stale job state.
  uint32_t job_epoch_ HDIDX_GUARDED_BY(mu_) = 0;
  const std::function<void(size_t, size_t)>* job_fn_ HDIDX_GUARDED_BY(mu_) =
      nullptr;
  size_t job_begin_ HDIDX_GUARDED_BY(mu_) = 0;
  size_t job_end_ HDIDX_GUARDED_BY(mu_) = 0;
  size_t job_grain_ HDIDX_GUARDED_BY(mu_) = 1;
  size_t num_chunks_ HDIDX_GUARDED_BY(mu_) = 0;
  std::atomic<uint64_t> claim_{0};  // (epoch << 32) | next chunk index
  std::atomic<size_t> chunks_done_{0};
  std::exception_ptr first_error_ HDIDX_GUARDED_BY(mu_);
};

/// Suggested grain so a balanced loop yields a few chunks per thread (enough
/// for load balancing, few enough that chunk-claiming overhead is noise).
size_t DefaultGrain(size_t n, size_t threads);

/// Bundles the execution resources a parallel section needs: the pool to
/// fan out on, and a base seed for deterministic per-chunk RNG substreams.
///
/// A null pool means serial execution — ParallelFor then runs the whole
/// range as one chunk on the calling thread. ExecutionContext is cheap to
/// copy and does not own the pool.
struct ExecutionContext {
  /// Serial context (no pool).
  ExecutionContext() = default;

  explicit ExecutionContext(ThreadPool* p, uint64_t seed = 0)
      : pool(p), rng_seed(seed) {}

  ThreadPool* pool = nullptr;
  uint64_t rng_seed = 0;

  size_t threads() const { return pool != nullptr ? pool->num_threads() : 1; }

  /// ParallelFor with the pool's determinism contract; serial when pool is
  /// null. `grain` of 0 picks DefaultGrain(end - begin, threads()).
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn) const;

  /// Deterministic RNG substream for a logical chunk or stream id: depends
  /// only on (rng_seed, stream_id), never on the thread executing it.
  Rng StreamRng(uint64_t stream_id) const {
    return Rng(rng_seed).Fork(stream_id);
  }
};

/// The process-wide context: a shared pool of ThreadCount() threads, created
/// lazily on first use. Every library entry point that takes an
/// ExecutionContext defaults to this one.
const ExecutionContext& DefaultExecutionContext();

/// Structured fork-join executed as breadth-first waves on an
/// ExecutionContext — the shape recursive divide-and-conquer work (like the
/// bulk loader's VAMSplit recursion) needs on top of ParallelFor.
///
/// Starting from `frontier`, every wave runs `run(task, &spawned)` for each
/// frontier task (grain 1, so the pool load-balances uneven tasks); the
/// tasks a call appends to its private `spawned` vector become part of the
/// next wave. The loop ends when a wave spawns nothing.
///
/// Determinism contract: each task writes only its own `spawned` slot, and
/// the next frontier is the concatenation of those slots in task order, so
/// the set *and order* of tasks executed is identical for every thread
/// count, including serial contexts. Tasks within a wave may run
/// concurrently and in any order — they must only touch disjoint state, per
/// the pool's contract. A parent task always runs in an earlier wave than
/// anything it spawned, and the ParallelFor barrier between waves sequences
/// (and publishes, in the memory-model sense) the parent's writes before
/// its children run. Tasks needing randomness must derive it from a
/// deterministic id they carry (ctx.StreamRng(id)), never from wave or
/// thread identity.
template <typename Task, typename RunFn>
void ForkJoinWaves(const ExecutionContext& ctx, std::vector<Task> frontier,
                   const RunFn& run) {
  while (!frontier.empty()) {
    std::vector<std::vector<Task>> spawned(frontier.size());
    ctx.ParallelFor(0, frontier.size(), /*grain=*/1,
                    [&](size_t begin, size_t end) {
                      for (size_t i = begin; i < end; ++i) {
                        run(frontier[i], &spawned[i]);
                      }
                    });
    size_t total = 0;
    for (const auto& s : spawned) total += s.size();
    std::vector<Task> next;
    next.reserve(total);
    for (auto& s : spawned) {
      next.insert(next.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
    }
    frontier = std::move(next);
  }
}

}  // namespace hdidx::common

#endif  // HDIDX_COMMON_PARALLEL_H_
