#ifndef HDIDX_COMMON_ARENA_H_
#define HDIDX_COMMON_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "common/thread_annotations.h"

namespace hdidx::common {

/// A 64-byte-aligned bump-pointer allocator for the hot data structures the
/// kernel layer scans: BoxSlab lo/hi planes, tree-node child id arrays, and
/// per-tree directory slabs. One arena backs one owning structure, so
/// everything a scan streams through sits in a handful of large
/// cacheline-aligned blocks instead of per-node heap allocations scattered
/// across the address space.
///
/// Ownership contract (the `kSingleOwner` rule the ExecutionContext layer
/// already uses): an Arena is owned by exactly one structure and is mutated
/// only while that structure is being built, on the thread doing the
/// building. Allocation is NOT thread-safe. After construction finishes the
/// arena is read-only and may be shared by any number of concurrent readers.
///
/// First-touch placement: Allocate returns uninitialized memory and the
/// builder writes it immediately on its own (pool-worker) thread, so on
/// multi-socket machines pages land on the NUMA node of the thread that
/// builds — and later scans — the structure.
///
/// Blocks are stable: growing the arena never moves previously returned
/// pointers, so spans handed out stay valid for the arena's lifetime
/// (including across moves of the Arena itself).
class Arena {
 public:
  /// Every allocation is aligned to this many bytes (one x86 cacheline,
  /// enough for any current SIMD lane width).
  static constexpr size_t kAlignment = 64;

  /// Default block size for the first block when the first allocation is
  /// smaller; later blocks double until kMaxBlockBytes.
  static constexpr size_t kMinBlockBytes = 4096;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 22;  // 4 MiB

  Arena() = default;
  ~Arena() = default;

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Returns `bytes` of uninitialized, kAlignment-aligned memory (a valid
  /// unique pointer even for bytes == 0). Never returns null.
  HDIDX_BUILD_ONLY void* Allocate(size_t bytes);

  /// Typed array allocation (uninitialized; T must be trivial so the arena
  /// never has to run constructors or destructors).
  template <typename T>
  HDIDX_BUILD_ONLY T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena stores raw trivial data only");
    return static_cast<T*>(Allocate(count * sizeof(T)));
  }

  /// Total bytes handed out (after per-allocation alignment rounding).
  size_t bytes_allocated() const { return bytes_allocated_; }
  /// Total bytes reserved from the system across all blocks.
  size_t bytes_reserved() const { return bytes_reserved_; }
  /// Number of system allocations backing the arena.
  size_t num_blocks() const { return blocks_.size(); }

 private:
  struct BlockDeleter {
    void operator()(std::byte* p) const {
      ::operator delete[](p, std::align_val_t{kAlignment});
    }
  };
  using Block = std::unique_ptr<std::byte[], BlockDeleter>;

  std::vector<Block> blocks_;
  std::byte* next_ = nullptr;  // bump pointer into the last block
  size_t remaining_ = 0;       // bytes left in the last block
  size_t next_block_bytes_ = kMinBlockBytes;
  size_t bytes_allocated_ = 0;
  size_t bytes_reserved_ = 0;
};

/// Minimal allocator giving std::vector kAlignment-aligned storage — used
/// where a structure needs aligned, growable storage (dataset rows) rather
/// than the arena's fixed single-owner blocks.
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(::operator new(
        n * sizeof(T), std::align_val_t{Arena::kAlignment}));
  }
  void deallocate(T* p, size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t{Arena::kAlignment});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// A std::vector whose buffer starts on a cacheline boundary.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace hdidx::common

#endif  // HDIDX_COMMON_ARENA_H_
