#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace hdidx::common {

void* Arena::Allocate(size_t bytes) {
  // Round every allocation up to the alignment so the next bump stays
  // aligned without per-call pointer arithmetic. Zero-byte requests take a
  // full slot so the result is a distinct non-null pointer.
  const size_t rounded =
      bytes == 0 ? kAlignment
                 : (bytes + kAlignment - 1) / kAlignment * kAlignment;
  HDIDX_CHECK(rounded >= bytes) << "arena allocation overflow";
  if (rounded > remaining_) {
    const size_t block_bytes = std::max(
        rounded, std::max(next_block_bytes_, kMinBlockBytes));
    auto* raw = static_cast<std::byte*>(
        ::operator new[](block_bytes, std::align_val_t{kAlignment}));
    blocks_.emplace_back(raw);
    next_ = raw;
    remaining_ = block_bytes;
    bytes_reserved_ += block_bytes;
    next_block_bytes_ = std::min(block_bytes * 2, kMaxBlockBytes);
  }
  std::byte* out = next_;
  next_ += rounded;
  remaining_ -= rounded;
  bytes_allocated_ += rounded;
  return out;
}

}  // namespace hdidx::common
