#ifndef HDIDX_COMMON_STATS_H_
#define HDIDX_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace hdidx::common {

/// Result of a simple ordinary-least-squares line fit y = slope * x +
/// intercept. Used by the fractal-dimension estimators, which fit log-log
/// plots of box counts against grid resolution.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Pearson correlation coefficient of (x, y); 1.0 for a perfect line.
  double r = 0.0;
  size_t n = 0;
};

/// Fits a least-squares line through (x[i], y[i]). Requires x.size() ==
/// y.size(); with fewer than two points the fit is degenerate (slope 0).
LineFit FitLine(const std::vector<double>& x, const std::vector<double>& y);

/// Arithmetic mean; 0 for an empty vector.
double Mean(const std::vector<double>& v);

/// Population variance (divide by n); 0 for fewer than two elements.
double Variance(const std::vector<double>& v);

/// Pearson correlation between two equally sized vectors; 0 if degenerate.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// p-th percentile (p in [0, 1]) with linear interpolation between order
/// statistics; 0 for an empty vector. Used by the prediction service's
/// per-shard latency metrics (p50/p90/p99).
double Percentile(std::vector<double> v, double p);

/// Relative error (predicted - actual) / actual as used throughout the
/// paper's tables: negative values are underestimations, positive values are
/// overestimations. Returns 0 when actual == 0.
double RelativeError(double predicted, double actual);

/// Accumulates mean and variance in one pass (Welford's algorithm). Used by
/// the bulk loader's maximum-variance split, which must find the dimension
/// of highest variance over millions of coordinates without a second pass.
class RunningStats {
 public:
  void Add(double x);
  size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance; 0 with fewer than two observations.
  double variance() const;

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace hdidx::common

#endif  // HDIDX_COMMON_STATS_H_
