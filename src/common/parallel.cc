#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace hdidx::common {

namespace {

/// True while the current thread is executing pool work: nested ParallelFor
/// calls detect this and degrade to inline serial execution instead of
/// waiting on a pool that is busy running their parent job.
thread_local bool tls_in_parallel_section = false;

std::atomic<size_t> g_thread_count_override{0};

size_t EnvThreadCount() {
  const char* env = std::getenv("HDIDX_THREADS");
  if (env == nullptr) return 0;
  const long value = std::strtol(env, nullptr, 10);
  return value > 0 ? static_cast<size_t>(value) : 0;
}

void RunSerial(size_t begin, size_t end, size_t grain,
               const std::function<void(size_t, size_t)>& fn) {
  for (size_t chunk_begin = begin; chunk_begin < end; chunk_begin += grain) {
    fn(chunk_begin, std::min(end, chunk_begin + grain));
  }
}

}  // namespace

size_t ThreadCount() {
  const size_t override =
      g_thread_count_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  const size_t env = EnvThreadCount();
  if (env > 0) return env;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

void SetThreadCount(size_t n) {
  g_thread_count_override.store(n, std::memory_order_relaxed);
}

size_t DefaultGrain(size_t n, size_t threads) {
  if (threads <= 1) return std::max<size_t>(1, n);
  return std::max<size_t>(1, n / (threads * 4));
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (auto& w : workers_) w.join();
  // Workers drain queued tasks before exiting, but a task submitted after
  // the last worker passed its shutdown check would be stranded — run any
  // leftovers here so a Submit-based completion is always signaled.
  std::deque<std::function<void()>> leftover;
  {
    MutexLock lock(&mu_);
    leftover.swap(tasks_);
  }
  for (const auto& task : leftover) RunTask(task);
}

void ThreadPool::WorkerLoop() {
  uint32_t seen_epoch = 0;
  for (;;) {
    size_t num_chunks;
    mu_.Lock();
    while (!shutdown_ && job_epoch_ == seen_epoch && tasks_.empty()) {
      work_cv_.Wait(mu_);
    }
    if (!tasks_.empty()) {
      // Tasks before chunks: a prefetch fill someone may already be
      // blocked on beats stealing one more chunk of a job that has the
      // whole pool on it. Also drains the queue on shutdown.
      std::function<void()> task = std::move(tasks_.front());
      tasks_.pop_front();
      mu_.Unlock();
      RunTask(task);
      continue;
    }
    if (shutdown_) {
      mu_.Unlock();
      return;
    }
    seen_epoch = job_epoch_;
    num_chunks = num_chunks_;
    mu_.Unlock();
    RunChunks(seen_epoch, num_chunks);
  }
}

void ThreadPool::RunTask(const std::function<void()>& task) {
  const bool was_in_section = tls_in_parallel_section;
  tls_in_parallel_section = true;
  task();
  tls_in_parallel_section = was_in_section;
}

void ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ == 1) {
    RunTask(task);
    return;
  }
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
}

void ThreadPool::RunChunks(uint32_t epoch, size_t num_chunks) {
  const bool was_in_section = tls_in_parallel_section;
  tls_in_parallel_section = true;
  for (;;) {
    const uint64_t claim = claim_.fetch_add(1, std::memory_order_acq_rel);
    const uint32_t claim_epoch = static_cast<uint32_t>(claim >> 32);
    const size_t chunk = static_cast<size_t>(claim & 0xffffffffULL);
    if (claim_epoch != epoch) {
      // A fresh job was published since our last claim (an old epoch can
      // only surface after its job drained, and a publication can only
      // follow a drain). The acquiring fetch_add synchronized with the
      // publication's releasing store, so the job fields we read below are
      // the new job's — serving its chunk here is valid work.
      epoch = claim_epoch;
      num_chunks = num_chunks_;
    }
    if (chunk >= num_chunks) break;
    const size_t chunk_begin = job_begin_ + chunk * job_grain_;
    const size_t chunk_end = std::min(job_end_, chunk_begin + job_grain_);
    try {
      (*job_fn_)(chunk_begin, chunk_end);
    } catch (...) {
      MutexLock lock(&mu_);
      if (!first_error_) first_error_ = std::current_exception();
    }
    if (chunks_done_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        num_chunks) {
      // Last chunk: wake the thread blocked in ParallelFor.
      MutexLock lock(&mu_);
      done_cv_.NotifyAll();
    }
  }
  tls_in_parallel_section = was_in_section;
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(1, grain);
  // Serial pool, nested call from inside a parallel section, or a range that
  // fits in one chunk: run inline without fanning out.
  if (num_threads_ == 1 || tls_in_parallel_section || end - begin <= grain) {
    RunSerial(begin, end, grain, fn);
    return;
  }

  MutexLock submit_lock(&submit_mu_);
  uint32_t epoch;
  size_t num_chunks;
  {
    MutexLock lock(&mu_);
    epoch = ++job_epoch_;
    job_fn_ = &fn;
    job_begin_ = begin;
    job_end_ = end;
    job_grain_ = grain;
    num_chunks = num_chunks_ = (end - begin + grain - 1) / grain;
    chunks_done_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    claim_.store(static_cast<uint64_t>(epoch) << 32,
                 std::memory_order_release);
  }
  work_cv_.NotifyAll();

  // The calling thread works too.
  RunChunks(epoch, num_chunks);

  mu_.Lock();
  while (chunks_done_.load(std::memory_order_acquire) != num_chunks) {
    done_cv_.Wait(mu_);
  }
  job_fn_ = nullptr;
  std::exception_ptr error = first_error_;
  first_error_ = nullptr;
  mu_.Unlock();
  if (error) std::rethrow_exception(error);
}

void ExecutionContext::ParallelFor(
    size_t begin, size_t end, size_t grain,
    const std::function<void(size_t, size_t)>& fn) const {
  if (begin >= end) return;
  if (grain == 0) grain = DefaultGrain(end - begin, threads());
  if (pool == nullptr) {
    RunSerial(begin, end, std::max<size_t>(1, grain), fn);
    return;
  }
  pool->ParallelFor(begin, end, grain, fn);
}

const ExecutionContext& DefaultExecutionContext() {
  // Leaked intentionally: worker threads must outlive every static-destruction
  //-order client, and the pool blocks on join in its destructor.
  static ThreadPool* pool = new ThreadPool(ThreadCount());
  static ExecutionContext context(pool);
  return context;
}

}  // namespace hdidx::common
