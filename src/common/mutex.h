#ifndef HDIDX_COMMON_MUTEX_H_
#define HDIDX_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace hdidx::common {

/// std::mutex with Clang Thread Safety Analysis annotations.
///
/// The standard library's mutex carries no capability attributes, so
/// HDIDX_GUARDED_BY fields protected by a raw std::mutex are invisible to
/// -Wthread-safety. Every lock-owning class in this repo holds one of
/// these instead; under GCC the annotations vanish and the wrapper is a
/// zero-overhead std::mutex.
///
/// Both spellings of the lock interface are provided: Lock/Unlock for
/// explicit (annotated) call sites, and lowercase lock/unlock so the type
/// satisfies BasicLockable for CondVar below.
class HDIDX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HDIDX_ACQUIRE() { mu_.lock(); }
  void Unlock() HDIDX_RELEASE() { mu_.unlock(); }
  bool TryLock() HDIDX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // BasicLockable spelling (CondVar::Wait passes the Mutex straight to
  // std::condition_variable_any).
  void lock() HDIDX_ACQUIRE() { mu_.lock(); }
  void unlock() HDIDX_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex (lock_guard with scoped-capability annotations).
class HDIDX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HDIDX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HDIDX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with Mutex.
///
/// Built on condition_variable_any (the Mutex wrapper is not a
/// std::mutex, so the plain condition_variable's unique_lock interface
/// doesn't apply). Wait requires the mutex held, releases it while
/// blocked, and holds it again on return — the analysis sees the
/// net-neutral REQUIRES contract; the release/reacquire inside the
/// standard library is invisible to it, which is exactly right.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always call from a
  /// `while (!condition)` loop). `mu` must be held on entry and is held on
  /// return. Deliberately predicate-less: the analysis cannot see that a
  /// predicate lambda runs with `mu` held, so callers keep the condition
  /// re-check in their own (annotated) scope.
  void Wait(Mutex& mu) HDIDX_REQUIRES(mu) { cv_.wait(mu); }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace hdidx::common

#endif  // HDIDX_COMMON_MUTEX_H_
