#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace hdidx::common {
namespace {

void DefaultCheckFailureHandler(const std::string& message) {
  std::fprintf(stderr, "%s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

// The one mutable global of the check library (hdidx-lint: allow-global).
// Atomic so tests can swap handlers while worker threads run checks.
// Happens-before: SetCheckFailureHandler publishes with a releasing
// exchange and CheckFail reads with an acquiring load, so everything the
// installing thread wrote before the swap (the handler's own state) is
// visible to any thread whose failing check invokes it.
std::atomic<CheckFailureHandler> g_check_failure_handler{
    &DefaultCheckFailureHandler};

}  // namespace

CheckFailureHandler SetCheckFailureHandler(CheckFailureHandler handler) {
  if (handler == nullptr) handler = &DefaultCheckFailureHandler;
  return g_check_failure_handler.exchange(handler, std::memory_order_acq_rel);
}

namespace internal {

void CheckFail(const std::string& message) {
  g_check_failure_handler.load(std::memory_order_acquire)(message);
  // A conforming handler never returns; guarantee the [[noreturn]] contract
  // even against one that does.
  std::abort();
}

CheckFailureStream::CheckFailureStream(const char* file, int line,
                                       const char* expression) {
  stream_ << file << ":" << line << ": " << expression << " failed: ";
}

CheckFailureStream::CheckFailureStream(const char* file, int line,
                                       const char* expression,
                                       const std::string& operands) {
  stream_ << file << ":" << line << ": " << expression << " failed ["
          << operands << "]: ";
}

CheckFailureStream::~CheckFailureStream() { CheckFail(stream_.str()); }

}  // namespace internal
}  // namespace hdidx::common
