#ifndef HDIDX_COMMON_THREAD_ANNOTATIONS_H_
#define HDIDX_COMMON_THREAD_ANNOTATIONS_H_

/// Thread-safety annotation macros — the compile-time half of the repo's
/// concurrency contracts (DESIGN.md §5).
///
/// Two independent annotation families live here:
///
/// 1. Clang Thread Safety Analysis wrappers (HDIDX_CAPABILITY,
///    HDIDX_GUARDED_BY, HDIDX_REQUIRES, HDIDX_ACQUIRE/RELEASE, ...).
///    Under clang with -Wthread-safety (the `thread-safety` CI leg, which
///    builds with -Werror) these make lock discipline a compile error:
///    touching a HDIDX_GUARDED_BY(mu_) field without holding mu_ fails the
///    build. Under GCC they expand to nothing — zero cost, zero semantics.
///    They only attach to types that declare HDIDX_CAPABILITY (the
///    common::Mutex wrapper in common/mutex.h); a raw std::mutex is
///    invisible to the analysis, which is why the lock-owning classes in
///    this repo use the wrapper.
///
/// 2. Ownership-phase tags (HDIDX_BUILD_ONLY, HDIDX_CONCURRENT_READ,
///    HDIDX_UNGUARDED). These carry the single-owner-build /
///    concurrent-read phase model that common::Arena, BoxSlab, and RTree
///    construction rely on. They expand to [[clang::annotate]] attributes
///    under clang (visible to AST tooling) and to nothing under GCC, and
///    are enforced — on every compiler — by tools/hdidx_analyze.py, whose
///    `phase` rule walks the call graph and rejects any path from a
///    HDIDX_CONCURRENT_READ function into a HDIDX_BUILD_ONLY one, and
///    whose `guarded-by` rule requires every mutable field of a
///    mutex-owning class to be HDIDX_GUARDED_BY, HDIDX_UNGUARDED (with a
///    written reason), or allowlisted.

#if defined(__clang__) && defined(__has_attribute)
#define HDIDX_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define HDIDX_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op on GCC/MSVC
#endif

/// Declares a type to be a synchronization capability ("mutex"); unlocks
/// the rest of the analysis for members guarded by instances of it.
#define HDIDX_CAPABILITY(x) HDIDX_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor (lock_guard-style).
#define HDIDX_SCOPED_CAPABILITY HDIDX_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define HDIDX_GUARDED_BY(x) HDIDX_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Pointee may only be accessed while holding `x` (the pointer itself is
/// unguarded).
#define HDIDX_PT_GUARDED_BY(x) HDIDX_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define HDIDX_REQUIRES(...) \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define HDIDX_ACQUIRE(...) \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// Function releases the capability.
#define HDIDX_RELEASE(...) \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define HDIDX_TRY_ACQUIRE(b, ...) \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(b, __VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock
/// prevention for non-reentrant locks).
#define HDIDX_EXCLUDES(...) \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Returns a reference to the named capability (for wrapper accessors).
#define HDIDX_RETURN_CAPABILITY(x) \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

/// Escape hatch: the function's synchronization is correct for reasons the
/// analysis cannot express (epoch publication, atomics). Every use must
/// carry a comment stating the happens-before argument.
#define HDIDX_NO_THREAD_SAFETY_ANALYSIS \
  HDIDX_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Ownership-phase tags (enforced by tools/hdidx_analyze.py on any compiler).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define HDIDX_PHASE_ANNOTATE(tag) [[clang::annotate(tag)]]
#else
#define HDIDX_PHASE_ANNOTATE(tag)  // GCC: analyzer reads the macro token
#endif

/// The function mutates single-owner build state (arena allocation, tree
/// construction, slab filling). It may only run during the build phase, on
/// the one thread that owns the structure being built — never from a
/// concurrent read path. hdidx_analyze's `phase` rule rejects any call
/// chain from a HDIDX_CONCURRENT_READ function into one of these.
#define HDIDX_BUILD_ONLY HDIDX_PHASE_ANNOTATE("hdidx::build_only")

/// The function is a read-phase entry point that concurrent threads call
/// against an already-built structure (registry lookups, slab scans, tree
/// traversals). It must be reachable-free of HDIDX_BUILD_ONLY calls.
#define HDIDX_CONCURRENT_READ HDIDX_PHASE_ANNOTATE("hdidx::concurrent_read")

/// Field-level declaration that a mutable member of a mutex-owning class
/// is deliberately NOT guarded by the mutex — because it is synchronized by
/// construction/join order or by its own atomicity. Each use must carry a
/// comment saying which. Satisfies hdidx_analyze's `guarded-by` rule.
#define HDIDX_UNGUARDED HDIDX_PHASE_ANNOTATE("hdidx::unguarded")

#endif  // HDIDX_COMMON_THREAD_ANNOTATIONS_H_
