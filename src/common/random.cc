#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace hdidx::common {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

Rng Rng::Fork(uint64_t stream_id) const {
  // Mix the full parent state with the stream id into a fresh seed; the
  // golden-ratio multiplier decorrelates adjacent stream ids.
  uint64_t sm = s_[0] + 0x9e3779b97f4a7c15ULL * (stream_id + 1);
  sm ^= Rotl(s_[1], 19) ^ Rotl(s_[2], 37) ^ Rotl(s_[3], 53);
  return Rng(SplitMix64(&sm));
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  HDIDX_CHECK(bound > 0);
  // Rejection sampling on the top of the range removes modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextUniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

void Rng::SampleIndices(size_t n, size_t k, std::vector<size_t>* out) {
  out->clear();
  if (k >= n) {
    out->resize(n);
    for (size_t i = 0; i < n; ++i) (*out)[i] = i;
    return;
  }
  out->reserve(k);
  // Sequential sampling: walk the population once and include each element
  // with probability (needed / remaining). Produces a uniform k-subset in
  // increasing order.
  size_t needed = k;
  for (size_t i = 0; i < n && needed > 0; ++i) {
    const size_t remaining = n - i;
    if (NextBounded(remaining) < needed) {
      out->push_back(i);
      --needed;
    }
  }
}

}  // namespace hdidx::common
