#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace hdidx::common {

LineFit FitLine(const std::vector<double>& x, const std::vector<double>& y) {
  HDIDX_CHECK(x.size() == y.size());
  LineFit fit;
  fit.n = x.size();
  if (fit.n < 2) return fit;
  const double n = static_cast<double>(fit.n);
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < fit.n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double var_x = sxx - sx * sx / n;
  const double var_y = syy - sy * sy / n;
  const double cov = sxy - sx * sy / n;
  if (var_x <= 0.0) return fit;
  fit.slope = cov / var_x;
  fit.intercept = (sy - fit.slope * sx) / n;
  fit.r = (var_y > 0.0) ? cov / std::sqrt(var_x * var_y) : 0.0;
  return fit;
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size());
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  HDIDX_CHECK(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = std::min(1.0, std::max(0.0, p));
  std::sort(v.begin(), v.end());
  const double rank = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  if (lo + 1 >= v.size()) return v.back();
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[lo + 1] - v[lo]);
}

double RelativeError(double predicted, double actual) {
  if (actual == 0.0) return 0.0;
  return (predicted - actual) / actual;
}

void RunningStats::Add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

}  // namespace hdidx::common
