#include "index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geometry/distance.h"
#include "geometry/kernels.h"

namespace hdidx::index {

KnnHeap::KnnHeap(size_t k) : k_(k) { HDIDX_CHECK(k > 0); }

void KnnHeap::Push(double squared_distance) {
  if (heap_.size() < k_) {
    heap_.push(squared_distance);
  } else if (squared_distance < heap_.top()) {
    heap_.pop();
    heap_.push(squared_distance);
  }
}

double KnnHeap::KthSquared() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.top();
}

double KnnHeap::Kth() const { return std::sqrt(KthSquared()); }

KnnPairHeap::KnnPairHeap(size_t k) : k_(k) { HDIDX_CHECK(k > 0); }

void KnnPairHeap::Push(double squared_distance, size_t row) {
  const std::pair<double, size_t> p(squared_distance, row);
  if (heap_.size() < k_) {
    heap_.push(p);
  } else if (p < heap_.top()) {
    heap_.pop();
    heap_.push(p);
  }
}

double KnnPairHeap::KthSquared() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.top().first;
}

std::vector<std::pair<double, size_t>> KnnPairHeap::TakeSortedAscending() {
  std::vector<std::pair<double, size_t>> result(heap_.size());
  for (size_t i = heap_.size(); i > 0; --i) {
    result[i - 1] = heap_.top();
    heap_.pop();
  }
  return result;
}

// The three exact scans below run on the batched kernels (vectorized across
// rows with partial-distance early termination against the k-th heap
// threshold); the kernel's scalar mode and the equivalence battery pin them
// to the original per-row SquaredL2 + KnnHeap loops bit for bit.

double ExactKthDistance(const data::Dataset& data,
                        std::span<const float> query, size_t k,
                        double exclude_within_sq) {
  geometry::kernels::ScanOptions opts;
  opts.exclude_within_sq = exclude_within_sq;
  return std::sqrt(
      geometry::kernels::KthDistanceScan(query, data.data(), data.dim(), k,
                                         opts));
}

double ExactKthDistanceExcludingRow(const data::Dataset& data,
                                    std::span<const float> query, size_t k,
                                    size_t exclude_row) {
  geometry::kernels::ScanOptions opts;
  opts.exclude_row = exclude_row;
  return std::sqrt(
      geometry::kernels::KthDistanceScan(query, data.data(), data.dim(), k,
                                         opts));
}

std::vector<size_t> ExactKnn(const data::Dataset& data,
                             std::span<const float> query, size_t k) {
  const auto pairs = geometry::kernels::TopKNeighborScan(
      query, data.data(), data.dim(), k, geometry::kernels::ScanOptions());
  std::vector<size_t> result(pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) result[i] = pairs[i].second;
  return result;
}

TreeKnnResult TreeKnnSearch(const RTree& tree, const data::Dataset& data,
                            std::span<const float> query, size_t k) {
  TreeKnnResult result;
  if (tree.empty()) return result;

  // Best-first search: a min-priority queue over MINDIST of pending nodes;
  // prune once k candidates are closer than the best pending node.
  struct Entry {
    double min_dist_sq;
    uint32_t node;
    bool operator>(const Entry& other) const {
      return min_dist_sq > other.min_dist_sq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.push({geometry::SquaredMinDist(query, tree.node(tree.root()).box),
              tree.root()});

  // Bounded pair-heap of the k best candidates. The old loop appended every
  // leaf's points to a vector and re-sorted the whole vector per leaf;
  // KnnPairHeap keeps the same pair ordering (so retention, neighbor order
  // and the pruning bound are unchanged) at O(log k) per point.
  KnnPairHeap candidates(k);

  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (top.min_dist_sq > candidates.KthSquared()) break;
    const RTreeNode& n = tree.node(top.node);
    if (n.is_leaf()) {
      ++result.accesses.leaf_accesses;
      for (uint32_t pos = n.start; pos < n.start + n.count; ++pos) {
        const size_t row = tree.OrderedIndex(pos);
        candidates.Push(geometry::SquaredL2(data.row(row), query), row);
      }
    } else {
      ++result.accesses.dir_accesses;
      for (uint32_t child : n.children) {
        const double d2 =
            geometry::SquaredMinDist(query, tree.node(child).box);
        if (d2 <= candidates.KthSquared()) queue.push({d2, child});
      }
    }
  }

  const auto best = candidates.TakeSortedAscending();
  result.neighbors.resize(best.size());
  for (size_t i = 0; i < best.size(); ++i) result.neighbors[i] = best[i].second;
  result.kth_distance = best.empty() ? 0.0 : std::sqrt(best.back().first);
  return result;
}

std::vector<double> CountSphereLeafAccesses(
    const RTree& tree, const data::Dataset& centers,
    const std::vector<double>& radii, io::IoStats* io,
    const common::ExecutionContext& ctx) {
  HDIDX_CHECK(centers.size() == radii.size());
  const size_t q = centers.size();
  std::vector<double> result(q, 0.0);
  std::vector<uint64_t> total_pages(q, 0);
  ctx.ParallelFor(0, q, /*grain=*/0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const RTree::AccessCount count =
          tree.CountSphereAccesses(centers.row(i), radii[i]);
      result[i] = static_cast<double>(count.leaf_accesses);
      total_pages[i] = count.total();
    }
  });
  if (io != nullptr) {
    // Nearly all query-time page accesses are random (Section 5.1): one
    // seek and one transfer per page touched. Reduced serially in query
    // order so the counters match the serial implementation exactly.
    for (size_t i = 0; i < q; ++i) {
      io->page_seeks += total_pages[i];
      io->page_transfers += total_pages[i];
    }
  }
  return result;
}

}  // namespace hdidx::index
