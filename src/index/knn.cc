#include "index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::index {

KnnHeap::KnnHeap(size_t k) : k_(k) { HDIDX_CHECK(k > 0); }

void KnnHeap::Push(double squared_distance) {
  if (heap_.size() < k_) {
    heap_.push(squared_distance);
  } else if (squared_distance < heap_.top()) {
    heap_.pop();
    heap_.push(squared_distance);
  }
}

double KnnHeap::KthSquared() const {
  if (!full()) return std::numeric_limits<double>::infinity();
  return heap_.top();
}

double KnnHeap::Kth() const { return std::sqrt(KthSquared()); }

double ExactKthDistance(const data::Dataset& data,
                        std::span<const float> query, size_t k,
                        double exclude_within_sq) {
  KnnHeap heap(k);
  for (size_t i = 0; i < data.size(); ++i) {
    const double d2 = geometry::SquaredL2(data.row(i), query);
    if (d2 <= exclude_within_sq) continue;
    heap.Push(d2);
  }
  return heap.Kth();
}

double ExactKthDistanceExcludingRow(const data::Dataset& data,
                                    std::span<const float> query, size_t k,
                                    size_t exclude_row) {
  KnnHeap heap(k);
  for (size_t i = 0; i < data.size(); ++i) {
    if (i == exclude_row) continue;
    heap.Push(geometry::SquaredL2(data.row(i), query));
  }
  return heap.Kth();
}

std::vector<size_t> ExactKnn(const data::Dataset& data,
                             std::span<const float> query, size_t k) {
  std::vector<std::pair<double, size_t>> all;
  all.reserve(data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    all.emplace_back(geometry::SquaredL2(data.row(i), query), i);
  }
  const size_t take = std::min(k, all.size());
  std::partial_sort(all.begin(), all.begin() + static_cast<ptrdiff_t>(take),
                    all.end());
  std::vector<size_t> result(take);
  for (size_t i = 0; i < take; ++i) result[i] = all[i].second;
  return result;
}

TreeKnnResult TreeKnnSearch(const RTree& tree, const data::Dataset& data,
                            std::span<const float> query, size_t k) {
  TreeKnnResult result;
  if (tree.empty()) return result;

  // Best-first search: a min-priority queue over MINDIST of pending nodes;
  // prune once k candidates are closer than the best pending node.
  struct Entry {
    double min_dist_sq;
    uint32_t node;
    bool operator>(const Entry& other) const {
      return min_dist_sq > other.min_dist_sq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  queue.push({geometry::SquaredMinDist(query, tree.node(tree.root()).box),
              tree.root()});

  std::vector<std::pair<double, size_t>> candidates;  // (dist^2, row)
  auto kth_sq = [&]() {
    return candidates.size() < k ? std::numeric_limits<double>::infinity()
                                 : candidates[k - 1].first;
  };

  while (!queue.empty()) {
    const Entry top = queue.top();
    queue.pop();
    if (top.min_dist_sq > kth_sq()) break;
    const RTreeNode& n = tree.node(top.node);
    if (n.is_leaf()) {
      ++result.accesses.leaf_accesses;
      for (uint32_t pos = n.start; pos < n.start + n.count; ++pos) {
        const size_t row = tree.OrderedIndex(pos);
        const double d2 = geometry::SquaredL2(data.row(row), query);
        candidates.emplace_back(d2, row);
      }
      std::sort(candidates.begin(), candidates.end());
      if (candidates.size() > k) candidates.resize(k);
    } else {
      ++result.accesses.dir_accesses;
      for (uint32_t child : n.children) {
        const double d2 =
            geometry::SquaredMinDist(query, tree.node(child).box);
        if (d2 <= kth_sq()) queue.push({d2, child});
      }
    }
  }

  const size_t take = std::min(k, candidates.size());
  result.neighbors.resize(take);
  for (size_t i = 0; i < take; ++i) result.neighbors[i] = candidates[i].second;
  result.kth_distance = take > 0 ? std::sqrt(candidates[take - 1].first) : 0.0;
  return result;
}

std::vector<double> CountSphereLeafAccesses(
    const RTree& tree, const data::Dataset& centers,
    const std::vector<double>& radii, io::IoStats* io,
    const common::ExecutionContext& ctx) {
  HDIDX_CHECK(centers.size() == radii.size());
  const size_t q = centers.size();
  std::vector<double> result(q, 0.0);
  std::vector<uint64_t> total_pages(q, 0);
  ctx.ParallelFor(0, q, /*grain=*/0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const RTree::AccessCount count =
          tree.CountSphereAccesses(centers.row(i), radii[i]);
      result[i] = static_cast<double>(count.leaf_accesses);
      total_pages[i] = count.total();
    }
  });
  if (io != nullptr) {
    // Nearly all query-time page accesses are random (Section 5.1): one
    // seek and one transfer per page touched. Reduced serially in query
    // order so the counters match the serial implementation exactly.
    for (size_t i = 0; i < q; ++i) {
      io->page_seeks += total_pages[i];
      io->page_transfers += total_pages[i];
    }
  }
  return result;
}

}  // namespace hdidx::index
