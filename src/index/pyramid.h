#ifndef HDIDX_INDEX_PYRAMID_H_
#define HDIDX_INDEX_PYRAMID_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "io/disk_model.h"
#include "io/io_stats.h"

namespace hdidx::index {

/// The Pyramid technique (Berchtold, Böhm, Kriegel [6]) — another member of
/// the Section 4.7 group ("fixed-capacity pages with a given storage
/// utilization"): d-dimensional points map to a 1-dimensional *pyramid
/// value* i + h, where i is the pyramid whose apex the point leans toward
/// (the dimension of maximal center-offset, signed) and h is the height
/// (that offset). Points are stored sorted by pyramid value in fixed-size
/// pages, exactly like the leaf level of a B+-tree.
///
/// k-NN queries run as iteratively enlarged range queries: a query box maps
/// to at most 2d pyramid-value intervals; pages overlapping those intervals
/// are scanned. The page layout (1-d intervals over the sorted values) is
/// again fixed-capacity — the sampling prediction technique applies by
/// building the same structure on a sample (see PredictPyramidAccesses).
class PyramidIndex {
 public:
  /// Builds the index over `data`, normalizing coordinates into [0,1]^d
  /// with the data's bounding box. `page_capacity` points per data page.
  PyramidIndex(const data::Dataset* data, size_t page_capacity);

  size_t size() const { return values_.size(); }
  size_t num_pages() const;
  size_t page_capacity() const { return page_capacity_; }

  /// Pyramid value of an arbitrary point (normalized internally).
  double PyramidValue(std::span<const float> point) const;

  /// Number of data pages a range query (box, in original coordinates)
  /// must read: pages overlapping any of the box's pyramid-value intervals.
  /// If `io` is non-null, charges one random access per interval plus
  /// sequential transfers for the pages it spans.
  size_t RangeQueryPages(std::span<const float> box_lo,
                         std::span<const float> box_hi,
                         io::IoStats* io) const;

  /// Exact k-NN via iteratively enlarged range queries. Returns the page
  /// reads of the final (successful) iteration plus all earlier ones.
  struct SearchResult {
    std::vector<size_t> neighbors;  // ascending by distance
    double kth_distance = 0.0;
    size_t page_reads = 0;
    size_t iterations = 0;
  };
  SearchResult SearchKnn(std::span<const float> query, size_t k) const;

  /// The pyramid-value intervals [lo, hi] a normalized query box maps to
  /// (at most 2d of them). Exposed for tests.
  std::vector<std::pair<double, double>> QueryIntervals(
      std::span<const float> lo_norm, std::span<const float> hi_norm) const;

 private:
  /// Normalizes a point into [0,1]^d (clamped).
  void Normalize(std::span<const float> point, std::vector<double>* out) const;

  const data::Dataset* data_;
  size_t page_capacity_;
  std::vector<double> norm_lo_;
  std::vector<double> norm_inv_extent_;
  /// (pyramid value, row), sorted by value — the B+-tree leaf level.
  std::vector<std::pair<double, uint32_t>> values_;
};

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_PYRAMID_H_
