#include "index/bulk_loader.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/random.h"
#include "common/stats.h"
#include "index/adaptive_build.h"

namespace hdidx::index {

size_t PointSource::ChooseSplitDim(size_t lo, size_t hi,
                                   SplitStrategy strategy, size_t depth) {
  switch (strategy) {
    case SplitStrategy::kMaxVariance:
      return MaxVarianceDim(lo, hi);
    case SplitStrategy::kMaxExtent:
      return ComputeBox(lo, hi).LongestDimension();
    case SplitStrategy::kRoundRobin:
      return depth % dim();
    case SplitStrategy::kAdaptiveSample:
      // Within-bucket splits of the adaptive pipeline (and the fallback
      // recursion of sources without one) use max-variance dimensions.
      return MaxVarianceDim(lo, hi);
  }
  return MaxVarianceDim(lo, hi);
}

InMemoryPointSource::InMemoryPointSource(const data::Dataset* data)
    : data_(data), order_(data->size()) {
  std::iota(order_.begin(), order_.end(), 0u);
}

size_t InMemoryPointSource::MaxVarianceDim(size_t lo, size_t hi) {
  const size_t d = data_->dim();
  // Single pass accumulating sum and sum-of-squares per dimension.
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (size_t i = lo; i < hi; ++i) {
    const auto row = data_->row(order_[i]);
    for (size_t k = 0; k < d; ++k) {
      const double v = row[k];
      sum[k] += v;
      sum_sq[k] += v * v;
    }
  }
  const double n = static_cast<double>(hi - lo);
  size_t best = 0;
  double best_var = -1.0;
  for (size_t k = 0; k < d; ++k) {
    const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
    if (var > best_var) {
      best_var = var;
      best = k;
    }
  }
  return best;
}

void InMemoryPointSource::Partition(size_t lo, size_t hi, size_t pos,
                                    size_t split_dim) {
  HDIDX_CHECK(lo < pos && pos < hi);
  const data::Dataset& data = *data_;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(lo),
                   order_.begin() + static_cast<ptrdiff_t>(pos),
                   order_.begin() + static_cast<ptrdiff_t>(hi),
                   [&data, split_dim](uint32_t a, uint32_t b) {
                     return data.row(a)[split_dim] < data.row(b)[split_dim];
                   });
}

geometry::BoundingBox InMemoryPointSource::ComputeBox(size_t lo, size_t hi) {
  geometry::BoundingBox box(data_->dim());
  for (size_t i = lo; i < hi; ++i) box.Extend(data_->row(order_[i]));
  return box;
}

namespace {

/// Recursive builder shared by all sources.
class Builder {
 public:
  Builder(PointSource* source, const BulkLoadOptions& options, RTree* tree)
      : source_(source), options_(options), tree_(tree) {}

  uint32_t BuildNode(size_t level, size_t lo, size_t hi) {
    HDIDX_CHECK(hi > lo);
    if (level == options_.stop_level) {
      return tree_->AddLeaf(source_->ComputeBox(lo, hi),
                            static_cast<uint32_t>(level),
                            static_cast<uint32_t>(lo),
                            static_cast<uint32_t>(hi - lo));
    }
    // Scaled capacity of one child subtree. A mini-index sample shrinks the
    // targets by `scale` so fanouts replicate the full tree. Clamped to one
    // point: a page of the mini-index must hold at least one point
    // (Section 3.3's bound: the sample rate can never be below 1/C).
    const double child_target = std::max(
        1.0, static_cast<double>(options_.topology->SubtreeCapacity(level - 1)) *
                 options_.scale);
    const size_t fanout = static_cast<size_t>(
        std::ceil(static_cast<double>(hi - lo) / child_target - 1e-9));
    std::vector<uint32_t> children;
    children.reserve(fanout);
    SplitRange(level, lo, hi, fanout, child_target, /*depth=*/0, &children);
    // Fanout audit: the recursive split may merge degenerate partitions but
    // can never manufacture extra children, and a non-empty range always
    // yields at least one.
    HDIDX_CHECK(!children.empty() && children.size() <= fanout)
        << "level " << level << " produced " << children.size()
        << " children for target fanout " << fanout;
    return tree_->AddDirectory(static_cast<uint32_t>(level),
                               std::move(children));
  }

 private:
  /// Recursive binary maximum-variance split of [lo, hi) into `fanout`
  /// partitions of `child_target` points (the last takes the remainder),
  /// then recurses one level down on each partition.
  void SplitRange(size_t level, size_t lo, size_t hi, size_t fanout,
                  double child_target, size_t depth,
                  std::vector<uint32_t>* children) {
    if (fanout <= 1 || hi - lo <= 1) {
      children->push_back(BuildNode(level - 1, lo, hi));
      return;
    }
    const size_t left_fanout = (fanout + 1) / 2;
    size_t split = lo + static_cast<size_t>(std::llround(
                            static_cast<double>(left_fanout) * child_target));
    // Keep both sides non-empty even under aggressive rounding.
    split = std::clamp(split, lo + 1, hi - 1);
    const size_t dim =
        source_->ChooseSplitDim(lo, hi, options_.split_strategy, depth);
    source_->Partition(lo, hi, split, dim);
    SplitRange(level, lo, split, left_fanout, child_target, depth + 1,
               children);
    SplitRange(level, split, hi, fanout - left_fanout, child_target,
               depth + 1, children);
  }

  PointSource* source_;
  const BulkLoadOptions& options_;
  RTree* tree_;
};

struct SplitCell;

/// A node of the plan tree the parallel build produces before emission:
/// level and point range as in the serial recursion, plus either a computed
/// MBR (leaves) or the binary split recursion that produced its children
/// (directories). The plan's shape is a deterministic function of the input
/// alone — tasks fill slots, they never append to shared sequences.
struct PlanNode {
  size_t level;
  size_t lo;
  size_t hi;
  bool is_leaf = false;
  geometry::BoundingBox box;          // leaves; directories derive theirs
  size_t fanout = 0;                  // directories: target for the audit
  std::unique_ptr<SplitCell> splits;  // directories: binary split tree

  PlanNode(size_t dim, size_t level_in, size_t lo_in, size_t hi_in)
      : level(level_in), lo(lo_in), hi(hi_in), box(dim) {}
};

/// One invocation of the recursive binary split: either it partitioned and
/// recursed (left/right set) or it terminated into one child node. Walking
/// cells left-to-right recovers the children in exactly the order the
/// serial SplitRange pushes them.
struct SplitCell {
  std::unique_ptr<SplitCell> left;
  std::unique_ptr<SplitCell> right;
  std::unique_ptr<PlanNode> child;
};

/// Parallel plan builder: runs the same recursion as Builder, but as a
/// breadth-first task graph on the execution context's pool. Sibling tasks
/// always cover disjoint [lo, hi) ranges, which is precisely the source's
/// Concurrency::kDisjointRanges contract, and each range sees the identical
/// sequence of ChooseSplitDim/Partition/ComputeBox calls the depth-first
/// recursion would issue — operations on disjoint ranges commute, so the
/// final permutation and every MBR are bit-identical to the serial build
/// for any thread count. Node ids are assigned afterwards by a serial
/// post-order emission walk replicating the serial AddLeaf/AddDirectory
/// call order exactly.
class ParallelBuilder {
 public:
  ParallelBuilder(PointSource* source, const BulkLoadOptions& options,
                  RTree* tree)
      : source_(source), options_(options), tree_(tree) {}

  uint32_t Build(size_t root_level) {
    PlanNode root(source_->dim(), root_level, 0, source_->size());
    std::vector<Task> frontier;
    frontier.push_back(NodeTask(&root));
    common::ForkJoinWaves(
        *options_.exec, std::move(frontier),
        [this](const Task& task, std::vector<Task>* spawn) {
          if (task.cell == nullptr) {
            ExpandNode(task.node, spawn);
          } else {
            RunSplit(task, spawn);
          }
        });
    return Emit(&root);
  }

 private:
  /// Either a node expansion (cell == nullptr) or one binary split step of
  /// [lo, hi) into `fanout` partitions for directory `node`.
  struct Task {
    PlanNode* node = nullptr;
    SplitCell* cell = nullptr;
    size_t lo = 0;
    size_t hi = 0;
    size_t fanout = 0;
    size_t depth = 0;
    double child_target = 0.0;
  };

  static Task NodeTask(PlanNode* node) {
    Task task;
    task.node = node;
    return task;
  }

  void ExpandNode(PlanNode* node, std::vector<Task>* spawn) {
    HDIDX_CHECK(node->hi > node->lo);
    if (node->level == options_.stop_level) {
      node->box = source_->ComputeBox(node->lo, node->hi);
      node->is_leaf = true;
      return;
    }
    // Same scaled child capacity (and clamp) as Builder::BuildNode.
    const double child_target = std::max(
        1.0,
        static_cast<double>(options_.topology->SubtreeCapacity(node->level - 1)) *
            options_.scale);
    const size_t fanout = static_cast<size_t>(std::ceil(
        static_cast<double>(node->hi - node->lo) / child_target - 1e-9));
    node->fanout = fanout;
    node->splits = std::make_unique<SplitCell>();
    Task task;
    task.node = node;
    task.cell = node->splits.get();
    task.lo = node->lo;
    task.hi = node->hi;
    task.fanout = fanout;
    task.depth = 0;
    task.child_target = child_target;
    spawn->push_back(task);
  }

  void RunSplit(const Task& task, std::vector<Task>* spawn) {
    PlanNode* dir = task.node;
    if (task.fanout <= 1 || task.hi - task.lo <= 1) {
      task.cell->child = std::make_unique<PlanNode>(
          source_->dim(), dir->level - 1, task.lo, task.hi);
      spawn->push_back(NodeTask(task.cell->child.get()));
      return;
    }
    const size_t left_fanout = (task.fanout + 1) / 2;
    size_t split =
        task.lo + static_cast<size_t>(std::llround(
                      static_cast<double>(left_fanout) * task.child_target));
    split = std::clamp(split, task.lo + 1, task.hi - 1);
    const size_t dim = source_->ChooseSplitDim(
        task.lo, task.hi, options_.split_strategy, task.depth);
    source_->Partition(task.lo, task.hi, split, dim);
    task.cell->left = std::make_unique<SplitCell>();
    task.cell->right = std::make_unique<SplitCell>();
    Task left = task;
    left.cell = task.cell->left.get();
    left.hi = split;
    left.fanout = left_fanout;
    ++left.depth;
    Task right = task;
    right.cell = task.cell->right.get();
    right.lo = split;
    right.fanout = task.fanout - left_fanout;
    ++right.depth;
    spawn->push_back(left);
    spawn->push_back(right);
  }

  /// Serial post-order emission: children (left to right) before their
  /// directory — the exact AddLeaf/AddDirectory call sequence of the serial
  /// recursion, hence identical node ids and leaf_ids().
  uint32_t Emit(PlanNode* node) {
    if (node->is_leaf) {
      return tree_->AddLeaf(std::move(node->box),
                            static_cast<uint32_t>(node->level),
                            static_cast<uint32_t>(node->lo),
                            static_cast<uint32_t>(node->hi - node->lo));
    }
    std::vector<uint32_t> children;
    CollectChildren(node->splits.get(), &children);
    // Same fanout audit as the serial recursion.
    HDIDX_CHECK(!children.empty() && children.size() <= node->fanout)
        << "level " << node->level << " produced " << children.size()
        << " children for target fanout " << node->fanout;
    return tree_->AddDirectory(static_cast<uint32_t>(node->level),
                               std::move(children));
  }

  void CollectChildren(SplitCell* cell, std::vector<uint32_t>* out) {
    if (cell->child != nullptr) {
      out->push_back(Emit(cell->child.get()));
      return;
    }
    CollectChildren(cell->left.get(), out);
    CollectChildren(cell->right.get(), out);
  }

  PointSource* source_;
  const BulkLoadOptions& options_;
  RTree* tree_;
};

}  // namespace

uint32_t PointSource::BuildAdaptiveRoot(const BulkLoadOptions& options,
                                        size_t root_level, RTree* tree) {
  // Sources without a native sample-first pipeline still honor the
  // strategy's layout contract (serial, deterministic) via the classic
  // recursion with max-variance splits.
  Builder builder(this, options, tree);
  return builder.BuildNode(root_level, 0, size());
}

namespace internal {

uint32_t BuildSerialNode(PointSource* source, const BulkLoadOptions& options,
                         RTree* tree, size_t level, size_t lo, size_t hi) {
  Builder builder(source, options, tree);
  return builder.BuildNode(level, lo, hi);
}

namespace {

/// SplitRange's recursion shape, but collecting the bucket-level roots of an
/// overfull bucket instead of one directory's children.
void SplitBucketRange(PointSource* source, const BulkLoadOptions& options,
                      RTree* tree, size_t bucket_level, size_t lo, size_t hi,
                      size_t fanout, double child_target, size_t depth,
                      std::vector<AdaptiveRoot>* roots) {
  if (fanout <= 1 || hi - lo <= 1) {
    roots->push_back(
        {BuildSerialNode(source, options, tree, bucket_level, lo, hi),
         hi - lo});
    return;
  }
  const size_t left_fanout = (fanout + 1) / 2;
  size_t split = lo + static_cast<size_t>(std::llround(
                          static_cast<double>(left_fanout) * child_target));
  split = std::clamp(split, lo + 1, hi - 1);
  const size_t dim =
      source->ChooseSplitDim(lo, hi, options.split_strategy, depth);
  source->Partition(lo, hi, split, dim);
  SplitBucketRange(source, options, tree, bucket_level, lo, split, left_fanout,
                   child_target, depth + 1, roots);
  SplitBucketRange(source, options, tree, bucket_level, split, hi,
                   fanout - left_fanout, child_target, depth + 1, roots);
}

}  // namespace

void BuildBucketRoots(PointSource* source, const BulkLoadOptions& options,
                      RTree* tree, size_t bucket_level, size_t lo, size_t hi,
                      std::vector<AdaptiveRoot>* roots) {
  HDIDX_CHECK(hi > lo);
  const double scaled_cap = std::max(
      1.0, static_cast<double>(
               options.topology->SubtreeCapacity(bucket_level)) *
               options.scale);
  const size_t fanout = static_cast<size_t>(
      std::ceil(static_cast<double>(hi - lo) / scaled_cap - 1e-9));
  SplitBucketRange(source, options, tree, bucket_level, lo, hi, fanout,
                   scaled_cap, /*depth=*/0, roots);
}

}  // namespace internal

uint32_t InMemoryPointSource::BuildAdaptiveRoot(const BulkLoadOptions& options,
                                                size_t root_level,
                                                RTree* tree) {
  if (root_level == options.stop_level) {
    // Single-leaf tree: nothing to place buckets under.
    return PointSource::BuildAdaptiveRoot(options, root_level, tree);
  }
  const TreeTopology& topo = *options.topology;
  const size_t n = size();
  const size_t d = dim();
  const AdaptiveOptions& adaptive = options.adaptive;
  const size_t bucket_level = AdaptiveBucketLevel(
      topo, root_level, options.stop_level, adaptive.memory_points);

  // Sample pass: gather sample rows through the current permutation so the
  // draw is a function of (data, seed) alone.
  const size_t sample_size = std::clamp<size_t>(
      std::max<size_t>(adaptive.min_sample_points,
                       static_cast<size_t>(std::llround(
                           static_cast<double>(n) *
                           adaptive.sampling_fraction))),
      1, n);
  std::vector<size_t> sample_idx;
  common::Rng(adaptive.seed).SampleIndices(n, sample_size, &sample_idx);
  std::vector<float> sample(sample_size * d);
  for (size_t i = 0; i < sample_size; ++i) {
    const auto row = data_->row(order_[sample_idx[i]]);
    std::copy(row.begin(), row.end(), sample.begin() + i * d);
  }

  const double scaled_cap = std::max(
      1.0, static_cast<double>(topo.SubtreeCapacity(bucket_level)) *
               options.scale);
  // Aim buckets slightly under capacity so sampling error rarely overfills.
  const double bucket_target = std::max(1.0, scaled_cap * 0.7);
  const SplitPlan plan = SplitPlan::Build(sample.data(), sample_size, d,
                                          static_cast<double>(n),
                                          bucket_target);

  // Classification pass: one bucket id per point, plus bucket counts.
  std::vector<uint32_t> point_bucket(n);
  std::vector<size_t> counts(plan.num_buckets(), 0);
  for (size_t i = 0; i < n; ++i) {
    const size_t b = plan.BucketOf(data_->row(order_[i]).data());
    point_bucket[i] = static_cast<uint32_t>(b);
    ++counts[b];
  }

  // Stable counting sort of the permutation by bucket id: the stream order
  // the external pipeline's run gather produces (bucket-major, original
  // order within a bucket).
  std::vector<size_t> offsets(plan.num_buckets() + 1, 0);
  for (size_t b = 0; b < plan.num_buckets(); ++b) {
    offsets[b + 1] = offsets[b] + counts[b];
  }
  {
    std::vector<size_t> cursor(offsets.begin(), offsets.end() - 1);
    std::vector<uint32_t> sorted(n);
    for (size_t i = 0; i < n; ++i) {
      sorted[cursor[point_bucket[i]]++] = order_[i];
    }
    order_.swap(sorted);
  }

  // Slice the stream at exact root boundaries — not bucket boundaries, whose
  // arbitrary sizes would inflate the leaf count by one ceil per group —
  // and finish each group's subtree(s) with the serial recursion, then pack
  // the directory levels above the bucket roots.
  std::vector<internal::AdaptiveRoot> roots;
  const std::vector<size_t> bounds =
      AdaptiveGroupBoundaries(n, scaled_cap, adaptive.memory_points);
  for (size_t g = 0; g + 1 < bounds.size(); ++g) {
    internal::BuildBucketRoots(this, options, tree, bucket_level, bounds[g],
                               bounds[g + 1], &roots);
  }
  return PackUpperLevels(options, bucket_level, root_level, roots, tree);
}

RTree BulkLoad(PointSource* source, const BulkLoadOptions& options) {
  HDIDX_CHECK(options.topology != nullptr);
  HDIDX_CHECK(options.scale > 0.0);
  const size_t root_level =
      options.root_level != 0 ? options.root_level : options.topology->height();
  HDIDX_CHECK(options.stop_level >= 1 && options.stop_level <= root_level);

  RTree tree(source->dim());
  if (source->size() == 0) return tree;
  // Single-owner gate: only sources whose primitives are safe on disjoint
  // ranges may fan out. The external source in particular must keep its
  // order-sensitive I/O charging on one thread, serial-recursion order.
  const bool fan_out =
      options.exec != nullptr && options.exec->threads() > 1 &&
      source->concurrency() == PointSource::Concurrency::kDisjointRanges;
  uint32_t root;
  if (options.split_strategy == SplitStrategy::kAdaptiveSample) {
    // The adaptive pipeline is always serial (and bit-identical across
    // thread counts and read-ahead windows by construction); the source
    // drives its own sample-first build.
    root = source->BuildAdaptiveRoot(options, root_level, &tree);
  } else if (fan_out) {
    ParallelBuilder builder(source, options, &tree);
    root = builder.Build(root_level);
  } else {
    Builder builder(source, options, &tree);
    root = builder.BuildNode(root_level, 0, source->size());
  }
  tree.SetRoot(root);
  source->Finish();
  // Coverage audit: leaves are appended left to right, so their ranges must
  // tile [0, N) exactly — every point assigned to exactly one leaf.
  size_t covered = 0;
  for (const uint32_t id : tree.leaf_ids()) {
    const RTreeNode& leaf = tree.node(id);
    HDIDX_CHECK_OP(==, static_cast<size_t>(leaf.start), covered)
        << "leaf " << id << " leaves a gap or overlap in point coverage";
    covered += leaf.count;
  }
  HDIDX_CHECK_OP(==, covered, source->size())
      << "leaves cover the wrong number of points";
  return tree;
}

RTree BulkLoadInMemory(const data::Dataset& data,
                       const BulkLoadOptions& options) {
  InMemoryPointSource source(&data);
  RTree tree = BulkLoad(&source, options);
  tree.SetOrder(source.TakeOrder());
  return tree;
}

}  // namespace hdidx::index
