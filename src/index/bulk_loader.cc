#include "index/bulk_loader.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/stats.h"

namespace hdidx::index {

size_t PointSource::ChooseSplitDim(size_t lo, size_t hi,
                                   SplitStrategy strategy, size_t depth) {
  switch (strategy) {
    case SplitStrategy::kMaxVariance:
      return MaxVarianceDim(lo, hi);
    case SplitStrategy::kMaxExtent:
      return ComputeBox(lo, hi).LongestDimension();
    case SplitStrategy::kRoundRobin:
      return depth % dim();
  }
  return MaxVarianceDim(lo, hi);
}

InMemoryPointSource::InMemoryPointSource(const data::Dataset* data)
    : data_(data), order_(data->size()) {
  std::iota(order_.begin(), order_.end(), 0u);
}

size_t InMemoryPointSource::MaxVarianceDim(size_t lo, size_t hi) {
  const size_t d = data_->dim();
  // Single pass accumulating sum and sum-of-squares per dimension.
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (size_t i = lo; i < hi; ++i) {
    const auto row = data_->row(order_[i]);
    for (size_t k = 0; k < d; ++k) {
      const double v = row[k];
      sum[k] += v;
      sum_sq[k] += v * v;
    }
  }
  const double n = static_cast<double>(hi - lo);
  size_t best = 0;
  double best_var = -1.0;
  for (size_t k = 0; k < d; ++k) {
    const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
    if (var > best_var) {
      best_var = var;
      best = k;
    }
  }
  return best;
}

void InMemoryPointSource::Partition(size_t lo, size_t hi, size_t pos,
                                    size_t split_dim) {
  HDIDX_CHECK(lo < pos && pos < hi);
  const data::Dataset& data = *data_;
  std::nth_element(order_.begin() + static_cast<ptrdiff_t>(lo),
                   order_.begin() + static_cast<ptrdiff_t>(pos),
                   order_.begin() + static_cast<ptrdiff_t>(hi),
                   [&data, split_dim](uint32_t a, uint32_t b) {
                     return data.row(a)[split_dim] < data.row(b)[split_dim];
                   });
}

geometry::BoundingBox InMemoryPointSource::ComputeBox(size_t lo, size_t hi) {
  geometry::BoundingBox box(data_->dim());
  for (size_t i = lo; i < hi; ++i) box.Extend(data_->row(order_[i]));
  return box;
}

namespace {

/// Recursive builder shared by all sources.
class Builder {
 public:
  Builder(PointSource* source, const BulkLoadOptions& options, RTree* tree)
      : source_(source), options_(options), tree_(tree) {}

  uint32_t BuildNode(size_t level, size_t lo, size_t hi) {
    HDIDX_CHECK(hi > lo);
    if (level == options_.stop_level) {
      return tree_->AddLeaf(source_->ComputeBox(lo, hi),
                            static_cast<uint32_t>(level),
                            static_cast<uint32_t>(lo),
                            static_cast<uint32_t>(hi - lo));
    }
    // Scaled capacity of one child subtree. A mini-index sample shrinks the
    // targets by `scale` so fanouts replicate the full tree. Clamped to one
    // point: a page of the mini-index must hold at least one point
    // (Section 3.3's bound: the sample rate can never be below 1/C).
    const double child_target = std::max(
        1.0, static_cast<double>(options_.topology->SubtreeCapacity(level - 1)) *
                 options_.scale);
    const size_t fanout = static_cast<size_t>(
        std::ceil(static_cast<double>(hi - lo) / child_target - 1e-9));
    std::vector<uint32_t> children;
    children.reserve(fanout);
    SplitRange(level, lo, hi, fanout, child_target, /*depth=*/0, &children);
    // Fanout audit: the recursive split may merge degenerate partitions but
    // can never manufacture extra children, and a non-empty range always
    // yields at least one.
    HDIDX_CHECK(!children.empty() && children.size() <= fanout)
        << "level " << level << " produced " << children.size()
        << " children for target fanout " << fanout;
    return tree_->AddDirectory(static_cast<uint32_t>(level),
                               std::move(children));
  }

 private:
  /// Recursive binary maximum-variance split of [lo, hi) into `fanout`
  /// partitions of `child_target` points (the last takes the remainder),
  /// then recurses one level down on each partition.
  void SplitRange(size_t level, size_t lo, size_t hi, size_t fanout,
                  double child_target, size_t depth,
                  std::vector<uint32_t>* children) {
    if (fanout <= 1 || hi - lo <= 1) {
      children->push_back(BuildNode(level - 1, lo, hi));
      return;
    }
    const size_t left_fanout = (fanout + 1) / 2;
    size_t split = lo + static_cast<size_t>(std::llround(
                            static_cast<double>(left_fanout) * child_target));
    // Keep both sides non-empty even under aggressive rounding.
    split = std::clamp(split, lo + 1, hi - 1);
    const size_t dim =
        source_->ChooseSplitDim(lo, hi, options_.split_strategy, depth);
    source_->Partition(lo, hi, split, dim);
    SplitRange(level, lo, split, left_fanout, child_target, depth + 1,
               children);
    SplitRange(level, split, hi, fanout - left_fanout, child_target,
               depth + 1, children);
  }

  PointSource* source_;
  const BulkLoadOptions& options_;
  RTree* tree_;
};

}  // namespace

RTree BulkLoad(PointSource* source, const BulkLoadOptions& options) {
  HDIDX_CHECK(options.topology != nullptr);
  HDIDX_CHECK(options.scale > 0.0);
  const size_t root_level =
      options.root_level != 0 ? options.root_level : options.topology->height();
  HDIDX_CHECK(options.stop_level >= 1 && options.stop_level <= root_level);

  RTree tree(source->dim());
  if (source->size() == 0) return tree;
  Builder builder(source, options, &tree);
  const uint32_t root = builder.BuildNode(root_level, 0, source->size());
  tree.SetRoot(root);
  source->Finish();
  // Coverage audit: leaves are appended left to right, so their ranges must
  // tile [0, N) exactly — every point assigned to exactly one leaf.
  size_t covered = 0;
  for (const uint32_t id : tree.leaf_ids()) {
    const RTreeNode& leaf = tree.node(id);
    HDIDX_CHECK_OP(==, static_cast<size_t>(leaf.start), covered)
        << "leaf " << id << " leaves a gap or overlap in point coverage";
    covered += leaf.count;
  }
  HDIDX_CHECK_OP(==, covered, source->size())
      << "leaves cover the wrong number of points";
  return tree;
}

RTree BulkLoadInMemory(const data::Dataset& data,
                       const BulkLoadOptions& options) {
  InMemoryPointSource source(&data);
  RTree tree = BulkLoad(&source, options);
  tree.SetOrder(source.TakeOrder());
  return tree;
}

}  // namespace hdidx::index
