#ifndef HDIDX_INDEX_TREE_IO_H_
#define HDIDX_INDEX_TREE_IO_H_

#include <optional>
#include <string>

#include "index/rtree.h"

namespace hdidx::index {

/// Binary serialization of a bulk-loaded tree: header (magic "HDRT",
/// version, dimensionality, node/leaf counts, root id), the point
/// permutation, then per node its level, leaf range and children with the
/// MBR coordinates. A saved index can be reloaded and queried without
/// rebuilding — the missing piece between "predict the layout" and "ship
/// the layout".
///
/// Writes `tree` to `path`; false and `*error` on failure.
bool WriteTree(const RTree& tree, const std::string& path,
               std::string* error);

/// Reads a tree written by WriteTree. std::nullopt and `*error` on failure
/// (bad magic, truncation, inconsistent counts).
std::optional<RTree> ReadTree(const std::string& path, std::string* error);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_TREE_IO_H_
