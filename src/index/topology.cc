#include "index/topology.h"

#include <limits>

#include "common/check.h"

namespace hdidx::index {

TreeTopology::TreeTopology(size_t num_points, size_t data_capacity,
                           size_t dir_capacity)
    : num_points_(num_points),
      data_capacity_(data_capacity),
      dir_capacity_(dir_capacity) {
  HDIDX_CHECK(num_points > 0);
  HDIDX_CHECK(data_capacity > 0);
  HDIDX_CHECK(dir_capacity >= 2);
  height_ = 1;
  // Grow until a single subtree can hold all points, guarding overflow for
  // huge dir capacities.
  size_t cap = data_capacity_;
  while (cap < num_points_) {
    HDIDX_CHECK(cap <= std::numeric_limits<size_t>::max() / dir_capacity_);
    cap *= dir_capacity_;
    ++height_;
  }
}

TreeTopology TreeTopology::FromDisk(size_t num_points, size_t dim,
                                    const io::DiskModel& disk) {
  // One data entry: dim float coordinates plus a 4-byte record id. One
  // directory entry: an MBR (2*dim floats) plus a 4-byte child pointer.
  const size_t data_entry_bytes = dim * sizeof(float) + 4;
  const size_t dir_entry_bytes = 2 * dim * sizeof(float) + 4;
  size_t data_cap = disk.page_bytes / data_entry_bytes;
  size_t dir_cap = disk.page_bytes / dir_entry_bytes;
  if (data_cap < 1) data_cap = 1;
  if (dir_cap < 2) dir_cap = 2;
  return TreeTopology(num_points, data_cap, dir_cap);
}

size_t TreeTopology::SubtreeCapacity(size_t level) const {
  HDIDX_CHECK(level >= 1 && level <= height_);
  size_t cap = data_capacity_;
  for (size_t l = 2; l <= level; ++l) cap *= dir_capacity_;
  return cap;
}

size_t TreeTopology::NodesAtLevel(size_t level) const {
  const size_t cap = SubtreeCapacity(level);
  return (num_points_ + cap - 1) / cap;
}

double TreeTopology::PointsPerSubtree(size_t level) const {
  return static_cast<double>(num_points_) /
         static_cast<double>(NodesAtLevel(level));
}

double TreeTopology::EffectiveDirCapacity() const {
  if (height_ < 2) return static_cast<double>(data_capacity_);
  // Average fanout over all directory nodes: total children / total parents.
  size_t children = 0;
  size_t parents = 0;
  for (size_t level = 2; level <= height_; ++level) {
    children += NodesAtLevel(level - 1);
    parents += NodesAtLevel(level);
  }
  return static_cast<double>(children) / static_cast<double>(parents);
}

size_t TreeTopology::FanoutFor(size_t level, size_t points_in_subtree) const {
  HDIDX_CHECK(level >= 2);
  const size_t child_cap = SubtreeCapacity(level - 1);
  return (points_in_subtree + child_cap - 1) / child_cap;
}

}  // namespace hdidx::index
