#ifndef HDIDX_INDEX_EXTERNAL_BUILD_H_
#define HDIDX_INDEX_EXTERNAL_BUILD_H_

#include "index/bulk_loader.h"
#include "index/rtree.h"
#include "index/topology.h"
#include "io/io_stats.h"
#include "io/paged_file.h"

namespace hdidx::index {

/// Options for the simulated on-disk bulk load.
struct ExternalBuildOptions {
  /// Topology of the index being built.
  const TreeTopology* topology = nullptr;
  /// Memory size M in points: the working buffer for in-memory finishing
  /// and the chunk size of the external passes. Must be at least the data
  /// page capacity.
  size_t memory_points = 0;
  /// How the external partitioning works (see SplitStrategy). The classic
  /// strategies drive the multi-pass external quickselect; kAdaptiveSample
  /// replaces it with one sample pass choosing the whole split-plane tree
  /// and one streaming classification pass with async read-ahead.
  SplitStrategy split_strategy = SplitStrategy::kMaxVariance;
  /// Tuning for kAdaptiveSample (ignored otherwise). BuildOnDisk overrides
  /// adaptive.memory_points with `memory_points` so bucket placement always
  /// matches the actual window.
  AdaptiveOptions adaptive;
  /// Execution resources. For the build *order* this is a no-op — the
  /// external point source declares itself single-owner
  /// (PointSource::Concurrency), so BulkLoad never fans it out: every
  /// PagedFile access — whose seek charging is order-sensitive — happens on
  /// the calling thread in serial-recursion order, and the resulting
  /// IoStats are identical for every thread count. kAdaptiveSample
  /// additionally borrows the context's ThreadPool for read-ahead prefetch,
  /// which by the ReadAheadSource contract changes wall-clock overlap only,
  /// never the accounting.
  const common::ExecutionContext* exec = nullptr;
};

/// Per-phase attribution of every seek and transfer an external build
/// charges. The phases partition the build's total I/O exactly — see
/// AuditExternalBuildIo — so a new code path that charges (or forgets to
/// charge) I/O outside its phase is caught at build time, not in a drifted
/// benchmark three PRs later.
struct ExternalBuildIo {
  /// Sample pass over the file choosing the split-plane tree
  /// (kAdaptiveSample only; zero otherwise).
  io::IoStats sample;
  /// External repartitioning: quickselect classification passes through the
  /// scratch file (classic strategies) or the streaming classification,
  /// per-bucket staging, and gather reads (kAdaptiveSample).
  io::IoStats partition;
  /// In-memory finishing: M-point window loads and the leaf-order
  /// write-back of finished subtrees.
  io::IoStats finish;
  /// The final sequential write of all directory pages.
  io::IoStats directory;

  io::IoStats Total() const { return sample + partition + finish + directory; }
};

/// CHECK-fails unless `phases` exactly accounts for `observed` (the total
/// I/O delta measured on the build's files plus the synthesized directory
/// write): each phase must be internally valid (IoStats::Validate) and the
/// phase sum must equal the observation to the seek and the transfer.
/// BuildOnDisk runs this on every build; exposed so tests can feed it
/// corrupted tallies and pin the failure mode.
void AuditExternalBuildIo(const ExternalBuildIo& phases,
                          const io::IoStats& observed);

/// Result of an on-disk bulk load: the finished tree plus every seek and
/// page transfer the construction incurred (data passes, external
/// partitioning through the scratch file, and leaf write-back).
struct ExternalBuildResult {
  RTree tree;
  io::IoStats io;
  /// Where `io` came from, phase by phase (audited: phases sum to io).
  ExternalBuildIo phases;
  /// Fraction of streaming-classification chunks whose prefetch had already
  /// completed when the consumer needed them (kAdaptiveSample with a
  /// read-ahead window and a 2+ thread pool; 0 otherwise). Advisory
  /// wall-clock measure — never part of the simulated cost.
  double overlap_ratio = 0.0;
};

/// Bulk-loads the paper's "on-disk index tree" (Section 4.1) over `file`,
/// charging all I/O.
///
/// This runs the same level-wise VAMSplit algorithm as the in-memory loader
/// through a PointSource that owns an M-point memory window: ranges larger
/// than M are partitioned by external quickselect (sequential classification
/// passes through a scratch file, pivot = median of the first chunk, with a
/// midrange-pivot fallback against duplicate-heavy dimensions); once a range
/// fits in M points it is read once, the whole subtree under it is finished
/// in memory, and the points are written back in leaf order — the data pages
/// of a bulk-loaded R-tree are exactly this final point order. Directory
/// pages are charged as one sequential write at the end.
///
/// With split_strategy == kAdaptiveSample the quickselect passes are
/// replaced by the sample-first pipeline (index/adaptive_build.h): a sample
/// pass chooses every split plane up front, a single streaming pass —
/// prefetched by io/read_ahead.h — classifies each page's points into
/// per-bucket staging runs on the scratch file, and the classified stream
/// is gathered into the window one memory-sized group of whole bucket-level
/// roots at a time and finished in memory. The whole build touches the data
/// a constant number of times instead of once per quickselect pass per
/// level.
///
/// The file's contents are physically reordered into leaf order; the
/// returned tree's order() is the identity.
///
/// This is the measurement baseline every prediction is compared against:
/// its I/O cost is the paper's cost_OnDisk, and queries measured on the
/// returned tree are the ground truth for relative errors.
ExternalBuildResult BuildOnDisk(io::PagedFile* file,
                                const ExternalBuildOptions& options);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_EXTERNAL_BUILD_H_
