#ifndef HDIDX_INDEX_EXTERNAL_BUILD_H_
#define HDIDX_INDEX_EXTERNAL_BUILD_H_

#include "index/bulk_loader.h"
#include "index/rtree.h"
#include "index/topology.h"
#include "io/io_stats.h"
#include "io/paged_file.h"

namespace hdidx::index {

/// Options for the simulated on-disk bulk load.
struct ExternalBuildOptions {
  /// Topology of the index being built.
  const TreeTopology* topology = nullptr;
  /// Memory size M in points: the working buffer for in-memory finishing
  /// and the chunk size of the external passes. Must be at least the data
  /// page capacity.
  size_t memory_points = 0;
  /// Execution resources, accepted for interface symmetry with the
  /// in-memory build. The external point source declares itself
  /// single-owner (PointSource::Concurrency), so BulkLoad never fans it
  /// out: every PagedFile access — whose seek charging is order-sensitive —
  /// happens on the calling thread in serial-recursion order, and the
  /// resulting IoStats are identical for every thread count.
  const common::ExecutionContext* exec = nullptr;
};

/// Result of an on-disk bulk load: the finished tree plus every seek and
/// page transfer the construction incurred (data passes, external
/// partitioning through the scratch file, and leaf write-back).
struct ExternalBuildResult {
  RTree tree;
  io::IoStats io;
};

/// Bulk-loads the paper's "on-disk index tree" (Section 4.1) over `file`,
/// charging all I/O.
///
/// This runs the same level-wise VAMSplit algorithm as the in-memory loader
/// through a PointSource that owns an M-point memory window: ranges larger
/// than M are partitioned by external quickselect (sequential classification
/// passes through a scratch file, pivot = median of the first chunk, with a
/// midrange-pivot fallback against duplicate-heavy dimensions); once a range
/// fits in M points it is read once, the whole subtree under it is finished
/// in memory, and the points are written back in leaf order — the data pages
/// of a bulk-loaded R-tree are exactly this final point order. Directory
/// pages are charged as one sequential write at the end.
///
/// The file's contents are physically reordered into leaf order; the
/// returned tree's order() is the identity.
///
/// This is the measurement baseline every prediction is compared against:
/// its I/O cost is the paper's cost_OnDisk, and queries measured on the
/// returned tree are the ground truth for relative errors.
ExternalBuildResult BuildOnDisk(io::PagedFile* file,
                                const ExternalBuildOptions& options);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_EXTERNAL_BUILD_H_
