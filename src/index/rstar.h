#ifndef HDIDX_INDEX_RSTAR_H_
#define HDIDX_INDEX_RSTAR_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geometry/bounding_box.h"
#include "index/rtree.h"

namespace hdidx::index {

/// A dynamic R*-tree (Beckmann, Kriegel, Schneider, Seeger [3]): one-by-one
/// insertion with ChooseSubtree, the topological margin/overlap split, and
/// forced reinsertion.
///
/// The paper's prediction technique covers "all index structures that
/// organize the data in fixed-capacity pages" (Section 4.7), naming the
/// R*-tree first. This class provides the dynamically built member of that
/// family: the same sampling model predicts it by running the *same
/// insertion algorithm* on the sample with proportionally reduced page
/// capacity (core/dynamic_mini_index.h), exactly as Section 3.1 prescribes
/// ("the bulk-loading algorithm of a given index structure can be simply
/// reused" — here, the insertion algorithm).
class RStarTree {
 public:
  struct Options {
    /// Maximum entries per data page (C_max,data).
    size_t max_data_entries = 33;
    /// Maximum entries per directory page (C_max,dir).
    size_t max_dir_entries = 16;
    /// Minimum fill m as a fraction of the maximum (R* default 40%).
    double min_fill = 0.4;
    /// Fraction of entries force-reinserted on first overflow (R* p = 30%).
    double reinsert_fraction = 0.3;
    /// X-tree extension (Berchtold, Keim, Kriegel [7]): when even the best
    /// split of a directory node leaves more than this fraction of its
    /// child entries straddling both halves, keep the node as a *supernode*
    /// spanning several pages instead. Negative disables (plain R*-tree);
    /// the X-tree paper's MAX_OVERLAP is 0.2.
    double supernode_overlap_threshold = -1.0;
  };

  /// Creates an empty tree over `data` (borrowed; must outlive the tree).
  RStarTree(const data::Dataset* data, const Options& options);

  /// Inserts dataset row `row`.
  void Insert(uint32_t row);

  /// Convenience: inserts rows 0..n-1 in order.
  static RStarTree BuildByInsertion(const data::Dataset& data,
                                    const Options& options);

  size_t size() const { return num_points_; }
  size_t height() const { return height_; }
  size_t num_leaves() const;

  /// Snapshot into the query-able bulk-tree representation: node levels are
  /// assigned leaf = 1, and leaf point ids become the RTree's order().
  RTree ToRTree() const;

  /// Validates internal invariants (entry counts, box containment);
  /// returns false and stops at the first violation. For tests.
  bool CheckInvariants() const;

  /// Number of supernodes currently in the tree (X-tree mode).
  size_t CountSupernodes() const;

 private:
  struct Node {
    geometry::BoundingBox box;
    bool is_leaf = true;
    /// X-tree supernode: exempt from splitting, spans several pages.
    bool supernode = false;
    /// Row ids (leaf) or node ids (directory).
    std::vector<uint32_t> entries;

    explicit Node(size_t dim) : box(dim) {}
  };

  size_t MaxEntries(const Node& node) const {
    if (node.supernode) return static_cast<size_t>(-1);
    return node.is_leaf ? options_.max_data_entries
                        : options_.max_dir_entries;
  }

  geometry::BoundingBox EntryBox(const Node& node, uint32_t entry) const;
  void RecomputeBox(uint32_t node_id);

  /// R* ChooseSubtree: descend from the root to the node at `target_level`
  /// (counted with leaves at level 1) best suited for `box`, recording the
  /// path in *path.
  uint32_t ChooseSubtree(const geometry::BoundingBox& box, size_t target_level,
                         std::vector<uint32_t>* path);

  /// Inserts an entry (row id or node id boxed by `box`) at `target_level`,
  /// handling overflow via reinsertion or split.
  void InsertEntry(const geometry::BoundingBox& box, uint32_t entry,
                   size_t target_level, bool allow_reinsert);

  /// Handles an overflowing node on `path` (index `path_pos`): forced
  /// reinsert on the first overflow at that level of this insertion, split
  /// otherwise. May propagate upward.
  void OverflowTreatment(std::vector<uint32_t> path, size_t path_pos,
                         size_t level, bool allow_reinsert);

  /// R* topological split of `node_id`; the new sibling's id is returned.
  /// With supernodes enabled and a directory split whose halves overlap
  /// beyond the threshold, the node is marked supernode instead and
  /// kNoSplit is returned.
  static constexpr uint32_t kNoSplit = static_cast<uint32_t>(-1);
  uint32_t SplitNode(uint32_t node_id);

  /// Removes the `count` entries of `node_id` farthest from its center and
  /// reinserts them (close-reinsert order).
  void ForcedReinsert(uint32_t node_id, size_t level,
                      std::vector<uint32_t> path, size_t path_pos);

  size_t LevelOf(size_t depth) const { return height_ - depth; }

  const data::Dataset* data_;
  Options options_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
  size_t height_ = 1;
  size_t num_points_ = 0;
  /// Levels that already used forced reinsertion during the current
  /// top-level Insert (R* allows it once per level per insertion).
  std::vector<bool> reinserted_at_level_;
};

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_RSTAR_H_
