#ifndef HDIDX_INDEX_KNN_H_
#define HDIDX_INDEX_KNN_H_

#include <cstddef>
#include <queue>
#include <span>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "data/dataset.h"
#include "index/rtree.h"
#include "io/io_stats.h"

namespace hdidx::index {

/// Bounded max-heap of the k smallest distances seen so far. The workload
/// scan streams the whole dataset once while feeding one heap per query —
/// this is the paper's "full scan of the data to compute the query shapes".
class KnnHeap {
 public:
  explicit KnnHeap(size_t k);

  /// Offers a squared distance.
  void Push(double squared_distance);

  /// True once k distances have been collected.
  bool full() const { return heap_.size() == k_; }

  /// Current k-th smallest squared distance (the largest in the heap).
  /// Only meaningful when full(); +inf otherwise.
  double KthSquared() const;

  /// Current k-th smallest distance (sqrt of KthSquared()).
  double Kth() const;

  size_t k() const { return k_; }

 private:
  size_t k_;
  std::priority_queue<double> heap_;  // max-heap of squared distances
};

/// Bounded max-heap of the k nearest (squared distance, row) pairs under
/// pair ordering — rows are unique, so retention and final order are
/// identical to sorting all pairs and truncating to k (the tie-break the
/// tree search's candidate list used). Replaces the per-leaf
/// append-sort-truncate of the old TreeKnnSearch loop.
class KnnPairHeap {
 public:
  explicit KnnPairHeap(size_t k);

  /// Offers one candidate.
  void Push(double squared_distance, size_t row);

  /// True once k candidates have been collected.
  bool full() const { return heap_.size() == k_; }

  size_t size() const { return heap_.size(); }

  /// Current k-th smallest squared distance; +inf until full() — the same
  /// pruning bound the sorted candidate list exposed as candidates[k-1].
  double KthSquared() const;

  /// The retained pairs in ascending (distance, row) order; consumes the
  /// heap.
  std::vector<std::pair<double, size_t>> TakeSortedAscending();

 private:
  size_t k_;
  std::priority_queue<std::pair<double, size_t>> heap_;
};

/// Exact distance from `query` to its k-th nearest neighbor in `data` by
/// linear scan. Points at squared distance <= `exclude_within_sq` are
/// skipped — pass 0.0 to exclude the query point itself when it is drawn
/// from the dataset (the paper's density-biased queries), or a negative
/// value to keep everything.
double ExactKthDistance(const data::Dataset& data, std::span<const float> query,
                        size_t k, double exclude_within_sq);

/// Exact k-th-nearest-neighbor distance excluding exactly one row — the
/// query's own row when queries are drawn from the data. Unlike passing
/// exclude_within_sq=0.0 to ExactKthDistance (which drops *every*
/// zero-distance point), duplicates of the query point still count as
/// neighbors, so on datasets with repeated points this matches the
/// semantics of the accounted workload scan. Pass exclude_row >= data.size()
/// to exclude nothing.
double ExactKthDistanceExcludingRow(const data::Dataset& data,
                                    std::span<const float> query, size_t k,
                                    size_t exclude_row);

/// Exact k nearest neighbor row indices (ascending by distance) by linear
/// scan; used by tests to validate the tree-based search.
std::vector<size_t> ExactKnn(const data::Dataset& data,
                             std::span<const float> query, size_t k);

/// Result of running a tree-based k-NN search.
struct TreeKnnResult {
  /// Row indices of the k nearest points, ascending by distance.
  std::vector<size_t> neighbors;
  /// Distance to the k-th neighbor.
  double kth_distance = 0.0;
  /// Pages read: leaves and directory nodes visited by the best-first
  /// search (Hjaltason-Samet optimal algorithm).
  RTree::AccessCount accesses;
};

/// Optimal best-first k-NN search on a bulk-loaded tree. `data` must be the
/// dataset the tree was built from. Used both as a correctness oracle
/// consumer (tests compare it against ExactKnn) and to validate that the
/// pages an optimal search reads are exactly those intersecting the k-NN
/// sphere.
TreeKnnResult TreeKnnSearch(const RTree& tree, const data::Dataset& data,
                            std::span<const float> query, size_t k);

/// Per-query page-access measurement for a batch of query spheres: for each
/// query i, the number of tree leaves intersecting the sphere
/// (centers.row(i), radii[i]). This is the paper's measured/predicted "leaf
/// page accesses" quantity. If `io` is non-null, every page access (leaf
/// and directory) is additionally charged as one random read (seek +
/// transfer), matching the paper's observation that nearly all query-time
/// accesses are random.
///
/// Queries are counted concurrently on `ctx`; per-query counts are written
/// to independent slots and the I/O counters are reduced in query order, so
/// the result (including `io`) is bit-identical for every thread count.
std::vector<double> CountSphereLeafAccesses(
    const RTree& tree, const data::Dataset& centers,
    const std::vector<double>& radii, io::IoStats* io,
    const common::ExecutionContext& ctx = common::DefaultExecutionContext());

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_KNN_H_
