#ifndef HDIDX_INDEX_ADAPTIVE_BUILD_H_
#define HDIDX_INDEX_ADAPTIVE_BUILD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "index/bulk_loader.h"
#include "index/rtree.h"
#include "index/topology.h"

namespace hdidx::index {

/// Pieces of SplitStrategy::kAdaptiveSample shared by the in-memory and
/// external pipelines (the sample-first bulk loading of arXiv 2409.09447):
/// a split-plane tree chosen from a sample, the bucket-level placement, the
/// slicing of the classified stream into memory-sized groups of whole
/// roots, and the packing of the upper directory levels over finished
/// bucket roots. Everything here is a
/// pure deterministic function of its inputs — no threads, no I/O — which
/// is what makes adaptive layouts bit-identical across thread counts and
/// read-ahead windows.

/// The level whose subtrees the streaming pass classifies as whole units:
/// the largest level in [stop_level, root_level - 1] whose UNSCALED subtree
/// capacity is at most memory_points / 2, so a full bucket (plus staging)
/// fits the external build's window; stop_level if even the leaf capacity
/// exceeds that, and root_level - 1 when memory_points is 0 (unconstrained).
/// Comparing unscaled capacities makes the choice sampling-fraction
/// invariant — a mini-index and the full build agree on the level.
/// Requires stop_level < root_level.
size_t AdaptiveBucketLevel(const TreeTopology& topology, size_t root_level,
                           size_t stop_level, size_t memory_points);

/// Upper bound on how many level-`bucket_level` roots a subtree rooted at
/// `level` can hold: dir_capacity^(level - bucket_level), saturated at
/// `cap` to keep the power finite.
size_t MaxRootsUnder(const TreeTopology& topology, size_t level,
                     size_t bucket_level, size_t cap);

/// A binary tree of split planes chosen from a sample: each internal node
/// routes a point left iff row[dim] < threshold (ties right), each leaf is
/// an output bucket. Bucket ids number the leaves left to right, so points
/// ordered by bucket id are ordered along every split plane above them.
class SplitPlan {
 public:
  /// Chooses the plan from `sample_count` row-major sample rows standing
  /// for `total_points` actual points. Splits recurse while a cell's
  /// estimated point count exceeds `bucket_target`: the split dimension is
  /// the sample subset's max-variance dimension (adaptive to skew), the
  /// threshold the subset value at the VAMSplit rank (left fanout over
  /// fanout). A cell whose values cannot be separated (all equal along the
  /// chosen dimension) becomes a bucket as-is — the build's overfull-bucket
  /// path absorbs whatever lands there.
  HDIDX_BUILD_ONLY static SplitPlan Build(const float* sample,
                                          size_t sample_count, size_t dim,
                                          double total_points,
                                          double bucket_target);

  size_t num_buckets() const { return num_buckets_; }

  /// The bucket `row` (dim floats) classifies into.
  size_t BucketOf(const float* row) const {
    int32_t node = 0;
    while (nodes_[static_cast<size_t>(node)].bucket < 0) {
      const Node& n = nodes_[static_cast<size_t>(node)];
      node = row[n.dim] < n.threshold ? n.left : n.right;
    }
    return static_cast<size_t>(nodes_[static_cast<size_t>(node)].bucket);
  }

 private:
  struct Node {
    uint32_t dim = 0;
    float threshold = 0.0f;
    int32_t left = -1;
    int32_t right = -1;
    int32_t bucket = -1;  // >= 0 marks a leaf
  };

  struct BuildState;
  static int32_t BuildCell(BuildState* state, std::vector<uint32_t>* subset,
                           double est_points);

  std::vector<Node> nodes_;
  size_t num_buckets_ = 0;
};

/// Slices the classified (bucket-ordered) point stream into build groups of
/// whole bucket-level roots. Root k spans stream positions
/// [llround(k * bucket_capacity), llround((k+1) * bucket_capacity)) — the
/// VAMSplit cut rule — so the total root count is exactly
/// ceil(total_points / bucket_capacity) and leaf counts match a monolithic
/// build; each group holds max(1, floor(memory_points / bucket_capacity))
/// consecutive roots so a whole group fits the external build's window
/// (memory_points == 0 means a single group). Group boundaries may land
/// inside a classified bucket; points within one bucket carry no order, so
/// a positional cut there is as good as any. Returns the boundary
/// positions: 0 = b[0] < b[1] < ... < b.back() = total_points, one group
/// per adjacent pair. Requires total_points >= 1 and bucket_capacity >= 1.
std::vector<size_t> AdaptiveGroupBoundaries(size_t total_points,
                                            double bucket_capacity,
                                            size_t memory_points);

/// Builds the directory levels (bucket_level, root_level] over the finished
/// bucket roots and returns the root's node id. Fanouts follow the VAMSplit
/// rule on point counts — ceil(points / scaled cap(level - 1)) — clamped to
/// what the root counts make feasible (every child at least one root, at
/// most dir_capacity^depth of them); cuts land on the root boundary closest
/// to the balanced point share. Nodes are emitted in the serial post-order,
/// after the bucket subtrees, so leaf order is untouched.
HDIDX_BUILD_ONLY uint32_t PackUpperLevels(
    const BulkLoadOptions& options, size_t bucket_level, size_t root_level,
    const std::vector<internal::AdaptiveRoot>& roots, RTree* tree);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_ADAPTIVE_BUILD_H_
