#ifndef HDIDX_INDEX_SSTREE_H_
#define HDIDX_INDEX_SSTREE_H_

#include <vector>

#include "data/dataset.h"
#include "geometry/bounding_sphere.h"
#include "index/rtree.h"

namespace hdidx::index {

/// SS-tree page view over a bulk-loaded tree.
///
/// The SS-tree (White & Jain [35]) partitions data exactly like the
/// VAMSplit family — maximum-variance splits at capacity multiples — but
/// bounds each page with a centroid sphere instead of an MBR. Since the
/// partitioning is shared, an SS-tree layout is the bulk loader's tree with
/// the leaf regions recomputed as spheres. Section 4.7 lists the SS-tree
/// among the structures the sampling prediction covers; this module is that
/// coverage.
///
/// Computes the bounding sphere of every leaf of `tree` (which must have
/// been built over `data`).
std::vector<geometry::BoundingSphere> ComputeLeafSpheres(
    const RTree& tree, const data::Dataset& data);

/// Number of leaf spheres intersecting the query sphere (center, radius) —
/// the SS-tree analogue of leaf page accesses for an NN query.
size_t CountSphereAccesses(
    const std::vector<geometry::BoundingSphere>& leaves,
    std::span<const float> center, double radius);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_SSTREE_H_
