#include "index/external_build.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/random.h"
#include "index/adaptive_build.h"
#include "io/read_ahead.h"

namespace hdidx::index {

namespace {

/// PointSource over a simulated on-disk file with an M-point memory window.
///
/// Deliberately keeps the base class's Concurrency::kSingleOwner: the
/// window buffer, the scratch file and the charged PagedFile are shared,
/// order-sensitive state (a seek is charged only on non-adjacent access,
/// and window loads/flushes depend on the access sequence), so the
/// simulated disk costs are the paper's numbers only under the serial
/// depth-first recursion. BulkLoad's single-owner gate guarantees that no
/// execution context can fan this source out.
///
/// Every seek and transfer the source charges is also attributed to a phase
/// of ExternalBuildIo by RAII scopes around the charging code paths;
/// attribution goes to the outermost scope (the phase that *triggered* the
/// I/O — e.g. a window flush forced by an external select lands in
/// `partition`). BuildOnDisk audits that the phases sum exactly to the
/// observed I/O delta.
class ExternalPointSource : public PointSource {
 public:
  ExternalPointSource(io::PagedFile* file, size_t memory_points)
      : file_(file),
        scratch_(file->dim(), file->disk()),
        memory_points_(memory_points),
        dim_(file->dim()) {
    HDIDX_CHECK(memory_points_ >= 1);
    buffer_.reserve(memory_points_ * dim_);
  }

  size_t dim() const override { return dim_; }
  size_t size() const override { return file_->size(); }

  size_t MaxVarianceDim(size_t lo, size_t hi) override {
    if (WindowCovers(lo, hi) || hi - lo <= memory_points_) {
      PhaseScope scope(this, &phases_.finish);
      EnsureWindow(lo, hi);
      return MaxVarianceOfWindow(lo, hi);
    }
    // Chunked sequential variance scan over the file.
    PhaseScope scope(this, &phases_.partition);
    file_->ChargeAccess(lo, hi - lo);
    std::vector<double> sum(dim_, 0.0), sum_sq(dim_, 0.0);
    const auto raw = file_->raw();
    for (size_t i = lo; i < hi; ++i) {
      const float* row = raw.data() + i * dim_;
      for (size_t k = 0; k < dim_; ++k) {
        const double v = row[k];
        sum[k] += v;
        sum_sq[k] += v * v;
      }
    }
    const double n = static_cast<double>(hi - lo);
    size_t best = 0;
    double best_var = -1.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
      if (var > best_var) {
        best_var = var;
        best = k;
      }
    }
    return best;
  }

  void Partition(size_t lo, size_t hi, size_t pos, size_t split_dim) override {
    HDIDX_CHECK(lo < pos && pos < hi);
    if (!WindowCovers(lo, hi) && hi - lo > memory_points_) {
      PhaseScope scope(this, &phases_.partition);
      ExternalSelect(&lo, &hi, pos, split_dim);
      // The select leaves the range oversized only when every value along
      // split_dim is (effectively) equal; any ordering is then already a
      // valid partition, and loading the oversized range would break the
      // M-point memory model. The NDEBUG seed build used to do exactly
      // that — this early return keeps EnsureWindow's invariant honest.
      if (hi - lo > memory_points_) return;
      if (hi - lo <= 1 || pos <= lo || pos >= hi) return;
    }
    {
      PhaseScope scope(this, &phases_.finish);
      EnsureWindow(lo, hi);
    }
    const float* buf = buffer_.data();
    const size_t d = dim_;
    std::nth_element(
        perm_.begin() + static_cast<ptrdiff_t>(lo - window_lo_),
        perm_.begin() + static_cast<ptrdiff_t>(pos - window_lo_),
        perm_.begin() + static_cast<ptrdiff_t>(hi - window_lo_),
        [buf, d, split_dim](uint32_t a, uint32_t b) {
          return buf[a * d + split_dim] < buf[b * d + split_dim];
        });
  }

  geometry::BoundingBox ComputeBox(size_t lo, size_t hi) override {
    PhaseScope scope(this, &phases_.finish);
    if (WindowCovers(lo, hi) || hi - lo <= memory_points_) {
      EnsureWindow(lo, hi);
      geometry::BoundingBox box(dim_);
      for (size_t i = lo; i < hi; ++i) {
        box.Extend({buffer_.data() + perm_[i - window_lo_] * dim_, dim_});
      }
      return box;
    }
    // Oversized leaf (only possible for upper-tree stop levels): charged
    // sequential scan.
    file_->ChargeAccess(lo, hi - lo);
    const auto raw = file_->raw();
    geometry::BoundingBox box(dim_);
    for (size_t i = lo; i < hi; ++i) {
      box.Extend(raw.subspan(i * dim_, dim_));
    }
    return box;
  }

  void Finish() override {
    PhaseScope scope(this, &phases_.finish);
    FlushWindow();
  }

  uint32_t BuildAdaptiveRoot(const BulkLoadOptions& options, size_t root_level,
                             RTree* tree) override;

  io::IoStats TotalIo() const {
    io::IoStats total = file_->stats() + scratch_.stats();
    if (overflow_scratch_ != nullptr) total += overflow_scratch_->stats();
    return total;
  }

  const ExternalBuildIo& phases() const { return phases_; }
  double overlap_ratio() const { return overlap_ratio_; }

 private:
  /// Attributes all I/O charged while the outermost scope is alive to one
  /// ExternalBuildIo slot. Nested scopes are inert, so a helper triggered
  /// from inside another phase (a window flush forced by a select, say)
  /// charges the triggering phase exactly once.
  class PhaseScope {
   public:
    PhaseScope(ExternalPointSource* source, io::IoStats* slot)
        : source_(source) {
      if (source_->scope_depth_++ == 0) {
        slot_ = slot;
        before_ = source_->TotalIo();
      }
    }
    ~PhaseScope() {
      --source_->scope_depth_;
      if (slot_ != nullptr) {
        const io::IoStats now = source_->TotalIo();
        slot_->page_seeks += now.page_seeks - before_.page_seeks;
        slot_->page_transfers += now.page_transfers - before_.page_transfers;
      }
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    ExternalPointSource* source_;
    io::IoStats* slot_ = nullptr;
    io::IoStats before_;
  };

  bool WindowCovers(size_t lo, size_t hi) const {
    return window_valid_ && lo >= window_lo_ && hi <= window_hi_;
  }

  /// Loads [lo, hi) into the memory buffer (flushing any previous window).
  void EnsureWindow(size_t lo, size_t hi) {
    HDIDX_CHECK(hi - lo <= memory_points_ || WindowCovers(lo, hi));
    if (WindowCovers(lo, hi)) return;
    FlushWindow();
    const size_t count = hi - lo;
    buffer_.resize(count * dim_);
    file_->Read(lo, count, buffer_.data());
    perm_.resize(count);
    std::iota(perm_.begin(), perm_.end(), 0u);
    window_lo_ = lo;
    window_hi_ = hi;
    window_valid_ = true;
  }

  /// Writes the window back in permutation order — this materializes the
  /// leaf order on disk, i.e. writes the data pages.
  void FlushWindow() {
    if (!window_valid_) return;
    const size_t count = window_hi_ - window_lo_;
    std::vector<float> out(count * dim_);
    for (size_t i = 0; i < count; ++i) {
      std::memcpy(out.data() + i * dim_, buffer_.data() + perm_[i] * dim_,
                  dim_ * sizeof(float));
    }
    file_->Write(window_lo_, count, out.data());
    window_valid_ = false;
  }

  size_t MaxVarianceOfWindow(size_t lo, size_t hi) {
    std::vector<double> sum(dim_, 0.0), sum_sq(dim_, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      const float* row = buffer_.data() + perm_[i - window_lo_] * dim_;
      for (size_t k = 0; k < dim_; ++k) {
        const double v = row[k];
        sum[k] += v;
        sum_sq[k] += v * v;
      }
    }
    const double n = static_cast<double>(hi - lo);
    size_t best = 0;
    double best_var = -1.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
      if (var > best_var) {
        best_var = var;
        best = k;
      }
    }
    return best;
  }

  /// External quickselect: narrows [*lo, *hi) around `pos` with charged
  /// classification passes through the scratch file until the remaining
  /// range fits in memory. On return the points outside [*lo, *hi) are
  /// finally placed relative to position `pos`.
  void ExternalSelect(size_t* lo, size_t* hi, size_t pos, size_t split_dim) {
    FlushWindow();  // the select works directly on the file
    while (*hi - *lo > memory_points_) {
      const size_t n = *hi - *lo;
      if (scratch_.size() < file_->size()) scratch_.Resize(file_->size());

      // Pivot: median along split_dim of the first chunk. The chunk is
      // re-read during the classification pass below; charging it once here
      // models the extra pivot-selection read.
      const size_t first_chunk = std::min(memory_points_, n);
      file_->ChargeAccess(*lo, first_chunk);
      const auto raw = file_->raw();
      std::vector<float> values(first_chunk);
      for (size_t i = 0; i < first_chunk; ++i) {
        values[i] = raw[(*lo + i) * dim_ + split_dim];
      }
      std::nth_element(values.begin(),
                       values.begin() + static_cast<ptrdiff_t>(first_chunk / 2),
                       values.end());
      float pivot = values[first_chunk / 2];

      size_t nl = ClassifyPass(*lo, *hi, split_dim, pivot);
      if (nl == 0 || nl == n) {
        // Degenerate pivot (duplicate-heavy dimension): retry with the
        // midrange, which guarantees progress unless all values are equal.
        file_->ChargeAccess(*lo, n);
        float min_v = raw[*lo * dim_ + split_dim];
        float max_v = min_v;
        for (size_t i = *lo; i < *hi; ++i) {
          const float v = raw[i * dim_ + split_dim];
          min_v = std::min(min_v, v);
          max_v = std::max(max_v, v);
        }
        if (min_v == max_v) return;  // any split position is already valid
        pivot = min_v + 0.5f * (max_v - min_v);
        if (pivot == min_v) pivot = max_v;
        nl = ClassifyPass(*lo, *hi, split_dim, pivot);
        if (nl == 0 || nl == n) return;  // numerically stuck; treat as equal
      }
      if (pos < *lo + nl) {
        *hi = *lo + nl;
      } else {
        *lo = *lo + nl;
      }
    }
  }

  /// One classification pass: points of [lo, hi) with value < pivot go to
  /// the low frontier of the scratch region, the rest to the high frontier;
  /// the region is then copied back. Returns the low-side count.
  size_t ClassifyPass(size_t lo, size_t hi, size_t split_dim, float pivot) {
    size_t low_ptr = lo;
    size_t high_ptr = hi;
    std::vector<float> lows, highs;
    lows.reserve(memory_points_ * dim_);
    highs.reserve(memory_points_ * dim_);
    const auto raw = file_->raw();
    for (size_t chunk_lo = lo; chunk_lo < hi; chunk_lo += memory_points_) {
      const size_t chunk_n = std::min(memory_points_, hi - chunk_lo);
      file_->ChargeAccess(chunk_lo, chunk_n);  // sequential chunk read
      lows.clear();
      highs.clear();
      for (size_t i = chunk_lo; i < chunk_lo + chunk_n; ++i) {
        const float* row = raw.data() + i * dim_;
        if (row[split_dim] < pivot) {
          lows.insert(lows.end(), row, row + dim_);
        } else {
          highs.insert(highs.end(), row, row + dim_);
        }
      }
      const size_t n_lows = lows.size() / dim_;
      const size_t n_highs = highs.size() / dim_;
      if (n_lows > 0) {
        scratch_.Write(low_ptr, n_lows, lows.data());
        low_ptr += n_lows;
      }
      if (n_highs > 0) {
        scratch_.Write(high_ptr - n_highs, n_highs, highs.data());
        high_ptr -= n_highs;
      }
    }
    HDIDX_CHECK(low_ptr == high_ptr);
    // Copy the partitioned region back: sequential scratch read plus
    // sequential file write.
    const size_t n = hi - lo;
    scratch_.ChargeAccess(lo, n);
    file_->Write(lo, n, scratch_.raw().data() + lo * dim_);
    return low_ptr - lo;
  }

  io::PagedFile* file_;
  io::PagedFile scratch_;
  size_t memory_points_;
  size_t dim_;

  std::vector<float> buffer_;
  std::vector<uint32_t> perm_;
  size_t window_lo_ = 0;
  size_t window_hi_ = 0;
  bool window_valid_ = false;

  ExternalBuildIo phases_;
  size_t scope_depth_ = 0;
  double overlap_ratio_ = 0.0;
  // Swapped in for `scratch_` while an oversized bucket group is finished
  // by the recursive external partitioner, whose select scribbles scratch
  // positions that still hold other groups' staged runs. Lazily created:
  // most builds never have an oversized group.
  std::unique_ptr<io::PagedFile> overflow_scratch_;
};

uint32_t ExternalPointSource::BuildAdaptiveRoot(const BulkLoadOptions& options,
                                                size_t root_level,
                                                RTree* tree) {
  if (root_level == options.stop_level) {
    // Single-leaf tree: nothing to place buckets under.
    return PointSource::BuildAdaptiveRoot(options, root_level, tree);
  }
  const TreeTopology& topo = *options.topology;
  const size_t n = file_->size();
  const size_t d = dim_;
  const AdaptiveOptions& adaptive = options.adaptive;
  const size_t bucket_level = AdaptiveBucketLevel(
      topo, root_level, options.stop_level, adaptive.memory_points);
  const double scaled_cap = std::max(
      1.0, static_cast<double>(topo.SubtreeCapacity(bucket_level)) *
               options.scale);
  // Aim buckets slightly under capacity so sampling error rarely overfills.
  const double bucket_target = std::max(1.0, scaled_cap * 0.7);

  // Sample pass: draw sorted indices and charge each distinct page once, in
  // ascending order — the realistic cost of a sample sweep, and a
  // deterministic function of (size, seed) alone.
  const size_t sample_size = std::clamp<size_t>(
      std::max<size_t>(adaptive.min_sample_points,
                       static_cast<size_t>(std::llround(
                           static_cast<double>(n) *
                           adaptive.sampling_fraction))),
      1, n);
  std::vector<float> sample(sample_size * d);
  {
    PhaseScope scope(this, &phases_.sample);
    std::vector<size_t> idx;
    common::Rng(adaptive.seed).SampleIndices(n, sample_size, &idx);
    const size_t ppp = file_->points_per_page();
    const auto raw = file_->raw();
    size_t i = 0;
    while (i < sample_size) {
      const size_t page = idx[i] / ppp;
      const size_t page_lo = page * ppp;
      file_->ChargeAccess(page_lo, std::min(ppp, n - page_lo));
      for (; i < sample_size && idx[i] / ppp == page; ++i) {
        std::copy_n(raw.data() + idx[i] * d, d, sample.data() + i * d);
      }
    }
  }
  const SplitPlan plan = SplitPlan::Build(sample.data(), sample_size, d,
                                          static_cast<double>(n),
                                          bucket_target);
  sample.clear();
  sample.shrink_to_fit();

  // Streaming classification pass: one prefetched sequential sweep over the
  // file; each chunk's points are routed by the plan and appended as
  // per-bucket runs to a log on the scratch file. The chunk size is a
  // page-aligned function of M only, so layouts and IoStats are identical
  // for every read-ahead window and thread count.
  std::vector<std::vector<io::ReadAheadSource::Extent>> bucket_runs(
      plan.num_buckets());
  {
    PhaseScope scope(this, &phases_.partition);
    if (scratch_.size() < n) scratch_.Resize(n);
    const size_t ppp = file_->points_per_page();
    const size_t chunk = std::max(ppp, memory_points_ / 8 / ppp * ppp);
    std::vector<io::ReadAheadSource::Extent> read_plan;
    read_plan.reserve(n / chunk + 1);
    for (size_t lo = 0; lo < n; lo += chunk) {
      read_plan.push_back({lo, std::min(chunk, n - lo)});
    }
    common::ThreadPool* pool =
        options.exec != nullptr ? options.exec->pool : nullptr;
    io::ReadAheadSource reader(file_, std::move(read_plan),
                               adaptive.read_ahead_window, pool);
    // Staged points persist across chunks; once half the memory budget is
    // staged, every bucket is flushed at once as a single contiguous,
    // bucket-ordered batch — one Write call, so the transfer cost is
    // ceil(batch / page) instead of one-plus per bucket, and each batch
    // later contributes one contiguous extent per gather group. The flush
    // schedule depends only on the chunk sequence, which is itself window-
    // and thread-invariant.
    std::vector<std::vector<float>> stage(plan.num_buckets());
    size_t staged = 0;
    size_t frontier = 0;
    const size_t stage_budget = std::max(chunk, memory_points_ / 2);
    std::vector<float> batch;
    const auto flush_all = [&] {
      if (staged == 0) return;
      batch.clear();
      size_t pos = frontier;
      for (size_t b = 0; b < stage.size(); ++b) {
        const size_t run = stage[b].size() / d;
        if (run == 0) continue;
        batch.insert(batch.end(), stage[b].begin(), stage[b].end());
        bucket_runs[b].push_back({pos, run});
        pos += run;
        stage[b].clear();
      }
      scratch_.Write(frontier, staged, batch.data());
      frontier = pos;
      staged = 0;
    };
    while (!reader.done()) {
      const auto rows = reader.Next();
      const size_t count = rows.size() / d;
      for (size_t i = 0; i < count; ++i) {
        const float* row = rows.data() + i * d;
        const size_t b = plan.BucketOf(row);
        stage[b].insert(stage[b].end(), row, row + d);
      }
      staged += count;
      if (staged > stage_budget) flush_all();
    }
    flush_all();
    HDIDX_CHECK(frontier == n) << "classification lost points";
    overlap_ratio_ = reader.overlap_ratio();
  }

  // Concatenated in bucket order (runs chronological within a bucket), the
  // staged runs are the full dataset in classified stream order — the same
  // order the in-memory pipeline's counting sort produces.
  std::vector<io::ReadAheadSource::Extent> stream_runs;
  stream_runs.reserve(n / file_->points_per_page() + plan.num_buckets());
  for (size_t b = 0; b < plan.num_buckets(); ++b) {
    stream_runs.insert(stream_runs.end(), bucket_runs[b].begin(),
                       bucket_runs[b].end());
  }

  // Gather group-sized slices of the stream (cut at exact root boundaries,
  // mirroring the in-memory pipeline) back out of the log and finish each
  // group's subtree(s); output offsets are cumulative, so leaves tile
  // [0, N) in append order exactly as BulkLoad audits.
  std::vector<internal::AdaptiveRoot> roots;
  const std::vector<size_t> bounds =
      AdaptiveGroupBoundaries(n, scaled_cap, memory_points_);
  size_t run_idx = 0;
  size_t run_off = 0;
  // Collects the next `need` stream points as log extents, then sorts and
  // coalesces them by log position: each flush batch wrote this group's
  // buckets contiguously, so the group collapses to roughly one extent per
  // batch. The points arrive in log order rather than stream order — a
  // deterministic permutation of the group, which the in-window quickselect
  // re-partitions anyway.
  const auto gather_extents = [&](size_t need) {
    std::vector<io::ReadAheadSource::Extent> parts;
    while (need > 0) {
      HDIDX_CHECK(run_idx < stream_runs.size()) << "staged runs exhausted";
      const auto& run = stream_runs[run_idx];
      const size_t take = std::min(run.count - run_off, need);
      parts.push_back({run.start + run_off, take});
      need -= take;
      run_off += take;
      if (run_off == run.count) {
        ++run_idx;
        run_off = 0;
      }
    }
    std::sort(parts.begin(), parts.end(),
              [](const io::ReadAheadSource::Extent& a,
                 const io::ReadAheadSource::Extent& b) {
                return a.start < b.start;
              });
    std::vector<io::ReadAheadSource::Extent> merged;
    for (const auto& e : parts) {
      if (!merged.empty() &&
          merged.back().start + merged.back().count == e.start) {
        merged.back().count += e.count;
      } else {
        merged.push_back(e);
      }
    }
    return merged;
  };
  for (size_t g = 0; g + 1 < bounds.size(); ++g) {
    const size_t out_lo = bounds[g];
    const size_t out_hi = bounds[g + 1];
    const size_t group_points = out_hi - out_lo;
    if (group_points <= memory_points_) {
      {
        PhaseScope scope(this, &phases_.partition);
        buffer_.resize(group_points * d);
        size_t off = 0;
        for (const auto& e : gather_extents(group_points)) {
          scratch_.Read(e.start, e.count, buffer_.data() + off * d);
          off += e.count;
        }
        HDIDX_CHECK(off == group_points);
        perm_.resize(group_points);
        std::iota(perm_.begin(), perm_.end(), 0u);
        window_lo_ = out_lo;
        window_hi_ = out_hi;
        window_valid_ = true;
      }
      internal::BuildBucketRoots(this, options, tree, bucket_level, out_lo,
                                 out_hi, &roots);
      {
        PhaseScope scope(this, &phases_.finish);
        FlushWindow();
      }
    } else {
      // A group can only exceed the window when a single bucket-level root
      // does (memory so tight even one subtree plus slack doesn't fit):
      // stream the slice back into file order and let the recursive
      // external partitioner finish it. The select needs a scratch file of
      // its own — the shared log still holds the later groups' runs — so
      // the lazily created overflow scratch is swapped in around the
      // recursion.
      {
        PhaseScope scope(this, &phases_.partition);
        std::vector<float> copy_buf;
        size_t pos = out_lo;
        for (const auto& e : gather_extents(group_points)) {
          size_t done = 0;
          while (done < e.count) {
            const size_t step = std::min(memory_points_, e.count - done);
            copy_buf.resize(step * d);
            scratch_.Read(e.start + done, step, copy_buf.data());
            file_->Write(pos, step, copy_buf.data());
            pos += step;
            done += step;
          }
        }
        HDIDX_CHECK(pos == out_hi);
      }
      if (overflow_scratch_ == nullptr) {
        overflow_scratch_ =
            std::make_unique<io::PagedFile>(d, file_->disk());
      }
      std::swap(scratch_, *overflow_scratch_);
      internal::BuildBucketRoots(this, options, tree, bucket_level, out_lo,
                                 out_hi, &roots);
      {
        PhaseScope scope(this, &phases_.finish);
        FlushWindow();
      }
      std::swap(scratch_, *overflow_scratch_);
    }
  }
  HDIDX_CHECK(run_idx == stream_runs.size()) << "bucket groups lost points";
  return PackUpperLevels(options, bucket_level, root_level, roots, tree);
}

}  // namespace

void AuditExternalBuildIo(const ExternalBuildIo& phases,
                          const io::IoStats& observed) {
  phases.sample.Validate();
  phases.partition.Validate();
  phases.finish.Validate();
  phases.directory.Validate();
  const io::IoStats total = phases.Total();
  HDIDX_CHECK(total == observed)
      << "external build phase tallies drift from observed I/O: phases sum to "
      << total.page_seeks << " seeks / " << total.page_transfers
      << " transfers, observed " << observed.page_seeks << " / "
      << observed.page_transfers;
}

ExternalBuildResult BuildOnDisk(io::PagedFile* file,
                                const ExternalBuildOptions& options) {
  HDIDX_CHECK(options.topology != nullptr);
  HDIDX_CHECK(options.memory_points >= options.topology->data_capacity());
  const io::IoStats before = file->stats();

  ExternalPointSource source(file, options.memory_points);
  BulkLoadOptions load;
  load.topology = options.topology;
  load.scale = 1.0;
  load.root_level = options.topology->height();
  load.stop_level = 1;
  load.split_strategy = options.split_strategy;
  load.adaptive = options.adaptive;
  // Bucket placement must see the actual window size, whatever the caller
  // left in the adaptive sub-options.
  load.adaptive.memory_points = options.memory_points;
  // The source's kSingleOwner contract makes this a no-op for the build
  // order; forwarding it anyway keeps the call shape uniform and exercises
  // the gate (tests assert IoStats are thread-count invariant). The
  // adaptive pipeline additionally borrows the pool for read-ahead.
  load.exec = options.exec;
  ExternalBuildResult result{BulkLoad(&source, load), io::IoStats{},
                             ExternalBuildIo{}, 0.0};
  result.phases = source.phases();
  result.overlap_ratio = source.overlap_ratio();

  // Charge writing the directory pages: one sequential write of all
  // non-leaf nodes (one page each). The seek lands on the file; the
  // transfers are synthesized (directory pages have no backing store in
  // the simulation).
  const size_t dir_nodes = result.tree.num_nodes() - result.tree.num_leaves();
  io::IoStats dir_synthetic;
  if (dir_nodes > 0) {
    file->ChargeSeek();
    dir_synthetic.page_transfers = dir_nodes;
    result.phases.directory.page_seeks += 1;
    result.phases.directory.page_transfers += dir_nodes;
  }

  result.io = source.TotalIo() + dir_synthetic;
  // The build can only ever add I/O on top of the file's prior tally;
  // subtracting a larger "before" means the charging drifted somewhere.
  HDIDX_CHECK(result.io.page_seeks >= before.page_seeks &&
              result.io.page_transfers >= before.page_transfers)
      << "external build under-charged I/O";
  result.io.page_seeks -= before.page_seeks;
  result.io.page_transfers -= before.page_transfers;
  // Every seek and transfer must be attributed to exactly one phase.
  AuditExternalBuildIo(result.phases, result.io);
  return result;
}

}  // namespace hdidx::index
