#include "index/external_build.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace hdidx::index {

namespace {

/// PointSource over a simulated on-disk file with an M-point memory window.
///
/// Deliberately keeps the base class's Concurrency::kSingleOwner: the
/// window buffer, the scratch file and the charged PagedFile are shared,
/// order-sensitive state (a seek is charged only on non-adjacent access,
/// and window loads/flushes depend on the access sequence), so the
/// simulated disk costs are the paper's numbers only under the serial
/// depth-first recursion. BulkLoad's single-owner gate guarantees that no
/// execution context can fan this source out.
class ExternalPointSource : public PointSource {
 public:
  ExternalPointSource(io::PagedFile* file, size_t memory_points)
      : file_(file),
        scratch_(file->dim(), file->disk()),
        memory_points_(memory_points),
        dim_(file->dim()) {
    HDIDX_CHECK(memory_points_ >= 1);
    buffer_.reserve(memory_points_ * dim_);
  }

  size_t dim() const override { return dim_; }
  size_t size() const override { return file_->size(); }

  size_t MaxVarianceDim(size_t lo, size_t hi) override {
    if (WindowCovers(lo, hi) || hi - lo <= memory_points_) {
      EnsureWindow(lo, hi);
      return MaxVarianceOfWindow(lo, hi);
    }
    // Chunked sequential variance scan over the file.
    file_->ChargeAccess(lo, hi - lo);
    std::vector<double> sum(dim_, 0.0), sum_sq(dim_, 0.0);
    const auto raw = file_->raw();
    for (size_t i = lo; i < hi; ++i) {
      const float* row = raw.data() + i * dim_;
      for (size_t k = 0; k < dim_; ++k) {
        const double v = row[k];
        sum[k] += v;
        sum_sq[k] += v * v;
      }
    }
    const double n = static_cast<double>(hi - lo);
    size_t best = 0;
    double best_var = -1.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
      if (var > best_var) {
        best_var = var;
        best = k;
      }
    }
    return best;
  }

  void Partition(size_t lo, size_t hi, size_t pos, size_t split_dim) override {
    HDIDX_CHECK(lo < pos && pos < hi);
    if (!WindowCovers(lo, hi) && hi - lo > memory_points_) {
      ExternalSelect(&lo, &hi, pos, split_dim);
      // The select leaves the range oversized only when every value along
      // split_dim is (effectively) equal; any ordering is then already a
      // valid partition, and loading the oversized range would break the
      // M-point memory model. The NDEBUG seed build used to do exactly
      // that — this early return keeps EnsureWindow's invariant honest.
      if (hi - lo > memory_points_) return;
      if (hi - lo <= 1 || pos <= lo || pos >= hi) return;
    }
    EnsureWindow(lo, hi);
    const float* buf = buffer_.data();
    const size_t d = dim_;
    std::nth_element(
        perm_.begin() + static_cast<ptrdiff_t>(lo - window_lo_),
        perm_.begin() + static_cast<ptrdiff_t>(pos - window_lo_),
        perm_.begin() + static_cast<ptrdiff_t>(hi - window_lo_),
        [buf, d, split_dim](uint32_t a, uint32_t b) {
          return buf[a * d + split_dim] < buf[b * d + split_dim];
        });
  }

  geometry::BoundingBox ComputeBox(size_t lo, size_t hi) override {
    if (WindowCovers(lo, hi) || hi - lo <= memory_points_) {
      EnsureWindow(lo, hi);
      geometry::BoundingBox box(dim_);
      for (size_t i = lo; i < hi; ++i) {
        box.Extend({buffer_.data() + perm_[i - window_lo_] * dim_, dim_});
      }
      return box;
    }
    // Oversized leaf (only possible for upper-tree stop levels): charged
    // sequential scan.
    file_->ChargeAccess(lo, hi - lo);
    const auto raw = file_->raw();
    geometry::BoundingBox box(dim_);
    for (size_t i = lo; i < hi; ++i) {
      box.Extend(raw.subspan(i * dim_, dim_));
    }
    return box;
  }

  void Finish() override { FlushWindow(); }

  io::IoStats TotalIo() const { return file_->stats() + scratch_.stats(); }

 private:
  bool WindowCovers(size_t lo, size_t hi) const {
    return window_valid_ && lo >= window_lo_ && hi <= window_hi_;
  }

  /// Loads [lo, hi) into the memory buffer (flushing any previous window).
  void EnsureWindow(size_t lo, size_t hi) {
    HDIDX_CHECK(hi - lo <= memory_points_ || WindowCovers(lo, hi));
    if (WindowCovers(lo, hi)) return;
    FlushWindow();
    const size_t count = hi - lo;
    buffer_.resize(count * dim_);
    file_->Read(lo, count, buffer_.data());
    perm_.resize(count);
    std::iota(perm_.begin(), perm_.end(), 0u);
    window_lo_ = lo;
    window_hi_ = hi;
    window_valid_ = true;
  }

  /// Writes the window back in permutation order — this materializes the
  /// leaf order on disk, i.e. writes the data pages.
  void FlushWindow() {
    if (!window_valid_) return;
    const size_t count = window_hi_ - window_lo_;
    std::vector<float> out(count * dim_);
    for (size_t i = 0; i < count; ++i) {
      std::memcpy(out.data() + i * dim_, buffer_.data() + perm_[i] * dim_,
                  dim_ * sizeof(float));
    }
    file_->Write(window_lo_, count, out.data());
    window_valid_ = false;
  }

  size_t MaxVarianceOfWindow(size_t lo, size_t hi) {
    std::vector<double> sum(dim_, 0.0), sum_sq(dim_, 0.0);
    for (size_t i = lo; i < hi; ++i) {
      const float* row = buffer_.data() + perm_[i - window_lo_] * dim_;
      for (size_t k = 0; k < dim_; ++k) {
        const double v = row[k];
        sum[k] += v;
        sum_sq[k] += v * v;
      }
    }
    const double n = static_cast<double>(hi - lo);
    size_t best = 0;
    double best_var = -1.0;
    for (size_t k = 0; k < dim_; ++k) {
      const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
      if (var > best_var) {
        best_var = var;
        best = k;
      }
    }
    return best;
  }

  /// External quickselect: narrows [*lo, *hi) around `pos` with charged
  /// classification passes through the scratch file until the remaining
  /// range fits in memory. On return the points outside [*lo, *hi) are
  /// finally placed relative to position `pos`.
  void ExternalSelect(size_t* lo, size_t* hi, size_t pos, size_t split_dim) {
    FlushWindow();  // the select works directly on the file
    while (*hi - *lo > memory_points_) {
      const size_t n = *hi - *lo;
      if (scratch_.size() < file_->size()) scratch_.Resize(file_->size());

      // Pivot: median along split_dim of the first chunk. The chunk is
      // re-read during the classification pass below; charging it once here
      // models the extra pivot-selection read.
      const size_t first_chunk = std::min(memory_points_, n);
      file_->ChargeAccess(*lo, first_chunk);
      const auto raw = file_->raw();
      std::vector<float> values(first_chunk);
      for (size_t i = 0; i < first_chunk; ++i) {
        values[i] = raw[(*lo + i) * dim_ + split_dim];
      }
      std::nth_element(values.begin(),
                       values.begin() + static_cast<ptrdiff_t>(first_chunk / 2),
                       values.end());
      float pivot = values[first_chunk / 2];

      size_t nl = ClassifyPass(*lo, *hi, split_dim, pivot);
      if (nl == 0 || nl == n) {
        // Degenerate pivot (duplicate-heavy dimension): retry with the
        // midrange, which guarantees progress unless all values are equal.
        file_->ChargeAccess(*lo, n);
        float min_v = raw[*lo * dim_ + split_dim];
        float max_v = min_v;
        for (size_t i = *lo; i < *hi; ++i) {
          const float v = raw[i * dim_ + split_dim];
          min_v = std::min(min_v, v);
          max_v = std::max(max_v, v);
        }
        if (min_v == max_v) return;  // any split position is already valid
        pivot = min_v + 0.5f * (max_v - min_v);
        if (pivot == min_v) pivot = max_v;
        nl = ClassifyPass(*lo, *hi, split_dim, pivot);
        if (nl == 0 || nl == n) return;  // numerically stuck; treat as equal
      }
      if (pos < *lo + nl) {
        *hi = *lo + nl;
      } else {
        *lo = *lo + nl;
      }
    }
  }

  /// One classification pass: points of [lo, hi) with value < pivot go to
  /// the low frontier of the scratch region, the rest to the high frontier;
  /// the region is then copied back. Returns the low-side count.
  size_t ClassifyPass(size_t lo, size_t hi, size_t split_dim, float pivot) {
    size_t low_ptr = lo;
    size_t high_ptr = hi;
    std::vector<float> lows, highs;
    lows.reserve(memory_points_ * dim_);
    highs.reserve(memory_points_ * dim_);
    const auto raw = file_->raw();
    for (size_t chunk_lo = lo; chunk_lo < hi; chunk_lo += memory_points_) {
      const size_t chunk_n = std::min(memory_points_, hi - chunk_lo);
      file_->ChargeAccess(chunk_lo, chunk_n);  // sequential chunk read
      lows.clear();
      highs.clear();
      for (size_t i = chunk_lo; i < chunk_lo + chunk_n; ++i) {
        const float* row = raw.data() + i * dim_;
        if (row[split_dim] < pivot) {
          lows.insert(lows.end(), row, row + dim_);
        } else {
          highs.insert(highs.end(), row, row + dim_);
        }
      }
      const size_t n_lows = lows.size() / dim_;
      const size_t n_highs = highs.size() / dim_;
      if (n_lows > 0) {
        scratch_.Write(low_ptr, n_lows, lows.data());
        low_ptr += n_lows;
      }
      if (n_highs > 0) {
        scratch_.Write(high_ptr - n_highs, n_highs, highs.data());
        high_ptr -= n_highs;
      }
    }
    HDIDX_CHECK(low_ptr == high_ptr);
    // Copy the partitioned region back: sequential scratch read plus
    // sequential file write.
    const size_t n = hi - lo;
    scratch_.ChargeAccess(lo, n);
    file_->Write(lo, n, scratch_.raw().data() + lo * dim_);
    return low_ptr - lo;
  }

  io::PagedFile* file_;
  io::PagedFile scratch_;
  size_t memory_points_;
  size_t dim_;

  std::vector<float> buffer_;
  std::vector<uint32_t> perm_;
  size_t window_lo_ = 0;
  size_t window_hi_ = 0;
  bool window_valid_ = false;
};

}  // namespace

ExternalBuildResult BuildOnDisk(io::PagedFile* file,
                                const ExternalBuildOptions& options) {
  HDIDX_CHECK(options.topology != nullptr);
  HDIDX_CHECK(options.memory_points >= options.topology->data_capacity());
  const io::IoStats before = file->stats();

  ExternalPointSource source(file, options.memory_points);
  BulkLoadOptions load;
  load.topology = options.topology;
  load.scale = 1.0;
  load.root_level = options.topology->height();
  load.stop_level = 1;
  // The source's kSingleOwner contract makes this a no-op for the build
  // order; forwarding it anyway keeps the call shape uniform and exercises
  // the gate (tests assert IoStats are thread-count invariant).
  load.exec = options.exec;
  ExternalBuildResult result{BulkLoad(&source, load), io::IoStats{}};

  // Charge writing the directory pages: one sequential write of all
  // non-leaf nodes (one page each).
  const size_t dir_nodes = result.tree.num_nodes() - result.tree.num_leaves();
  if (dir_nodes > 0) {
    file->ChargeSeek();
    io::IoStats dir_write;
    dir_write.page_transfers = dir_nodes;
    result.io += dir_write;
  }

  result.io += source.TotalIo();
  // The build can only ever add I/O on top of the file's prior tally;
  // subtracting a larger "before" means the charging drifted somewhere.
  HDIDX_CHECK(result.io.page_seeks >= before.page_seeks &&
              result.io.page_transfers >= before.page_transfers)
      << "external build under-charged I/O";
  result.io.page_seeks -= before.page_seeks;
  result.io.page_transfers -= before.page_transfers;
  return result;
}

}  // namespace hdidx::index
