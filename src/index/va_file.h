#ifndef HDIDX_INDEX_VA_FILE_H_
#define HDIDX_INDEX_VA_FILE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "io/disk_model.h"
#include "io/io_stats.h"

namespace hdidx::index {

/// The VA-file (vector-approximation file, Weber & Blott [32]; Weber,
/// Schek, Blott [33]).
///
/// Section 4.7 singles this structure out as the one NOT covered by the
/// paper's prediction technique, "since it does not organize points in
/// pages of fixed capacity". It is implemented here to make that boundary
/// executable: its query cost follows a closed form (one sequential scan of
/// the approximation file plus one random access per non-pruned candidate),
/// not a page-layout model — `bench_va_file` demonstrates both halves.
///
/// Construction quantizes every dimension into 2^bits equi-populated slices
/// (boundaries at empirical quantiles); each point's approximation is its
/// per-dimension slice index. An exact k-NN search scans all approximations
/// computing cell lower/upper distance bounds, keeps the k-th smallest
/// upper bound, and fetches exactly the points whose lower bound does not
/// exceed it (the VA-SSA algorithm).
class VaFile {
 public:
  struct Options {
    /// Bits per dimension (the paper's experiments use 4-8).
    uint8_t bits = 8;
  };

  /// Builds the approximation file over `data` (borrowed; must outlive the
  /// VaFile).
  VaFile(const data::Dataset* data, const Options& options);

  size_t size() const { return data_->size(); }
  size_t dim() const { return data_->dim(); }
  uint8_t bits() const { return options_.bits; }

  /// Bytes of one approximation entry (dim * bits rounded up to bytes).
  size_t ApproximationBytes() const;

  /// Result of an exact k-NN search through the VA-file.
  struct SearchResult {
    /// Row ids of the k nearest points, ascending by distance.
    std::vector<size_t> neighbors;
    double kth_distance = 0.0;
    /// Points whose exact vector had to be fetched (phase 2 candidates).
    size_t candidates = 0;
    /// Simulated I/O: sequential approximation scan + one random page
    /// access per candidate.
    io::IoStats io;
  };

  /// Exact k-NN by the two-phase VA-SSA algorithm.
  SearchResult SearchKnn(std::span<const float> query, size_t k,
                         const io::DiskModel& disk) const;

  /// Slice index of `value` along dimension `d` (exposed for tests).
  uint32_t Quantize(size_t d, float value) const;

  /// Squared lower/upper distance bounds between `query` and the cell of
  /// point `row` (exposed for tests; the bounds are what make the search
  /// exact).
  double LowerBoundSq(std::span<const float> query, size_t row) const;
  double UpperBoundSq(std::span<const float> query, size_t row) const;

 private:
  const data::Dataset* data_;
  Options options_;
  size_t slices_;
  /// Per dimension: slices_+1 boundary values (quantiles).
  std::vector<std::vector<float>> boundaries_;
  /// Row-major approximation matrix: slice index per (point, dimension).
  std::vector<uint32_t> approximation_;
};

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_VA_FILE_H_
