#ifndef HDIDX_INDEX_RTREE_H_
#define HDIDX_INDEX_RTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/thread_annotations.h"
#include "geometry/bounding_box.h"
#include "geometry/kernels.h"

namespace hdidx::index {

/// One node of a bulk-loaded R-tree.
///
/// Leaf nodes reference a contiguous range [start, start+count) of the
/// tree's point permutation (see RTree::order()); directory nodes reference
/// child node ids. "Leaf" here means a leaf *of this tree*: an upper tree
/// built down to full-tree level s > 1 has leaves whose `level` is s.
struct RTreeNode {
  geometry::BoundingBox box;
  /// Level in the full-tree numbering: data pages are level 1, the root of a
  /// complete tree is at level height.
  uint32_t level = 1;
  /// Leaf payload: range into RTree::order().
  uint32_t start = 0;
  uint32_t count = 0;
  /// Directory payload: ids of child nodes (empty for leaves). Points into
  /// the owning RTree's arena — valid for the tree's lifetime, including
  /// across moves of the tree.
  std::span<const uint32_t> children;
  /// Disk pages this node occupies (1 for ordinary nodes; X-tree
  /// supernodes span several and charge accordingly).
  uint32_t pages = 1;

  bool is_leaf() const { return children.empty(); }

  explicit RTreeNode(size_t dim) : box(dim) {}
};

/// A bulk-loaded R-tree (VAMSplit R*-tree page layout).
///
/// The tree does not own point coordinates; leaves reference rows of the
/// dataset it was built from through the permutation returned by order().
/// Query methods count page accesses — the quantity the paper predicts —
/// rather than returning result sets; the k-NN result itself comes from
/// index/knn.h.
class RTree {
 public:
  /// Creates an empty tree over points of dimensionality `dim`.
  explicit RTree(size_t dim);

  // Movable, not copyable: node child arrays and directory slabs live in
  // the tree-owned arena below.
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  size_t dim() const { return dim_; }
  size_t num_nodes() const { return nodes_.size(); }
  const RTreeNode& node(uint32_t id) const { return nodes_[id]; }
  uint32_t root() const { return root_; }
  bool empty() const { return nodes_.empty(); }

  /// Level of the root node (= height of this tree in full-tree numbering
  /// when built completely).
  size_t root_level() const;

  /// Ids of this tree's leaves, in left-to-right construction order.
  const std::vector<uint32_t>& leaf_ids() const { return leaf_ids_; }
  size_t num_leaves() const { return leaf_ids_.size(); }

  /// Permutation mapping leaf ranges to dataset row indices. Empty means
  /// identity (points already in leaf order, as after an external build).
  const std::vector<uint32_t>& order() const { return order_; }

  /// Dataset row index for position `pos` of the permutation.
  uint32_t OrderedIndex(uint32_t pos) const {
    return order_.empty() ? pos : order_[pos];
  }

  // ---- Construction API (used by the bulk loaders) ----

  /// Appends a leaf covering permutation range [start, start+count).
  HDIDX_BUILD_ONLY uint32_t AddLeaf(geometry::BoundingBox box, uint32_t level,
                                    uint32_t start, uint32_t count);

  /// Appends a directory node; `children` must be valid ids. The node's box
  /// is the union of the children's boxes.
  HDIDX_BUILD_ONLY uint32_t AddDirectory(uint32_t level,
                                         std::vector<uint32_t> children);

  HDIDX_BUILD_ONLY void SetRoot(uint32_t id) { root_ = id; }
  HDIDX_BUILD_ONLY void SetOrder(std::vector<uint32_t> order) {
    order_ = std::move(order);
  }

  /// Sets the page weight of a node (X-tree supernodes span several).
  HDIDX_BUILD_ONLY void SetNodePages(uint32_t id, uint32_t pages) {
    nodes_[id].pages = pages;
  }

  // ---- Queries ----

  /// Page accesses an optimal NN search with the given query sphere incurs:
  /// every node whose MBR intersects the sphere is read (the root is always
  /// read). Returns (leaf accesses, directory accesses). Requires
  /// radius >= 0 (a NaN radius used to silently count zero pages).
  ///
  /// In every non-scalar kernel mode (the default) each visited directory
  /// node tests all its children at once against the SoA slab built at
  /// AddDirectory time; scalar mode runs the original one-box-at-a-time
  /// DFS. Both count exactly the nodes with SquaredMinDist <= radius², so
  /// the result is identical in every mode.
  struct AccessCount {
    size_t leaf_accesses = 0;
    size_t dir_accesses = 0;
    size_t total() const { return leaf_accesses + dir_accesses; }
  };
  HDIDX_CONCURRENT_READ AccessCount CountSphereAccesses(
      std::span<const float> center, double radius) const;

  /// Number of leaves whose MBR intersects `box` (range-query page count).
  HDIDX_CONCURRENT_READ size_t CountBoxAccesses(
      const geometry::BoundingBox& box) const;

  /// Sum of leaf-box volumes (diagnostic; shrinks under sampling, restored
  /// by compensation).
  double TotalLeafVolume() const;

 private:
  size_t dim_;
  /// Backs every node's child id array and every directory slab's lo/hi
  /// planes: the whole traversal working set sits in a few 64B-aligned
  /// blocks instead of per-node heap allocations. Single-owner contract
  /// (common::Arena): written only by the Add* construction calls on the
  /// building thread, read-only and safely shared once built.
  common::Arena arena_;
  std::vector<RTreeNode> nodes_;
  /// Per-node SoA slab over the node's children's MBRs (empty for leaves),
  /// parallel to nodes_. Built in AddDirectory — child boxes never change
  /// afterwards — and shared read-only by concurrent queries.
  std::vector<geometry::kernels::BoxSlab> child_slabs_;
  std::vector<uint32_t> leaf_ids_;
  std::vector<uint32_t> order_;
  uint32_t root_ = 0;
};

/// Deterministic 64-bit digest of a tree's layout: FNV-1a over a level-order
/// walk from the root covering each node's level, child count, leaf range
/// and the raw float bits of its MBR. Two trees with equal digests have (up
/// to hash collisions) identical topology, node ordering, MBRs and leaf
/// ranges — the golden-layout fixtures pin these values so refactors of the
/// bulk loaders cannot silently reshuffle layouts. The point permutation
/// (order()) is deliberately excluded: within-leaf point order is not part
/// of the layout contract.
uint64_t TreeLayoutDigest(const RTree& tree);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_RTREE_H_
