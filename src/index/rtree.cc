#include "index/rtree.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::index {

RTree::RTree(size_t dim) : dim_(dim) { HDIDX_CHECK(dim > 0); }

size_t RTree::root_level() const {
  HDIDX_CHECK(!nodes_.empty());
  return nodes_[root_].level;
}

uint32_t RTree::AddLeaf(geometry::BoundingBox box, uint32_t level,
                        uint32_t start, uint32_t count) {
  HDIDX_CHECK(box.dim() == dim_);
  RTreeNode node(dim_);
  node.box = std::move(box);
  node.level = level;
  node.start = start;
  node.count = count;
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  child_slabs_.emplace_back();
  leaf_ids_.push_back(id);
  return id;
}

uint32_t RTree::AddDirectory(uint32_t level, std::vector<uint32_t> children) {
  HDIDX_CHECK(!children.empty());
  RTreeNode node(dim_);
  node.level = level;
  std::vector<const geometry::BoundingBox*> child_boxes;
  child_boxes.reserve(children.size());
  for (uint32_t child : children) {
    HDIDX_CHECK(child < nodes_.size());
    node.box.ExtendBox(nodes_[child].box);
    child_boxes.push_back(&nodes_[child].box);
  }
  // The id array moves into the tree's arena (first touch happens here, on
  // the building thread), so directory payloads and slab planes share the
  // same few cacheline-aligned blocks.
  uint32_t* ids = arena_.AllocateArray<uint32_t>(children.size());
  std::copy(children.begin(), children.end(), ids);
  node.children = std::span<const uint32_t>(ids, children.size());
  const uint32_t id = static_cast<uint32_t>(nodes_.size());
  // Child MBRs are final once their nodes exist (construction is bottom-up
  // and boxes are never mutated afterwards), so the slab copies them now
  // and serves the node's whole lifetime. Built before the push_back below:
  // growing nodes_ relocates the child boxes the pointers reference.
  child_slabs_.emplace_back(std::span<const geometry::BoundingBox* const>(
                                child_boxes.data(), child_boxes.size()),
                            &arena_);
  nodes_.push_back(std::move(node));
  return id;
}

RTree::AccessCount RTree::CountSphereAccesses(std::span<const float> center,
                                              double radius) const {
  HDIDX_CHECK(radius >= 0.0) << "query sphere radius must be non-negative";
  AccessCount count;
  if (nodes_.empty()) return count;
  const double r2 = radius * radius;
  // Iterative DFS. A node's page is read when its MBR intersects the query
  // sphere; the root page is read unconditionally (every search starts
  // there), but its children are only explored on intersection.
  const RTreeNode& root_node = nodes_[root_];
  const bool root_hit = geometry::SquaredMinDist(center, root_node.box) <= r2;
  if (root_node.is_leaf()) {
    count.leaf_accesses = root_node.pages;
    return count;
  }
  count.dir_accesses = root_node.pages;
  if (!root_hit) return count;
  const geometry::kernels::KernelMode mode =
      geometry::kernels::ActiveKernelMode();
  if (mode != geometry::kernels::KernelMode::kScalar) {
    // DFS over hit directory nodes; each pop tests all children against the
    // node's SoA slab at once. Membership (SquaredMinDist <= r2 per child)
    // matches the scalar DFS exactly, and page totals are integer sums, so
    // the counts are identical in either mode.
    std::vector<uint32_t> stack = {root_};
    std::vector<uint32_t> hits;
    while (!stack.empty()) {
      const uint32_t id = stack.back();
      stack.pop_back();
      const RTreeNode& n = nodes_[id];
      hits.clear();
      geometry::kernels::AppendSphereHits(center, r2, child_slabs_[id], &hits,
                                          mode);
      for (const uint32_t hit : hits) {
        const uint32_t child_id = n.children[hit];
        const RTreeNode& child = nodes_[child_id];
        if (child.is_leaf()) {
          count.leaf_accesses += child.pages;
        } else {
          count.dir_accesses += child.pages;
          stack.push_back(child_id);
        }
      }
    }
    return count;
  }
  std::vector<uint32_t> stack(root_node.children.begin(),
                              root_node.children.end());
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const RTreeNode& n = nodes_[id];
    if (geometry::SquaredMinDist(center, n.box) > r2) continue;
    if (n.is_leaf()) {
      count.leaf_accesses += n.pages;
    } else {
      count.dir_accesses += n.pages;
      for (uint32_t child : n.children) stack.push_back(child);
    }
  }
  return count;
}

size_t RTree::CountBoxAccesses(const geometry::BoundingBox& box) const {
  size_t count = 0;
  if (nodes_.empty()) return 0;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    const RTreeNode& n = nodes_[id];
    if (!n.box.Intersects(box)) continue;
    if (n.is_leaf()) {
      ++count;
    } else {
      for (uint32_t child : n.children) stack.push_back(child);
    }
  }
  return count;
}

double RTree::TotalLeafVolume() const {
  double v = 0.0;
  for (uint32_t id : leaf_ids_) v += nodes_[id].box.Volume();
  return v;
}

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void HashU64(uint64_t value, uint64_t* hash) {
  for (int byte = 0; byte < 8; ++byte) {
    *hash ^= (value >> (8 * byte)) & 0xffULL;
    *hash *= kFnvPrime;
  }
}

void HashFloatBits(const std::vector<float>& values, uint64_t* hash) {
  for (const float v : values) {
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    HashU64(bits, hash);
  }
}

}  // namespace

uint64_t TreeLayoutDigest(const RTree& tree) {
  uint64_t hash = kFnvOffset;
  HashU64(tree.dim(), &hash);
  HashU64(tree.num_nodes(), &hash);
  if (tree.empty()) return hash;
  HashU64(tree.root(), &hash);
  std::vector<uint32_t> frontier = {tree.root()};
  while (!frontier.empty()) {
    std::vector<uint32_t> next;
    for (const uint32_t id : frontier) {
      const RTreeNode& node = tree.node(id);
      HashU64(id, &hash);
      HashU64(node.level, &hash);
      HashU64(node.children.size(), &hash);
      HashU64(node.pages, &hash);
      if (node.is_leaf()) {
        HashU64(node.start, &hash);
        HashU64(node.count, &hash);
      } else {
        next.insert(next.end(), node.children.begin(), node.children.end());
      }
      HashFloatBits(node.box.lo(), &hash);
      HashFloatBits(node.box.hi(), &hash);
    }
    frontier = std::move(next);
  }
  return hash;
}

}  // namespace hdidx::index
