#include "index/va_file.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::index {

VaFile::VaFile(const data::Dataset* data, const Options& options)
    : data_(data), options_(options) {
  HDIDX_CHECK(options_.bits >= 1 && options_.bits <= 16);
  slices_ = static_cast<size_t>(1) << options_.bits;
  const size_t n = data_->size();
  const size_t d = data_->dim();
  HDIDX_CHECK(n > 0);

  // Equi-populated slice boundaries per dimension (empirical quantiles).
  boundaries_.resize(d);
  std::vector<float> column(n);
  for (size_t k = 0; k < d; ++k) {
    for (size_t i = 0; i < n; ++i) column[i] = data_->row(i)[k];
    std::sort(column.begin(), column.end());
    auto& bounds = boundaries_[k];
    bounds.resize(slices_ + 1);
    bounds[0] = column.front();
    for (size_t s = 1; s < slices_; ++s) {
      bounds[s] = column[s * n / slices_];
    }
    bounds[slices_] = column.back();
    // Monotonicity under duplicates.
    for (size_t s = 1; s <= slices_; ++s) {
      bounds[s] = std::max(bounds[s], bounds[s - 1]);
    }
  }

  approximation_.resize(n * d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data_->row(i);
    for (size_t k = 0; k < d; ++k) {
      approximation_[i * d + k] = Quantize(k, row[k]);
    }
  }
}

size_t VaFile::ApproximationBytes() const {
  return (data_->dim() * options_.bits + 7) / 8;
}

uint32_t VaFile::Quantize(size_t d, float value) const {
  const auto& bounds = boundaries_[d];
  // First slice whose upper boundary is >= value; slices are
  // [bounds[s], bounds[s+1]).
  const auto it = std::upper_bound(bounds.begin() + 1, bounds.end(), value);
  const size_t s = static_cast<size_t>(it - bounds.begin()) - 1;
  return static_cast<uint32_t>(std::min(s, slices_ - 1));
}

double VaFile::LowerBoundSq(std::span<const float> query, size_t row) const {
  const size_t d = data_->dim();
  double sum = 0.0;
  for (size_t k = 0; k < d; ++k) {
    const uint32_t s = approximation_[row * d + k];
    const float lo = boundaries_[k][s];
    const float hi = boundaries_[k][s + 1];
    double diff = 0.0;
    if (query[k] < lo) {
      diff = static_cast<double>(lo) - query[k];
    } else if (query[k] > hi) {
      diff = static_cast<double>(query[k]) - hi;
    }
    sum += diff * diff;
  }
  return sum;
}

double VaFile::UpperBoundSq(std::span<const float> query, size_t row) const {
  const size_t d = data_->dim();
  double sum = 0.0;
  for (size_t k = 0; k < d; ++k) {
    const uint32_t s = approximation_[row * d + k];
    const double to_lo =
        std::abs(static_cast<double>(query[k]) - boundaries_[k][s]);
    const double to_hi =
        std::abs(static_cast<double>(query[k]) - boundaries_[k][s + 1]);
    const double diff = std::max(to_lo, to_hi);
    sum += diff * diff;
  }
  return sum;
}

VaFile::SearchResult VaFile::SearchKnn(std::span<const float> query, size_t k,
                                       const io::DiskModel& disk) const {
  HDIDX_CHECK(k > 0);
  const size_t n = data_->size();
  SearchResult result;

  // Phase 1: sequential scan of the approximation file. Keep the k-th
  // smallest upper bound; collect (lower bound, row) pairs that beat it.
  std::priority_queue<double> upper_heap;  // max-heap of k smallest uppers
  std::vector<std::pair<double, size_t>> lower_bounds;
  lower_bounds.reserve(1024);
  for (size_t i = 0; i < n; ++i) {
    const double ub = UpperBoundSq(query, i);
    if (upper_heap.size() < k) {
      upper_heap.push(ub);
    } else if (ub < upper_heap.top()) {
      upper_heap.pop();
      upper_heap.push(ub);
    }
    lower_bounds.emplace_back(LowerBoundSq(query, i), i);
  }
  const double kth_upper = upper_heap.top();

  // Phase 2: visit candidates in increasing lower-bound order; stop once
  // the next lower bound exceeds the current exact k-th distance.
  std::sort(lower_bounds.begin(), lower_bounds.end());
  std::priority_queue<std::pair<double, size_t>> best;  // max-heap of k
  auto kth_exact = [&]() {
    return best.size() < k ? std::numeric_limits<double>::infinity()
                           : best.top().first;
  };
  for (const auto& [lb, row] : lower_bounds) {
    if (lb > kth_upper || lb > kth_exact()) break;
    ++result.candidates;
    const double d2 = geometry::SquaredL2(data_->row(row), query);
    if (best.size() < k) {
      best.emplace(d2, row);
    } else if (d2 < best.top().first) {
      best.pop();
      best.emplace(d2, row);
    }
  }

  result.neighbors.resize(best.size());
  for (size_t i = best.size(); i-- > 0;) {
    result.neighbors[i] = best.top().second;
    result.kth_distance = std::max(result.kth_distance,
                                   std::sqrt(best.top().first));
    best.pop();
  }

  // I/O: the approximation file is read once sequentially; every candidate
  // costs one random access to the exact-vector file.
  const size_t approx_pages =
      (n * ApproximationBytes() + disk.page_bytes - 1) / disk.page_bytes;
  result.io.page_seeks = 1 + result.candidates;
  result.io.page_transfers = approx_pages + result.candidates;
  return result;
}

}  // namespace hdidx::index
