#include "index/adaptive_build.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.h"

namespace hdidx::index {

size_t AdaptiveBucketLevel(const TreeTopology& topology, size_t root_level,
                           size_t stop_level, size_t memory_points) {
  HDIDX_CHECK(stop_level < root_level)
      << "no directory levels to place buckets under";
  const size_t upper = root_level - 1;
  if (memory_points == 0) return upper;
  for (size_t level = upper; level > stop_level; --level) {
    if (topology.SubtreeCapacity(level) <= memory_points / 2) return level;
  }
  return stop_level;
}

size_t MaxRootsUnder(const TreeTopology& topology, size_t level,
                     size_t bucket_level, size_t cap) {
  HDIDX_CHECK(level >= bucket_level);
  size_t roots = 1;
  for (size_t l = bucket_level; l < level; ++l) {
    if (roots >= cap) return cap;
    roots *= topology.dir_capacity();
  }
  return std::min(roots, cap);
}

struct SplitPlan::BuildState {
  const float* sample = nullptr;
  size_t dim = 0;
  double bucket_target = 1.0;
  SplitPlan* plan = nullptr;
};

int32_t SplitPlan::BuildCell(BuildState* state, std::vector<uint32_t>* subset,
                             double est_points) {
  SplitPlan* plan = state->plan;
  const auto make_bucket = [plan] {
    const int32_t id = static_cast<int32_t>(plan->nodes_.size());
    Node leaf;
    leaf.bucket = static_cast<int32_t>(plan->num_buckets_++);
    plan->nodes_.push_back(leaf);
    return id;
  };
  const double fanout_d =
      std::ceil(est_points / state->bucket_target - 1e-9);
  if (subset->size() <= 1 || fanout_d <= 1.0) return make_bucket();
  const size_t fanout = static_cast<size_t>(fanout_d);
  const size_t left_fanout = (fanout + 1) / 2;

  // Split dimension: max variance over the sample subset.
  const size_t d = state->dim;
  std::vector<double> sum(d, 0.0), sum_sq(d, 0.0);
  for (const uint32_t s : *subset) {
    const float* row = state->sample + s * d;
    for (size_t k = 0; k < d; ++k) {
      const double v = row[k];
      sum[k] += v;
      sum_sq[k] += v * v;
    }
  }
  const double n = static_cast<double>(subset->size());
  size_t split_dim = 0;
  double best_var = -1.0;
  for (size_t k = 0; k < d; ++k) {
    const double var = sum_sq[k] / n - (sum[k] / n) * (sum[k] / n);
    if (var > best_var) {
      best_var = var;
      split_dim = k;
    }
  }

  // Threshold: the subset value at the VAMSplit rank. The subset is then
  // partitioned by VALUE against it — the exact rule BucketOf applies — so
  // the plan's own sample routes exactly as the data will.
  const size_t rank = std::clamp<size_t>(
      static_cast<size_t>(std::llround(
          n * static_cast<double>(left_fanout) / static_cast<double>(fanout))),
      1, subset->size() - 1);
  std::vector<float> values(subset->size());
  for (size_t i = 0; i < subset->size(); ++i) {
    values[i] = state->sample[(*subset)[i] * d + split_dim];
  }
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(rank),
                   values.end());
  const float threshold = values[static_cast<ptrdiff_t>(rank)];

  std::vector<uint32_t> left, right;
  left.reserve(subset->size());
  right.reserve(subset->size());
  for (const uint32_t s : *subset) {
    if (state->sample[s * d + split_dim] < threshold) {
      left.push_back(s);
    } else {
      right.push_back(s);
    }
  }
  // No value separates the subset (duplicate-heavy or all-identical data):
  // this cell cannot split and becomes a bucket; the overfull-bucket path
  // of the build absorbs whatever the classification sends here.
  if (left.empty() || right.empty()) return make_bucket();

  const double est_left =
      est_points * static_cast<double>(left.size()) / n;
  const int32_t id = static_cast<int32_t>(plan->nodes_.size());
  Node node;
  node.dim = static_cast<uint32_t>(split_dim);
  node.threshold = threshold;
  plan->nodes_.push_back(node);
  subset->clear();
  subset->shrink_to_fit();
  const int32_t left_id = BuildCell(state, &left, est_left);
  const int32_t right_id = BuildCell(state, &right, est_points - est_left);
  plan->nodes_[static_cast<size_t>(id)].left = left_id;
  plan->nodes_[static_cast<size_t>(id)].right = right_id;
  return id;
}

SplitPlan SplitPlan::Build(const float* sample, size_t sample_count,
                           size_t dim, double total_points,
                           double bucket_target) {
  HDIDX_CHECK(bucket_target >= 1.0);
  SplitPlan plan;
  BuildState state;
  state.sample = sample;
  state.dim = dim;
  state.bucket_target = bucket_target;
  state.plan = &plan;
  std::vector<uint32_t> all(sample_count);
  for (size_t i = 0; i < sample_count; ++i) all[i] = static_cast<uint32_t>(i);
  const int32_t root = BuildCell(&state, &all, total_points);
  HDIDX_CHECK(root == 0 && plan.num_buckets_ >= 1);
  return plan;
}

std::vector<size_t> AdaptiveGroupBoundaries(size_t total_points,
                                            double bucket_capacity,
                                            size_t memory_points) {
  HDIDX_CHECK(total_points >= 1 && bucket_capacity >= 1.0);
  const size_t total_roots = static_cast<size_t>(std::ceil(
      static_cast<double>(total_points) / bucket_capacity - 1e-9));
  const size_t roots_per_group =
      memory_points == 0
          ? total_roots
          : std::max<size_t>(1, static_cast<size_t>(
                                    static_cast<double>(memory_points) /
                                    bucket_capacity));
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t k = roots_per_group; k < total_roots; k += roots_per_group) {
    const size_t pos = std::min(
        total_points,
        static_cast<size_t>(std::llround(static_cast<double>(k) *
                                         bucket_capacity)));
    if (pos > bounds.back() && pos < total_points) bounds.push_back(pos);
  }
  bounds.push_back(total_points);
  return bounds;
}

namespace {

/// Recursive packer for the upper directory levels (see PackUpperLevels).
class UpperPacker {
 public:
  UpperPacker(const BulkLoadOptions& options, size_t bucket_level,
              const std::vector<internal::AdaptiveRoot>& roots, RTree* tree)
      : options_(options),
        topo_(*options.topology),
        bucket_level_(bucket_level),
        roots_(roots),
        tree_(tree),
        prefix_(roots.size() + 1, 0) {
    for (size_t i = 0; i < roots.size(); ++i) {
      prefix_[i + 1] = prefix_[i] + roots[i].points;
    }
  }

  uint32_t Pack(size_t level, size_t a, size_t b) {
    if (level == bucket_level_) {
      HDIDX_CHECK(b - a == 1);
      return roots_[a].id;
    }
    const size_t m = b - a;
    const size_t max_child = MaxRootsUnder(topo_, level - 1, bucket_level_, m);
    const double scaled_cap = std::max(
        1.0, static_cast<double>(topo_.SubtreeCapacity(level - 1)) *
                 options_.scale);
    const size_t points = prefix_[b] - prefix_[a];
    // VAMSplit fanout on point counts, clamped to what the root counts make
    // feasible: every child needs at least one root and can absorb at most
    // max_child of them. When even dir_capacity children cannot absorb all
    // roots (pathological skew), the fanout exceeds the page capacity
    // rather than failing — an overfull directory beats no tree.
    const size_t f_points = static_cast<size_t>(std::ceil(
        static_cast<double>(points) / scaled_cap - 1e-9));
    const size_t f_lo = (m + max_child - 1) / max_child;
    const size_t f_hi = std::min(m, std::max(topo_.dir_capacity(), f_lo));
    const size_t fanout = std::clamp(f_points, f_lo, f_hi);
    std::vector<uint32_t> children;
    children.reserve(fanout);
    SplitRoots(level, a, b, fanout, &children);
    HDIDX_CHECK(!children.empty() && children.size() <= fanout)
        << "upper level " << level << " packed " << children.size()
        << " children for target fanout " << fanout;
    return tree_->AddDirectory(static_cast<uint32_t>(level),
                               std::move(children));
  }

 private:
  void SplitRoots(size_t level, size_t a, size_t b, size_t fanout,
                  std::vector<uint32_t>* children) {
    if (fanout <= 1 || b - a <= 1) {
      children->push_back(Pack(level - 1, a, b));
      return;
    }
    const size_t m = b - a;
    const size_t max_child = MaxRootsUnder(topo_, level - 1, bucket_level_, m);
    const size_t left_f = (fanout + 1) / 2;
    const size_t right_f = fanout - left_f;
    // Feasible root cuts: each side keeps at least one root per child and
    // at most max_child per child (f >= ceil(m / max_child) makes the
    // interval non-empty).
    size_t cut_lo = left_f;
    if (m > right_f * max_child) cut_lo = std::max(cut_lo, m - right_f * max_child);
    const size_t cut_hi = std::min(left_f * max_child, m - right_f);
    HDIDX_CHECK(cut_lo <= cut_hi);
    // Pick the boundary whose left point share is closest to balanced.
    const double target = static_cast<double>(prefix_[b] - prefix_[a]) *
                          static_cast<double>(left_f) /
                          static_cast<double>(fanout);
    size_t cut = cut_lo;
    double best = std::numeric_limits<double>::infinity();
    for (size_t c = cut_lo; c <= cut_hi; ++c) {
      const double delta = std::abs(
          static_cast<double>(prefix_[a + c] - prefix_[a]) - target);
      if (delta < best) {
        best = delta;
        cut = c;
      }
    }
    SplitRoots(level, a, a + cut, left_f, children);
    SplitRoots(level, a + cut, b, right_f, children);
  }

  const BulkLoadOptions& options_;
  const TreeTopology& topo_;
  const size_t bucket_level_;
  const std::vector<internal::AdaptiveRoot>& roots_;
  RTree* tree_;
  std::vector<size_t> prefix_;
};

}  // namespace

uint32_t PackUpperLevels(const BulkLoadOptions& options, size_t bucket_level,
                         size_t root_level,
                         const std::vector<internal::AdaptiveRoot>& roots,
                         RTree* tree) {
  HDIDX_CHECK(!roots.empty() && bucket_level < root_level);
  UpperPacker packer(options, bucket_level, roots, tree);
  return packer.Pack(root_level, 0, roots.size());
}

}  // namespace hdidx::index
