#include "index/tree_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace hdidx::index {

namespace {

constexpr char kMagic[4] = {'H', 'D', 'R', 'T'};
constexpr uint32_t kVersion = 1;

struct Header {
  char magic[4];
  uint32_t version;
  uint64_t dim;
  uint64_t num_nodes;
  uint64_t order_size;
  uint32_t root;
  uint32_t reserved;
};

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

bool WriteTree(const RTree& tree, const std::string& path,
               std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot open for writing: " + path;
    return false;
  }
  Header header;
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.dim = tree.dim();
  header.num_nodes = tree.num_nodes();
  header.order_size = tree.order().size();
  header.root = tree.root();
  header.reserved = 0;
  WritePod(out, header);

  if (!tree.order().empty()) {
    out.write(reinterpret_cast<const char*>(tree.order().data()),
              static_cast<std::streamsize>(tree.order().size() *
                                           sizeof(uint32_t)));
  }
  for (uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    WritePod(out, node.level);
    WritePod(out, node.start);
    WritePod(out, node.count);
    const uint32_t num_children = static_cast<uint32_t>(node.children.size());
    WritePod(out, num_children);
    if (num_children > 0) {
      out.write(reinterpret_cast<const char*>(node.children.data()),
                static_cast<std::streamsize>(num_children * sizeof(uint32_t)));
    }
    const uint8_t has_box = node.box.empty() ? 0 : 1;
    WritePod(out, has_box);
    if (has_box) {
      out.write(reinterpret_cast<const char*>(node.box.lo().data()),
                static_cast<std::streamsize>(tree.dim() * sizeof(float)));
      out.write(reinterpret_cast<const char*>(node.box.hi().data()),
                static_cast<std::streamsize>(tree.dim() * sizeof(float)));
    }
  }
  if (!out) {
    *error = "short write: " + path;
    return false;
  }
  return true;
}

std::optional<RTree> ReadTree(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *error = "cannot open for reading: " + path;
    return std::nullopt;
  }
  Header header;
  if (!ReadPod(in, &header) ||
      std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    *error = "bad magic or truncated header: " + path;
    return std::nullopt;
  }
  if (header.version != kVersion || header.dim == 0) {
    *error = "unsupported version or dimensionality in " + path;
    return std::nullopt;
  }
  const size_t dim = static_cast<size_t>(header.dim);
  RTree tree(dim);

  std::vector<uint32_t> order(header.order_size);
  if (!order.empty()) {
    in.read(reinterpret_cast<char*>(order.data()),
            static_cast<std::streamsize>(order.size() * sizeof(uint32_t)));
    if (!in) {
      *error = "truncated order array: " + path;
      return std::nullopt;
    }
  }

  std::vector<float> lo(dim), hi(dim);
  for (uint64_t id = 0; id < header.num_nodes; ++id) {
    uint32_t level, start, count, num_children;
    if (!ReadPod(in, &level) || !ReadPod(in, &start) || !ReadPod(in, &count) ||
        !ReadPod(in, &num_children)) {
      *error = "truncated node header: " + path;
      return std::nullopt;
    }
    std::vector<uint32_t> children(num_children);
    if (num_children > 0) {
      in.read(reinterpret_cast<char*>(children.data()),
              static_cast<std::streamsize>(num_children * sizeof(uint32_t)));
    }
    uint8_t has_box = 0;
    if (!ReadPod(in, &has_box)) {
      *error = "truncated node: " + path;
      return std::nullopt;
    }
    geometry::BoundingBox box(dim);
    if (has_box) {
      in.read(reinterpret_cast<char*>(lo.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
      in.read(reinterpret_cast<char*>(hi.data()),
              static_cast<std::streamsize>(dim * sizeof(float)));
      if (!in) {
        *error = "truncated box: " + path;
        return std::nullopt;
      }
      box = geometry::BoundingBox(lo, hi);
    }
    if (num_children == 0) {
      tree.AddLeaf(std::move(box), level, start, count);
    } else {
      // Children must already exist (writer emits construction order).
      for (uint32_t child : children) {
        if (child >= tree.num_nodes()) {
          *error = "forward child reference in " + path;
          return std::nullopt;
        }
      }
      tree.AddDirectory(level, std::move(children));
    }
  }
  if (header.root >= tree.num_nodes()) {
    *error = "root out of range in " + path;
    return std::nullopt;
  }
  tree.SetRoot(header.root);
  tree.SetOrder(std::move(order));
  return tree;
}

}  // namespace hdidx::index
