#include "index/rstar.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/check.h"

namespace hdidx::index {

namespace {

/// Overlap (intersection volume) of two boxes; 0 when disjoint or empty.
double OverlapVolume(const geometry::BoundingBox& a,
                     const geometry::BoundingBox& b) {
  if (a.empty() || b.empty()) return 0.0;
  double v = 1.0;
  for (size_t d = 0; d < a.dim(); ++d) {
    const double lo = std::max(a.lo()[d], b.lo()[d]);
    const double hi = std::min(a.hi()[d], b.hi()[d]);
    if (hi <= lo) return 0.0;
    v *= hi - lo;
  }
  return v;
}

double AreaEnlargement(const geometry::BoundingBox& box,
                       const geometry::BoundingBox& extra) {
  return geometry::BoundingBox::Union(box, extra).Volume() - box.Volume();
}

double CenterDistanceSq(const geometry::BoundingBox& a,
                        const geometry::BoundingBox& b) {
  double s = 0.0;
  for (size_t d = 0; d < a.dim(); ++d) {
    const double diff =
        static_cast<double>(a.Center(d)) - static_cast<double>(b.Center(d));
    s += diff * diff;
  }
  return s;
}

}  // namespace

RStarTree::RStarTree(const data::Dataset* data, const Options& options)
    : data_(data), options_(options) {
  HDIDX_CHECK(options_.max_data_entries >= 4);
  HDIDX_CHECK(options_.max_dir_entries >= 4);
  nodes_.emplace_back(data_->dim());
  root_ = 0;
  reinserted_at_level_.assign(4, false);
}

RStarTree RStarTree::BuildByInsertion(const data::Dataset& data,
                                      const Options& options) {
  RStarTree tree(&data, options);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(static_cast<uint32_t>(i));
  }
  return tree;
}

geometry::BoundingBox RStarTree::EntryBox(const Node& node,
                                          uint32_t entry) const {
  if (node.is_leaf) {
    geometry::BoundingBox box(data_->dim());
    box.Extend(data_->row(entry));
    return box;
  }
  return nodes_[entry].box;
}

void RStarTree::RecomputeBox(uint32_t node_id) {
  Node& node = nodes_[node_id];
  node.box.Clear();
  for (uint32_t entry : node.entries) {
    node.box.ExtendBox(EntryBox(node, entry));
  }
}

size_t RStarTree::num_leaves() const {
  size_t count = 0;
  for (const Node& node : nodes_) count += node.is_leaf ? 1 : 0;
  return count;
}

void RStarTree::Insert(uint32_t row) {
  std::fill(reinserted_at_level_.begin(), reinserted_at_level_.end(), false);
  geometry::BoundingBox box(data_->dim());
  box.Extend(data_->row(row));
  InsertEntry(box, row, /*target_level=*/1, /*allow_reinsert=*/true);
  ++num_points_;
}

uint32_t RStarTree::ChooseSubtree(const geometry::BoundingBox& box,
                                  size_t target_level,
                                  std::vector<uint32_t>* path) {
  uint32_t current = root_;
  size_t level = height_;
  while (level > target_level) {
    path->push_back(current);
    const Node& node = nodes_[current];
    HDIDX_CHECK(!node.is_leaf);
    // The O(fanout^2) minimum-overlap rule is only worth its cost at
    // ordinary fanouts; for very wide nodes (X-tree supernodes) fall back
    // to the area-enlargement rule, as production R* implementations do.
    const bool children_are_leaves = nodes_[node.entries[0]].is_leaf &&
                                     node.entries.size() <= 32;

    uint32_t best_child = node.entries[0];
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (uint32_t child : node.entries) {
      const geometry::BoundingBox& child_box = nodes_[child].box;
      double primary;
      const double enlargement = AreaEnlargement(child_box, box);
      if (children_are_leaves) {
        // Minimum overlap enlargement against the siblings.
        const geometry::BoundingBox enlarged =
            geometry::BoundingBox::Union(child_box, box);
        double overlap_before = 0.0, overlap_after = 0.0;
        for (uint32_t other : node.entries) {
          if (other == child) continue;
          overlap_before += OverlapVolume(child_box, nodes_[other].box);
          overlap_after += OverlapVolume(enlarged, nodes_[other].box);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = enlargement;
      }
      const double secondary = children_are_leaves ? enlargement : 0.0;
      const double area = child_box.Volume();
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           area < best_area)) {
        best_primary = primary;
        best_secondary = secondary;
        best_area = area;
        best_child = child;
      }
    }
    current = best_child;
    --level;
  }
  return current;
}

void RStarTree::InsertEntry(const geometry::BoundingBox& box, uint32_t entry,
                            size_t target_level, bool allow_reinsert) {
  std::vector<uint32_t> path;
  const uint32_t target = ChooseSubtree(box, target_level, &path);
  nodes_[target].entries.push_back(entry);
  nodes_[target].box.ExtendBox(box);
  for (uint32_t ancestor : path) {
    nodes_[ancestor].box.ExtendBox(box);
  }
  if (nodes_[target].entries.size() > MaxEntries(nodes_[target])) {
    path.push_back(target);
    OverflowTreatment(std::move(path), path.size() - 1, target_level,
                      allow_reinsert);
  }
}

void RStarTree::OverflowTreatment(std::vector<uint32_t> path, size_t path_pos,
                                  size_t level, bool allow_reinsert) {
  const uint32_t node_id = path[path_pos];
  if (level >= reinserted_at_level_.size()) {
    reinserted_at_level_.resize(level + 1, false);
  }
  if (node_id != root_ && allow_reinsert && !reinserted_at_level_[level]) {
    reinserted_at_level_[level] = true;
    ForcedReinsert(node_id, level, std::move(path), path_pos);
    return;
  }

  const uint32_t sibling = SplitNode(node_id);
  if (sibling == kNoSplit) return;  // became a supernode
  if (node_id == root_) {
    // Grow the tree: a new root over the two halves.
    Node new_root(data_->dim());
    new_root.is_leaf = false;
    new_root.entries = {node_id, sibling};
    new_root.box = geometry::BoundingBox::Union(nodes_[node_id].box,
                                                nodes_[sibling].box);
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<uint32_t>(nodes_.size() - 1);
    ++height_;
    return;
  }
  const uint32_t parent = path[path_pos - 1];
  nodes_[parent].entries.push_back(sibling);
  nodes_[parent].box.ExtendBox(nodes_[sibling].box);
  if (nodes_[parent].entries.size() > MaxEntries(nodes_[parent])) {
    OverflowTreatment(std::move(path), path_pos - 1, level + 1,
                      allow_reinsert);
  }
}

uint32_t RStarTree::SplitNode(uint32_t node_id) {
  Node& node = nodes_[node_id];
  const size_t total = node.entries.size();
  const size_t max_entries = MaxEntries(node);
  HDIDX_CHECK(total == max_entries + 1);
  const size_t m = std::max<size_t>(
      1, static_cast<size_t>(options_.min_fill *
                             static_cast<double>(max_entries + 1)));
  const size_t dim = data_->dim();

  // Cache entry boxes once.
  std::vector<geometry::BoundingBox> boxes;
  boxes.reserve(total);
  for (uint32_t entry : node.entries) boxes.push_back(EntryBox(node, entry));

  // ChooseSplitAxis: the axis (and lo/hi sort key) minimizing the sum of
  // margins over all legal distributions.
  std::vector<size_t> order(total);
  std::vector<size_t> best_order;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  std::vector<geometry::BoundingBox> prefix(total, geometry::BoundingBox(dim));
  std::vector<geometry::BoundingBox> suffix(total, geometry::BoundingBox(dim));
  auto evaluate_order = [&]() {
    prefix[0] = boxes[order[0]];
    for (size_t i = 1; i < total; ++i) {
      prefix[i] = geometry::BoundingBox::Union(prefix[i - 1], boxes[order[i]]);
    }
    suffix[total - 1] = boxes[order[total - 1]];
    for (size_t i = total - 1; i-- > 0;) {
      suffix[i] = geometry::BoundingBox::Union(suffix[i + 1], boxes[order[i]]);
    }
    double margin_sum = 0.0;
    for (size_t k = m; k + m <= total; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    return margin_sum;
  };

  for (size_t axis = 0; axis < dim; ++axis) {
    for (bool by_hi : {false, true}) {
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const float ka = by_hi ? boxes[a].hi()[axis] : boxes[a].lo()[axis];
        const float kb = by_hi ? boxes[b].hi()[axis] : boxes[b].lo()[axis];
        return ka < kb;
      });
      const double margin_sum = evaluate_order();
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_order = order;
      }
    }
  }

  // ChooseSplitIndex on the winning order: minimum overlap, then area.
  order = best_order;
  prefix[0] = boxes[order[0]];
  for (size_t i = 1; i < total; ++i) {
    prefix[i] = geometry::BoundingBox::Union(prefix[i - 1], boxes[order[i]]);
  }
  suffix[total - 1] = boxes[order[total - 1]];
  for (size_t i = total - 1; i-- > 0;) {
    suffix[i] = geometry::BoundingBox::Union(suffix[i + 1], boxes[order[i]]);
  }
  size_t best_k = m;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t k = m; k + m <= total; ++k) {
    const double overlap = OverlapVolume(prefix[k - 1], suffix[k]);
    const double area = prefix[k - 1].Volume() + suffix[k].Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  // X-tree supernode check: if even the best directory split overlaps too
  // much, splitting would degrade every future query through this region —
  // keep the node whole across several pages instead. Overlap is measured
  // as the fraction of child entries touching BOTH halves: volume ratios
  // vanish exponentially with the dimensionality (a single thin dimension
  // crushes the intersection volume), while the entry-based measure tracks
  // how many children a descending query would have to follow twice.
  if (!node.is_leaf && options_.supernode_overlap_threshold >= 0.0) {
    const geometry::BoundingBox& left_box = prefix[best_k - 1];
    const geometry::BoundingBox& right_box = suffix[best_k];
    size_t in_both = 0;
    for (const auto& entry_box : boxes) {
      if (entry_box.Intersects(left_box) && entry_box.Intersects(right_box)) {
        ++in_both;
      }
    }
    const double fraction =
        static_cast<double>(in_both) / static_cast<double>(total);
    if (fraction > options_.supernode_overlap_threshold) {
      node.supernode = true;
      return kNoSplit;
    }
  }

  // Materialize the two halves.
  Node sibling(dim);
  sibling.is_leaf = node.is_leaf;
  std::vector<uint32_t> left_entries;
  left_entries.reserve(best_k);
  for (size_t i = 0; i < best_k; ++i) {
    left_entries.push_back(node.entries[order[i]]);
  }
  for (size_t i = best_k; i < total; ++i) {
    sibling.entries.push_back(node.entries[order[i]]);
  }
  node.entries = std::move(left_entries);
  const uint32_t sibling_id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::move(sibling));
  RecomputeBox(node_id);
  RecomputeBox(sibling_id);
  return sibling_id;
}

void RStarTree::ForcedReinsert(uint32_t node_id, size_t level,
                               std::vector<uint32_t> path, size_t path_pos) {
  Node& node = nodes_[node_id];
  const size_t total = node.entries.size();
  const size_t reinsert_count = std::max<size_t>(
      1, static_cast<size_t>(options_.reinsert_fraction *
                             static_cast<double>(total)));

  // Sort entries by decreasing center distance from the node's center; the
  // farthest `reinsert_count` leave the node.
  std::vector<std::pair<double, uint32_t>> ranked;
  ranked.reserve(total);
  for (uint32_t entry : node.entries) {
    ranked.emplace_back(CenterDistanceSq(EntryBox(node, entry), node.box),
                        entry);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  node.entries.clear();
  for (size_t i = reinsert_count; i < total; ++i) {
    node.entries.push_back(ranked[i].second);
  }
  RecomputeBox(node_id);
  // Ancestor boxes may shrink after removal: recompute bottom-up.
  for (size_t i = path_pos; i-- > 0;) {
    RecomputeBox(path[i]);
  }

  // Close reinsert: nearest evicted entries first.
  for (size_t i = reinsert_count; i-- > 0;) {
    const uint32_t entry = ranked[i].second;
    geometry::BoundingBox box(data_->dim());
    if (nodes_[node_id].is_leaf) {
      box.Extend(data_->row(entry));
    } else {
      box = nodes_[entry].box;
    }
    InsertEntry(box, entry, level, /*allow_reinsert=*/true);
  }
}

size_t RStarTree::CountSupernodes() const {
  size_t count = 0;
  for (const Node& node : nodes_) count += node.supernode ? 1 : 0;
  return count;
}

RTree RStarTree::ToRTree() const {
  RTree tree(data_->dim());
  if (num_points_ == 0) return tree;
  std::vector<uint32_t> order;
  order.reserve(num_points_);

  // Post-order DFS building the snapshot; returns (snapshot id, level).
  struct Result {
    uint32_t id;
    uint32_t level;
  };
  auto convert = [&](auto&& self, uint32_t node_id) -> Result {
    const Node& node = nodes_[node_id];
    if (node.is_leaf) {
      const uint32_t start = static_cast<uint32_t>(order.size());
      for (uint32_t row : node.entries) order.push_back(row);
      return {tree.AddLeaf(node.box, 1, start,
                           static_cast<uint32_t>(node.entries.size())),
              1};
    }
    std::vector<uint32_t> children;
    children.reserve(node.entries.size());
    uint32_t child_level = 1;
    for (uint32_t child : node.entries) {
      const Result r = self(self, child);
      children.push_back(r.id);
      child_level = std::max(child_level, r.level);
    }
    const size_t fanout = children.size();
    const uint32_t id = tree.AddDirectory(child_level + 1,
                                          std::move(children));
    if (node.supernode) {
      // A supernode occupies as many directory pages as its fanout needs.
      tree.SetNodePages(id, static_cast<uint32_t>(
          (fanout + options_.max_dir_entries - 1) /
          options_.max_dir_entries));
    }
    return {id, child_level + 1};
  };
  const Result root = convert(convert, root_);
  tree.SetRoot(root.id);
  tree.SetOrder(std::move(order));
  return tree;
}

bool RStarTree::CheckInvariants() const {
  if (num_points_ == 0) return nodes_[root_].entries.empty();
  std::vector<char> seen(data_->size(), 0);
  size_t leaf_points = 0;
  // DFS from the root; every reachable node must satisfy capacity and
  // containment.
  std::vector<uint32_t> stack = {root_};
  std::vector<char> visited(nodes_.size(), 0);
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (visited[id]) return false;  // DAG/cycle corruption
    visited[id] = 1;
    const Node& node = nodes_[id];
    if (node.entries.empty()) return false;
    if (node.entries.size() > MaxEntries(node)) return false;
    for (uint32_t entry : node.entries) {
      const geometry::BoundingBox box = EntryBox(node, entry);
      if (!(geometry::BoundingBox::Union(node.box, box) == node.box)) {
        return false;
      }
      if (node.is_leaf) {
        if (entry >= data_->size() || seen[entry]) return false;
        seen[entry] = 1;
        ++leaf_points;
      } else {
        stack.push_back(entry);
      }
    }
  }
  return leaf_points == num_points_;
}

}  // namespace hdidx::index
