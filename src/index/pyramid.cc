#include "index/pyramid.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "common/check.h"
#include "geometry/distance.h"

namespace hdidx::index {

PyramidIndex::PyramidIndex(const data::Dataset* data, size_t page_capacity)
    : data_(data), page_capacity_(page_capacity) {
  HDIDX_CHECK(page_capacity_ >= 1);
  HDIDX_CHECK(!data_->empty());
  const size_t d = data_->dim();

  // Normalization into [0,1]^d from the data's bounding box.
  const geometry::BoundingBox bounds = data_->Bounds();
  norm_lo_.resize(d);
  norm_inv_extent_.resize(d);
  for (size_t k = 0; k < d; ++k) {
    norm_lo_[k] = bounds.lo()[k];
    const double extent = bounds.Extent(k);
    norm_inv_extent_[k] = extent > 0.0 ? 1.0 / extent : 0.0;
  }

  values_.reserve(data_->size());
  for (size_t i = 0; i < data_->size(); ++i) {
    values_.emplace_back(PyramidValue(data_->row(i)),
                         static_cast<uint32_t>(i));
  }
  std::sort(values_.begin(), values_.end());
}

size_t PyramidIndex::num_pages() const {
  return (values_.size() + page_capacity_ - 1) / page_capacity_;
}

void PyramidIndex::Normalize(std::span<const float> point,
                             std::vector<double>* out) const {
  const size_t d = data_->dim();
  out->resize(d);
  for (size_t k = 0; k < d; ++k) {
    (*out)[k] = std::clamp(
        (static_cast<double>(point[k]) - norm_lo_[k]) * norm_inv_extent_[k],
        0.0, 1.0);
  }
}

double PyramidIndex::PyramidValue(std::span<const float> point) const {
  std::vector<double> q;
  Normalize(point, &q);
  const size_t d = data_->dim();
  // Dimension of maximal center offset decides the pyramid; the sign
  // decides which of its two pyramids.
  size_t j_max = 0;
  double offset_max = 0.0;
  for (size_t k = 0; k < d; ++k) {
    const double offset = std::abs(q[k] - 0.5);
    if (offset > offset_max) {
      offset_max = offset;
      j_max = k;
    }
  }
  const size_t pyramid =
      q[j_max] - 0.5 < 0.0 ? j_max : j_max + d;  // negative side first
  return static_cast<double>(pyramid) + offset_max;
}

std::vector<std::pair<double, double>> PyramidIndex::QueryIntervals(
    std::span<const float> lo_norm, std::span<const float> hi_norm) const {
  const size_t d = data_->dim();
  // Offsets relative to the center, and per-dimension minimal |offset|.
  std::vector<double> q_min(d), q_max(d), min_abs(d);
  for (size_t k = 0; k < d; ++k) {
    q_min[k] = std::clamp(static_cast<double>(lo_norm[k]), 0.0, 1.0) - 0.5;
    q_max[k] = std::clamp(static_cast<double>(hi_norm[k]), 0.0, 1.0) - 0.5;
    min_abs[k] = (q_min[k] <= 0.0 && q_max[k] >= 0.0)
                     ? 0.0
                     : std::min(std::abs(q_min[k]), std::abs(q_max[k]));
  }

  std::vector<std::pair<double, double>> intervals;
  for (size_t j = 0; j < d; ++j) {
    double other_min = 0.0;
    for (size_t l = 0; l < d; ++l) {
      if (l != j) other_min = std::max(other_min, min_abs[l]);
    }
    // Negative-side pyramid j: heights h = -offset_j with offset_j < 0.
    if (q_min[j] < 0.0) {
      const double h_hi = -q_min[j];
      const double h_lo = std::max({0.0, -q_max[j], other_min});
      if (h_lo <= h_hi) {
        intervals.emplace_back(static_cast<double>(j) + h_lo,
                               static_cast<double>(j) + h_hi);
      }
    }
    // Positive-side pyramid j + d.
    if (q_max[j] > 0.0) {
      const double h_hi = q_max[j];
      const double h_lo = std::max({0.0, q_min[j], other_min});
      if (h_lo <= h_hi) {
        intervals.emplace_back(static_cast<double>(j + d) + h_lo,
                               static_cast<double>(j + d) + h_hi);
      }
    }
  }
  return intervals;
}

size_t PyramidIndex::RangeQueryPages(std::span<const float> box_lo,
                                     std::span<const float> box_hi,
                                     io::IoStats* io) const {
  std::vector<double> lo_n, hi_n;
  Normalize(box_lo, &lo_n);
  Normalize(box_hi, &hi_n);
  std::vector<float> lo_f(lo_n.begin(), lo_n.end());
  std::vector<float> hi_f(hi_n.begin(), hi_n.end());
  // Note: Normalize clamps, so the spans below are already in [0,1].
  const auto intervals = QueryIntervals(lo_f, hi_f);

  // Pages overlapping any interval (deduplicated).
  std::vector<std::pair<size_t, size_t>> page_ranges;
  for (const auto& [lo_v, hi_v] : intervals) {
    const auto first = std::lower_bound(
        values_.begin(), values_.end(),
        std::make_pair(lo_v, std::numeric_limits<uint32_t>::min()));
    const auto last = std::upper_bound(
        values_.begin(), values_.end(),
        std::make_pair(hi_v, std::numeric_limits<uint32_t>::max()));
    if (first == last) continue;
    const size_t first_page =
        static_cast<size_t>(first - values_.begin()) / page_capacity_;
    const size_t last_page =
        static_cast<size_t>(last - values_.begin() - 1) / page_capacity_;
    page_ranges.emplace_back(first_page, last_page);
  }
  std::sort(page_ranges.begin(), page_ranges.end());
  size_t pages = 0;
  size_t next_free = 0;
  bool any = false;
  for (const auto& [first_page, last_page] : page_ranges) {
    const size_t begin = any ? std::max(first_page, next_free) : first_page;
    if (!any || begin <= last_page) {
      if (begin <= last_page) {
        pages += last_page - begin + 1;
        if (io != nullptr) {
          ++io->page_seeks;  // jump to the interval's first page
          io->page_transfers += last_page - begin + 1;
        }
        next_free = last_page + 1;
        any = true;
      }
    }
  }
  return pages;
}

PyramidIndex::SearchResult PyramidIndex::SearchKnn(
    std::span<const float> query, size_t k) const {
  HDIDX_CHECK(k >= 1);
  const size_t d = data_->dim();
  SearchResult result;

  // Initial radius guess: the average per-dimension extent scaled by the
  // expected volume share of k points; doubled until the k-NN ball is
  // covered by the searched box.
  const geometry::BoundingBox bounds = data_->Bounds();
  double mean_extent = 0.0;
  for (size_t dim = 0; dim < d; ++dim) mean_extent += bounds.Extent(dim);
  mean_extent /= static_cast<double>(d);
  double radius = std::max(1e-6, 0.05 * mean_extent);

  std::vector<float> lo(d), hi(d);
  for (int iteration = 0; iteration < 64; ++iteration) {
    ++result.iterations;
    for (size_t dim = 0; dim < d; ++dim) {
      lo[dim] = static_cast<float>(query[dim] - radius);
      hi[dim] = static_cast<float>(query[dim] + radius);
    }
    io::IoStats io;
    result.page_reads += RangeQueryPages(lo, hi, &io);

    // Candidates: rows in the affected value intervals whose box contains
    // them (the page scan in a real system; exact distances here).
    std::vector<double> lo_n, hi_n;
    Normalize(lo, &lo_n);
    Normalize(hi, &hi_n);
    std::vector<float> lo_f(lo_n.begin(), lo_n.end());
    std::vector<float> hi_f(hi_n.begin(), hi_n.end());
    const auto intervals = QueryIntervals(lo_f, hi_f);

    std::priority_queue<std::pair<double, size_t>> best;
    for (const auto& [lo_v, hi_v] : intervals) {
      const auto first = std::lower_bound(
          values_.begin(), values_.end(),
          std::make_pair(lo_v, std::numeric_limits<uint32_t>::min()));
      const auto last = std::upper_bound(
          values_.begin(), values_.end(),
          std::make_pair(hi_v, std::numeric_limits<uint32_t>::max()));
      for (auto it = first; it != last; ++it) {
        const double d2 = geometry::SquaredL2(data_->row(it->second), query);
        if (best.size() < k) {
          best.emplace(d2, it->second);
        } else if (d2 < best.top().first) {
          best.pop();
          best.emplace(d2, it->second);
        }
      }
    }
    if (best.size() == k && std::sqrt(best.top().first) <= radius) {
      // The k-NN ball lies inside the searched box: exact result.
      result.neighbors.resize(k);
      result.kth_distance = std::sqrt(best.top().first);
      for (size_t i = k; i-- > 0;) {
        result.neighbors[i] = best.top().second;
        best.pop();
      }
      return result;
    }
    radius *= 2.0;
  }
  return result;  // pathological input: empty result after 64 doublings
}

}  // namespace hdidx::index
