#include "index/sstree.h"

#include <vector>

#include "common/check.h"

namespace hdidx::index {

std::vector<geometry::BoundingSphere> ComputeLeafSpheres(
    const RTree& tree, const data::Dataset& data) {
  std::vector<geometry::BoundingSphere> spheres;
  spheres.reserve(tree.num_leaves());
  const size_t dim = data.dim();
  std::vector<float> buffer;
  for (uint32_t id : tree.leaf_ids()) {
    const RTreeNode& node = tree.node(id);
    buffer.clear();
    buffer.reserve(node.count * dim);
    for (uint32_t pos = node.start; pos < node.start + node.count; ++pos) {
      const auto row = data.row(tree.OrderedIndex(pos));
      buffer.insert(buffer.end(), row.begin(), row.end());
    }
    spheres.push_back(
        geometry::BoundingSphere::OfPoints(buffer, node.count, dim));
  }
  return spheres;
}

size_t CountSphereAccesses(
    const std::vector<geometry::BoundingSphere>& leaves,
    std::span<const float> center, double radius) {
  HDIDX_CHECK(radius >= 0.0) << "query sphere radius must be non-negative";
  size_t count = 0;
  for (const auto& sphere : leaves) {
    if (sphere.IntersectsSphere(center, radius)) ++count;
  }
  return count;
}

}  // namespace hdidx::index
