#ifndef HDIDX_INDEX_BULK_LOADER_H_
#define HDIDX_INDEX_BULK_LOADER_H_

#include <cstdint>
#include <vector>

#include "common/parallel.h"
#include "common/thread_annotations.h"
#include "data/dataset.h"
#include "geometry/bounding_box.h"
#include "index/rtree.h"
#include "index/topology.h"

namespace hdidx::index {

/// Dimension-selection strategy for the recursive binary splits.
///
/// The level-wise loader always places split *positions* at multiples of
/// the (scaled) child subtree capacity — pages must come out full — so the
/// strategy only chooses the split *dimension*:
///  * kMaxVariance: dimension of largest variance over the range — the
///    VAMSplit R*-tree of the paper (White & Jain [34]).
///  * kMaxExtent: dimension of largest MBR side — classic R-tree packing.
///  * kRoundRobin: cycle through dimensions by split depth — the k-d-B-tree
///    family (Robinson [29]), one more member of the Section 4.7 group the
///    prediction technique covers.
///  * kAdaptiveSample: sample-first bulk loading (Fast and Adaptive Bulk
///    Loading, arXiv 2409.09447): a cheap sample pass chooses the whole
///    split-plane tree adaptively to the data's skew up front, then a single
///    streaming pass classifies every point into its output partition —
///    replacing the multi-pass external quickselect. Within partitions and
///    for sources with no native streaming path, splits fall back to
///    max-variance.
enum class SplitStrategy {
  kMaxVariance,
  kMaxExtent,
  kRoundRobin,
  kAdaptiveSample,
};

/// Tuning for SplitStrategy::kAdaptiveSample. All of it is part of the
/// deterministic layout function: two builds with equal options (and equal
/// data) produce bit-identical trees regardless of thread count or
/// read-ahead window.
struct AdaptiveOptions {
  /// Fraction of the points drawn (without replacement, Rng(seed)) by the
  /// split-plane sample pass.
  double sampling_fraction = 0.05;
  /// Lower bound on the sample size (clamped to the point count).
  size_t min_sample_points = 256;
  /// Seed of the sample draw.
  uint64_t seed = 1;
  /// Memory budget in points used to place the bucket level (the level
  /// whose subtrees are classified as whole units): the largest level whose
  /// unscaled subtree capacity is at most half this budget. 0 means
  /// unconstrained (buckets directly under the root). External builds set
  /// this to their window size M; a mini-index predicting an external
  /// adaptive build must carry the same value so both derive the same
  /// bucket level (the capacities compared are unscaled, so the choice is
  /// sampling-fraction invariant).
  size_t memory_points = 0;
  /// External builds: how many classification chunks the async read-ahead
  /// layer keeps in flight ahead of the consumer (io/read_ahead.h). 0
  /// disables prefetch. Never affects the layout or the IoStats tally —
  /// only wall-clock overlap.
  size_t read_ahead_window = 4;
};

struct BulkLoadOptions;

/// Abstraction over where the points being bulk-loaded live.
///
/// The level-wise VAMSplit algorithm needs exactly three primitives on a
/// contiguous point range: find the dimension of maximum variance, partition
/// the range around a position along a dimension (Hoare's find), and compute
/// the MBR of a range. The in-memory source implements them over a Dataset
/// and an index permutation; the external source (index/external_build.h)
/// implements them over a simulated PagedFile, charging every disk access —
/// the same construction code path then yields both the paper's "on-disk
/// index tree" and the predictors' in-memory mini-indexes.
class PointSource {
 public:
  /// Thread-safety contract of the three range primitives.
  ///
  ///  * kSingleOwner: only one thread may call into the source, and the
  ///    *order* of calls is part of its observable behavior. This is the
  ///    default, and the external source's gate: its PagedFile I/O charging
  ///    is order-sensitive (a seek is charged only on non-adjacent access)
  ///    and its M-point memory window is shared state, so the simulated
  ///    disk costs stay exactly the paper's numbers only when the serial
  ///    recursion drives it.
  ///  * kDisjointRanges: MaxVarianceDim / ChooseSplitDim / Partition /
  ///    ComputeBox may run concurrently from several threads as long as
  ///    their [lo, hi) ranges do not overlap, and each call's result
  ///    depends only on the range contents — never on what other ranges
  ///    are doing. The in-memory source satisfies this: calls read the
  ///    immutable dataset and touch only order_[lo, hi).
  enum class Concurrency { kSingleOwner, kDisjointRanges };

  virtual ~PointSource() = default;

  /// See Concurrency. BulkLoad only fans out over sources that declare
  /// kDisjointRanges; everything else gets the serial recursion regardless
  /// of the execution context it was handed.
  virtual Concurrency concurrency() const { return Concurrency::kSingleOwner; }

  virtual size_t dim() const = 0;
  virtual size_t size() const = 0;

  /// Dimension with the largest variance over points [lo, hi).
  HDIDX_BUILD_ONLY virtual size_t MaxVarianceDim(size_t lo, size_t hi) = 0;

  /// Dimension chosen by `strategy` for a split at binary depth `depth`
  /// within its node. The default implements kMaxExtent via ComputeBox and
  /// kRoundRobin via the depth; sources may override with cheaper paths.
  HDIDX_BUILD_ONLY virtual size_t ChooseSplitDim(size_t lo, size_t hi,
                                                 SplitStrategy strategy,
                                                 size_t depth);

  /// Rearranges [lo, hi) so that every point in [lo, pos) is <= every point
  /// in [pos, hi) along `split_dim` (nth_element semantics).
  /// Requires lo < pos < hi.
  HDIDX_BUILD_ONLY virtual void Partition(size_t lo, size_t hi, size_t pos,
                                          size_t split_dim) = 0;

  /// MBR of points [lo, hi).
  HDIDX_BUILD_ONLY virtual geometry::BoundingBox ComputeBox(size_t lo,
                                                            size_t hi) = 0;

  /// Called once when construction finishes; external sources flush buffers.
  HDIDX_BUILD_ONLY virtual void Finish() {}

  /// Builds the whole tree (returning its root id) when the strategy is
  /// kAdaptiveSample: BulkLoad dispatches here instead of running the
  /// level-wise recursion, and the source drives its own sample-first
  /// pipeline. Always serial — layouts are bit-identical for every thread
  /// count by construction. The default covers sources with no native
  /// pipeline: the classic serial recursion with max-variance splits.
  HDIDX_BUILD_ONLY virtual uint32_t BuildAdaptiveRoot(
      const BulkLoadOptions& options, size_t root_level, RTree* tree);
};

/// PointSource over an in-memory dataset. Construction permutes an index
/// array, never the dataset itself; the final permutation becomes the
/// RTree's order().
class InMemoryPointSource : public PointSource {
 public:
  /// `data` must outlive the source.
  explicit InMemoryPointSource(const data::Dataset* data);

  Concurrency concurrency() const override {
    return Concurrency::kDisjointRanges;
  }
  size_t dim() const override { return data_->dim(); }
  size_t size() const override { return data_->size(); }
  size_t MaxVarianceDim(size_t lo, size_t hi) override;
  void Partition(size_t lo, size_t hi, size_t pos, size_t split_dim) override;
  geometry::BoundingBox ComputeBox(size_t lo, size_t hi) override;

  /// Sample-first pipeline over the in-memory dataset: sample rows choose a
  /// split-plane tree (adaptive_build.h), one classification pass plus a
  /// stable counting sort of the permutation forms the bucket ranges, each
  /// bucket's subtree is finished with the serial recursion, and the upper
  /// levels are packed over the bucket roots.
  uint32_t BuildAdaptiveRoot(const BulkLoadOptions& options, size_t root_level,
                             RTree* tree) override;

  /// The permutation built up by Partition calls.
  std::vector<uint32_t> TakeOrder() { return std::move(order_); }

 private:
  const data::Dataset* data_;
  std::vector<uint32_t> order_;
};

/// Options controlling a bulk load.
struct BulkLoadOptions {
  /// Topology of the FULL index whose structure is being replicated.
  /// Partition targets at each level come from its subtree capacities.
  const TreeTopology* topology = nullptr;

  /// Sampling fraction: partition targets are multiplied by this, so a
  /// mini-index built on a zeta-sample reproduces the full tree's node
  /// counts and fanouts (Section 3.1 structural similarity). 1.0 for the
  /// full index.
  double scale = 1.0;

  /// Level (full-tree numbering) of the root of the tree being built.
  /// topology->height() for a complete or mini index; height - h_upper + 1
  /// for a lower tree rooted at an upper-tree leaf.
  size_t root_level = 0;

  /// Construction stops at this level: nodes at stop_level become the
  /// tree's leaves. 1 builds down to data pages; height - h_upper + 1
  /// builds an upper tree of height h_upper.
  size_t stop_level = 1;

  /// How split dimensions are chosen (see SplitStrategy).
  SplitStrategy split_strategy = SplitStrategy::kMaxVariance;

  /// Tuning for kAdaptiveSample (ignored by the other strategies).
  AdaptiveOptions adaptive;

  /// Execution resources for the build. nullptr (the default) and serial
  /// contexts run the classic depth-first recursion; a context with a pool
  /// of 2+ threads fans sibling subtrees out over the pool's workers —
  /// *only* for sources declaring Concurrency::kDisjointRanges (the
  /// in-memory source). Single-owner sources (the external/on-disk build)
  /// always take the serial path so their I/O charging order is untouched.
  ///
  /// Determinism: the parallel build is bit-identical to the serial one —
  /// same node ids, levels, MBRs, leaf ranges, and point permutation — for
  /// every thread count. Sibling subtrees cover disjoint ranges of the
  /// permutation, the task graph is a deterministic function of the input,
  /// and nodes are emitted by a serial post-order walk in exactly the
  /// serial recursion's order. The split pipeline draws no randomness; a
  /// future randomized SplitStrategy must draw from
  /// exec->StreamRng(subtree id), keyed by the deterministic ids the task
  /// graph carries (Rng::Fork), never from thread or wave identity.
  const common::ExecutionContext* exec = nullptr;
};

/// Bulk-loads a VAMSplit R*-tree from `source` (all of its points).
///
/// The algorithm is the level-wise recursive partitioning of Berchtold,
/// Böhm and Kriegel: at each directory node the required fanout is
/// f = ceil(n / (scale * cap(level-1))) and the range is split into f
/// partitions by recursive binary maximum-variance splits at multiples of
/// the (scaled) child capacity. With options.exec (see there) the
/// partitioning fans out across threads with a bit-identical result.
RTree BulkLoad(PointSource* source, const BulkLoadOptions& options);

/// Convenience wrapper: builds over an in-memory dataset and installs the
/// permutation as the tree's order().
RTree BulkLoadInMemory(const data::Dataset& data,
                       const BulkLoadOptions& options);

namespace internal {

/// A finished bucket subtree of a kAdaptiveSample build: its root node id
/// and the number of points under it (adaptive_build.h packs the upper
/// levels from these).
struct AdaptiveRoot {
  uint32_t id = 0;
  size_t points = 0;
};

/// Runs the classic serial recursion to build the subtree rooted at `level`
/// over points [lo, hi); returns the new node's id. Exposed for the
/// adaptive pipelines, which finish each bucket this way.
HDIDX_BUILD_ONLY uint32_t BuildSerialNode(PointSource* source,
                                          const BulkLoadOptions& options,
                                          RTree* tree, size_t level, size_t lo,
                                          size_t hi);

/// Builds the bucket [lo, hi) as one or more subtrees rooted at
/// `bucket_level`, appended to `roots` in left-to-right order. A bucket no
/// larger than the scaled subtree capacity yields exactly one root; an
/// overfull bucket (sampling deviation) is first split at capacity
/// multiples by the recursive binary max-variance partitioner, so every
/// root respects the level's capacity whenever the data is splittable.
HDIDX_BUILD_ONLY void BuildBucketRoots(PointSource* source,
                                       const BulkLoadOptions& options,
                                       RTree* tree, size_t bucket_level,
                                       size_t lo, size_t hi,
                                       std::vector<AdaptiveRoot>* roots);

}  // namespace internal

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_BULK_LOADER_H_
