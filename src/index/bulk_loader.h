#ifndef HDIDX_INDEX_BULK_LOADER_H_
#define HDIDX_INDEX_BULK_LOADER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "geometry/bounding_box.h"
#include "index/rtree.h"
#include "index/topology.h"

namespace hdidx::index {

/// Dimension-selection strategy for the recursive binary splits.
///
/// The level-wise loader always places split *positions* at multiples of
/// the (scaled) child subtree capacity — pages must come out full — so the
/// strategy only chooses the split *dimension*:
///  * kMaxVariance: dimension of largest variance over the range — the
///    VAMSplit R*-tree of the paper (White & Jain [34]).
///  * kMaxExtent: dimension of largest MBR side — classic R-tree packing.
///  * kRoundRobin: cycle through dimensions by split depth — the k-d-B-tree
///    family (Robinson [29]), one more member of the Section 4.7 group the
///    prediction technique covers.
enum class SplitStrategy {
  kMaxVariance,
  kMaxExtent,
  kRoundRobin,
};

/// Abstraction over where the points being bulk-loaded live.
///
/// The level-wise VAMSplit algorithm needs exactly three primitives on a
/// contiguous point range: find the dimension of maximum variance, partition
/// the range around a position along a dimension (Hoare's find), and compute
/// the MBR of a range. The in-memory source implements them over a Dataset
/// and an index permutation; the external source (index/external_build.h)
/// implements them over a simulated PagedFile, charging every disk access —
/// the same construction code path then yields both the paper's "on-disk
/// index tree" and the predictors' in-memory mini-indexes.
class PointSource {
 public:
  virtual ~PointSource() = default;

  virtual size_t dim() const = 0;
  virtual size_t size() const = 0;

  /// Dimension with the largest variance over points [lo, hi).
  virtual size_t MaxVarianceDim(size_t lo, size_t hi) = 0;

  /// Dimension chosen by `strategy` for a split at binary depth `depth`
  /// within its node. The default implements kMaxExtent via ComputeBox and
  /// kRoundRobin via the depth; sources may override with cheaper paths.
  virtual size_t ChooseSplitDim(size_t lo, size_t hi, SplitStrategy strategy,
                                size_t depth);

  /// Rearranges [lo, hi) so that every point in [lo, pos) is <= every point
  /// in [pos, hi) along `split_dim` (nth_element semantics).
  /// Requires lo < pos < hi.
  virtual void Partition(size_t lo, size_t hi, size_t pos,
                         size_t split_dim) = 0;

  /// MBR of points [lo, hi).
  virtual geometry::BoundingBox ComputeBox(size_t lo, size_t hi) = 0;

  /// Called once when construction finishes; external sources flush buffers.
  virtual void Finish() {}
};

/// PointSource over an in-memory dataset. Construction permutes an index
/// array, never the dataset itself; the final permutation becomes the
/// RTree's order().
class InMemoryPointSource : public PointSource {
 public:
  /// `data` must outlive the source.
  explicit InMemoryPointSource(const data::Dataset* data);

  size_t dim() const override { return data_->dim(); }
  size_t size() const override { return data_->size(); }
  size_t MaxVarianceDim(size_t lo, size_t hi) override;
  void Partition(size_t lo, size_t hi, size_t pos, size_t split_dim) override;
  geometry::BoundingBox ComputeBox(size_t lo, size_t hi) override;

  /// The permutation built up by Partition calls.
  std::vector<uint32_t> TakeOrder() { return std::move(order_); }

 private:
  const data::Dataset* data_;
  std::vector<uint32_t> order_;
};

/// Options controlling a bulk load.
struct BulkLoadOptions {
  /// Topology of the FULL index whose structure is being replicated.
  /// Partition targets at each level come from its subtree capacities.
  const TreeTopology* topology = nullptr;

  /// Sampling fraction: partition targets are multiplied by this, so a
  /// mini-index built on a zeta-sample reproduces the full tree's node
  /// counts and fanouts (Section 3.1 structural similarity). 1.0 for the
  /// full index.
  double scale = 1.0;

  /// Level (full-tree numbering) of the root of the tree being built.
  /// topology->height() for a complete or mini index; height - h_upper + 1
  /// for a lower tree rooted at an upper-tree leaf.
  size_t root_level = 0;

  /// Construction stops at this level: nodes at stop_level become the
  /// tree's leaves. 1 builds down to data pages; height - h_upper + 1
  /// builds an upper tree of height h_upper.
  size_t stop_level = 1;

  /// How split dimensions are chosen (see SplitStrategy).
  SplitStrategy split_strategy = SplitStrategy::kMaxVariance;
};

/// Bulk-loads a VAMSplit R*-tree from `source` (all of its points).
///
/// The algorithm is the level-wise recursive partitioning of Berchtold,
/// Böhm and Kriegel: at each directory node the required fanout is
/// f = ceil(n / (scale * cap(level-1))) and the range is split into f
/// partitions by recursive binary maximum-variance splits at multiples of
/// the (scaled) child capacity.
RTree BulkLoad(PointSource* source, const BulkLoadOptions& options);

/// Convenience wrapper: builds over an in-memory dataset and installs the
/// permutation as the tree's order().
RTree BulkLoadInMemory(const data::Dataset& data,
                       const BulkLoadOptions& options);

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_BULK_LOADER_H_
