#ifndef HDIDX_INDEX_TOPOLOGY_H_
#define HDIDX_INDEX_TOPOLOGY_H_

#include <cstddef>

#include "io/disk_model.h"

namespace hdidx::index {

/// The deterministic structure of a bulk-loaded VAMSplit R*-tree: heights,
/// per-level node counts, capacities and fanouts — everything that follows
/// from (N, C_max,data, C_max,dir) alone, before any data is inspected.
///
/// Levels are numbered as in the paper (Table 2, footnote 2): leaf nodes are
/// at level 1 and the root is at level `height`. The level-wise bulk loader
/// fills every page except at most one per level completely, so node counts
/// are ceilings of N over subtree capacities.
///
/// The structural-similarity requirement of Section 3.1 is implemented by
/// deriving the mini-index layout from this same topology with partition
/// targets scaled by the sampling ratio.
class TreeTopology {
 public:
  /// Computes the topology for `num_points` points with the given maximum
  /// page capacities (points per data page, entries per directory page).
  /// All arguments must be positive; dir_capacity must be at least 2.
  TreeTopology(size_t num_points, size_t data_capacity, size_t dir_capacity);

  /// Derives page capacities from a disk model: a data page holds
  /// floor(page_bytes / (dim*4 + 4)) points (coordinates plus a record id),
  /// a directory page holds floor(page_bytes / (2*dim*4 + 4)) entries (MBR
  /// plus a child pointer).
  static TreeTopology FromDisk(size_t num_points, size_t dim,
                               const io::DiskModel& disk);

  size_t num_points() const { return num_points_; }
  size_t data_capacity() const { return data_capacity_; }
  size_t dir_capacity() const { return dir_capacity_; }

  /// Height of the tree; a tree of a single (leaf) node has height 1.
  size_t height() const { return height_; }

  /// Maximum number of points a subtree whose root sits at `level` can hold:
  /// cap(1) = C_max,data; cap(l) = C_max,dir * cap(l-1).
  size_t SubtreeCapacity(size_t level) const;

  /// Number of nodes at `level`: ceil(N / cap(level)).
  size_t NodesAtLevel(size_t level) const;

  /// Number of leaf pages of the full tree.
  size_t NumLeaves() const { return NodesAtLevel(1); }

  /// Expected number of data points under one node at `level` — the paper's
  /// pts(h) function: pts(height) = N, pts(1) = C_eff,data.
  double PointsPerSubtree(size_t level) const;

  /// Average points per leaf page (the paper's C_eff,data).
  double EffectiveDataCapacity() const { return PointsPerSubtree(1); }

  /// Average fanout of directory nodes (the paper's C_eff,dir); returns
  /// data_capacity for a height-1 tree.
  double EffectiveDirCapacity() const;

  /// Fanout of a node at `level` holding `points_in_subtree` points:
  /// ceil(points / cap(level-1)). `level` must be >= 2.
  size_t FanoutFor(size_t level, size_t points_in_subtree) const;

  friend bool operator==(const TreeTopology& a, const TreeTopology& b) {
    return a.num_points_ == b.num_points_ &&
           a.data_capacity_ == b.data_capacity_ &&
           a.dir_capacity_ == b.dir_capacity_;
  }

 private:
  size_t num_points_;
  size_t data_capacity_;
  size_t dir_capacity_;
  size_t height_;
};

}  // namespace hdidx::index

#endif  // HDIDX_INDEX_TOPOLOGY_H_
