#ifndef HDIDX_IO_IO_STATS_H_
#define HDIDX_IO_IO_STATS_H_

#include <cstdint>

#include "common/check.h"
#include "io/disk_model.h"

namespace hdidx::io {

/// Counters for simulated disk activity, matching the paper's Table 3
/// columns: "page seeks" (reads of a page not adjacent to the previously
/// accessed page) and "page transfers" (pages moved between disk and
/// memory).
///
/// Thread-safety audit (for the parallel execution layer, common/parallel.h):
/// IoStats is a plain value type with NO internal synchronization, and the
/// library keeps it that way on purpose. The simulated disk models a single
/// arm whose seek accounting depends on the *order* of accesses — concurrent
/// charging would not just race, it would change the answer. Every parallel
/// section in this library therefore charges I/O serially on the
/// orchestrating thread (before or after the compute fan-out) and only
/// parallelizes pure in-memory compute; where per-query page counts feed
/// these counters, the partial counts are reduced in query order. Never
/// mutate one IoStats object (or the PagedFile owning it) from inside a
/// ParallelFor body.
struct IoStats {
  uint64_t page_seeks = 0;
  uint64_t page_transfers = 0;

  IoStats& operator+=(const IoStats& other) {
    page_seeks += other.page_seeks;
    page_transfers += other.page_transfers;
    return *this;
  }

  friend IoStats operator+(IoStats a, const IoStats& b) { return a += b; }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.page_seeks == b.page_seeks &&
           a.page_transfers == b.page_transfers;
  }

  /// Audit invariant behind the paper's Table-3 accounting: a seek is only
  /// ever charged alongside page movement, so seeks can never exceed
  /// transfers in a consistent tally. Call wherever a tally is consumed;
  /// a violation means some path double-charged or under-charged.
  void Validate() const {
    HDIDX_CHECK(page_seeks <= page_transfers)
        << "inconsistent I/O tally: " << page_seeks << " seeks > "
        << page_transfers << " transfers";
  }

  /// Total simulated wall time under the given disk parameters.
  double CostSeconds(const DiskModel& disk) const {
    Validate();
    return disk.Seconds(static_cast<double>(page_seeks),
                        static_cast<double>(page_transfers));
  }
};

}  // namespace hdidx::io

#endif  // HDIDX_IO_IO_STATS_H_
