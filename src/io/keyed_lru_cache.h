#ifndef HDIDX_IO_KEYED_LRU_CACHE_H_
#define HDIDX_IO_KEYED_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <utility>

#include "common/check.h"

namespace hdidx::io {

/// A generic LRU cache from an ordered key to a shared immutable value —
/// the generalization of the page-granular LruCache to arbitrary cached
/// artifacts (built mini-indexes, generated workloads, full prediction
/// results in the serving layer).
///
/// Values are held as shared_ptr<const Value> so a cached artifact stays
/// valid for a caller even if a concurrent insertion evicts it from the
/// cache. The cache itself is NOT thread-safe; the prediction service keeps
/// one instance per shard, touched only by that shard's worker.
///
/// Unlike LruCache this class charges no simulated I/O: what a hit saves is
/// whatever the caller would have spent recomputing (and re-charging) the
/// value — the service reports that separately.
template <typename Key, typename Value>
class KeyedLruCache {
 public:
  /// Cache holding at most `capacity` entries; 0 disables caching (Get
  /// always misses, Put is a no-op that still counts an eviction-free miss
  /// path).
  explicit KeyedLruCache(size_t capacity) : capacity_(capacity) {}

  /// Returns the cached value and refreshes its recency, or nullptr on miss.
  std::shared_ptr<const Value> Get(const Key& key) {
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return it->second->second;
  }

  /// Inserts (or refreshes) `value` under `key`, evicting least recently
  /// used entries while over capacity.
  void Put(const Key& key, std::shared_ptr<const Value> value) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, std::move(value));
    map_[key] = lru_.begin();
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().first);
      lru_.pop_back();
      ++evictions_;
    }
    CheckInvariants();
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }
  double HitRate() const {
    const uint64_t total = hits_ + misses_;
    return total == 0
               ? 0.0
               : static_cast<double>(hits_) / static_cast<double>(total);
  }

  /// Empties the cache and zeroes all counters.
  void Clear() {
    lru_.clear();
    map_.clear();
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
  }

 private:
  /// Structural audit after every mutation: map and recency list agree and
  /// occupancy respects capacity (the bound Put's eviction loop maintains).
  void CheckInvariants() const {
    HDIDX_CHECK_OP(==, map_.size(), lru_.size());
    HDIDX_CHECK(capacity_ == 0 || map_.size() <= capacity_)
        << "cache over capacity: " << map_.size() << " > " << capacity_;
  }

  using Entry = std::pair<Key, std::shared_ptr<const Value>>;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::map<Key, typename std::list<Entry>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace hdidx::io

#endif  // HDIDX_IO_KEYED_LRU_CACHE_H_
