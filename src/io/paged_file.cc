#include "io/paged_file.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace hdidx::io {

PagedFile::PagedFile(size_t dim, const DiskModel& disk)
    : dim_(dim), disk_(disk), points_per_page_(disk.PointsPerPage(dim)) {
  HDIDX_CHECK(dim > 0);
}

PagedFile PagedFile::FromDataset(const data::Dataset& data,
                                 const DiskModel& disk) {
  PagedFile file(data.dim(), disk);
  file.num_points_ = data.size();
  file.store_.assign(data.data().begin(), data.data().end());
  return file;
}

size_t PagedFile::num_pages() const {
  return (num_points_ + points_per_page_ - 1) / points_per_page_;
}

void PagedFile::Resize(size_t n) {
  num_points_ = n;
  store_.resize(n * dim_, 0.0f);
}

void PagedFile::Charge(size_t start, size_t count) {
  if (count == 0) return;
  const size_t first_page = start / points_per_page_;
  const size_t last_page = (start + count - 1) / points_per_page_;
  if (first_page != next_sequential_page_) {
    ++stats_.page_seeks;
  }
  stats_.page_transfers += last_page - first_page + 1;
  next_sequential_page_ = last_page + 1;
}

void PagedFile::Read(size_t start, size_t count, float* out) {
  HDIDX_CHECK(start + count <= num_points_);
  Charge(start, count);
  std::memcpy(out, store_.data() + start * dim_,
              count * dim_ * sizeof(float));
}

void PagedFile::Write(size_t start, size_t count, const float* src) {
  HDIDX_CHECK(start + count <= num_points_);
  Charge(start, count);
  std::memcpy(store_.data() + start * dim_, src,
              count * dim_ * sizeof(float));
}

data::Dataset PagedFile::ReadAll() {
  std::vector<float> values(num_points_ * dim_);
  if (num_points_ > 0) Read(0, num_points_, values.data());
  return data::Dataset(std::move(values), dim_);
}

void PagedFile::ChargeAccess(size_t start, size_t count) {
  HDIDX_CHECK(start + count <= num_points_ || count == 0);
  Charge(start, count);
}

void PagedFile::ChargeSeek() {
  ++stats_.page_seeks;
  next_sequential_page_ = kNoHead;
}

void PagedFile::ResetStats() {
  stats_ = IoStats{};
  next_sequential_page_ = kNoHead;
}

}  // namespace hdidx::io
