#ifndef HDIDX_IO_READ_AHEAD_H_
#define HDIDX_IO_READ_AHEAD_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/arena.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "common/thread_annotations.h"
#include "io/paged_file.h"

namespace hdidx::io {

/// Asynchronous read-ahead over a planned sequence of point extents of one
/// PagedFile: up to `window` extents ahead of the consumer are filled by
/// prefetch tasks on a shared ThreadPool while the consumer processes the
/// current one, so (simulated) build I/O overlaps partition compute.
///
/// Determinism contract — why IoStats stay window- and thread-invariant:
/// prefetch tasks only *copy bytes* out of the file's unaccounted `raw()`
/// span into arena-backed slot buffers; all accounting happens on the
/// consumer thread inside Next(), which charges extent i via ChargeAccess in
/// exact plan order regardless of when (or on which thread) the bytes
/// actually landed. The seek-head walk the single-arm disk model sees is
/// therefore identical for window 0 (fully synchronous) and any prefetch
/// depth or pool size; only wall-clock overlap changes. `overlap_ratio()`
/// reports that overlap and is advisory (it measures scheduling luck, never
/// feeds the simulation).
///
/// Ownership contract (single owner, like the external PointSource): one
/// consumer thread calls Next() sequentially; the span returned by Next()
/// is valid until the next Next() call. The underlying file must not be
/// written, resized, or charged by anyone else while the source is live —
/// prefetch tasks read raw() concurrently, and the consumer owns the
/// file's seek head. The destructor blocks until every scheduled fill has
/// retired, so slot buffers never outlive their writers.
///
/// Internals are HDIDX_BUILD_ONLY: the source exists only during external
/// index construction and is never reachable from concurrent-read paths.
class ReadAheadSource {
 public:
  /// One planned read: `count` points starting at point index `start`.
  struct Extent {
    size_t start = 0;
    size_t count = 0;
  };

  /// Prefetches up to `window` extents ahead on `pool`. A window of 0 (or a
  /// null pool) disables prefetch: Next() then fills synchronously through
  /// the identical slot path. Slot buffers (window + 1 of them, each sized
  /// for the largest planned extent) come from an internally owned Arena.
  HDIDX_BUILD_ONLY ReadAheadSource(PagedFile* file, std::vector<Extent> plan,
                                   size_t window, common::ThreadPool* pool);
  ~ReadAheadSource();

  ReadAheadSource(const ReadAheadSource&) = delete;
  ReadAheadSource& operator=(const ReadAheadSource&) = delete;

  size_t num_extents() const { return plan_.size(); }
  size_t dim() const { return dim_; }
  bool done() const { return cursor_ == plan_.size(); }

  /// The extent Next() will return, next in plan order.
  const Extent& peek() const { return plan_[cursor_]; }

  /// Blocks until the next extent's points are resident, charges its I/O
  /// (seeks + transfers) on this thread, and returns its rows
  /// (count * dim floats). Invalidates the previously returned span.
  HDIDX_BUILD_ONLY std::span<const float> Next();

  /// Fraction of consumed extents whose fill had already completed when the
  /// consumer asked for them (pure overlap — no blocking). Advisory: a
  /// wall-clock scheduling measure, never part of the simulated cost.
  double overlap_ratio() const;

 private:
  /// Copies extent `index`'s rows from the file's raw span into `slot` and
  /// publishes the fill. Runs on a pool worker (or inline when window == 0).
  void Fill(size_t index, size_t slot);
  /// Schedules extent `index` into its slot, if it exists.
  void Schedule(size_t index);

  PagedFile* const file_;
  const std::vector<Extent> plan_;
  const size_t dim_;
  const size_t window_;
  common::ThreadPool* const pool_;
  // Arena and slot pointers are written only in the constructor; fill tasks
  // and the consumer touch disjoint slots, hand-over synchronized through
  // slot_filled_ below.
  HDIDX_UNGUARDED common::Arena arena_;
  HDIDX_UNGUARDED std::vector<float*> slots_;

  // Consumer-thread-only (single-owner contract above).
  HDIDX_UNGUARDED size_t cursor_ = 0;          // next extent to hand out
  HDIDX_UNGUARDED size_t consumed_async_ = 0;  // fills done at Next() time

  common::Mutex mu_;
  common::CondVar cv_;
  std::vector<bool> slot_filled_ HDIDX_GUARDED_BY(mu_);
  size_t outstanding_fills_ HDIDX_GUARDED_BY(mu_) = 0;
};

}  // namespace hdidx::io

#endif  // HDIDX_IO_READ_AHEAD_H_
