#include "io/io_stats.h"
// IoStats is header-only; this translation unit pins the header into the
// build so include errors surface immediately.

