#include "io/lru_cache.h"

#include "common/check.h"

namespace hdidx::io {

LruCache::LruCache(size_t capacity_pages) : capacity_(capacity_pages) {}

bool LruCache::Access(uint64_t page_id) {
  const auto it = map_.find(page_id);
  if (it != map_.end()) {
    // Hit: move to the front.
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    CheckInvariants();
    return true;
  }
  ++misses_;
  ++stats_.page_seeks;
  ++stats_.page_transfers;
  if (capacity_ == 0) return false;
  if (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(page_id);
  map_[page_id] = lru_.begin();
  CheckInvariants();
  return false;
}

void LruCache::CheckInvariants() const {
  HDIDX_CHECK_OP(==, map_.size(), lru_.size());
  HDIDX_CHECK(capacity_ == 0 || map_.size() <= capacity_)
      << "cache over capacity: " << map_.size() << " > " << capacity_;
  // Every resident page was missed in first, and evictions only ever free
  // pages that a miss inserted.
  HDIDX_CHECK(misses_ >= evictions_ + (capacity_ == 0 ? 0 : map_.size()))
      << "hit/miss bookkeeping drifted: misses=" << misses_
      << " evictions=" << evictions_ << " resident=" << map_.size();
}

double LruCache::HitRate() const {
  const uint64_t total = hits_ + misses_;
  return total == 0 ? 0.0
                    : static_cast<double>(hits_) / static_cast<double>(total);
}

void LruCache::Clear() {
  lru_.clear();
  map_.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  stats_ = IoStats{};
}

}  // namespace hdidx::io
