#include "io/read_ahead.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace hdidx::io {

ReadAheadSource::ReadAheadSource(PagedFile* file, std::vector<Extent> plan,
                                 size_t window, common::ThreadPool* pool)
    : file_(file),
      plan_(std::move(plan)),
      dim_(file->dim()),
      window_(pool != nullptr ? window : 0),
      pool_(pool) {
  size_t max_points = 0;
  for (const Extent& e : plan_) {
    HDIDX_CHECK(e.count > 0) << "read-ahead extent must be non-empty";
    HDIDX_CHECK(e.start + e.count <= file_->size())
        << "read-ahead extent [" << e.start << ", " << e.start + e.count
        << ") exceeds file of " << file_->size() << " points";
    max_points = std::max(max_points, e.count);
  }
  const size_t num_slots = window_ + 1;
  slots_.reserve(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    slots_.push_back(arena_.AllocateArray<float>(max_points * dim_));
  }
  {
    common::MutexLock lock(&mu_);
    slot_filled_.assign(num_slots, false);
  }
  // Prime the window: extents 0..window-1 go in flight immediately, leaving
  // slot `window` free so Next(i) can always schedule i+window into the
  // slot extent i-1 just vacated.
  for (size_t i = 0; i < window_ && i < plan_.size(); ++i) Schedule(i);
}

ReadAheadSource::~ReadAheadSource() {
  common::MutexLock lock(&mu_);
  while (outstanding_fills_ > 0) cv_.Wait(mu_);
}

void ReadAheadSource::Fill(size_t index, size_t slot) {
  const Extent& e = plan_[index];
  // Unaccounted byte movement: the consumer charges this extent in plan
  // order at Next() time, which is what keeps IoStats window-invariant.
  std::memcpy(slots_[slot], file_->raw().data() + e.start * dim_,
              e.count * dim_ * sizeof(float));
  common::MutexLock lock(&mu_);
  slot_filled_[slot] = true;
  --outstanding_fills_;
  cv_.NotifyAll();
}

void ReadAheadSource::Schedule(size_t index) {
  const size_t slot = index % slots_.size();
  {
    common::MutexLock lock(&mu_);
    slot_filled_[slot] = false;
    ++outstanding_fills_;
  }
  if (window_ > 0) {
    pool_->Submit([this, index, slot] { Fill(index, slot); });
  } else {
    Fill(index, slot);
  }
}

std::span<const float> ReadAheadSource::Next() {
  HDIDX_CHECK(cursor_ < plan_.size()) << "Next() past the planned extents";
  const size_t index = cursor_++;
  // The caller just released extent index-1's slot; refill it with the
  // extent `window_` ahead (same slot by construction: both are congruent
  // to index-1 modulo window_+1).
  if (window_ == 0) {
    Schedule(index);  // synchronous mode: fill right here, same slot path
  } else if (index + window_ < plan_.size()) {
    Schedule(index + window_);
  }
  const size_t slot = index % slots_.size();
  {
    common::MutexLock lock(&mu_);
    if (window_ > 0 && slot_filled_[slot]) ++consumed_async_;
    while (!slot_filled_[slot]) cv_.Wait(mu_);
  }
  const Extent& e = plan_[index];
  file_->ChargeAccess(e.start, e.count);
  return {slots_[slot], e.count * dim_};
}

double ReadAheadSource::overlap_ratio() const {
  if (cursor_ == 0) return 0.0;
  return static_cast<double>(consumed_async_) / static_cast<double>(cursor_);
}

}  // namespace hdidx::io
