#ifndef HDIDX_IO_LRU_CACHE_H_
#define HDIDX_IO_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "io/io_stats.h"

namespace hdidx::io {

/// An LRU page-cache simulation.
///
/// The paper assumes every query-time page access is a random disk access
/// ("nearly all page accesses during queries were random", Section 5.1) —
/// true for leaf pages, while the few directory pages of a tree are re-read
/// constantly and would sit in any real buffer pool. This class makes that
/// assumption checkable: replay an access trace through a cache of
/// `capacity_pages` and compare the charged I/O with and without it
/// (`bench_ablations` does exactly that).
class LruCache {
 public:
  /// Cache of the given capacity in pages; 0 disables caching (every
  /// access misses).
  explicit LruCache(size_t capacity_pages);

  /// Simulates accessing `page_id`. A miss charges one random access
  /// (seek + transfer) to stats() and inserts the page, evicting the least
  /// recently used one if full; a hit charges nothing.
  /// Returns true on hit.
  bool Access(uint64_t page_id);

  size_t capacity() const { return capacity_; }
  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  /// Number of pages evicted to make room (not counting capacity-0 misses,
  /// which never insert in the first place).
  uint64_t evictions() const { return evictions_; }
  double HitRate() const;

  /// I/O charged for the misses so far.
  const IoStats& stats() const { return stats_; }

  /// Empties the cache and zeroes all counters.
  void Clear();

 private:
  /// Structural + bookkeeping audit, run after every mutation: map and list
  /// agree, occupancy respects capacity, and the counters tally.
  void CheckInvariants() const;

  size_t capacity_;
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  IoStats stats_;
};

}  // namespace hdidx::io

#endif  // HDIDX_IO_LRU_CACHE_H_
