#include "io/disk_model.h"

namespace hdidx::io {

size_t DiskModel::PointsPerPage(size_t dim) const {
  const size_t point_bytes = dim * sizeof(float);
  const size_t per_page = page_bytes / point_bytes;
  return per_page > 0 ? per_page : 1;
}

size_t DiskModel::PagesForPoints(size_t n, size_t dim) const {
  const size_t per_page = PointsPerPage(dim);
  return (n + per_page - 1) / per_page;
}

}  // namespace hdidx::io
