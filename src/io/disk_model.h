#ifndef HDIDX_IO_DISK_MODEL_H_
#define HDIDX_IO_DISK_MODEL_H_

#include <cstddef>

#include "common/check.h"

namespace hdidx::io {

/// Parameters of the simulated hard disk.
///
/// The paper assumes an average seek-plus-latency time of 10 ms and a
/// transfer bandwidth of 20 MB/s, giving 0.4 ms per 8 KB page (Section 4.6,
/// footnote 7). All reported "I/O cost" numbers are seek/transfer counts
/// converted to seconds with these constants; this struct is that
/// conversion.
struct DiskModel {
  /// Average seek plus rotational latency per random access, in seconds.
  double seek_time_s = 0.010;
  /// Transfer time for one page of kReferencePageBytes, in seconds.
  double transfer_time_8k_s = 0.0004;
  /// Page size in bytes. Changing it scales the per-page transfer time
  /// proportionally (the page-size tuning application sweeps this).
  size_t page_bytes = kReferencePageBytes;

  static constexpr size_t kReferencePageBytes = 8192;

  /// Transfer time of one page of the configured size, in seconds.
  double transfer_time_s() const {
    return transfer_time_8k_s * static_cast<double>(page_bytes) /
           static_cast<double>(kReferencePageBytes);
  }

  /// Number of `dim`-dimensional float points that fit in one page
  /// (at least 1 so degenerate configurations stay well-formed).
  size_t PointsPerPage(size_t dim) const;

  /// Number of pages needed to store `n` points of dimensionality `dim`.
  size_t PagesForPoints(size_t n, size_t dim) const;

  /// Seconds for a given number of seeks and page transfers. Counts may be
  /// fractional (expected values) but a negative count always means some
  /// accounting subtraction drifted.
  double Seconds(double seeks, double transfers) const {
    HDIDX_CHECK(seeks >= 0.0 && transfers >= 0.0)
        << "negative I/O counts: seeks=" << seeks
        << " transfers=" << transfers;
    return seeks * seek_time_s + transfers * transfer_time_s();
  }
};

}  // namespace hdidx::io

#endif  // HDIDX_IO_DISK_MODEL_H_
