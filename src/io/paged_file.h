#ifndef HDIDX_IO_PAGED_FILE_H_
#define HDIDX_IO_PAGED_FILE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/dataset.h"
#include "io/disk_model.h"
#include "io/io_stats.h"

namespace hdidx::io {

/// A simulated on-disk file of fixed-size records (d-dimensional float
/// points) packed into pages.
///
/// The backing store lives in RAM — the simulation is about *accounting*,
/// not persistence: every Read/Write is charged in page seeks and page
/// transfers exactly as a single-arm disk would incur them. A seek is
/// counted when the first page of an access is not the page immediately
/// following the last page touched (the paper's definition from Section 5:
/// "caused by reading a page not adjacent to the previously read page");
/// every page touched is one transfer.
///
/// The on-disk external bulk loader and the resampled predictor's k
/// consecutive disk areas (Figure 8) are both built on this class.
///
/// Thread-safety: NOT thread-safe, by design (see the audit note on
/// IoStats). Read/Write/ChargeAccess mutate the seek-head position
/// (`next_sequential_page_`) and the I/O counters, both of which are
/// order-sensitive — the single simulated disk arm is inherently serial.
/// All accounted I/O must stay on the orchestrating thread; parallel
/// sections may only touch the unaccounted `raw()` span (read-only).
class PagedFile {
 public:
  /// Creates an empty file for points of dimensionality `dim` under the
  /// given disk parameters.
  PagedFile(size_t dim, const DiskModel& disk);

  /// Convenience: materializes `data` on the simulated disk without charging
  /// I/O (the dataset is presumed to already exist on disk, as in the
  /// paper's setting).
  static PagedFile FromDataset(const data::Dataset& data,
                               const DiskModel& disk);

  size_t size() const { return num_points_; }
  size_t dim() const { return dim_; }
  const DiskModel& disk() const { return disk_; }

  /// Points per page for this file's record size.
  size_t points_per_page() const { return points_per_page_; }

  /// Total pages currently occupied.
  size_t num_pages() const;

  /// Grows or shrinks the file to `n` points (new space zero-filled, not
  /// charged — allocation is metadata, not data movement).
  void Resize(size_t n);

  /// Reads `count` points starting at point index `start` into `out`
  /// (capacity count*dim). Charges transfers for every page overlapping the
  /// range and a seek if the range does not continue the previous access.
  void Read(size_t start, size_t count, float* out);

  /// Writes `count` points starting at point index `start` from `src`.
  /// Same charging rule as Read.
  void Write(size_t start, size_t count, const float* src);

  /// Reads one point (point-granular convenience over Read).
  void ReadPoint(size_t index, float* out) { Read(index, 1, out); }

  /// Reads the whole file as a Dataset, charged as one sequential scan.
  data::Dataset ReadAll();

  /// Charges the I/O of touching `count` points starting at `start` without
  /// moving bytes. Used where the simulation knows data flows but the
  /// in-memory model shortcut avoids an actual copy.
  void ChargeAccess(size_t start, size_t count);

  /// Charges one explicit seek (e.g. repositioning between disk areas).
  void ChargeSeek();

  /// Marks the head as moved away (by I/O on another file sharing the
  /// disk) without charging anything: the next access will pay its seek.
  void InvalidateHead() { next_sequential_page_ = kNoHead; }

  /// Accumulated I/O counters since construction or the last ResetStats().
  const IoStats& stats() const { return stats_; }
  void ResetStats();

  /// Direct unaccounted access for verification and tests.
  std::span<const float> raw() const { return store_; }
  std::span<float> raw_mutable() { return store_; }

 private:
  /// First and last page of a point range; charges the access.
  void Charge(size_t start, size_t count);

  size_t dim_;
  DiskModel disk_;
  size_t points_per_page_;
  size_t num_points_ = 0;
  std::vector<float> store_;
  IoStats stats_;
  // Page index following the last page accessed; access starting there is
  // sequential. kNoHead means no access yet (first access always seeks).
  static constexpr size_t kNoHead = static_cast<size_t>(-1);
  size_t next_sequential_page_ = kNoHead;
};

}  // namespace hdidx::io

#endif  // HDIDX_IO_PAGED_FILE_H_
