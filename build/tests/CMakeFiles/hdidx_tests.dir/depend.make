# Empty dependencies file for hdidx_tests.
# This may be replaced when dependencies are built.
