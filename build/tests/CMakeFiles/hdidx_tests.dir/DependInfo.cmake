
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_multistep_test.cc" "tests/CMakeFiles/hdidx_tests.dir/apps_multistep_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/apps_multistep_test.cc.o.d"
  "/root/repo/tests/apps_test.cc" "tests/CMakeFiles/hdidx_tests.dir/apps_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/apps_test.cc.o.d"
  "/root/repo/tests/baselines_fractal_test.cc" "tests/CMakeFiles/hdidx_tests.dir/baselines_fractal_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/baselines_fractal_test.cc.o.d"
  "/root/repo/tests/baselines_histogram_test.cc" "tests/CMakeFiles/hdidx_tests.dir/baselines_histogram_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/baselines_histogram_test.cc.o.d"
  "/root/repo/tests/baselines_mtree_model_test.cc" "tests/CMakeFiles/hdidx_tests.dir/baselines_mtree_model_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/baselines_mtree_model_test.cc.o.d"
  "/root/repo/tests/baselines_uniform_test.cc" "tests/CMakeFiles/hdidx_tests.dir/baselines_uniform_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/baselines_uniform_test.cc.o.d"
  "/root/repo/tests/common_random_test.cc" "tests/CMakeFiles/hdidx_tests.dir/common_random_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/common_random_test.cc.o.d"
  "/root/repo/tests/common_stats_test.cc" "tests/CMakeFiles/hdidx_tests.dir/common_stats_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/common_stats_test.cc.o.d"
  "/root/repo/tests/core_compensation_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_compensation_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_compensation_test.cc.o.d"
  "/root/repo/tests/core_confidence_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_confidence_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_confidence_test.cc.o.d"
  "/root/repo/tests/core_cost_model_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_cost_model_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_cost_model_test.cc.o.d"
  "/root/repo/tests/core_cutoff_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_cutoff_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_cutoff_test.cc.o.d"
  "/root/repo/tests/core_dynamic_mini_index_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_dynamic_mini_index_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_dynamic_mini_index_test.cc.o.d"
  "/root/repo/tests/core_hupper_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_hupper_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_hupper_test.cc.o.d"
  "/root/repo/tests/core_mini_index_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_mini_index_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_mini_index_test.cc.o.d"
  "/root/repo/tests/core_resampled_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_resampled_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_resampled_test.cc.o.d"
  "/root/repo/tests/core_sstree_test.cc" "tests/CMakeFiles/hdidx_tests.dir/core_sstree_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/core_sstree_test.cc.o.d"
  "/root/repo/tests/data_csv_test.cc" "tests/CMakeFiles/hdidx_tests.dir/data_csv_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/data_csv_test.cc.o.d"
  "/root/repo/tests/data_dataset_io_test.cc" "tests/CMakeFiles/hdidx_tests.dir/data_dataset_io_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/data_dataset_io_test.cc.o.d"
  "/root/repo/tests/data_dataset_test.cc" "tests/CMakeFiles/hdidx_tests.dir/data_dataset_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/data_dataset_test.cc.o.d"
  "/root/repo/tests/data_generators_test.cc" "tests/CMakeFiles/hdidx_tests.dir/data_generators_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/data_generators_test.cc.o.d"
  "/root/repo/tests/data_transforms_test.cc" "tests/CMakeFiles/hdidx_tests.dir/data_transforms_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/data_transforms_test.cc.o.d"
  "/root/repo/tests/geometry_bounding_box_test.cc" "tests/CMakeFiles/hdidx_tests.dir/geometry_bounding_box_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/geometry_bounding_box_test.cc.o.d"
  "/root/repo/tests/geometry_distance_test.cc" "tests/CMakeFiles/hdidx_tests.dir/geometry_distance_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/geometry_distance_test.cc.o.d"
  "/root/repo/tests/index_bulk_loader_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_bulk_loader_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_bulk_loader_test.cc.o.d"
  "/root/repo/tests/index_external_build_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_external_build_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_external_build_test.cc.o.d"
  "/root/repo/tests/index_knn_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_knn_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_knn_test.cc.o.d"
  "/root/repo/tests/index_pyramid_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_pyramid_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_pyramid_test.cc.o.d"
  "/root/repo/tests/index_rstar_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_rstar_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_rstar_test.cc.o.d"
  "/root/repo/tests/index_rtree_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_rtree_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_rtree_test.cc.o.d"
  "/root/repo/tests/index_topology_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_topology_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_topology_test.cc.o.d"
  "/root/repo/tests/index_tree_io_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_tree_io_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_tree_io_test.cc.o.d"
  "/root/repo/tests/index_va_file_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_va_file_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_va_file_test.cc.o.d"
  "/root/repo/tests/index_xtree_test.cc" "tests/CMakeFiles/hdidx_tests.dir/index_xtree_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/index_xtree_test.cc.o.d"
  "/root/repo/tests/integration_prediction_test.cc" "tests/CMakeFiles/hdidx_tests.dir/integration_prediction_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/integration_prediction_test.cc.o.d"
  "/root/repo/tests/io_lru_cache_test.cc" "tests/CMakeFiles/hdidx_tests.dir/io_lru_cache_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/io_lru_cache_test.cc.o.d"
  "/root/repo/tests/io_paged_file_test.cc" "tests/CMakeFiles/hdidx_tests.dir/io_paged_file_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/io_paged_file_test.cc.o.d"
  "/root/repo/tests/property_extended_test.cc" "tests/CMakeFiles/hdidx_tests.dir/property_extended_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/property_extended_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/hdidx_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/hdidx_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/workload_range_test.cc" "tests/CMakeFiles/hdidx_tests.dir/workload_range_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/workload_range_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/hdidx_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/hdidx_tests.dir/workload_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hdidx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
