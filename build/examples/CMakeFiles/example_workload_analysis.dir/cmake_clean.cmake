file(REMOVE_RECURSE
  "CMakeFiles/example_workload_analysis.dir/workload_analysis.cpp.o"
  "CMakeFiles/example_workload_analysis.dir/workload_analysis.cpp.o.d"
  "example_workload_analysis"
  "example_workload_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_workload_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
