# Empty compiler generated dependencies file for example_workload_analysis.
# This may be replaced when dependencies are built.
