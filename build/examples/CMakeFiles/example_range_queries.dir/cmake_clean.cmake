file(REMOVE_RECURSE
  "CMakeFiles/example_range_queries.dir/range_queries.cpp.o"
  "CMakeFiles/example_range_queries.dir/range_queries.cpp.o.d"
  "example_range_queries"
  "example_range_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_range_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
