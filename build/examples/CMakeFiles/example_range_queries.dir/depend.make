# Empty dependencies file for example_range_queries.
# This may be replaced when dependencies are built.
