# Empty compiler generated dependencies file for example_structures_tour.
# This may be replaced when dependencies are built.
