file(REMOVE_RECURSE
  "CMakeFiles/example_structures_tour.dir/structures_tour.cpp.o"
  "CMakeFiles/example_structures_tour.dir/structures_tour.cpp.o.d"
  "example_structures_tour"
  "example_structures_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_structures_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
