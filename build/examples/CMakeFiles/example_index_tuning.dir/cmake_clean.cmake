file(REMOVE_RECURSE
  "CMakeFiles/example_index_tuning.dir/index_tuning.cpp.o"
  "CMakeFiles/example_index_tuning.dir/index_tuning.cpp.o.d"
  "example_index_tuning"
  "example_index_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_index_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
