# Empty dependencies file for example_index_tuning.
# This may be replaced when dependencies are built.
