# Empty dependencies file for bench_fig10_iocost_dim.
# This may be replaced when dependencies are built.
