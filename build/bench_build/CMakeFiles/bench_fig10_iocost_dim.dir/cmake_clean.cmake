file(REMOVE_RECURSE
  "../bench/bench_fig10_iocost_dim"
  "../bench/bench_fig10_iocost_dim.pdb"
  "CMakeFiles/bench_fig10_iocost_dim.dir/bench_fig10_iocost_dim.cc.o"
  "CMakeFiles/bench_fig10_iocost_dim.dir/bench_fig10_iocost_dim.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_iocost_dim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
