# Empty compiler generated dependencies file for bench_other_structures.
# This may be replaced when dependencies are built.
