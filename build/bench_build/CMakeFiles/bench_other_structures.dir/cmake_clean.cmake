file(REMOVE_RECURSE
  "../bench/bench_other_structures"
  "../bench/bench_other_structures.pdb"
  "CMakeFiles/bench_other_structures.dir/bench_other_structures.cc.o"
  "CMakeFiles/bench_other_structures.dir/bench_other_structures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_other_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
