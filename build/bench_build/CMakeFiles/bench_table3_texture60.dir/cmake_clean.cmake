file(REMOVE_RECURSE
  "../bench/bench_table3_texture60"
  "../bench/bench_table3_texture60.pdb"
  "CMakeFiles/bench_table3_texture60.dir/bench_table3_texture60.cc.o"
  "CMakeFiles/bench_table3_texture60.dir/bench_table3_texture60.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_texture60.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
