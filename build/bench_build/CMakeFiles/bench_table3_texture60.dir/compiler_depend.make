# Empty compiler generated dependencies file for bench_table3_texture60.
# This may be replaced when dependencies are built.
