# Empty dependencies file for bench_fig13_page_size.
# This may be replaced when dependencies are built.
