# Empty compiler generated dependencies file for bench_baseline_limits.
# This may be replaced when dependencies are built.
