file(REMOVE_RECURSE
  "../bench/bench_baseline_limits"
  "../bench/bench_baseline_limits.pdb"
  "CMakeFiles/bench_baseline_limits.dir/bench_baseline_limits.cc.o"
  "CMakeFiles/bench_baseline_limits.dir/bench_baseline_limits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
