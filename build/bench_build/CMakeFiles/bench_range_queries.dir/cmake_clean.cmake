file(REMOVE_RECURSE
  "../bench/bench_range_queries"
  "../bench/bench_range_queries.pdb"
  "CMakeFiles/bench_range_queries.dir/bench_range_queries.cc.o"
  "CMakeFiles/bench_range_queries.dir/bench_range_queries.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_range_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
