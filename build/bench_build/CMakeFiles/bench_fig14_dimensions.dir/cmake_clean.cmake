file(REMOVE_RECURSE
  "../bench/bench_fig14_dimensions"
  "../bench/bench_fig14_dimensions.pdb"
  "CMakeFiles/bench_fig14_dimensions.dir/bench_fig14_dimensions.cc.o"
  "CMakeFiles/bench_fig14_dimensions.dir/bench_fig14_dimensions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_dimensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
