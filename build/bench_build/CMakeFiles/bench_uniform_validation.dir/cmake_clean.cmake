file(REMOVE_RECURSE
  "../bench/bench_uniform_validation"
  "../bench/bench_uniform_validation.pdb"
  "CMakeFiles/bench_uniform_validation.dir/bench_uniform_validation.cc.o"
  "CMakeFiles/bench_uniform_validation.dir/bench_uniform_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniform_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
