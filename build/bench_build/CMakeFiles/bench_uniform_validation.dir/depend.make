# Empty dependencies file for bench_uniform_validation.
# This may be replaced when dependencies are built.
