file(REMOVE_RECURSE
  "../bench/bench_va_file"
  "../bench/bench_va_file.pdb"
  "CMakeFiles/bench_va_file.dir/bench_va_file.cc.o"
  "CMakeFiles/bench_va_file.dir/bench_va_file.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_va_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
