# Empty dependencies file for bench_va_file.
# This may be replaced when dependencies are built.
