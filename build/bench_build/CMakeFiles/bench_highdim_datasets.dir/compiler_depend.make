# Empty compiler generated dependencies file for bench_highdim_datasets.
# This may be replaced when dependencies are built.
