file(REMOVE_RECURSE
  "../bench/bench_highdim_datasets"
  "../bench/bench_highdim_datasets.pdb"
  "CMakeFiles/bench_highdim_datasets.dir/bench_highdim_datasets.cc.o"
  "CMakeFiles/bench_highdim_datasets.dir/bench_highdim_datasets.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_highdim_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
