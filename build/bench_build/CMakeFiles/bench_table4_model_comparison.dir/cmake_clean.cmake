file(REMOVE_RECURSE
  "../bench/bench_table4_model_comparison"
  "../bench/bench_table4_model_comparison.pdb"
  "CMakeFiles/bench_table4_model_comparison.dir/bench_table4_model_comparison.cc.o"
  "CMakeFiles/bench_table4_model_comparison.dir/bench_table4_model_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
