# Empty compiler generated dependencies file for bench_fig9_iocost_memory.
# This may be replaced when dependencies are built.
