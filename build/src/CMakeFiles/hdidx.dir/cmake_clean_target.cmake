file(REMOVE_RECURSE
  "libhdidx.a"
)
