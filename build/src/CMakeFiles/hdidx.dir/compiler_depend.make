# Empty compiler generated dependencies file for hdidx.
# This may be replaced when dependencies are built.
