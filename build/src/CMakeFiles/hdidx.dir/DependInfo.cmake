
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/dim_selector.cc" "src/CMakeFiles/hdidx.dir/apps/dim_selector.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/apps/dim_selector.cc.o.d"
  "/root/repo/src/apps/multistep_knn.cc" "src/CMakeFiles/hdidx.dir/apps/multistep_knn.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/apps/multistep_knn.cc.o.d"
  "/root/repo/src/apps/page_size_tuner.cc" "src/CMakeFiles/hdidx.dir/apps/page_size_tuner.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/apps/page_size_tuner.cc.o.d"
  "/root/repo/src/baselines/fractal.cc" "src/CMakeFiles/hdidx.dir/baselines/fractal.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/baselines/fractal.cc.o.d"
  "/root/repo/src/baselines/histogram.cc" "src/CMakeFiles/hdidx.dir/baselines/histogram.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/baselines/histogram.cc.o.d"
  "/root/repo/src/baselines/mtree_model.cc" "src/CMakeFiles/hdidx.dir/baselines/mtree_model.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/baselines/mtree_model.cc.o.d"
  "/root/repo/src/baselines/uniform_model.cc" "src/CMakeFiles/hdidx.dir/baselines/uniform_model.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/baselines/uniform_model.cc.o.d"
  "/root/repo/src/common/random.cc" "src/CMakeFiles/hdidx.dir/common/random.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/common/random.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/CMakeFiles/hdidx.dir/common/stats.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/common/stats.cc.o.d"
  "/root/repo/src/core/compensation.cc" "src/CMakeFiles/hdidx.dir/core/compensation.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/compensation.cc.o.d"
  "/root/repo/src/core/confidence.cc" "src/CMakeFiles/hdidx.dir/core/confidence.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/confidence.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/hdidx.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/cutoff.cc" "src/CMakeFiles/hdidx.dir/core/cutoff.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/cutoff.cc.o.d"
  "/root/repo/src/core/dynamic_mini_index.cc" "src/CMakeFiles/hdidx.dir/core/dynamic_mini_index.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/dynamic_mini_index.cc.o.d"
  "/root/repo/src/core/hupper.cc" "src/CMakeFiles/hdidx.dir/core/hupper.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/hupper.cc.o.d"
  "/root/repo/src/core/mini_index.cc" "src/CMakeFiles/hdidx.dir/core/mini_index.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/mini_index.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/CMakeFiles/hdidx.dir/core/predictor.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/predictor.cc.o.d"
  "/root/repo/src/core/resampled.cc" "src/CMakeFiles/hdidx.dir/core/resampled.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/resampled.cc.o.d"
  "/root/repo/src/core/sstree_predict.cc" "src/CMakeFiles/hdidx.dir/core/sstree_predict.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/core/sstree_predict.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/hdidx.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/data/csv.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/hdidx.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/hdidx.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/generators.cc" "src/CMakeFiles/hdidx.dir/data/generators.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/data/generators.cc.o.d"
  "/root/repo/src/data/transforms.cc" "src/CMakeFiles/hdidx.dir/data/transforms.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/data/transforms.cc.o.d"
  "/root/repo/src/geometry/bounding_box.cc" "src/CMakeFiles/hdidx.dir/geometry/bounding_box.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/geometry/bounding_box.cc.o.d"
  "/root/repo/src/geometry/bounding_sphere.cc" "src/CMakeFiles/hdidx.dir/geometry/bounding_sphere.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/geometry/bounding_sphere.cc.o.d"
  "/root/repo/src/geometry/distance.cc" "src/CMakeFiles/hdidx.dir/geometry/distance.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/geometry/distance.cc.o.d"
  "/root/repo/src/index/bulk_loader.cc" "src/CMakeFiles/hdidx.dir/index/bulk_loader.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/bulk_loader.cc.o.d"
  "/root/repo/src/index/external_build.cc" "src/CMakeFiles/hdidx.dir/index/external_build.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/external_build.cc.o.d"
  "/root/repo/src/index/knn.cc" "src/CMakeFiles/hdidx.dir/index/knn.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/knn.cc.o.d"
  "/root/repo/src/index/pyramid.cc" "src/CMakeFiles/hdidx.dir/index/pyramid.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/pyramid.cc.o.d"
  "/root/repo/src/index/rstar.cc" "src/CMakeFiles/hdidx.dir/index/rstar.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/rstar.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/CMakeFiles/hdidx.dir/index/rtree.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/rtree.cc.o.d"
  "/root/repo/src/index/sstree.cc" "src/CMakeFiles/hdidx.dir/index/sstree.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/sstree.cc.o.d"
  "/root/repo/src/index/topology.cc" "src/CMakeFiles/hdidx.dir/index/topology.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/topology.cc.o.d"
  "/root/repo/src/index/tree_io.cc" "src/CMakeFiles/hdidx.dir/index/tree_io.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/tree_io.cc.o.d"
  "/root/repo/src/index/va_file.cc" "src/CMakeFiles/hdidx.dir/index/va_file.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/index/va_file.cc.o.d"
  "/root/repo/src/io/disk_model.cc" "src/CMakeFiles/hdidx.dir/io/disk_model.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/io/disk_model.cc.o.d"
  "/root/repo/src/io/io_stats.cc" "src/CMakeFiles/hdidx.dir/io/io_stats.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/io/io_stats.cc.o.d"
  "/root/repo/src/io/lru_cache.cc" "src/CMakeFiles/hdidx.dir/io/lru_cache.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/io/lru_cache.cc.o.d"
  "/root/repo/src/io/paged_file.cc" "src/CMakeFiles/hdidx.dir/io/paged_file.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/io/paged_file.cc.o.d"
  "/root/repo/src/workload/query_workload.cc" "src/CMakeFiles/hdidx.dir/workload/query_workload.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/workload/query_workload.cc.o.d"
  "/root/repo/src/workload/range_workload.cc" "src/CMakeFiles/hdidx.dir/workload/range_workload.cc.o" "gcc" "src/CMakeFiles/hdidx.dir/workload/range_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
