# Empty compiler generated dependencies file for hdidx_gen.
# This may be replaced when dependencies are built.
