file(REMOVE_RECURSE
  "CMakeFiles/hdidx_gen.dir/hdidx_gen.cc.o"
  "CMakeFiles/hdidx_gen.dir/hdidx_gen.cc.o.d"
  "hdidx_gen"
  "hdidx_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdidx_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
