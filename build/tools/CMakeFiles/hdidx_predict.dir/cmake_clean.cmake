file(REMOVE_RECURSE
  "CMakeFiles/hdidx_predict.dir/hdidx_predict.cc.o"
  "CMakeFiles/hdidx_predict.dir/hdidx_predict.cc.o.d"
  "hdidx_predict"
  "hdidx_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hdidx_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
