# Empty compiler generated dependencies file for hdidx_predict.
# This may be replaced when dependencies are built.
