/// End-to-end integration: the full Table-3-style pipeline on a reduced
/// clustered dataset — on-disk ground truth with charged I/O, then all three
/// predictors against it, checking both the accuracy bands and the I/O-cost
/// ordering the paper reports.

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/stats.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "core/mini_index.h"
#include "core/resampled.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/external_build.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static constexpr size_t kN = 20000;
  static constexpr size_t kDim = 12;
  static constexpr size_t kQueries = 30;
  static constexpr size_t kK = 8;
  static constexpr size_t kMemory = 2500;

  void SetUp() override {
    data_ = testing::SmallClustered(kN, kDim, 101);
    topo_ = std::make_unique<index::TreeTopology>(kN, 30, 6);
    ASSERT_GE(topo_->height(), 3u);

    // Ground truth: on-disk build with charged I/O, then measured queries.
    common::Rng wrng(102);
    workload_ = std::make_unique<workload::QueryWorkload>(
        workload::QueryWorkload::Create(data_, kQueries, kK, &wrng));

    io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
    index::ExternalBuildOptions options;
    options.topology = topo_.get();
    options.memory_points = kMemory;
    auto built = index::BuildOnDisk(&file, options);
    build_io_ = built.io;

    const data::Dataset reordered(
        std::vector<float>(file.raw().begin(), file.raw().end()), kDim);
    io::IoStats query_io;
    per_query_measured_ = index::CountSphereLeafAccesses(
        built.tree, workload_->queries(), workload_->radii(), &query_io);
    measured_ = common::Mean(per_query_measured_);
    on_disk_io_ = build_io_ + query_io;
    ASSERT_GT(measured_, 0.0);
  }

  data::Dataset data_{1};
  std::unique_ptr<index::TreeTopology> topo_;
  std::unique_ptr<workload::QueryWorkload> workload_;
  std::vector<double> per_query_measured_;
  double measured_ = 0.0;
  io::IoStats build_io_;
  io::IoStats on_disk_io_;
};

TEST_F(EndToEndTest, ResampledBeatsCutoffInAccuracy) {
  io::PagedFile f1 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  core::ResampledParams rp;
  rp.memory_points = kMemory;
  rp.h_upper = core::ChooseHupper(*topo_, kMemory);
  const auto resampled =
      core::PredictWithResampledTree(&f1, *topo_, *workload_, rp);

  io::PagedFile f2 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  core::CutoffParams cp;
  cp.memory_points = kMemory;
  cp.h_upper = rp.h_upper;
  const auto cutoff =
      core::PredictWithCutoffTree(&f2, *topo_, *workload_, cp);

  const double resampled_err = std::abs(
      common::RelativeError(resampled.avg_leaf_accesses, measured_));
  const double cutoff_err =
      std::abs(common::RelativeError(cutoff.avg_leaf_accesses, measured_));
  EXPECT_LT(resampled_err, 0.3);
  // The cutoff's uniformity assumption costs accuracy on clustered data.
  EXPECT_LT(resampled_err, cutoff_err + 0.05)
      << "resampled " << resampled_err << " vs cutoff " << cutoff_err;
}

TEST_F(EndToEndTest, PredictionIoOrdersOfMagnitudeBelowOnDisk) {
  io::PagedFile f1 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  core::ResampledParams rp;
  rp.memory_points = kMemory;
  rp.h_upper = core::ChooseHupper(*topo_, kMemory);
  const auto resampled =
      core::PredictWithResampledTree(&f1, *topo_, *workload_, rp);

  io::PagedFile f2 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  core::CutoffParams cp;
  cp.memory_points = kMemory;
  cp.h_upper = 2;
  const auto cutoff =
      core::PredictWithCutoffTree(&f2, *topo_, *workload_, cp);

  const io::DiskModel disk;
  const double on_disk_cost = on_disk_io_.CostSeconds(disk);
  const double resampled_cost = resampled.io.CostSeconds(disk);
  const double cutoff_cost = cutoff.io.CostSeconds(disk);
  EXPECT_LT(cutoff_cost, resampled_cost);
  EXPECT_LT(resampled_cost * 3.0, on_disk_cost)
      << "resampled " << resampled_cost << "s vs on-disk " << on_disk_cost
      << "s";
}

TEST_F(EndToEndTest, HupperSweepShapesError) {
  // Section 4.5.2: small h_upper underestimates; the chosen h_upper is
  // near the error minimum.
  std::vector<double> errors;
  for (size_t h = 2; h <= topo_->height() - 1; ++h) {
    io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
    core::ResampledParams params;
    params.memory_points = kMemory;
    params.h_upper = h;
    const auto result =
        core::PredictWithResampledTree(&file, *topo_, *workload_, params);
    errors.push_back(
        common::RelativeError(result.avg_leaf_accesses, measured_));
  }
  const size_t chosen = core::ChooseHupper(*topo_, kMemory);
  const double chosen_err = std::abs(errors[chosen - 2]);
  double min_err = chosen_err;
  for (double e : errors) min_err = std::min(min_err, std::abs(e));
  EXPECT_LT(chosen_err, min_err + 0.15)
      << "chosen h_upper is far from the error minimum";
}

TEST_F(EndToEndTest, MiniIndexUnlimitedMemoryAlsoAccurate) {
  core::MiniIndexParams params;
  params.sampling_fraction = 0.2;
  const auto result =
      core::PredictWithMiniIndex(data_, *topo_, *workload_, params);
  EXPECT_LT(std::abs(common::RelativeError(result.avg_leaf_accesses,
                                           measured_)),
            0.35);
}

TEST_F(EndToEndTest, OnDiskQueriesAreMostlyRandom) {
  // Section 5.1: seek/transfer ratio for queries is close to 1.
  io::IoStats query_io;
  // Re-measure on an in-memory tree (identical page accesses).
  index::BulkLoadOptions options;
  options.topology = topo_.get();
  const auto tree = index::BulkLoadInMemory(data_, options);
  index::CountSphereLeafAccesses(tree, workload_->queries(),
                                 workload_->radii(), &query_io);
  EXPECT_EQ(query_io.page_seeks, query_io.page_transfers);
}

}  // namespace
}  // namespace hdidx
