#include "index/topology.h"

#include "gtest/gtest.h"
#include "io/disk_model.h"

namespace hdidx::index {
namespace {

TEST(TopologyTest, SinglePageTree) {
  const TreeTopology t(10, 33, 16);
  EXPECT_EQ(t.height(), 1u);
  EXPECT_EQ(t.NumLeaves(), 1u);
  EXPECT_DOUBLE_EQ(t.PointsPerSubtree(1), 10.0);
}

TEST(TopologyTest, HeightGrowsLogarithmically) {
  EXPECT_EQ(TreeTopology(33, 33, 16).height(), 1u);
  EXPECT_EQ(TreeTopology(34, 33, 16).height(), 2u);
  EXPECT_EQ(TreeTopology(33 * 16, 33, 16).height(), 2u);
  EXPECT_EQ(TreeTopology(33 * 16 + 1, 33, 16).height(), 3u);
}

TEST(TopologyTest, Texture60MatchesPaperSetting) {
  // TEXTURE60: 275,465 60-d points, 8 KB pages. The paper reports tree
  // height 5 and sigma_upper = 10,000/275,465 = 0.0363 for M = 10,000.
  const io::DiskModel disk;
  const TreeTopology t = TreeTopology::FromDisk(275465, 60, disk);
  EXPECT_EQ(t.data_capacity(), 33u);  // 8192 / 244
  EXPECT_EQ(t.dir_capacity(), 16u);   // 8192 / 484
  EXPECT_EQ(t.height(), 5u);
  // k for h_upper=2 is NodesAtLevel(4) = 3 (paper: sigma_lower = 0.1089 =
  // 3*10000/275465).
  EXPECT_EQ(t.NodesAtLevel(4), 3u);
  EXPECT_EQ(t.NodesAtLevel(3), 33u);
  // Leaf count in the thousands, close to the paper's 8,641.
  EXPECT_NEAR(static_cast<double>(t.NumLeaves()), 8641.0, 400.0);
}

TEST(TopologyTest, SubtreeCapacityMultiplies) {
  const TreeTopology t(100000, 33, 16);
  EXPECT_EQ(t.SubtreeCapacity(1), 33u);
  EXPECT_EQ(t.SubtreeCapacity(2), 33u * 16);
  EXPECT_EQ(t.SubtreeCapacity(3), 33u * 16 * 16);
}

TEST(TopologyTest, NodesAtLevelAreCeilings) {
  const TreeTopology t(1000, 10, 4);
  // height: cap(1)=10, cap(2)=40, cap(3)=160, cap(4)=640, cap(5)=2560.
  EXPECT_EQ(t.height(), 5u);
  EXPECT_EQ(t.NodesAtLevel(1), 100u);
  EXPECT_EQ(t.NodesAtLevel(2), 25u);
  EXPECT_EQ(t.NodesAtLevel(3), 7u);
  EXPECT_EQ(t.NodesAtLevel(4), 2u);
  EXPECT_EQ(t.NodesAtLevel(5), 1u);
}

TEST(TopologyTest, PtsFunctionEndpoints) {
  // pts(height) = N and pts(1) = C_eff,data (paper Section 4.2).
  const TreeTopology t(1000, 10, 4);
  EXPECT_DOUBLE_EQ(t.PointsPerSubtree(t.height()), 1000.0);
  EXPECT_DOUBLE_EQ(t.PointsPerSubtree(1), 10.0);
  EXPECT_DOUBLE_EQ(t.EffectiveDataCapacity(), 10.0);
}

TEST(TopologyTest, EffectiveDirCapacityBounded) {
  const TreeTopology t(100000, 33, 16);
  const double eff = t.EffectiveDirCapacity();
  EXPECT_GT(eff, 1.0);
  EXPECT_LE(eff, 16.0);
}

TEST(TopologyTest, FanoutForRoundsUp) {
  const TreeTopology t(1000, 10, 4);
  EXPECT_EQ(t.FanoutFor(2, 40), 4u);
  EXPECT_EQ(t.FanoutFor(2, 41), 5u);
  EXPECT_EQ(t.FanoutFor(2, 1), 1u);
  EXPECT_EQ(t.FanoutFor(5, 1000), 2u);  // 1000 / 640
}

TEST(TopologyTest, FromDiskClampsTinyPages) {
  io::DiskModel disk;
  disk.page_bytes = 64;  // too small for any realistic point
  const TreeTopology t = TreeTopology::FromDisk(100, 100, disk);
  EXPECT_GE(t.data_capacity(), 1u);
  EXPECT_GE(t.dir_capacity(), 2u);
}

TEST(TopologyTest, ConsistencyAcrossLevels) {
  // Parent node count times dir capacity must cover child node count.
  const TreeTopology t(275465, 33, 16);
  for (size_t level = 2; level <= t.height(); ++level) {
    EXPECT_LE(t.NodesAtLevel(level - 1),
              t.NodesAtLevel(level) * t.dir_capacity());
    EXPECT_LE(t.NodesAtLevel(level), t.NodesAtLevel(level - 1));
  }
}

}  // namespace
}  // namespace hdidx::index
