/// Unit tests for the bump-pointer arena backing the kernel layer's hot
/// structures: alignment of every allocation, pointer stability across
/// growth and moves, block doubling, and the aligned vector allocator.

#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "gtest/gtest.h"

namespace hdidx::common {
namespace {

uintptr_t Addr(const void* p) { return reinterpret_cast<uintptr_t>(p); }

TEST(ArenaTest, EveryAllocationIsCachelineAligned) {
  Arena arena;
  // Odd sizes force the bump pointer through unaligned offsets; the next
  // allocation must still come back aligned.
  for (const size_t bytes : {1u, 3u, 64u, 65u, 127u, 4096u, 13u}) {
    void* p = arena.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(Addr(p) % Arena::kAlignment, 0u) << bytes;
    std::memset(p, 0xAB, bytes);  // must be writable
  }
}

TEST(ArenaTest, ZeroByteAllocationIsValidAndUnique) {
  Arena arena;
  void* a = arena.Allocate(0);
  void* b = arena.Allocate(0);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(Addr(a) % Arena::kAlignment, 0u);
}

TEST(ArenaTest, PointersSurviveGrowthAndMoves) {
  Arena arena;
  std::vector<int*> arrays;
  std::vector<size_t> sizes;
  // Allocate enough to force several new blocks past the first.
  for (size_t i = 0; i < 200; ++i) {
    const size_t count = 100 + 37 * i;
    int* a = arena.AllocateArray<int>(count);
    std::iota(a, a + count, static_cast<int>(i));
    arrays.push_back(a);
    sizes.push_back(count);
  }
  EXPECT_GT(arena.num_blocks(), 1u);

  Arena moved = std::move(arena);
  Arena assigned;
  assigned = std::move(moved);
  // Every previously returned array is intact and readable through the
  // twice-moved arena.
  for (size_t i = 0; i < arrays.size(); ++i) {
    EXPECT_EQ(arrays[i][0], static_cast<int>(i));
    EXPECT_EQ(arrays[i][sizes[i] - 1],
              static_cast<int>(i + sizes[i] - 1));
  }
  // The moved-into arena still allocates.
  int* more = assigned.AllocateArray<int>(16);
  EXPECT_EQ(Addr(more) % Arena::kAlignment, 0u);
}

TEST(ArenaTest, AccountingTracksRoundedBytes) {
  Arena arena;
  EXPECT_EQ(arena.bytes_allocated(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), 0u);
  EXPECT_EQ(arena.num_blocks(), 0u);
  arena.Allocate(1);
  // One byte costs one aligned slot.
  EXPECT_EQ(arena.bytes_allocated(), Arena::kAlignment);
  EXPECT_GE(arena.bytes_reserved(), Arena::kMinBlockBytes);
  EXPECT_EQ(arena.num_blocks(), 1u);
  arena.Allocate(Arena::kAlignment);
  EXPECT_EQ(arena.bytes_allocated(), 2 * Arena::kAlignment);
  // Reserved never shrinks below allocated.
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(ArenaTest, OversizedAllocationGetsItsOwnBlock) {
  Arena arena;
  arena.Allocate(16);  // first, small block
  const size_t huge = Arena::kMaxBlockBytes + 4096;
  std::byte* p = static_cast<std::byte*>(arena.Allocate(huge));
  EXPECT_EQ(Addr(p) % Arena::kAlignment, 0u);
  // Whole range is usable.
  p[0] = std::byte{1};
  p[huge - 1] = std::byte{2};
  EXPECT_GE(arena.bytes_reserved(), huge);
}

TEST(ArenaTest, BlockSizesDoubleUpToCap) {
  Arena arena;
  size_t last_blocks = 0;
  // Many small allocations: block count should grow far slower than the
  // allocation count because each new block doubles.
  for (int i = 0; i < 5000; ++i) {
    arena.Allocate(256);
    last_blocks = arena.num_blocks();
  }
  EXPECT_LT(last_blocks, 32u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_allocated());
}

TEST(AlignedVectorTest, BufferIsCachelineAlignedAndGrowable) {
  AlignedVector<float> v;
  for (int i = 0; i < 1000; ++i) v.push_back(static_cast<float>(i));
  EXPECT_EQ(Addr(v.data()) % Arena::kAlignment, 0u);
  EXPECT_EQ(v[999], 999.f);
  AlignedVector<float> copy = v;
  EXPECT_EQ(Addr(copy.data()) % Arena::kAlignment, 0u);
  EXPECT_EQ(copy, v);
}

}  // namespace
}  // namespace hdidx::common
