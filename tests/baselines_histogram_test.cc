#include "baselines/histogram.h"

#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace hdidx::baselines {
namespace {

TEST(GridHistogramTest, ResolutionFromBudget) {
  common::Rng rng(1);
  const auto d2 = data::GenerateUniform(1000, 2, &rng);
  EXPECT_EQ(GridHistogram(d2, 1024).resolution(), 32u);
  const auto d4 = data::GenerateUniform(1000, 4, &rng);
  EXPECT_EQ(GridHistogram(d4, 1024).resolution(), 5u);  // floor(1024^0.25)
  // The high-dimensional collapse the paper describes: resolution 1.
  const auto d16 = data::GenerateUniform(1000, 16, &rng);
  EXPECT_EQ(GridHistogram(d16, 1024).resolution(), 1u);
}

TEST(GridHistogramTest, TotalCountConserved) {
  common::Rng rng(2);
  const auto data = data::GenerateUniform(5000, 3, &rng);
  const GridHistogram hist(data, 512);
  // A box covering everything must estimate ~N exactly.
  EXPECT_NEAR(hist.EstimateBoxCardinality(data.Bounds()), 5000.0, 1.0);
}

TEST(GridHistogramTest, AccurateOnUniformLowDim) {
  common::Rng rng(3);
  const auto data = data::GenerateUniform(20000, 2, &rng);
  const GridHistogram hist(data, 4096);
  common::Rng qrng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const float cx = static_cast<float>(qrng.NextUniform(0.2, 0.8));
    const float cy = static_cast<float>(qrng.NextUniform(0.2, 0.8));
    const geometry::BoundingBox box({cx - 0.1f, cy - 0.1f},
                                    {cx + 0.1f, cy + 0.1f});
    const double estimate = hist.EstimateBoxCardinality(box);
    const double exact =
        static_cast<double>(GridHistogram::ExactBoxCardinality(data, box));
    EXPECT_NEAR(estimate, exact, std::max(20.0, 0.15 * exact))
        << "trial " << trial;
  }
}

TEST(GridHistogramTest, FractionalCellCoverage) {
  // Single cell, half covered: estimate = half the points.
  data::Dataset data(1);
  common::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    data.Append(std::vector<float>{static_cast<float>(rng.NextDouble())});
  }
  const GridHistogram hist(data, 1);  // one cell
  const geometry::BoundingBox half({0.0f}, {0.5f});
  EXPECT_NEAR(hist.EstimateBoxCardinality(half), 5000.0, 300.0);
}

TEST(GridHistogramTest, DisjointBoxEstimatesZero) {
  common::Rng rng(6);
  const auto data = data::GenerateUniform(1000, 2, &rng);
  const GridHistogram hist(data, 256);
  const geometry::BoundingBox far({5.0f, 5.0f}, {6.0f, 6.0f});
  EXPECT_DOUBLE_EQ(hist.EstimateBoxCardinality(far), 0.0);
}

TEST(GridHistogramTest, HighDimFailureModes) {
  // The paper's Section 2.3 argument, executable: on clustered
  // high-dimensional data a budgeted histogram either collapses to one
  // cell (no selectivity power) or is nearly all empty cells.
  const auto data = hdidx::testing::SmallClustered(5000, 16, 7);
  const GridHistogram coarse(data, 1024);
  EXPECT_EQ(coarse.resolution(), 1u);  // degenerate: global uniform model

  // Force resolution 2 per dim: 2^16 = 65536 cells for 5000 points.
  const GridHistogram fine(data, 65536);
  EXPECT_EQ(fine.resolution(), 2u);
  EXPECT_GT(fine.EmptyCellFraction(), 0.5);
}

TEST(GridHistogramTest, ClusteredSelectivityBeatsUniformAssumptionLowDim) {
  // In low dimensions the histogram IS better than global uniformity:
  // a box on a cluster core must estimate far more points than N * volume.
  const auto data = hdidx::testing::SmallClustered(20000, 2, 8);
  const GridHistogram hist(data, 4096);
  // Center a small box on the densest point (first data row is in a
  // cluster with high probability).
  const auto c = data.row(0);
  const geometry::BoundingBox box({c[0] - 0.02f, c[1] - 0.02f},
                                  {c[0] + 0.02f, c[1] + 0.02f});
  const double exact =
      static_cast<double>(GridHistogram::ExactBoxCardinality(data, box));
  const double estimate = hist.EstimateBoxCardinality(box);
  const auto bounds = data.Bounds();
  const double uniform_estimate =
      20000.0 * box.Volume() / bounds.Volume();
  if (exact > 50.0) {
    EXPECT_LT(std::abs(estimate - exact), std::abs(uniform_estimate - exact));
  }
}

}  // namespace
}  // namespace hdidx::baselines
