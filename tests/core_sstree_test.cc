#include "core/sstree_predict.h"

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/stats.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/sstree.h"
#include "test_util.h"

namespace hdidx::core {
namespace {

TEST(BoundingSphereTest, OfPointsCoversAll) {
  common::Rng rng(1);
  const auto data = data::GenerateUniform(200, 5, &rng);
  const auto sphere =
      geometry::BoundingSphere::OfPoints(data.data(), data.size(), 5);
  EXPECT_FALSE(sphere.empty());
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_LE(sphere.MinDist(data.row(i)), 1e-6);
  }
}

TEST(BoundingSphereTest, SinglePointHasZeroRadius) {
  const std::vector<float> p = {1, 2, 3};
  const auto sphere = geometry::BoundingSphere::OfPoints(p, 1, 3);
  EXPECT_DOUBLE_EQ(sphere.radius(), 0.0);
  EXPECT_DOUBLE_EQ(sphere.MinDist(p), 0.0);
}

TEST(BoundingSphereTest, MinDistAndIntersection) {
  const geometry::BoundingSphere sphere({0.0f, 0.0f}, 1.0);
  const std::vector<float> far = {3.0f, 0.0f};
  EXPECT_DOUBLE_EQ(sphere.MinDist(far), 2.0);
  EXPECT_TRUE(sphere.IntersectsSphere(far, 2.0));
  EXPECT_FALSE(sphere.IntersectsSphere(far, 1.9));
  const std::vector<float> inside = {0.5f, 0.0f};
  EXPECT_DOUBLE_EQ(sphere.MinDist(inside), 0.0);
}

TEST(BoundingSphereTest, InflateRadius) {
  geometry::BoundingSphere sphere({0.0f}, 2.0);
  sphere.InflateRadius(1.5);
  EXPECT_DOUBLE_EQ(sphere.radius(), 3.0);
}

TEST(BoundingSphereTest, SqrtFreeIntersectionMatchesMinDist) {
  // The squared-domain test must agree with the MinDist definition on
  // random sphere pairs (both are exact at these magnitudes).
  common::Rng rng(23);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<float> c1(4), c2(4);
    for (auto& v : c1) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    for (auto& v : c2) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    const geometry::BoundingSphere sphere(c1, rng.NextUniform(0.0, 1.0));
    const double radius = rng.NextUniform(0.0, 1.0);
    EXPECT_EQ(sphere.IntersectsSphere(c2, radius),
              sphere.MinDist(c2) <= radius)
        << "trial " << trial;
  }
}

TEST(BoundingSphereDeathTest, NegativeQueryRadiusIsFatal) {
  const geometry::BoundingSphere sphere({0.0f, 0.0f}, 1.0);
  const std::vector<float> center = {3.0f, 0.0f};
  EXPECT_DEATH(sphere.IntersectsSphere(center, -0.1), "non-negative");
  const std::vector<geometry::BoundingSphere> leaves = {sphere};
  EXPECT_DEATH(index::CountSphereAccesses(leaves, center, -1.0),
               "non-negative");
  EXPECT_DEATH(index::CountSphereAccesses(leaves, center, std::nan("")),
               "non-negative");
}

TEST(SphereCompensationTest, Limits) {
  EXPECT_DOUBLE_EQ(SphereCompensationGrowth(33, 1.0, 60), 1.0);
  EXPECT_GT(SphereCompensationGrowth(33, 0.1, 60), 1.0);
  // Spheres shrink much less than boxes: the max-distance statistic
  // converges as nd/(nd+1), so growth stays close to 1 in high dimensions.
  EXPECT_LT(SphereCompensationGrowth(33, 0.1, 60), 1.05);
  // Monotone in zeta.
  EXPECT_GT(SphereCompensationGrowth(20, 0.05, 4),
            SphereCompensationGrowth(20, 0.5, 4));
}

TEST(SphereCompensationTest, MatchesMonteCarloInTheBall) {
  // Empirical check of the nd/(nd+1) law in d=3: bounding radius of n
  // uniform-in-ball points.
  common::Rng rng(2);
  const size_t d = 3;
  auto mean_max_radius = [&](size_t n, int trials) {
    double total = 0.0;
    for (int t = 0; t < trials; ++t) {
      double max_r = 0.0;
      for (size_t i = 0; i < n; ++i) {
        // Sample uniform in the unit ball by rejection.
        double x[3];
        double s;
        do {
          s = 0.0;
          for (auto& v : x) {
            v = 2.0 * rng.NextDouble() - 1.0;
            s += v * v;
          }
        } while (s > 1.0);
        max_r = std::max(max_r, std::sqrt(s));
      }
      total += max_r;
    }
    return total / trials;
  };
  const size_t c = 64;
  const double zeta = 0.25;
  const double measured_ratio =
      mean_max_radius(c, 400) / mean_max_radius(c / 4, 400);
  EXPECT_NEAR(measured_ratio, SphereCompensationGrowth(c, zeta, d), 0.01);
}

class SsTreePredictTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Noise-free clusters: bounding-sphere radii are outlier-driven, so a
    // 2% uniform background would make the radius statistic unstable under
    // sampling (see the limitation note in core/sstree_predict.h).
    common::Rng gen(31);
    data::ClusteredConfig config;
    config.num_points = 12000;
    config.dim = 8;
    config.num_clusters = 8;
    config.intrinsic_dim = 3.0;
    config.noise_fraction = 0.0;
    data_ = data::GenerateClustered(config, &gen);
    topo_ = std::make_unique<index::TreeTopology>(data_.size(), 50, 8);
    common::Rng wrng(32);
    workload_ = std::make_unique<workload::QueryWorkload>(
        workload::QueryWorkload::Create(data_, 30, 8, &wrng));

    index::BulkLoadOptions full;
    full.topology = topo_.get();
    const index::RTree tree = index::BulkLoadInMemory(data_, full);
    const auto spheres = index::ComputeLeafSpheres(tree, data_);
    num_leaves_ = spheres.size();
    measured_per_query_ = MeasureSsTreeLeafAccesses(spheres, *workload_);
    measured_ = common::Mean(measured_per_query_);
  }

  data::Dataset data_{1};
  std::unique_ptr<index::TreeTopology> topo_;
  std::unique_ptr<workload::QueryWorkload> workload_;
  std::vector<double> measured_per_query_;
  double measured_ = 0.0;
  size_t num_leaves_ = 0;
};

TEST_F(SsTreePredictTest, LeafSpheresCoverTheirPoints) {
  index::BulkLoadOptions full;
  full.topology = topo_.get();
  const index::RTree tree = index::BulkLoadInMemory(data_, full);
  const auto spheres = index::ComputeLeafSpheres(tree, data_);
  ASSERT_EQ(spheres.size(), tree.num_leaves());
  for (size_t i = 0; i < spheres.size(); ++i) {
    const auto& node = tree.node(tree.leaf_ids()[i]);
    for (uint32_t pos = node.start; pos < node.start + node.count; ++pos) {
      EXPECT_LE(spheres[i].MinDist(data_.row(tree.OrderedIndex(pos))), 1e-5);
    }
  }
}

TEST_F(SsTreePredictTest, FullSampleExact) {
  MiniIndexParams params;
  params.sampling_fraction = 1.0;
  const auto result =
      PredictSsTreeWithMiniIndex(data_, *topo_, *workload_, params);
  EXPECT_NEAR(result.avg_leaf_accesses, measured_, 1e-9);
  EXPECT_EQ(result.num_predicted_leaves, num_leaves_);
}

TEST_F(SsTreePredictTest, SampledPredictionTracksMeasurement) {
  MiniIndexParams params;
  params.sampling_fraction = 0.25;
  const auto result =
      PredictSsTreeWithMiniIndex(data_, *topo_, *workload_, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_);
  EXPECT_LT(std::abs(rel), 0.35) << "relative error " << rel;
  // Per-query correlation should be strong, as for the R-tree predictor.
  EXPECT_GT(common::PearsonCorrelation(result.per_query_accesses,
                                       measured_per_query_),
            0.7);
}

TEST_F(SsTreePredictTest, SphereAccessCountMatchesBruteForce) {
  index::BulkLoadOptions full;
  full.topology = topo_.get();
  const index::RTree tree = index::BulkLoadInMemory(data_, full);
  const auto spheres = index::ComputeLeafSpheres(tree, data_);
  const auto center = data_.row(42);
  size_t brute = 0;
  for (const auto& s : spheres) {
    if (s.MinDist(center) <= 0.25) ++brute;
  }
  EXPECT_EQ(index::CountSphereAccesses(spheres, center, 0.25), brute);
}

}  // namespace
}  // namespace hdidx::core
