#include "core/mini_index.h"

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::core {
namespace {

/// Measured average leaf accesses on the fully built index.
double MeasureAverage(const data::Dataset& data,
                      const index::TreeTopology& topo,
                      const workload::QueryWorkload& workload) {
  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  const auto counts = index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr);
  return common::Mean(counts);
}

class MiniIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng gen(1);
    data_ = data::GenerateUniform(20000, 8, &gen);
    topo_ = std::make_unique<index::TreeTopology>(data_.size(), 80, 10);
    common::Rng wrng(2);
    workload_ = std::make_unique<workload::QueryWorkload>(
        workload::QueryWorkload::Create(data_, 60, 10, &wrng));
    measured_ = MeasureAverage(data_, *topo_, *workload_);
  }

  data::Dataset data_{1};
  std::unique_ptr<index::TreeTopology> topo_;
  std::unique_ptr<workload::QueryWorkload> workload_;
  double measured_ = 0.0;
};

TEST_F(MiniIndexTest, FullSampleReproducesMeasurementExactly) {
  MiniIndexParams params;
  params.sampling_fraction = 1.0;
  const PredictionResult result =
      PredictWithMiniIndex(data_, *topo_, *workload_, params);
  EXPECT_NEAR(result.avg_leaf_accesses, measured_, 1e-9);
  EXPECT_EQ(result.num_predicted_leaves, topo_->NumLeaves());
}

TEST_F(MiniIndexTest, CompensatedPredictionAccurateOnUniformData) {
  MiniIndexParams params;
  params.sampling_fraction = 0.2;
  params.compensate = true;
  const PredictionResult result =
      PredictWithMiniIndex(data_, *topo_, *workload_, params);
  const double rel = common::RelativeError(result.avg_leaf_accesses, measured_);
  EXPECT_LT(std::abs(rel), 0.15) << "relative error " << rel;
}

TEST_F(MiniIndexTest, UncompensatedUnderestimates) {
  MiniIndexParams compensated, plain;
  compensated.sampling_fraction = plain.sampling_fraction = 0.1;
  plain.compensate = false;
  const double with_comp =
      PredictWithMiniIndex(data_, *topo_, *workload_, compensated)
          .avg_leaf_accesses;
  const double without_comp =
      PredictWithMiniIndex(data_, *topo_, *workload_, plain)
          .avg_leaf_accesses;
  // Shrunken pages intersect fewer spheres (Figure 2's lower curve).
  EXPECT_LT(without_comp, with_comp);
  EXPECT_LT(without_comp, measured_);
}

TEST_F(MiniIndexTest, ErrorShrinksWithSampleSize) {
  // Figure 2: average |relative error| decreases as the sample grows.
  auto abs_error = [&](double fraction) {
    MiniIndexParams params;
    params.sampling_fraction = fraction;
    double total = 0.0;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      params.seed = seed;
      total += std::abs(common::RelativeError(
          PredictWithMiniIndex(data_, *topo_, *workload_, params)
              .avg_leaf_accesses,
          measured_));
    }
    return total / 3.0;
  };
  EXPECT_LT(abs_error(0.5), abs_error(0.02) + 0.02);
}

TEST_F(MiniIndexTest, StructuralSimilarityOfLeafCount) {
  MiniIndexParams params;
  params.sampling_fraction = 0.1;
  const auto leaves = BuildGrownMiniIndexLeaves(data_, *topo_, params);
  // Within a few leaves of the full index's count.
  EXPECT_NEAR(static_cast<double>(leaves.size()),
              static_cast<double>(topo_->NumLeaves()),
              0.05 * static_cast<double>(topo_->NumLeaves()));
}

TEST_F(MiniIndexTest, IoIsZeroForInMemoryModel) {
  MiniIndexParams params;
  params.sampling_fraction = 0.1;
  const PredictionResult result =
      PredictWithMiniIndex(data_, *topo_, *workload_, params);
  EXPECT_EQ(result.io.page_seeks, 0u);
  EXPECT_EQ(result.io.page_transfers, 0u);
}

TEST_F(MiniIndexTest, AdaptiveBuiltTreePredictedWithinFivePercent) {
  // The predictor must model kAdaptiveSample layouts too: measure leaf
  // accesses on a full adaptive-built index, predict with a mini-index
  // built by the same strategy, and require < 5% average error across
  // sample seeds (the issue's acceptance bar for the new layout).
  index::BulkLoadOptions options;
  options.topology = topo_.get();
  options.split_strategy = index::SplitStrategy::kAdaptiveSample;
  const index::RTree tree = index::BulkLoadInMemory(data_, options);
  const auto counts = index::CountSphereLeafAccesses(
      tree, workload_->queries(), workload_->radii(), nullptr);
  const double measured = common::Mean(counts);

  MiniIndexParams params;
  params.split_strategy = index::SplitStrategy::kAdaptiveSample;
  params.sampling_fraction = 0.5;
  double total_rel = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    params.seed = seed;
    total_rel += std::abs(common::RelativeError(
        PredictWithMiniIndex(data_, *topo_, *workload_, params)
            .avg_leaf_accesses,
        measured));
  }
  EXPECT_LT(total_rel / 3.0, 0.05);
}

TEST_F(MiniIndexTest, AdaptiveFullSampleReproducesMeasurementExactly) {
  // zeta = 1 must degenerate to the measurement itself, exactly as for
  // VAMSplit — pins that the mini build really runs the adaptive pipeline
  // (same split planes from the same full "sample").
  index::BulkLoadOptions options;
  options.topology = topo_.get();
  options.split_strategy = index::SplitStrategy::kAdaptiveSample;
  const index::RTree tree = index::BulkLoadInMemory(data_, options);
  const auto counts = index::CountSphereLeafAccesses(
      tree, workload_->queries(), workload_->radii(), nullptr);
  const double measured = common::Mean(counts);

  MiniIndexParams params;
  params.split_strategy = index::SplitStrategy::kAdaptiveSample;
  params.sampling_fraction = 1.0;
  const PredictionResult result =
      PredictWithMiniIndex(data_, *topo_, *workload_, params);
  EXPECT_NEAR(result.avg_leaf_accesses, measured, 1e-9);
}

TEST(MiniIndexClusteredTest, WorksOnClusteredData) {
  const auto data = hdidx::testing::SmallClustered(15000, 6, 3);
  const index::TreeTopology topo(data.size(), 60, 8);
  common::Rng wrng(4);
  const auto workload = workload::QueryWorkload::Create(data, 50, 8, &wrng);
  const double measured = MeasureAverage(data, topo, workload);

  MiniIndexParams params;
  params.sampling_fraction = 0.25;
  const PredictionResult result =
      PredictWithMiniIndex(data, topo, workload, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured);
  // Clustered data is harder than uniform; generous band.
  EXPECT_LT(std::abs(rel), 0.35) << "relative error " << rel;
}

}  // namespace
}  // namespace hdidx::core
