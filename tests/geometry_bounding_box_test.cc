#include "geometry/bounding_box.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace hdidx::geometry {
namespace {

TEST(BoundingBoxTest, EmptyBoxProperties) {
  BoundingBox box(3);
  EXPECT_TRUE(box.empty());
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_EQ(box.Margin(), 0.0);
  EXPECT_EQ(box.Extent(0), 0.0f);
  const std::vector<float> p = {0, 0, 0};
  EXPECT_FALSE(box.Contains(p));
}

TEST(BoundingBoxTest, ExtendFromEmptyGivesPointBox) {
  BoundingBox box(2);
  const std::vector<float> p = {1.0f, 2.0f};
  box.Extend(p);
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains(p));
  EXPECT_EQ(box.Volume(), 0.0);
  EXPECT_EQ(box.lo(), p);
  EXPECT_EQ(box.hi(), p);
}

TEST(BoundingBoxTest, ExtendGrowsMinimally) {
  BoundingBox box(2);
  box.Extend(std::vector<float>{0, 0});
  box.Extend(std::vector<float>{2, 1});
  box.Extend(std::vector<float>{1, 0.5f});  // interior: no growth
  EXPECT_EQ(box.lo(), (std::vector<float>{0, 0}));
  EXPECT_EQ(box.hi(), (std::vector<float>{2, 1}));
  EXPECT_DOUBLE_EQ(box.Volume(), 2.0);
  EXPECT_DOUBLE_EQ(box.Margin(), 3.0);
}

TEST(BoundingBoxTest, ExtendBoxAndUnion) {
  BoundingBox a({0, 0}, {1, 1});
  BoundingBox b({2, -1}, {3, 0.5});
  const BoundingBox u = BoundingBox::Union(a, b);
  EXPECT_EQ(u.lo(), (std::vector<float>{0, -1}));
  EXPECT_EQ(u.hi(), (std::vector<float>{3, 1}));
  // Union with an empty box is identity.
  BoundingBox empty(2);
  EXPECT_TRUE(BoundingBox::Union(a, empty) == a);
  EXPECT_TRUE(BoundingBox::Union(empty, a) == a);
}

TEST(BoundingBoxTest, IntersectionCases) {
  BoundingBox a({0, 0}, {2, 2});
  BoundingBox overlapping({1, 1}, {3, 3});
  BoundingBox touching({2, 0}, {3, 2});  // shares a face
  BoundingBox disjoint({5, 5}, {6, 6});
  BoundingBox contained({0.5, 0.5}, {1.5, 1.5});
  EXPECT_TRUE(a.Intersects(overlapping));
  EXPECT_TRUE(a.Intersects(touching));
  EXPECT_FALSE(a.Intersects(disjoint));
  EXPECT_TRUE(a.Intersects(contained));
  EXPECT_TRUE(contained.Intersects(a));
  BoundingBox empty(2);
  EXPECT_FALSE(a.Intersects(empty));
  EXPECT_FALSE(empty.Intersects(a));
}

TEST(BoundingBoxTest, ContainsIsInclusive) {
  BoundingBox box({0, 0}, {1, 1});
  EXPECT_TRUE(box.Contains(std::vector<float>{0, 0}));
  EXPECT_TRUE(box.Contains(std::vector<float>{1, 1}));
  EXPECT_TRUE(box.Contains(std::vector<float>{0.5f, 1}));
  EXPECT_FALSE(box.Contains(std::vector<float>{1.0001f, 0.5f}));
}

TEST(BoundingBoxTest, InflateAboutCenterScalesVolume) {
  BoundingBox box({0, 0, 0}, {2, 4, 8});
  const double volume = box.Volume();
  box.InflateAboutCenter(2.0);
  EXPECT_NEAR(box.Volume(), volume * 8.0, 1e-6);
  // Center preserved.
  EXPECT_FLOAT_EQ(box.Center(0), 1.0f);
  EXPECT_FLOAT_EQ(box.Center(1), 2.0f);
  EXPECT_FLOAT_EQ(box.Center(2), 4.0f);
  // Shrinking is the inverse.
  box.InflateAboutCenter(0.5);
  EXPECT_NEAR(box.Volume(), volume, 1e-4);
}

TEST(BoundingBoxTest, InflateByOneIsIdentity) {
  BoundingBox box({-1, 2}, {3, 5});
  const BoundingBox before = box;
  box.InflateAboutCenter(1.0);
  EXPECT_TRUE(box == before);
}

TEST(BoundingBoxTest, LongestDimension) {
  BoundingBox box({0, 0, 0}, {1, 5, 3});
  EXPECT_EQ(box.LongestDimension(), 1u);
  BoundingBox tie({0, 0}, {2, 2});
  EXPECT_EQ(tie.LongestDimension(), 0u);  // ties break low
}

TEST(BoundingBoxTest, OfPointsComputesMbr) {
  const std::vector<float> pts = {0, 0, 3, 1, 1, -2};
  const BoundingBox box = BoundingBox::OfPoints(pts, 3, 2);
  EXPECT_EQ(box.lo(), (std::vector<float>{0, -2}));
  EXPECT_EQ(box.hi(), (std::vector<float>{3, 1}));
}

TEST(BoundingBoxTest, ClearRestoresEmpty) {
  BoundingBox box({0, 0}, {1, 1});
  box.Clear();
  EXPECT_TRUE(box.empty());
  box.Extend(std::vector<float>{5, 5});
  EXPECT_TRUE(box.Contains(std::vector<float>{5, 5}));
}

TEST(BoundingBoxTest, HighDimensionalVolume) {
  std::vector<float> lo(64, 0.0f), hi(64, 0.5f);
  BoundingBox box(lo, hi);
  EXPECT_NEAR(box.Volume(), std::pow(0.5, 64), 1e-25);
}

}  // namespace
}  // namespace hdidx::geometry
