#include "core/resampled.h"

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/stats.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::core {
namespace {

class ResampledPredictorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(30000, 8, 5);
    topo_ = std::make_unique<index::TreeTopology>(data_.size(), 60, 8);
    ASSERT_GE(topo_->height(), 3u);
    common::Rng wrng(6);
    workload_ = std::make_unique<workload::QueryWorkload>(
        workload::QueryWorkload::Create(data_, 40, 10, &wrng));

    index::BulkLoadOptions options;
    options.topology = topo_.get();
    const index::RTree tree = index::BulkLoadInMemory(data_, options);
    per_query_measured_ = index::CountSphereLeafAccesses(
        tree, workload_->queries(), workload_->radii(), nullptr);
    measured_ = common::Mean(per_query_measured_);
  }

  PredictionResult Predict(size_t memory_points, size_t h_upper,
                           uint64_t seed = 9) {
    io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
    ResampledParams params;
    params.memory_points = memory_points;
    params.h_upper = h_upper;
    params.seed = seed;
    return PredictWithResampledTree(&file, *topo_, *workload_, params);
  }

  data::Dataset data_{1};
  std::unique_ptr<index::TreeTopology> topo_;
  std::unique_ptr<workload::QueryWorkload> workload_;
  std::vector<double> per_query_measured_;
  double measured_ = 0.0;
};

TEST_F(ResampledPredictorTest, AccurateAtChosenHupper) {
  const size_t h = ChooseHupper(*topo_, 3000);
  const PredictionResult result = Predict(3000, h);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_);
  // Paper: <5% at the sweet spot on real data; allow more on the small
  // clustered testbed.
  EXPECT_LT(std::abs(rel), 0.25) << "relative error " << rel;
}

TEST_F(ResampledPredictorTest, PerQueryCorrelationHigh) {
  // Figures 11-12: per-query predictions correlate with measurements.
  const size_t h = ChooseHupper(*topo_, 3000);
  const PredictionResult result = Predict(3000, h);
  const double r = common::PearsonCorrelation(result.per_query_accesses,
                                              per_query_measured_);
  EXPECT_GT(r, 0.7) << "correlation " << r;
}

TEST_F(ResampledPredictorTest, SigmaLowerSaturatesForTallUpperTree) {
  const PredictionResult result = Predict(3000, topo_->height() - 1);
  EXPECT_DOUBLE_EQ(result.sigma_lower,
                   SigmaLower(*topo_, 3000, topo_->height() - 1));
}

TEST_F(ResampledPredictorTest, MoreIoThanCutoffLessThanFullScanSquared) {
  io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
  CutoffParams cutoff_params;
  cutoff_params.memory_points = 3000;
  cutoff_params.h_upper = 2;
  const PredictionResult cutoff =
      PredictWithCutoffTree(&file, *topo_, *workload_, cutoff_params);
  const PredictionResult resampled = Predict(3000, 2);
  EXPECT_GT(resampled.io.page_transfers, cutoff.io.page_transfers);
  // The resampling pass adds at most ~2 extra dataset scans worth of
  // transfers at sigma_lower <= 1.
  EXPECT_LT(resampled.io.page_transfers, 4 * cutoff.io.page_transfers + 100);
}

TEST_F(ResampledPredictorTest, DeterministicForSeed) {
  const PredictionResult a = Predict(2000, 2, 3);
  const PredictionResult b = Predict(2000, 2, 3);
  EXPECT_EQ(a.avg_leaf_accesses, b.avg_leaf_accesses);
  EXPECT_TRUE(a.io == b.io);
}

TEST_F(ResampledPredictorTest, PredictedLeafCountTracksTopology) {
  const size_t h = ChooseHupper(*topo_, 3000);
  const PredictionResult result = Predict(3000, h);
  EXPECT_NEAR(static_cast<double>(result.num_predicted_leaves),
              static_cast<double>(topo_->NumLeaves()),
              0.12 * static_cast<double>(topo_->NumLeaves()));
}

TEST_F(ResampledPredictorTest, MemoryAsLargeAsDataIsNearExact) {
  // With M = N, sigma_upper = sigma_lower = 1: the prediction replays the
  // real index construction.
  const size_t h = ChooseHupper(*topo_, data_.size());
  const PredictionResult result = Predict(data_.size(), h);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_);
  EXPECT_LT(std::abs(rel), 0.1) << "relative error " << rel;
}

TEST(ResampledUniformTest, UniformDataValidation) {
  // Section 5.2: 8-d uniform data, resampled errors were -0.5%..-3%.
  common::Rng gen(7);
  const auto data = data::GenerateUniform(30000, 8, &gen);
  const index::TreeTopology topo(data.size(), 60, 8);
  common::Rng wrng(8);
  const auto workload = workload::QueryWorkload::Create(data, 40, 10, &wrng);

  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  const double measured = common::Mean(index::CountSphereLeafAccesses(
      tree, workload.queries(), workload.radii(), nullptr));

  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  ResampledParams params;
  params.memory_points = 3000;
  params.h_upper = ChooseHupper(topo, 3000);
  const PredictionResult result =
      PredictWithResampledTree(&file, topo, workload, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured);
  EXPECT_LT(std::abs(rel), 0.12) << "relative error " << rel;
}

}  // namespace
}  // namespace hdidx::core
