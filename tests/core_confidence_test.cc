#include "core/confidence.h"

#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"

namespace hdidx::core {
namespace {

TEST(StudentTTest, KnownCriticalValues) {
  EXPECT_NEAR(StudentTCritical(2, 0.95), 12.706, 1e-3);   // df = 1
  EXPECT_NEAR(StudentTCritical(10, 0.95), 2.262, 1e-3);   // df = 9
  EXPECT_NEAR(StudentTCritical(31, 0.95), 2.042, 1e-3);   // df = 30
  EXPECT_NEAR(StudentTCritical(1000, 0.95), 1.960, 1e-3); // normal limit
  EXPECT_NEAR(StudentTCritical(10, 0.90), 1.833, 1e-3);
  EXPECT_NEAR(StudentTCritical(10, 0.99), 3.250, 1e-3);
}

TEST(ConfidenceTest, ConstantPredictorHasZeroWidth) {
  const auto ci = EstimateWithConfidence(
      [](uint64_t) { return 42.0; }, 10, 1);
  EXPECT_DOUBLE_EQ(ci.mean, 42.0);
  EXPECT_DOUBLE_EQ(ci.stddev, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo, 42.0);
  EXPECT_DOUBLE_EQ(ci.hi, 42.0);
  EXPECT_EQ(ci.runs, 10u);
}

TEST(ConfidenceTest, SeedsArePassedThrough) {
  std::vector<uint64_t> seen;
  EstimateWithConfidence(
      [&](uint64_t seed) {
        seen.push_back(seed);
        return 0.0;
      },
      4, 100);
  EXPECT_EQ(seen, (std::vector<uint64_t>{100, 101, 102, 103}));
}

TEST(ConfidenceTest, IntervalContainsMeanAndScalesWithSpread) {
  auto noisy = [](double scale) {
    return [scale](uint64_t seed) {
      common::Rng rng(seed);
      return 100.0 + scale * rng.NextGaussian();
    };
  };
  const auto narrow = EstimateWithConfidence(noisy(1.0), 20, 7);
  const auto wide = EstimateWithConfidence(noisy(10.0), 20, 7);
  EXPECT_LT(narrow.lo, narrow.mean);
  EXPECT_GT(narrow.hi, narrow.mean);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
  // Same seeds, 10x the spread: widths scale by ~10.
  EXPECT_NEAR((wide.hi - wide.lo) / (narrow.hi - narrow.lo), 10.0, 0.5);
}

TEST(ConfidenceTest, CoverageOnGaussianData) {
  // The 95% interval should contain the true mean in roughly 95% of
  // repeated experiments.
  int covered = 0;
  const int kExperiments = 300;
  for (int e = 0; e < kExperiments; ++e) {
    const auto ci = EstimateWithConfidence(
        [e](uint64_t seed) {
          common::Rng rng(seed * 7919 + e);
          return 50.0 + 5.0 * rng.NextGaussian();
        },
        8, static_cast<uint64_t>(e) * 1000 + 1);
    if (ci.lo <= 50.0 && 50.0 <= ci.hi) ++covered;
  }
  const double coverage = static_cast<double>(covered) / kExperiments;
  EXPECT_GT(coverage, 0.89);
  EXPECT_LE(coverage, 1.0);
}

TEST(ConfidenceTest, HigherConfidenceWiderInterval) {
  auto predict = [](uint64_t seed) {
    common::Rng rng(seed);
    return rng.NextGaussian();
  };
  const auto c90 = EstimateWithConfidence(predict, 12, 3, 0.90);
  const auto c99 = EstimateWithConfidence(predict, 12, 3, 0.99);
  EXPECT_GT(c99.hi - c99.lo, c90.hi - c90.lo);
}

}  // namespace
}  // namespace hdidx::core
