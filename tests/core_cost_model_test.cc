#include "core/cost_model.h"

#include <cmath>
#include <algorithm>

#include "common/random.h"
#include "core/cutoff.h"
#include "core/hupper.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "io/paged_file.h"
#include "test_util.h"
#include "workload/query_workload.h"

namespace hdidx::core {
namespace {

CostModelInputs PaperScaleInputs() {
  CostModelInputs in;
  in.num_points = 1000000;
  in.dim = 60;
  in.memory_points = 10000;
  in.num_query_points = 500;
  return in;
}

TEST(CostModelTest, QueryPointReadCost) {
  const CostModelInputs in = PaperScaleInputs();
  const io::IoStats io = ReadQueryPointsCost(in);
  EXPECT_EQ(io.page_seeks, 500u);
  EXPECT_EQ(io.page_transfers, 500u);
  // 500 * (10ms + 0.4ms) = 5.2 s.
  EXPECT_NEAR(io.CostSeconds(in.disk), 5.2, 1e-9);
}

TEST(CostModelTest, ScanCostIsOneSequentialPass) {
  const CostModelInputs in = PaperScaleInputs();
  const io::IoStats io = ScanDatasetCost(in);
  EXPECT_EQ(io.page_seeks, 1u);
  EXPECT_EQ(io.page_transfers, (1000000 + 33) / 34);
}

TEST(CostModelTest, CutoffIsQueryPlusScan) {
  const CostModelInputs in = PaperScaleInputs();
  const io::IoStats cutoff = CutoffCost(in);
  const io::IoStats expected = ReadQueryPointsCost(in) + ScanDatasetCost(in);
  EXPECT_TRUE(cutoff == expected);
}

TEST(CostModelTest, OrderingMatchesFigure9) {
  // For every memory size: cutoff < resampled < on-disk, with the
  // on-disk/resampled gap about an order of magnitude and the
  // on-disk/cutoff gap up to two (Section 4.6).
  for (size_t m : {2500u, 10000u, 40000u, 160000u}) {
    CostModelInputs in = PaperScaleInputs();
    in.memory_points = m;
    const auto topo = in.Topology();
    const size_t h = ChooseHupper(topo, m);
    const double on_disk = OnDiskBuildCost(in).CostSeconds(in.disk);
    const double resampled = ResampledCost(in, h).CostSeconds(in.disk);
    const double cutoff = CutoffCost(in).CostSeconds(in.disk);
    EXPECT_LT(cutoff, resampled) << "M=" << m;
    EXPECT_LT(resampled, on_disk) << "M=" << m;
    EXPECT_GT(on_disk / resampled, 3.0) << "M=" << m;
    EXPECT_GT(on_disk / cutoff, 20.0) << "M=" << m;
  }
}

TEST(CostModelTest, OnDiskCostDecreasesWithMemory) {
  CostModelInputs small = PaperScaleInputs();
  small.memory_points = 2500;
  CostModelInputs large = PaperScaleInputs();
  large.memory_points = 160000;
  EXPECT_GT(OnDiskBuildCost(small).CostSeconds(small.disk),
            OnDiskBuildCost(large).CostSeconds(large.disk));
}

TEST(CostModelTest, ResamplingPassMatchesEquationFour) {
  const CostModelInputs in = PaperScaleInputs();
  const auto topo = in.Topology();
  const size_t h = 2;
  const size_t k = topo.NodesAtLevel(StopLevel(topo, h));
  const double sigma_lower = SigmaLower(topo, in.memory_points, h);
  const size_t chunks = static_cast<size_t>(
      std::ceil(1000000.0 * sigma_lower / 10000.0));
  const io::IoStats io = ResamplingPassCost(in, h);
  EXPECT_EQ(io.page_seeks, chunks * (1 + k));
}

TEST(CostModelTest, CostGrowsWithDimension) {
  // Figure 10: with M = 600000/dim, all three costs grow with d.
  double prev_cutoff = 0.0, prev_resampled = 0.0, prev_disk = 0.0;
  for (size_t d : {20u, 40u, 60u, 80u, 120u}) {
    CostModelInputs in;
    in.num_points = 1000000;
    in.dim = d;
    in.memory_points = 600000 / d;
    const auto topo = in.Topology();
    const size_t h = ChooseHupper(topo, in.memory_points);
    const double cutoff = CutoffCost(in).CostSeconds(in.disk);
    const double resampled = ResampledCost(in, h).CostSeconds(in.disk);
    const double disk = OnDiskBuildCost(in).CostSeconds(in.disk);
    EXPECT_GT(cutoff, prev_cutoff) << d;
    EXPECT_GT(disk, prev_disk) << d;
    prev_cutoff = cutoff;
    prev_resampled = std::max(prev_resampled, resampled);
    prev_disk = disk;
  }
}

TEST(CostModelTest, WholeDatasetInMemoryIsCheap) {
  CostModelInputs in = PaperScaleInputs();
  in.memory_points = in.num_points;
  const io::IoStats io = OnDiskBuildCost(in);
  // One read + one write + directory pages.
  const size_t data_pages = (in.num_points + 33) / 34;
  EXPECT_LE(io.page_transfers, 2 * data_pages + 40000);
  EXPECT_LE(io.page_seeks, 3u);
}

TEST(CostModelTest, ScanCostMatchesPagedFileCharges) {
  // Cross-model consistency: the analytic cost_ScanDataset equals what the
  // simulated disk charges for an actual sequential scan.
  common::Rng rng(1);
  const auto data = data::GenerateUniform(12345, 6, &rng);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  file.ReadAll();

  CostModelInputs in;
  in.num_points = data.size();
  in.dim = data.dim();
  in.memory_points = 1000;
  const io::IoStats analytic = ScanDatasetCost(in);
  EXPECT_EQ(file.stats().page_seeks, analytic.page_seeks);
  EXPECT_EQ(file.stats().page_transfers, analytic.page_transfers);
}

TEST(CostModelTest, CutoffAnalyticMatchesCutoffPredictorCharges) {
  // Equation 3 is exactly what the cutoff predictor pays (up to saved
  // seeks when adjacent query points share a page).
  const auto data = hdidx::testing::SmallClustered(20000, 8, 2);
  const index::TreeTopology topo(data.size(), 60, 8);
  common::Rng wrng(3);
  const auto workload = workload::QueryWorkload::Create(data, 25, 5, &wrng);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  CutoffParams params;
  params.memory_points = 2000;
  params.h_upper = 2;
  const PredictionResult result =
      PredictWithCutoffTree(&file, topo, workload, params);

  CostModelInputs in;
  in.num_points = data.size();
  in.dim = data.dim();
  in.memory_points = params.memory_points;
  in.num_query_points = workload.num_queries();
  const io::IoStats analytic = CutoffCost(in);
  EXPECT_EQ(result.io.page_transfers, analytic.page_transfers);
  EXPECT_LE(result.io.page_seeks, analytic.page_seeks);
  EXPECT_GE(result.io.page_seeks + 5, analytic.page_seeks / 2);
}

}  // namespace
}  // namespace hdidx::core
