#include "io/paged_file.h"

#include <vector>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "io/disk_model.h"

namespace hdidx::io {
namespace {

TEST(DiskModelTest, ReferenceConstantsMatchPaper) {
  const DiskModel disk;
  EXPECT_EQ(disk.page_bytes, 8192u);
  EXPECT_DOUBLE_EQ(disk.seek_time_s, 0.010);
  EXPECT_DOUBLE_EQ(disk.transfer_time_s(), 0.0004);
  // 10 seeks + 10 transfers = 104 ms.
  EXPECT_NEAR(disk.Seconds(10, 10), 0.104, 1e-12);
}

TEST(DiskModelTest, TransferTimeScalesWithPageSize) {
  DiskModel disk;
  disk.page_bytes = 65536;  // 8x reference
  EXPECT_NEAR(disk.transfer_time_s(), 0.0032, 1e-12);
}

TEST(DiskModelTest, PointsPerPage) {
  const DiskModel disk;
  // 60-d floats: 240 bytes/point -> 34 points in 8 KB.
  EXPECT_EQ(disk.PointsPerPage(60), 34u);
  EXPECT_EQ(disk.PagesForPoints(100, 60), 3u);
  EXPECT_EQ(disk.PagesForPoints(0, 60), 0u);
  // Giant points still get one per page.
  EXPECT_EQ(disk.PointsPerPage(10000), 1u);
}

TEST(IoStatsTest, ArithmeticAndCost) {
  IoStats a{10, 100};
  IoStats b{1, 2};
  const IoStats sum = a + b;
  EXPECT_EQ(sum.page_seeks, 11u);
  EXPECT_EQ(sum.page_transfers, 102u);
  const DiskModel disk;
  EXPECT_NEAR(sum.CostSeconds(disk), 11 * 0.010 + 102 * 0.0004, 1e-12);
}

class PagedFileTest : public ::testing::Test {
 protected:
  // 2-d points, 8 KB pages: 1024 points per page.
  DiskModel disk_;
};

TEST_F(PagedFileTest, FromDatasetChargesNothing) {
  common::Rng rng(1);
  const auto data = data::GenerateUniform(3000, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  EXPECT_EQ(file.size(), 3000u);
  EXPECT_EQ(file.stats().page_transfers, 0u);
  EXPECT_EQ(file.points_per_page(), 1024u);
  EXPECT_EQ(file.num_pages(), 3u);
}

TEST_F(PagedFileTest, SequentialScanIsOneSeek) {
  common::Rng rng(2);
  const auto data = data::GenerateUniform(4096, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  const auto all = file.ReadAll();
  EXPECT_TRUE(all == data);
  EXPECT_EQ(file.stats().page_seeks, 1u);
  EXPECT_EQ(file.stats().page_transfers, 4u);
}

TEST_F(PagedFileTest, AdjacentReadsDoNotSeek) {
  common::Rng rng(3);
  const auto data = data::GenerateUniform(4096, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  std::vector<float> buf(1024 * 2);
  file.Read(0, 1024, buf.data());     // page 0: seek
  file.Read(1024, 1024, buf.data());  // page 1: adjacent
  file.Read(2048, 1024, buf.data());  // page 2: adjacent
  EXPECT_EQ(file.stats().page_seeks, 1u);
  EXPECT_EQ(file.stats().page_transfers, 3u);
}

TEST_F(PagedFileTest, BackwardReadSeeks) {
  common::Rng rng(4);
  const auto data = data::GenerateUniform(4096, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  std::vector<float> buf(1024 * 2);
  file.Read(2048, 1024, buf.data());
  file.Read(0, 1024, buf.data());
  EXPECT_EQ(file.stats().page_seeks, 2u);
}

TEST_F(PagedFileTest, RangeSpanningPagesCountsAllTransfers) {
  common::Rng rng(5);
  const auto data = data::GenerateUniform(4096, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  std::vector<float> buf(2048 * 2);
  // Points 512..2559 overlap pages 0,1,2.
  file.Read(512, 2048, buf.data());
  EXPECT_EQ(file.stats().page_transfers, 3u);
  EXPECT_EQ(file.stats().page_seeks, 1u);
}

TEST_F(PagedFileTest, WriteReadRoundTrip) {
  PagedFile file(2, disk_);
  file.Resize(100);
  const std::vector<float> point = {1.5f, -2.5f};
  file.Write(42, 1, point.data());
  std::vector<float> out(2);
  file.Read(42, 1, out.data());
  EXPECT_EQ(out, point);
}

TEST_F(PagedFileTest, WriteThenAdjacentWriteNoExtraSeek) {
  PagedFile file(2, disk_);
  file.Resize(4096);
  std::vector<float> buf(1024 * 2, 1.0f);
  file.Write(0, 1024, buf.data());
  file.Write(1024, 1024, buf.data());
  EXPECT_EQ(file.stats().page_seeks, 1u);
  EXPECT_EQ(file.stats().page_transfers, 2u);
}

TEST_F(PagedFileTest, InvalidateHeadForcesSeek) {
  common::Rng rng(6);
  const auto data = data::GenerateUniform(2048, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  std::vector<float> buf(1024 * 2);
  file.Read(0, 1024, buf.data());
  file.InvalidateHead();
  file.Read(1024, 1024, buf.data());  // would have been adjacent
  EXPECT_EQ(file.stats().page_seeks, 2u);
}

TEST_F(PagedFileTest, ChargeSeekCounts) {
  PagedFile file(2, disk_);
  file.Resize(10);
  file.ChargeSeek();
  file.ChargeSeek();
  EXPECT_EQ(file.stats().page_seeks, 2u);
  EXPECT_EQ(file.stats().page_transfers, 0u);
}

TEST_F(PagedFileTest, ResetStatsClearsCountersAndHead) {
  common::Rng rng(7);
  const auto data = data::GenerateUniform(2048, 2, &rng);
  PagedFile file = PagedFile::FromDataset(data, disk_);
  std::vector<float> buf(1024 * 2);
  file.Read(0, 1024, buf.data());
  file.ResetStats();
  EXPECT_EQ(file.stats().page_seeks, 0u);
  file.Read(1024, 1024, buf.data());
  EXPECT_EQ(file.stats().page_seeks, 1u);  // head was reset: seek again
}

TEST_F(PagedFileTest, ChargeAccessMatchesReadCharges) {
  common::Rng rng(8);
  const auto data = data::GenerateUniform(4096, 2, &rng);
  PagedFile a = PagedFile::FromDataset(data, disk_);
  PagedFile b = PagedFile::FromDataset(data, disk_);
  std::vector<float> buf(2000 * 2);
  a.Read(100, 2000, buf.data());
  b.ChargeAccess(100, 2000);
  EXPECT_TRUE(a.stats() == b.stats());
}

TEST_F(PagedFileTest, HighDimensionalPointsPerPage) {
  DiskModel disk;
  PagedFile file(617, disk);  // 2468 bytes per point -> 3 per page
  EXPECT_EQ(file.points_per_page(), 3u);
  file.Resize(10);
  EXPECT_EQ(file.num_pages(), 4u);
}

}  // namespace
}  // namespace hdidx::io
