#include "service/async_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "data/dataset_io.h"
#include "gtest/gtest.h"
#include "service/prediction_service.h"
#include "service/protocol.h"
#include "service/wire.h"
#include "test_util.h"

namespace hdidx::service {
namespace {

namespace wire = hdidx::service::wire;

constexpr size_t kPageBytes = 1024;

ServiceRequest Req(const std::string& dataset, const std::string& method,
                   uint64_t seed, uint64_t id) {
  ServiceRequest r;
  r.id = id;
  r.dataset = dataset;
  r.method = method;
  r.memory = 500;
  r.num_queries = 25;
  r.k = 5;
  r.seed = seed;
  r.page_bytes = kPageBytes;
  r.per_query = true;
  return r;
}

std::unique_ptr<PredictionService> MakeService(size_t shards) {
  ServiceOptions options;
  options.num_shards = shards;
  options.total_threads = 4;
  auto svc = std::make_unique<PredictionService>(options);
  std::string error;
  uint64_t seed = 11;
  for (const char* name : {"alpha", "beta", "gamma"}) {
    EXPECT_TRUE(svc->registry().Add(
        name, testing::SmallClustered(3000, 8, seed++), &error))
        << error;
  }
  return svc;
}

/// Minimal blocking test client for the wire protocol: one socket, an
/// accumulation buffer, and a 60 s receive timeout so a server bug fails
/// the test instead of hanging it.
class WireClient {
 public:
  ~WireClient() { Close(); }

  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    timeval timeout{};
    timeout.tv_sec = 60;
    setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = wire::HostToNet16(port);
    if (::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) != 1 ||
        ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      Close();
      return false;
    }
    return true;
  }

  bool Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Blocks until one whole frame arrives. Returns false on timeout,
  /// transport error, or peer close (`*error` says which).
  bool Read(wire::FrameHeader* header, std::string* payload,
            std::string* error) {
    while (true) {
      size_t consumed = 0;
      std::string_view view;
      const wire::FrameStatus status =
          wire::NextFrame(buffer_, wire::kDefaultMaxPayload, &consumed,
                          header, &view, error);
      if (status == wire::FrameStatus::kError) return false;
      if (status == wire::FrameStatus::kFrame) {
        payload->assign(view);
        buffer_.erase(0, consumed);
        return true;
      }
      char chunk[1 << 16];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        *error = std::string("recv: ") + std::strerror(errno);
        return false;
      }
      if (n == 0) {
        *error = "closed";
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// True iff the server closes the connection without sending more frames.
  bool ReadClosed() {
    wire::FrameHeader header;
    std::string payload;
    std::string error;
    return !Read(&header, &payload, &error) && error == "closed";
  }

  void Close() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Sends a shutdown frame, checks the ack, and waits the server down.
/// Returns the served count the ack carried.
uint64_t ShutdownAndWait(WireClient* client, AsyncServer* server) {
  EXPECT_TRUE(client->Send(wire::EncodeShutdownRequest(999)));
  wire::FrameHeader header;
  std::string payload;
  std::string error;
  EXPECT_TRUE(client->Read(&header, &payload, &error)) << error;
  uint64_t served = 0;
  EXPECT_TRUE(
      wire::DecodeShutdownResponse(header, payload, &served, &error))
      << error;
  EXPECT_EQ(header.id, 999u);
  EXPECT_EQ(server->Wait(), served);
  return served;
}

/// The determinism battery: one request per (dataset, method, seed).
std::vector<ServiceRequest> BatteryRequests() {
  std::vector<ServiceRequest> requests;
  uint64_t id = 0;
  for (const char* dataset : {"alpha", "beta", "gamma"}) {
    for (const char* method : {"mini", "cutoff", "resampled"}) {
      for (const uint64_t seed : {1, 2}) {
        requests.push_back(Req(dataset, method, seed, ++id));
      }
    }
  }
  return requests;
}

/// Serialized `result` payloads by request id, as the JSON transport
/// serves them — the cross-transport reference.
std::map<uint64_t, std::string> JsonReference(
    const std::vector<ServiceRequest>& requests) {
  auto svc = MakeService(1);
  std::map<uint64_t, std::string> reference;
  for (const ServiceResponse& response : svc->ProcessBatch(requests)) {
    EXPECT_TRUE(response.ok) << response.error;
    reference[response.id] = SerializeResult(response, /*per_query=*/true);
  }
  return reference;
}

TEST(AsyncServerTest, BinaryMatchesJsonAcrossShardCountsPipelined) {
  const std::vector<ServiceRequest> requests = BatteryRequests();
  const std::map<uint64_t, std::string> reference = JsonReference(requests);

  for (const size_t shards : {1, 2, 4}) {
    auto svc = MakeService(shards);
    AsyncServerOptions options;
    options.num_reactors = 2;
    AsyncServer server(svc.get(), options);
    std::string error;
    ASSERT_TRUE(server.Start(&error)) << error;

    WireClient client;
    ASSERT_TRUE(client.Connect(server.port()));
    // Fully pipelined: every request frame on the wire before any response
    // is read. Responses interleave across shards — match by id.
    std::string frames;
    for (const ServiceRequest& r : requests) {
      frames += wire::EncodePredictRequest(r);
    }
    ASSERT_TRUE(client.Send(frames));

    size_t matched = 0;
    for (size_t i = 0; i < requests.size(); ++i) {
      wire::FrameHeader header;
      std::string payload;
      ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
      wire::PredictReply reply;
      ASSERT_TRUE(
          wire::DecodePredictResponse(header, payload, &reply, &error))
          << error;
      ASSERT_TRUE(reply.response.ok) << reply.response.error;
      ASSERT_FALSE(reply.shed);
      const auto it = reference.find(reply.response.id);
      ASSERT_NE(it, reference.end());
      EXPECT_EQ(SerializeResult(reply.response, reply.per_query), it->second)
          << "request id " << reply.response.id << ", " << shards
          << " shards";
      ++matched;
    }
    EXPECT_EQ(matched, requests.size());
    EXPECT_EQ(ShutdownAndWait(&client, &server), requests.size());
  }
}

TEST(AsyncServerTest, BinaryMatchesJsonSerialAndShuffled) {
  std::vector<ServiceRequest> requests = BatteryRequests();
  const std::map<uint64_t, std::string> reference = JsonReference(requests);

  // Deterministically shuffled arrival order, strictly serial exchanges
  // (send one, read one) — the other extreme from the pipelined test.
  std::reverse(requests.begin(), requests.end());
  std::rotate(requests.begin(), requests.begin() + requests.size() / 3,
              requests.end());

  auto svc = MakeService(2);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  for (const ServiceRequest& r : requests) {
    ASSERT_TRUE(client.Send(wire::EncodePredictRequest(r)));
    wire::FrameHeader header;
    std::string payload;
    ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
    wire::PredictReply reply;
    ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error))
        << error;
    ASSERT_TRUE(reply.response.ok) << reply.response.error;
    EXPECT_EQ(reply.response.id, r.id);  // serial: in-order by construction
    EXPECT_EQ(SerializeResult(reply.response, reply.per_query),
              reference.at(r.id));
  }
  EXPECT_EQ(ShutdownAndWait(&client, &server), requests.size());
}

TEST(AsyncServerTest, LoadStatsAndCacheHitsOverSocket) {
  const std::string path = ::testing::TempDir() + "/async_load.hdx";
  std::string error;
  ASSERT_TRUE(data::WriteDataset(testing::SmallClustered(3000, 8, 31), path,
                                 &error))
      << error;

  auto svc = MakeService(2);  // alpha/beta/gamma pre-registered
  AsyncServer server(svc.get(), AsyncServerOptions{});
  ASSERT_TRUE(server.Start(&error)) << error;
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Load a fourth dataset over the socket.
  ASSERT_TRUE(client.Send(wire::EncodeLoadRequest(1, "delta", path)));
  wire::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::LoadResult load;
  ASSERT_TRUE(wire::DecodeLoadResponse(header, payload, &load, &error))
      << error;
  EXPECT_TRUE(load.ok) << load.error;
  EXPECT_EQ(load.dataset, "delta");
  EXPECT_EQ(load.points, 3000u);
  EXPECT_EQ(load.dims, 8u);
  EXPECT_EQ(load.shard, svc->registry().ShardOf("delta"));

  // Loading the same name again fails over the wire, politely.
  ASSERT_TRUE(client.Send(wire::EncodeLoadRequest(2, "delta", path)));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  ASSERT_TRUE(wire::DecodeLoadResponse(header, payload, &load, &error));
  EXPECT_FALSE(load.ok);
  EXPECT_NE(load.error.find("already registered"), std::string::npos);

  // Same predict twice: the second serving is a cache hit, and both carry
  // byte-identical result payloads.
  const ServiceRequest request = Req("delta", "resampled", 3, 10);
  ASSERT_TRUE(client.Send(wire::EncodePredictRequest(request)));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::PredictReply cold;
  ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &cold, &error));
  ASSERT_TRUE(cold.response.ok) << cold.response.error;
  EXPECT_FALSE(cold.response.cache_hit);

  ASSERT_TRUE(client.Send(wire::EncodePredictRequest(request)));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::PredictReply warm;
  ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &warm, &error));
  ASSERT_TRUE(warm.response.ok);
  EXPECT_TRUE(warm.response.cache_hit);
  EXPECT_EQ(SerializeResult(warm.response, true),
            SerializeResult(cold.response, true));

  // Stats reflect the session.
  ASSERT_TRUE(client.Send(wire::EncodeStatsRequest(20)));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  ServiceMetrics metrics;
  ASSERT_TRUE(wire::DecodeStatsResponse(header, payload, &metrics, &error))
      << error;
  EXPECT_EQ(metrics.requests, 2u);
  EXPECT_EQ(metrics.result_hits, 1u);
  EXPECT_EQ(metrics.result_misses, 1u);
  EXPECT_EQ(metrics.shed_total, 0u);
  ASSERT_EQ(metrics.shards.size(), 2u);

  EXPECT_EQ(ShutdownAndWait(&client, &server), 2u);
  std::remove(path.c_str());
}

TEST(AsyncServerTest, BackpressureShedsExactlyTheOverflow) {
  auto svc = MakeService(1);
  AsyncServerOptions options;
  options.shard_queue_capacity = 3;
  options.retry_after_ms = 25;
  AsyncServer server(svc.get(), options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Park the shard workers, then over-fill the queue: of 5 predicts, ids
  // 1..3 are admitted and 4..5 must be shed — deterministically, because
  // nothing drains the queue while paused.
  server.PauseServingForTest();
  std::string frames;
  for (uint64_t id = 1; id <= 5; ++id) {
    frames += wire::EncodePredictRequest(Req("alpha", "mini", 1, id));
  }
  ASSERT_TRUE(client.Send(frames));

  wire::FrameHeader header;
  std::string payload;
  for (const uint64_t expected_id : {4, 5}) {
    ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
    wire::PredictReply reply;
    ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error))
        << error;
    EXPECT_TRUE(reply.shed);
    EXPECT_EQ(reply.response.id, expected_id);
    EXPECT_EQ(reply.retry_after_ms, 25u);
  }

  // The stats op is served by the reactor, not the parked workers: the
  // queue gauges are visible mid-backpressure.
  ASSERT_TRUE(client.Send(wire::EncodeStatsRequest(50)));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  ServiceMetrics metrics;
  ASSERT_TRUE(wire::DecodeStatsResponse(header, payload, &metrics, &error));
  EXPECT_EQ(metrics.shed_total, 2u);
  const size_t shard = svc->registry().ShardOf("alpha");
  ASSERT_LT(shard, metrics.shards.size());
  EXPECT_EQ(metrics.shards[shard].queue_depth, 3u);
  EXPECT_EQ(metrics.shards[shard].peak_queue_depth, 3u);
  EXPECT_EQ(metrics.shards[shard].shed, 2u);

  // Resume: the three admitted requests complete, in admission order.
  server.ResumeServingForTest();
  for (const uint64_t expected_id : {1, 2, 3}) {
    ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
    wire::PredictReply reply;
    ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error))
        << error;
    EXPECT_FALSE(reply.shed);
    ASSERT_TRUE(reply.response.ok) << reply.response.error;
    EXPECT_EQ(reply.response.id, expected_id);
  }

  ASSERT_TRUE(client.Send(wire::EncodeStatsRequest(51)));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  ASSERT_TRUE(wire::DecodeStatsResponse(header, payload, &metrics, &error));
  EXPECT_EQ(metrics.shards[shard].queue_depth, 0u);
  EXPECT_EQ(metrics.shards[shard].peak_queue_depth, 3u);
  EXPECT_EQ(metrics.shed_total, 2u);  // sheds are not retried server-side

  EXPECT_EQ(ShutdownAndWait(&client, &server), 3u);
}

TEST(AsyncServerTest, LoadWithQueuedPredictsDoesNotDeadlock) {
  const std::string path = ::testing::TempDir() + "/async_load_busy.hdx";
  std::string error;
  ASSERT_TRUE(data::WriteDataset(testing::SmallClustered(3000, 8, 47), path,
                                 &error))
      << error;

  auto svc = MakeService(1);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  ASSERT_TRUE(server.Start(&error)) << error;
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Park the workers, queue three predicts, then ask for a load. The
  // load's quiesce must wait out *in-flight* serves only: parked workers
  // can never drain the queue, so a quiesce that waited for empty queues
  // (the pre-fix behavior) deadlocked the reactor here — wedging every
  // connection and leaving the queues paused forever.
  server.PauseServingForTest();
  std::string frames;
  for (uint64_t id = 1; id <= 3; ++id) {
    frames += wire::EncodePredictRequest(Req("alpha", "mini", 1, id));
  }
  frames += wire::EncodeLoadRequest(9, "delta", path);
  ASSERT_TRUE(client.Send(frames));

  // The load acks and its Resume unparks the workers, so the queued
  // predicts complete too (in admission order; the ack may interleave
  // with them, since workers restart as soon as the registry settles).
  bool load_acked = false;
  std::vector<uint64_t> predict_ids;
  for (int i = 0; i < 4; ++i) {
    wire::FrameHeader header;
    std::string payload;
    ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
    if (header.id == 9) {
      wire::LoadResult load;
      ASSERT_TRUE(wire::DecodeLoadResponse(header, payload, &load, &error))
          << error;
      EXPECT_TRUE(load.ok) << load.error;
      EXPECT_EQ(load.dataset, "delta");
      load_acked = true;
    } else {
      wire::PredictReply reply;
      ASSERT_TRUE(
          wire::DecodePredictResponse(header, payload, &reply, &error))
          << error;
      ASSERT_TRUE(reply.response.ok) << reply.response.error;
      EXPECT_FALSE(reply.shed);
      predict_ids.push_back(reply.response.id);
    }
  }
  EXPECT_TRUE(load_acked);
  EXPECT_EQ(predict_ids, (std::vector<uint64_t>{1, 2, 3}));

  // The loaded dataset serves over the same connection.
  ASSERT_TRUE(
      client.Send(wire::EncodePredictRequest(Req("delta", "mini", 2, 20))));
  wire::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::PredictReply reply;
  ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error));
  EXPECT_TRUE(reply.response.ok) << reply.response.error;

  EXPECT_EQ(ShutdownAndWait(&client, &server), 4u);
  std::remove(path.c_str());
}

TEST(AsyncServerTest, ShutdownDrainsQueuedPredictsEvenWhilePaused) {
  auto svc = MakeService(1);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Queue predicts against parked workers, then request shutdown in the
  // same pipelined breath. Shutdown overrides the pause: it stops
  // admitting predicts, resumes the workers, and acks only once every
  // admitted response is buffered — so the wire carries exactly 1..3 and
  // then the ack, instead of the pre-fix indefinite stall.
  server.PauseServingForTest();
  std::string frames;
  for (uint64_t id = 1; id <= 3; ++id) {
    frames += wire::EncodePredictRequest(Req("alpha", "mini", 1, id));
  }
  frames += wire::EncodeShutdownRequest(999);
  ASSERT_TRUE(client.Send(frames));

  for (const uint64_t expected_id : {1, 2, 3}) {
    wire::FrameHeader header;
    std::string payload;
    ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
    wire::PredictReply reply;
    ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error))
        << error;
    ASSERT_TRUE(reply.response.ok) << reply.response.error;
    EXPECT_FALSE(reply.shed);
    EXPECT_EQ(reply.response.id, expected_id);
  }
  wire::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  uint64_t served = 0;
  ASSERT_TRUE(wire::DecodeShutdownResponse(header, payload, &served, &error))
      << error;
  EXPECT_EQ(header.id, 999u);
  EXPECT_EQ(served, 3u);
  EXPECT_EQ(server.Wait(), 3u);
}

TEST(AsyncServerTest, ClientsVanishingMidResponseDontKillTheServer) {
  const std::vector<ServiceRequest> requests = BatteryRequests();
  auto svc = MakeService(2);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Pipeline the whole battery, then vanish without reading a byte: the
  // server's response writes land on a reset connection. Without
  // MSG_NOSIGNAL the second write after the RST raises SIGPIPE and kills
  // the process (the healthy session below would fail to connect); with
  // it the write returns EPIPE and the connection is simply closed.
  std::string frames;
  for (const ServiceRequest& r : requests) {
    frames += wire::EncodePredictRequest(r);
  }
  for (int round = 0; round < 4; ++round) {
    WireClient vanisher;
    ASSERT_TRUE(vanisher.Connect(server.port()));
    ASSERT_TRUE(vanisher.Send(frames));
    vanisher.Close();
  }

  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(
      client.Send(wire::EncodePredictRequest(Req("alpha", "mini", 1, 500))));
  wire::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::PredictReply reply;
  ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error))
      << error;
  EXPECT_TRUE(reply.response.ok) << reply.response.error;
  ShutdownAndWait(&client, &server);
}

TEST(AsyncServerTest, MalformedStreamsRejectedWithoutTakingTheServerDown) {
  auto svc = MakeService(1);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // A stream that is not the protocol at all: one kError frame with id 0,
  // then the connection is closed.
  {
    WireClient garbage;
    ASSERT_TRUE(garbage.Connect(server.port()));
    ASSERT_TRUE(garbage.Send("GET / HTTP/1.1\r\nHost: nope\r\n\r\n"));
    wire::FrameHeader header;
    std::string payload;
    ASSERT_TRUE(garbage.Read(&header, &payload, &error)) << error;
    std::string message;
    ASSERT_TRUE(wire::DecodeErrorFrame(header, payload, &message, &error))
        << error;
    EXPECT_EQ(header.id, 0u);
    EXPECT_NE(message.find("bad magic"), std::string::npos);
    EXPECT_TRUE(garbage.ReadClosed());
  }

  // A well-framed but undecodable payload: the error echoes the id and the
  // connection keeps serving.
  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(client.Send(
      wire::EncodeFrame(wire::WireOp::kPredict, 0, 77, "junk")));
  wire::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  std::string message;
  ASSERT_TRUE(wire::DecodeErrorFrame(header, payload, &message, &error));
  EXPECT_EQ(header.id, 77u);

  ASSERT_TRUE(client.Send(wire::EncodePredictRequest(Req("alpha", "mini", 1,
                                                         78))));
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::PredictReply reply;
  ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error));
  EXPECT_TRUE(reply.response.ok) << reply.response.error;
  EXPECT_EQ(reply.response.id, 78u);

  EXPECT_EQ(ShutdownAndWait(&client, &server), 1u);
}

TEST(AsyncServerTest, WorkerDecodeErrorsKeepIdAndOrderAndSkipServedCount) {
  // Predict payloads are decoded on the shard worker, not the reactor.
  // A payload that routes fine (valid leading dataset string) but fails
  // the full decode must still produce a kError echoing the id, ordered
  // FIFO against the same connection's other predicts on that shard, and
  // the connection must keep serving. Interleave bad and good predicts and
  // check ids come back in admission order.
  auto svc = MakeService(1);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));

  // Routing key present, rest of the payload truncated: the reactor's
  // peek succeeds, the worker's DecodeRequest fails.
  std::string bad_payload;
  wire::AppendString(&bad_payload, "alpha");
  ASSERT_TRUE(client.Send(
      wire::EncodeFrame(wire::WireOp::kPredict, 0, 101, bad_payload)));
  ASSERT_TRUE(client.Send(wire::EncodePredictRequest(Req("alpha", "mini", 1,
                                                         102))));
  ASSERT_TRUE(client.Send(
      wire::EncodeFrame(wire::WireOp::kPredict, 0, 103, bad_payload)));
  ASSERT_TRUE(client.Send(wire::EncodePredictRequest(Req("alpha", "mini", 2,
                                                         104))));

  for (const uint64_t expected_id : {101, 102, 103, 104}) {
    wire::FrameHeader header;
    std::string payload;
    ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
    EXPECT_EQ(header.id, expected_id);
    if (expected_id % 2 == 1) {
      std::string message;
      ASSERT_TRUE(
          wire::DecodeErrorFrame(header, payload, &message, &error))
          << error;
      EXPECT_NE(message.find("predict"), std::string::npos) << message;
    } else {
      wire::PredictReply reply;
      ASSERT_TRUE(
          wire::DecodePredictResponse(header, payload, &reply, &error))
          << error;
      EXPECT_TRUE(reply.response.ok) << reply.response.error;
    }
  }

  // Only the two well-formed predicts count as served.
  EXPECT_EQ(ShutdownAndWait(&client, &server), 2u);
}

TEST(AsyncServerFuzzTest, RandomStreamsNeverCrashTheServer) {
  auto svc = MakeService(2);
  AsyncServer server(svc.get(), AsyncServerOptions{});
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // The socket-level half of the malformed-frame corpus: seeded random
  // streams — pure garbage, truncated real frames, real frames with bytes
  // flipped — thrown at live connections. The server must answer or close
  // each one and stay healthy throughout (checked with a real session at
  // the end; ASan/TSan runs make this a memory/race check too).
  common::Rng rng(20260809);
  const std::string real = wire::EncodePredictRequest(Req("alpha", "mini", 1,
                                                          1));
  for (int iter = 0; iter < 30; ++iter) {
    WireClient attacker;
    ASSERT_TRUE(attacker.Connect(server.port()));
    std::string bytes;
    switch (iter % 3) {
      case 0: {  // pure garbage
        const size_t len = 1 + rng.NextBounded(200);
        for (size_t i = 0; i < len; ++i) {
          bytes.push_back(static_cast<char>(rng.NextBounded(256)));
        }
        break;
      }
      case 1:  // truncated real frame
        bytes = real.substr(0, rng.NextBounded(real.size()));
        break;
      default: {  // real frame with header bytes flipped (payload flips
                  // would make a *valid* request with garbage parameters —
                  // that is the decoders' fuzz suite's job, not a framing
                  // concern)
        bytes = real;
        for (size_t f = 0; f < 1 + rng.NextBounded(4); ++f) {
          bytes[rng.NextBounded(wire::kHeaderBytes)] ^=
              static_cast<char>(1u << rng.NextBounded(8));
        }
        break;
      }
    }
    ASSERT_TRUE(attacker.Send(bytes));
    attacker.Close();  // abandon mid-exchange half the time the frame was fine
  }

  WireClient client;
  ASSERT_TRUE(client.Connect(server.port()));
  ASSERT_TRUE(
      client.Send(wire::EncodePredictRequest(Req("beta", "resampled", 2,
                                                 5))));
  wire::FrameHeader header;
  std::string payload;
  ASSERT_TRUE(client.Read(&header, &payload, &error)) << error;
  wire::PredictReply reply;
  ASSERT_TRUE(wire::DecodePredictResponse(header, payload, &reply, &error))
      << error;
  EXPECT_TRUE(reply.response.ok) << reply.response.error;
  ShutdownAndWait(&client, &server);
}

}  // namespace
}  // namespace hdidx::service
