#include "data/csv.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"

namespace hdidx::data {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc);
  out << contents;
}

TEST(CsvTest, ReadsSimpleFile) {
  const std::string path = TempPath("simple.csv");
  WriteFile(path, "1.5,2.5\n-3,0.25\n");
  std::string error;
  const auto data = ReadCsv(path, CsvOptions{}, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->size(), 2u);
  EXPECT_EQ(data->dim(), 2u);
  EXPECT_FLOAT_EQ(data->row(0)[0], 1.5f);
  EXPECT_FLOAT_EQ(data->row(1)[1], 0.25f);
  std::remove(path.c_str());
}

TEST(CsvTest, HeaderAndSkipColumns) {
  const std::string path = TempPath("header.csv");
  WriteFile(path, "id,x,y\npoint-1,1,2\npoint-2,3,4\n");
  CsvOptions options;
  options.has_header = true;
  options.skip_columns = 1;
  std::string error;
  const auto data = ReadCsv(path, options, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->size(), 2u);
  EXPECT_EQ(data->dim(), 2u);
  EXPECT_FLOAT_EQ(data->row(1)[0], 3.0f);
  std::remove(path.c_str());
}

TEST(CsvTest, CustomDelimiterAndBlankLines) {
  const std::string path = TempPath("semi.csv");
  WriteFile(path, "1;2;3\n\n4;5;6\n   \n");
  CsvOptions options;
  options.delimiter = ';';
  std::string error;
  const auto data = ReadCsv(path, options, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_EQ(data->size(), 2u);
  EXPECT_EQ(data->dim(), 3u);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  WriteFile(path, "1,2,3\n4,5\n");
  std::string error;
  EXPECT_FALSE(ReadCsv(path, CsvOptions{}, &error).has_value());
  EXPECT_NE(error.find(":2:"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsNonNumeric) {
  const std::string path = TempPath("alpha.csv");
  WriteFile(path, "1,2\n3,abc\n");
  std::string error;
  EXPECT_FALSE(ReadCsv(path, CsvOptions{}, &error).has_value());
  EXPECT_NE(error.find("abc"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CsvTest, RejectsEmptyFile) {
  const std::string path = TempPath("empty.csv");
  WriteFile(path, "");
  std::string error;
  EXPECT_FALSE(ReadCsv(path, CsvOptions{}, &error).has_value());
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(
      ReadCsv(TempPath("no_such.csv"), CsvOptions{}, &error).has_value());
}

TEST(CsvTest, RoundTrip) {
  common::Rng rng(1);
  const Dataset original = GenerateUniform(50, 6, &rng);
  const std::string path = TempPath("roundtrip.csv");
  std::string error;
  ASSERT_TRUE(WriteCsv(original, path, CsvOptions{}, &error)) << error;
  const auto loaded = ReadCsv(path, CsvOptions{}, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    for (size_t k = 0; k < original.dim(); ++k) {
      EXPECT_FLOAT_EQ(loaded->row(i)[k], original.row(i)[k]);
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, WhitespaceTolerantFields) {
  const std::string path = TempPath("spaces.csv");
  WriteFile(path, "1.0 ,2.0\r\n3.0,4.0\n");
  std::string error;
  const auto data = ReadCsv(path, CsvOptions{}, &error);
  ASSERT_TRUE(data.has_value()) << error;
  EXPECT_FLOAT_EQ(data->row(0)[1], 2.0f);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hdidx::data
