#include <algorithm>
#include <cmath>

#include "apps/dim_selector.h"
#include "apps/page_size_tuner.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace hdidx::apps {
namespace {

class PageSizeTunerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(12000, 16, 31);
    config_.page_sizes_bytes = {4096, 8192, 16384, 32768};
    config_.memory_points = 2000;
    config_.num_queries = 25;
    config_.k = 8;
  }

  data::Dataset data_{1};
  PageSizeTunerConfig config_;
};

TEST_F(PageSizeTunerTest, ProducesOnePointPerPageSize) {
  const auto points = TunePageSize(data_, config_);
  ASSERT_EQ(points.size(), config_.page_sizes_bytes.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].page_bytes, config_.page_sizes_bytes[i]);
    EXPECT_GT(points[i].measured_accesses, 0.0);
    EXPECT_GT(points[i].predicted_accesses, 0.0);
    EXPECT_GT(points[i].measured_cost_s, 0.0);
  }
}

TEST_F(PageSizeTunerTest, AccessCountsDecreaseWithPageSize) {
  // Bigger pages hold more points, so fewer pages are touched.
  const auto points = TunePageSize(data_, config_);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].measured_accesses,
              points[i - 1].measured_accesses * 1.05)
        << "page size " << points[i].page_bytes;
  }
}

TEST_F(PageSizeTunerTest, PredictionTracksMeasurementPerPageSize) {
  const auto points = TunePageSize(data_, config_);
  for (const auto& p : points) {
    const double rel =
        (p.predicted_accesses - p.measured_accesses) / p.measured_accesses;
    EXPECT_LT(std::abs(rel), 0.5) << "page size " << p.page_bytes;
  }
}

TEST_F(PageSizeTunerTest, BestPageSizeAgreesBetweenCurves) {
  // The headline claim of Section 6.1: the predicted optimum matches the
  // measured one (or a direct neighbor in the sweep).
  const auto points = TunePageSize(data_, config_);
  const size_t predicted_best = BestPageSize(points, /*measured=*/false);
  const size_t measured_best = BestPageSize(points, /*measured=*/true);
  const auto& sizes = config_.page_sizes_bytes;
  const auto pi = std::find(sizes.begin(), sizes.end(), predicted_best);
  const auto mi = std::find(sizes.begin(), sizes.end(), measured_best);
  ASSERT_NE(pi, sizes.end());
  ASSERT_NE(mi, sizes.end());
  EXPECT_LE(std::abs(std::distance(pi, mi)), 1);
}

class DimSelectorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(8000, 16, 37);
    config_.index_dims = {2, 4, 8, 16};
    config_.memory_points = 1500;
    config_.num_queries = 20;
    config_.k = 5;
  }

  data::Dataset data_{1};
  DimSelectorConfig config_;
};

TEST_F(DimSelectorTest, ProducesOnePointPerDimCount) {
  const auto points = EvaluateIndexDims(data_, config_);
  ASSERT_EQ(points.size(), config_.index_dims.size());
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index_dims, config_.index_dims[i]);
    EXPECT_GT(points[i].measured_accesses, 0.0);
    EXPECT_GT(points[i].predicted_accesses, 0.0);
    EXPECT_GT(points[i].num_leaf_pages, 0u);
  }
}

TEST_F(DimSelectorTest, PageCountGrowsWithDims) {
  // Figure 14's mechanism: more indexed dimensions -> lower page capacity
  // -> more leaf pages.
  const auto points = EvaluateIndexDims(data_, config_);
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].num_leaf_pages, points[i - 1].num_leaf_pages);
  }
}

TEST_F(DimSelectorTest, RefinementCountsBehaveLikeMultiStepSearch) {
  const auto points = EvaluateIndexDims(data_, config_);
  for (size_t i = 0; i < points.size(); ++i) {
    // At least k candidates fall inside the filter radius (the k true
    // neighbors always do).
    EXPECT_GE(points[i].measured_refinements,
              static_cast<double>(config_.k));
    EXPECT_GT(points[i].predicted_refinements, 0.0);
    EXPECT_GT(points[i].measured_cost_s, 0.0);
    EXPECT_GT(points[i].predicted_cost_s, 0.0);
  }
  // More indexed dimensions filter better: refinements shrink (weakly)
  // as the index space grows toward the full space.
  EXPECT_LE(points.back().measured_refinements,
            points.front().measured_refinements * 1.05);
  // At full dimensionality the filter is exact: candidates ~ k.
  EXPECT_LE(points.back().measured_refinements,
            static_cast<double>(config_.k) + 2.0);
}

TEST_F(DimSelectorTest, PredictedRefinementsTrackMeasured) {
  const auto points = EvaluateIndexDims(data_, config_);
  for (const auto& p : points) {
    const double rel = (p.predicted_refinements - p.measured_refinements) /
                       p.measured_refinements;
    EXPECT_LT(std::abs(rel), 0.6) << p.index_dims << " dims";
  }
}

TEST_F(DimSelectorTest, PredictionTracksMeasurement) {
  const auto points = EvaluateIndexDims(data_, config_);
  for (const auto& p : points) {
    const double rel =
        (p.predicted_accesses - p.measured_accesses) / p.measured_accesses;
    EXPECT_LT(std::abs(rel), 0.5) << p.index_dims << " dims";
  }
}

}  // namespace
}  // namespace hdidx::apps
