#include "baselines/uniform_model.h"

#include <cmath>

#include "gtest/gtest.h"

namespace hdidx::baselines {
namespace {

TEST(UniformModelTest, HighDimensionalSaturation) {
  // The paper's Table 4 argument: on a 60-d dataset the uniform model
  // predicts that every page is accessed.
  UniformModelParams params;
  params.num_points = 275465;
  params.dim = 60;
  params.num_leaf_pages = 8641;
  params.k = 21;
  const UniformModelResult result = PredictUniformModel(params);
  EXPECT_DOUBLE_EQ(result.predicted_accesses, 8641.0);
  EXPECT_DOUBLE_EQ(result.access_probability, 1.0);
  EXPECT_GT(result.radius, 0.5);  // sphere out-grows the cube
}

TEST(UniformModelTest, LowDimensionalSelectivity) {
  // In 2-d with many pages, only a small fraction should be touched.
  UniformModelParams params;
  params.num_points = 1000000;
  params.dim = 2;
  params.num_leaf_pages = 4096;
  params.k = 10;
  const UniformModelResult result = PredictUniformModel(params);
  EXPECT_LT(result.predicted_accesses, 409.6);  // < 10% of pages
  EXPECT_GT(result.predicted_accesses, 1.0);
}

TEST(UniformModelTest, RadiusGrowsWithK) {
  UniformModelParams params;
  params.num_points = 100000;
  params.dim = 8;
  params.num_leaf_pages = 1024;
  params.k = 1;
  const double r1 = PredictUniformModel(params).radius;
  params.k = 100;
  const double r100 = PredictUniformModel(params).radius;
  EXPECT_GT(r100, r1);
  // r ~ k^(1/d): ratio should be 100^(1/8).
  EXPECT_NEAR(r100 / r1, std::pow(100.0, 1.0 / 8.0), 1e-9);
}

TEST(UniformModelTest, SplitDimsAreLogOfPages) {
  UniformModelParams params;
  params.num_points = 100000;
  params.dim = 16;
  params.num_leaf_pages = 1024;
  params.k = 1;
  EXPECT_EQ(PredictUniformModel(params).split_dims, 10u);
  params.num_leaf_pages = 1025;
  EXPECT_EQ(PredictUniformModel(params).split_dims, 11u);
}

TEST(UniformModelTest, MorePagesMoreAccessesInAbsoluteTerms) {
  UniformModelParams params;
  params.num_points = 1000000;
  params.dim = 4;
  params.k = 10;
  params.num_leaf_pages = 1024;
  const double few = PredictUniformModel(params).predicted_accesses;
  params.num_leaf_pages = 8192;
  const double many = PredictUniformModel(params).predicted_accesses;
  EXPECT_GT(many, few);
}

TEST(UniformModelTest, AccessesNeverExceedPageCount) {
  for (size_t d : {2u, 8u, 32u, 128u, 617u}) {
    UniformModelParams params;
    params.num_points = 50000;
    params.dim = d;
    params.num_leaf_pages = 2000;
    params.k = 21;
    const double accesses = PredictUniformModel(params).predicted_accesses;
    EXPECT_LE(accesses, 2000.0);
    EXPECT_GE(accesses, 0.0);
  }
}

TEST(UniformModelTest, MonotoneInDimensionality) {
  // Fixing everything else, higher embedding dimensionality cannot reduce
  // the predicted access share (curse of dimensionality).
  double prev = 0.0;
  for (size_t d : {2u, 4u, 8u, 16u, 32u, 64u}) {
    UniformModelParams params;
    params.num_points = 200000;
    params.dim = d;
    params.num_leaf_pages = 4096;
    params.k = 21;
    const double accesses = PredictUniformModel(params).predicted_accesses;
    EXPECT_GE(accesses, prev * 0.999) << "d=" << d;
    prev = accesses;
  }
}

}  // namespace
}  // namespace hdidx::baselines
