/// Unit tests for the batched geometry kernels: exact (bit-level) agreement
/// with the retained scalar reference loops across every ISA reachable on
/// the host, slab layout/alignment/sentinel behavior, the scan exclusion
/// rules, and the mode detection/dispatch machinery.

#include "geometry/kernels.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/random.h"
#include "geometry/bounding_box.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"

namespace hdidx::geometry::kernels {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Restores the default dispatch after tests that call SetKernelMode.
struct ModeOverrideGuard {
  ~ModeOverrideGuard() { ClearKernelModeOverride(); }
};

/// Every mode runnable on this host — kScalar first, so mode sweeps always
/// compare the vector lanes against the retained oracle.
std::vector<KernelMode> AllModes() { return SupportedKernelModes(); }

/// The batched (non-scalar) modes runnable on this host.
std::vector<KernelMode> BatchedModes() {
  std::vector<KernelMode> modes = SupportedKernelModes();
  modes.erase(std::remove(modes.begin(), modes.end(), KernelMode::kScalar),
              modes.end());
  return modes;
}

std::vector<float> RandomPoint(common::Rng* rng, size_t dim, double lo = -1.0,
                               double hi = 2.0) {
  std::vector<float> p(dim);
  for (auto& v : p) v = static_cast<float>(rng->NextUniform(lo, hi));
  return p;
}

/// A random non-empty box with occasional degenerate (point) sides.
BoundingBox RandomBox(common::Rng* rng, size_t dim) {
  std::vector<float> lo(dim), hi(dim);
  for (size_t d = 0; d < dim; ++d) {
    const float a = static_cast<float>(rng->NextUniform(-1.0, 2.0));
    const float b = rng->NextBounded(5) == 0
                        ? a
                        : static_cast<float>(rng->NextUniform(-1.0, 2.0));
    lo[d] = std::min(a, b);
    hi[d] = std::max(a, b);
  }
  return BoundingBox(std::move(lo), std::move(hi));
}

TEST(BoxSlabTest, LayoutAndPadding) {
  common::Rng rng(11);
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 11; ++i) boxes.push_back(RandomBox(&rng, 3));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  EXPECT_EQ(slab.size(), 11u);
  EXPECT_EQ(slab.dim(), 3u);
  // Rounded up to a multiple of kPlaneStride (a whole cacheline of floats).
  EXPECT_EQ(slab.padded_size(), 16u);
  for (size_t d = 0; d < 3; ++d) {
    for (size_t b = 0; b < 11; ++b) {
      EXPECT_EQ(slab.lo_plane(d)[b], boxes[b].lo()[d]);
      EXPECT_EQ(slab.hi_plane(d)[b], boxes[b].hi()[d]);
    }
    // Padding lanes hold the infinitely-far sentinel.
    for (size_t b = 11; b < slab.padded_size(); ++b) {
      EXPECT_EQ(slab.lo_plane(d)[b], std::numeric_limits<float>::infinity());
      EXPECT_EQ(slab.hi_plane(d)[b], -std::numeric_limits<float>::infinity());
    }
  }
}

TEST(BoxSlabTest, PlanesAreCachelineAligned) {
  common::Rng rng(47);
  for (const size_t count : {1u, 8u, 11u, 16u, 17u, 64u}) {
    std::vector<BoundingBox> boxes;
    for (size_t i = 0; i < count; ++i) boxes.push_back(RandomBox(&rng, 5));
    const BoxSlab slab{std::span<const BoundingBox>(boxes)};
    EXPECT_EQ(slab.padded_size() % BoxSlab::kPlaneStride, 0u);
    for (size_t d = 0; d < slab.dim(); ++d) {
      EXPECT_EQ(reinterpret_cast<uintptr_t>(slab.lo_plane(d)) %
                    common::Arena::kAlignment,
                0u)
          << "count " << count << ", dim " << d;
      EXPECT_EQ(reinterpret_cast<uintptr_t>(slab.hi_plane(d)) %
                    common::Arena::kAlignment,
                0u)
          << "count " << count << ", dim " << d;
    }
  }
}

TEST(BoxSlabTest, ExternalArenaBacksPlanes) {
  common::Rng rng(53);
  common::Arena arena;
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 9; ++i) boxes.push_back(RandomBox(&rng, 3));
  const BoxSlab slab{std::span<const BoundingBox>(boxes), &arena};
  // Both planes were carved out of the shared arena.
  EXPECT_GE(arena.bytes_allocated(),
            2 * slab.dim() * slab.padded_size() * sizeof(float));
  // Moving the slab keeps the arena-backed planes valid.
  const BoxSlab moved = [&] {
    BoxSlab tmp{std::span<const BoundingBox>(boxes), &arena};
    return tmp;
  }();
  const std::vector<float> center(3, 0.f);
  EXPECT_EQ(CountSphereHits(center, kInf, moved), 9u);
}

TEST(BoxSlabTest, DefaultAndEmptySpanAreEmpty) {
  const BoxSlab none;
  EXPECT_EQ(none.size(), 0u);
  EXPECT_EQ(none.dim(), 0u);
  EXPECT_EQ(none.padded_size(), 0u);
  const BoxSlab from_empty{std::span<const BoundingBox>()};
  EXPECT_EQ(from_empty.size(), 0u);
}

TEST(BoxSlabTest, PointerSpanMatchesValueSpan) {
  common::Rng rng(13);
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 9; ++i) boxes.push_back(RandomBox(&rng, 4));
  std::vector<const BoundingBox*> ptrs;
  for (const auto& b : boxes) ptrs.push_back(&b);
  const BoxSlab by_value{std::span<const BoundingBox>(boxes)};
  const BoxSlab by_ptr{
      std::span<const BoundingBox* const>(ptrs.data(), ptrs.size())};
  ASSERT_EQ(by_ptr.size(), by_value.size());
  ASSERT_EQ(by_ptr.dim(), by_value.dim());
  for (size_t d = 0; d < by_value.dim(); ++d) {
    for (size_t b = 0; b < by_value.padded_size(); ++b) {
      EXPECT_EQ(by_ptr.lo_plane(d)[b], by_value.lo_plane(d)[b]);
      EXPECT_EQ(by_ptr.hi_plane(d)[b], by_value.hi_plane(d)[b]);
    }
  }
}

TEST(KernelSphereHitsTest, MatchesSquaredMinDistPerBox) {
  common::Rng rng(17);
  for (const size_t dim : {1u, 2u, 9u, 17u}) {
    std::vector<BoundingBox> boxes;
    for (int i = 0; i < 23; ++i) boxes.push_back(RandomBox(&rng, dim));
    const BoxSlab slab{std::span<const BoundingBox>(boxes)};
    for (int trial = 0; trial < 20; ++trial) {
      const auto center = RandomPoint(&rng, dim);
      const double r = rng.NextUniform(0.0, 1.5);
      const double r2 = r * r;
      size_t expected = 0;
      for (const auto& box : boxes) {
        if (SquaredMinDist(center, box) <= r2) ++expected;
      }
      for (const KernelMode mode : AllModes()) {
        EXPECT_EQ(CountSphereHits(center, r2, slab, mode), expected)
            << KernelModeName(mode);
      }
    }
  }
}

TEST(KernelSphereHitsTest, EmptyBoxesOnlyCountAtInfiniteRadius) {
  std::vector<BoundingBox> boxes;
  boxes.push_back(BoundingBox({0.f, 0.f}, {1.f, 1.f}));
  boxes.push_back(BoundingBox(2));  // empty: infinitely far
  boxes.push_back(BoundingBox({3.f, 3.f}, {4.f, 4.f}));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  const std::vector<float> center = {0.5f, 0.5f};
  for (const KernelMode mode : AllModes()) {
    EXPECT_EQ(CountSphereHits(center, 1e12, slab, mode), 2u);
    // +inf radius reaches the empty box too, exactly like the scalar
    // SquaredMinDist(+inf) <= +inf comparison.
    EXPECT_EQ(CountSphereHits(center, kInf, slab, mode), 3u);
    EXPECT_EQ(CountSphereHits(center, 0.0, slab, mode), 1u);
  }
}

TEST(KernelSphereHitsTest, AppendAgreesWithCountAndIsAscending) {
  common::Rng rng(19);
  const size_t dim = 12;
  std::vector<BoundingBox> boxes;
  for (int i = 0; i < 37; ++i) boxes.push_back(RandomBox(&rng, dim));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  for (int trial = 0; trial < 15; ++trial) {
    const auto center = RandomPoint(&rng, dim);
    const double r = rng.NextUniform(0.0, 2.0);
    std::vector<uint32_t> scalar_hits;
    AppendSphereHits(center, r * r, slab, &scalar_hits, KernelMode::kScalar);
    EXPECT_TRUE(std::is_sorted(scalar_hits.begin(), scalar_hits.end()));
    for (const KernelMode mode : BatchedModes()) {
      std::vector<uint32_t> batched_hits;
      AppendSphereHits(center, r * r, slab, &batched_hits, mode);
      EXPECT_EQ(batched_hits, scalar_hits) << KernelModeName(mode);
      EXPECT_EQ(scalar_hits.size(), CountSphereHits(center, r * r, slab, mode))
          << KernelModeName(mode);
    }
  }
}

TEST(KernelBoxHitsTest, MatchesIntersectsPerBox) {
  common::Rng rng(23);
  for (const size_t dim : {1u, 3u, 10u}) {
    std::vector<BoundingBox> boxes;
    for (int i = 0; i < 29; ++i) boxes.push_back(RandomBox(&rng, dim));
    boxes[4] = BoundingBox(dim);  // an empty box intersects nothing
    const BoxSlab slab{std::span<const BoundingBox>(boxes)};
    for (int trial = 0; trial < 20; ++trial) {
      const BoundingBox query = RandomBox(&rng, dim);
      size_t expected = 0;
      for (const auto& box : boxes) {
        if (query.Intersects(box)) ++expected;
      }
      for (const KernelMode mode : AllModes()) {
        EXPECT_EQ(CountBoxHits(query, slab, mode), expected)
            << KernelModeName(mode);
      }
    }
    // An empty query box intersects nothing in any mode.
    for (const KernelMode mode : AllModes()) {
      EXPECT_EQ(CountBoxHits(BoundingBox(dim), slab, mode), 0u);
    }
  }
}

TEST(KernelNearestBoxTest, PicksMinimalDistanceLowestIndex) {
  common::Rng rng(29);
  for (const size_t dim : {1u, 4u, 11u}) {
    std::vector<BoundingBox> boxes;
    for (int i = 0; i < 21; ++i) boxes.push_back(RandomBox(&rng, dim));
    const BoxSlab slab{std::span<const BoundingBox>(boxes)};
    for (int trial = 0; trial < 30; ++trial) {
      const auto point = RandomPoint(&rng, dim);
      size_t expected = 0;
      double best = kInf;
      for (size_t b = 0; b < boxes.size(); ++b) {
        const double d2 = SquaredMinDist(point, boxes[b]);
        if (d2 < best) {
          best = d2;
          expected = b;
        }
      }
      for (const KernelMode mode : AllModes()) {
        EXPECT_EQ(NearestBox(point, slab, mode), expected)
            << KernelModeName(mode);
      }
    }
  }
}

TEST(KernelNearestBoxTest, ExactTiesBreakTowardsLowestIndex) {
  // Two identical boxes: the first must win in every mode, at any distance.
  std::vector<BoundingBox> boxes;
  boxes.push_back(BoundingBox({1.f}, {2.f}));
  boxes.push_back(BoundingBox({1.f}, {2.f}));
  boxes.push_back(BoundingBox({1.5f}, {2.f}));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  const std::vector<float> outside = {0.f};
  const std::vector<float> inside = {1.7f};
  for (const KernelMode mode : AllModes()) {
    EXPECT_EQ(NearestBox(outside, slab, mode), 0u) << KernelModeName(mode);
    EXPECT_EQ(NearestBox(inside, slab, mode), 0u) << KernelModeName(mode);
  }
}

TEST(KernelNearestBoxTest, EmptyBoxesNeverWinUnlessAllEmpty) {
  std::vector<BoundingBox> boxes;
  boxes.push_back(BoundingBox(2));
  boxes.push_back(BoundingBox({5.f, 5.f}, {6.f, 6.f}));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  std::vector<BoundingBox> all_empty(3, BoundingBox(2));
  const BoxSlab empty_slab{std::span<const BoundingBox>(all_empty)};
  const std::vector<float> p = {0.f, 0.f};
  for (const KernelMode mode : AllModes()) {
    EXPECT_EQ(NearestBox(p, slab, mode), 1u) << KernelModeName(mode);
    EXPECT_EQ(NearestBox(p, empty_slab, mode), 0u) << KernelModeName(mode);
  }
}

TEST(KernelBatchedL2Test, BitIdenticalToScalarSquaredL2) {
  common::Rng rng(31);
  for (const size_t dim : {1u, 7u, 16u, 33u}) {
    for (const size_t n : {1u, 7u, 8u, 9u, 40u}) {
      std::vector<float> rows(n * dim);
      for (auto& v : rows) v = static_cast<float>(rng.NextUniform(-2.0, 2.0));
      const auto query = RandomPoint(&rng, dim);
      for (const KernelMode mode : AllModes()) {
        std::vector<double> out(n);
        BatchedSquaredL2(query, rows.data(), n, dim, out.data(), mode);
        for (size_t i = 0; i < n; ++i) {
          const std::span<const float> row(rows.data() + i * dim, dim);
          EXPECT_EQ(out[i], SquaredL2(query, row))
              << KernelModeName(mode) << ", row " << i;
        }
      }
    }
  }
}

/// Scalar reference for the scan kernels: KnnHeap semantics over rows in
/// order, written independently of the kernel implementation.
double ReferenceKth(std::span<const float> query, std::span<const float> rows,
                    size_t dim, size_t k, const ScanOptions& opts) {
  std::vector<std::pair<double, size_t>> kept;
  const size_t n = rows.size() / dim;
  for (size_t row = 0; row < n; ++row) {
    const double d2 =
        SquaredL2(query, std::span<const float>(rows.data() + row * dim, dim));
    if (row == opts.exclude_row &&
        (!opts.exclude_row_only_if_zero || d2 <= 0.0)) {
      continue;
    }
    if (d2 <= opts.exclude_within_sq) continue;
    kept.emplace_back(d2, row);
  }
  if (kept.size() < k) return kInf;
  std::sort(kept.begin(), kept.end());
  return kept[k - 1].first;
}

TEST(KernelScanTest, KthDistanceMatchesSortReference) {
  common::Rng rng(37);
  for (const size_t dim : {1u, 5u, 16u, 20u}) {
    const size_t n = 60;
    std::vector<float> rows(n * dim);
    for (auto& v : rows) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
    for (const size_t k : {1u, 3u, 21u, 60u, 61u}) {
      const auto query = RandomPoint(&rng, dim, -1.0, 1.0);
      const ScanOptions opts;
      const double expected = ReferenceKth(query, rows, dim, k, opts);
      for (const KernelMode mode : AllModes()) {
        EXPECT_EQ(KthDistanceScan(query, rows, dim, k, opts, mode), expected)
            << KernelModeName(mode);
      }
    }
  }
}

TEST(KernelScanTest, ExclusionRules) {
  // Dataset with a duplicate of row 0 at row 3 and a near point at row 1.
  const size_t dim = 2;
  const std::vector<float> rows = {0.f, 0.f, 0.1f, 0.f, 5.f,
                                   5.f, 0.f, 0.f,  2.f, 2.f};
  const std::vector<float> query = {0.f, 0.f};
  // Row 1's coordinate is the float 0.1f; the scan accumulates it widened
  // to double, which is not the double literal 0.1.
  const double near_d2 = static_cast<double>(0.1f) * static_cast<double>(0.1f);
  for (const KernelMode mode : AllModes()) {
    // No exclusions: the query's own row is the nearest.
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 1, ScanOptions(), mode), 0.0);

    // Unconditional row exclusion drops row 0 but keeps its duplicate.
    ScanOptions skip_row;
    skip_row.exclude_row = 0;
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 1, skip_row, mode), 0.0);
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 2, skip_row, mode), near_d2);

    // Zero-only exclusion: identical here (row 0 is at distance zero)...
    ScanOptions skip_self = skip_row;
    skip_self.exclude_row_only_if_zero = true;
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 1, skip_self, mode), 0.0);
    // ...but keeps the excluded row when it is not at distance zero.
    ScanOptions skip_far = skip_self;
    skip_far.exclude_row = 2;  // (5,5) is far from the query: kept
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 5, skip_far, mode), 50.0);
    ScanOptions drop_far;
    drop_far.exclude_row = 2;  // unconditional: row 2 gone, only 4 rows left
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 5, drop_far, mode), kInf);

    // Distance-band exclusion drops both zero-distance rows.
    ScanOptions band;
    band.exclude_within_sq = 0.0;
    EXPECT_EQ(KthDistanceScan(query, rows, dim, 1, band, mode), near_d2);
  }
}

TEST(KernelScanTest, TopKMatchesSortTruncate) {
  common::Rng rng(41);
  const size_t dim = 6;
  const size_t n = 50;
  std::vector<float> rows(n * dim);
  for (auto& v : rows) v = static_cast<float>(rng.NextUniform(-1.0, 1.0));
  // Duplicate a few rows so distance ties exercise the row tie-break.
  std::copy_n(rows.begin(), dim, rows.begin() + 17 * dim);
  std::copy_n(rows.begin() + 5 * dim, dim, rows.begin() + 44 * dim);
  for (const size_t k : {1u, 4u, 25u, 50u, 70u}) {
    const auto query = RandomPoint(&rng, dim, -1.0, 1.0);
    std::vector<std::pair<double, size_t>> expected;
    for (size_t row = 0; row < n; ++row) {
      expected.emplace_back(
          SquaredL2(query,
                    std::span<const float>(rows.data() + row * dim, dim)),
          row);
    }
    std::sort(expected.begin(), expected.end());
    expected.resize(std::min<size_t>(k, expected.size()));
    for (const KernelMode mode : AllModes()) {
      EXPECT_EQ(TopKNeighborScan(query, rows, dim, k, ScanOptions(), mode),
                expected)
          << KernelModeName(mode);
    }
  }
  EXPECT_TRUE(TopKNeighborScan(std::vector<float>(dim, 0.f), rows, dim, 0,
                               ScanOptions(), KernelMode::kGeneric)
                  .empty());
}

TEST(KernelModeTest, OverrideWinsAndClears) {
  ModeOverrideGuard guard;
  SetKernelMode(KernelMode::kScalar);
  EXPECT_EQ(ActiveKernelMode(), KernelMode::kScalar);
  SetKernelMode(KernelMode::kGeneric);
  EXPECT_EQ(ActiveKernelMode(), KernelMode::kGeneric);
  ClearKernelModeOverride();
  // Without an override the mode comes from HDIDX_KERNEL ("scalar" opts
  // out) or defaults to the host's best ISA; either way it must be a mode
  // this host can actually run.
  EXPECT_TRUE(KernelModeSupported(ActiveKernelMode()));
}

TEST(KernelModeTest, ScalarAndGenericAlwaysSupported) {
  EXPECT_TRUE(KernelModeSupported(KernelMode::kScalar));
  EXPECT_TRUE(KernelModeSupported(KernelMode::kGeneric));
  // The sweep set is deterministic, starts with the oracle, and only ever
  // contains supported modes.
  const std::vector<KernelMode> modes = SupportedKernelModes();
  ASSERT_GE(modes.size(), 2u);
  EXPECT_EQ(modes[0], KernelMode::kScalar);
  EXPECT_EQ(modes[1], KernelMode::kGeneric);
  for (const KernelMode mode : modes) {
    EXPECT_TRUE(KernelModeSupported(mode)) << KernelModeName(mode);
  }
  // BestKernelMode is supported and never the oracle.
  EXPECT_TRUE(KernelModeSupported(BestKernelMode()));
  EXPECT_NE(BestKernelMode(), KernelMode::kScalar);
}

TEST(KernelModeTest, UnsupportedIsaDowngradesGracefully) {
  ModeOverrideGuard guard;
  for (const KernelMode mode :
       {KernelMode::kScalar, KernelMode::kGeneric, KernelMode::kAvx2,
        KernelMode::kAvx512, KernelMode::kNeon}) {
    const KernelMode resolved = ResolveKernelMode(mode);
    EXPECT_TRUE(KernelModeSupported(resolved)) << KernelModeName(mode);
    if (KernelModeSupported(mode)) {
      EXPECT_EQ(resolved, mode);
    } else {
      // The downgrade chain ends at the always-available generic lanes.
      EXPECT_TRUE(resolved == KernelMode::kGeneric ||
                  (mode == KernelMode::kAvx512 &&
                   resolved == KernelMode::kAvx2))
          << KernelModeName(mode) << " -> " << KernelModeName(resolved);
    }
    // Requesting any mode through the override — supported or not — always
    // dispatches a runnable one (never UB).
    SetKernelMode(mode);
    EXPECT_EQ(ActiveKernelMode(), resolved) << KernelModeName(mode);
  }
}

TEST(KernelModeTest, ExplicitModeEntryPointsResolveUnsupportedIsas) {
  // Even with an explicit (possibly unsupported) mode argument, kernels run
  // the downgraded lane and return oracle-identical results.
  std::vector<BoundingBox> boxes;
  boxes.push_back(BoundingBox({0.f, 0.f}, {1.f, 1.f}));
  boxes.push_back(BoundingBox({3.f, 3.f}, {4.f, 4.f}));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  const std::vector<float> center = {0.5f, 0.5f};
  for (const KernelMode mode :
       {KernelMode::kAvx2, KernelMode::kAvx512, KernelMode::kNeon}) {
    EXPECT_EQ(CountSphereHits(center, 1.0, slab, mode), 1u)
        << KernelModeName(mode);
  }
}

TEST(KernelModeTest, OverrideFlipsAreRaceFreeUnderConcurrentReaders) {
  // Regression for the override's memory ordering: SetKernelMode /
  // ClearKernelModeOverride publish with release stores and
  // ActiveKernelMode reads with an acquire load, so readers racing a flip
  // must always observe a supported mode and kernels must keep returning
  // oracle-identical results. Runs under the TSan CI leg (name contains
  // "Kernel"), which would flag the pre-atomic formulation.
  ModeOverrideGuard guard;
  std::vector<BoundingBox> boxes;
  boxes.push_back(BoundingBox({0.f, 0.f}, {1.f, 1.f}));
  boxes.push_back(BoundingBox({3.f, 3.f}, {4.f, 4.f}));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  const std::vector<float> center = {0.5f, 0.5f};

  std::atomic<bool> stop{false};
  std::atomic<size_t> bad_modes{0};
  std::atomic<size_t> bad_counts{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const KernelMode mode = ActiveKernelMode();
        if (!KernelModeSupported(mode)) {
          bad_modes.fetch_add(1, std::memory_order_relaxed);
        }
        if (CountSphereHits(center, 1.0, slab) != 1u) {
          bad_counts.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  const std::vector<KernelMode> modes = SupportedKernelModes();
  for (int i = 0; i < 400; ++i) {
    SetKernelMode(modes[static_cast<size_t>(i) % modes.size()]);
    if (i % 7 == 0) ClearKernelModeOverride();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& r : readers) r.join();
  EXPECT_EQ(bad_modes.load(), 0u);
  EXPECT_EQ(bad_counts.load(), 0u);
}

TEST(KernelModeTest, ParseRoundTripsNamesAndFallsBackOnGarbage) {
  for (const KernelMode mode : SupportedKernelModes()) {
    KernelMode parsed = KernelMode::kScalar;
    EXPECT_TRUE(ParseKernelMode(KernelModeName(mode), &parsed));
    EXPECT_EQ(parsed, mode);
  }
  KernelMode parsed = KernelMode::kScalar;
  // PR 5's mode name stays accepted as an alias for the generic lanes.
  EXPECT_TRUE(ParseKernelMode("batched", &parsed));
  EXPECT_EQ(parsed, KernelMode::kGeneric);
  // Unknown values fall back deterministically to the host's best mode.
  for (const auto* garbage : {"", "AVX2", "turbo9000", "scalar ", "sse4"}) {
    parsed = KernelMode::kScalar;
    EXPECT_FALSE(ParseKernelMode(garbage, &parsed)) << garbage;
    EXPECT_EQ(parsed, BestKernelMode()) << garbage;
  }
}

TEST(KernelModeDeathTest, GarbageEnvValueWarnsOnceAndFallsBack) {
  // The HDIDX_KERNEL parse is latched in a function-local static, so the
  // garbage-value path needs a fresh process: threadsafe death tests re-exec
  // the binary and run only this test body in the child.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_EXIT(
      {
        ClearKernelModeOverride();
        setenv("HDIDX_KERNEL", "turbo9000", 1);
        const KernelMode mode = ActiveKernelMode();
        if (mode != BestKernelMode()) _Exit(2);
        if (!KernelModeSupported(mode)) _Exit(3);
        _Exit(0);
      },
      ::testing::ExitedWithCode(0), "unknown HDIDX_KERNEL value \"turbo9000\"");
}

TEST(KernelModeDeathTest, UnsupportedEnvIsaDowngradesInsteadOfDying) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // NEON can never be the host ISA in the same build as AVX2 and vice
  // versa, so one of the two always exercises the downgrade path; on a
  // plain x86-64 host without AVX-512 the avx512 request downgrades too.
  EXPECT_EXIT(
      {
        ClearKernelModeOverride();
        setenv("HDIDX_KERNEL", KernelModeSupported(KernelMode::kNeon)
                                   ? "avx2"
                                   : "neon",
               1);
        const KernelMode mode = ActiveKernelMode();
        if (!KernelModeSupported(mode)) _Exit(2);
        _Exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(KernelDeathTest, KthDistanceScanRejectsZeroK) {
  const std::vector<float> rows = {0.f, 1.f};
  const std::vector<float> query = {0.f};
  EXPECT_DEATH(KthDistanceScan(query, rows, 1, 0, ScanOptions()), "k > 0");
}

TEST(KernelDeathTest, NearestBoxRejectsEmptySlab) {
  const BoxSlab empty;
  const std::vector<float> p = {0.f};
  EXPECT_DEATH(NearestBox(p, empty), "slab.size");
}

TEST(KernelDeathTest, DimensionMismatchesAreFatal) {
  std::vector<BoundingBox> boxes;
  boxes.push_back(BoundingBox({0.f, 0.f}, {1.f, 1.f}));
  const BoxSlab slab{std::span<const BoundingBox>(boxes)};
  const std::vector<float> p1 = {0.f};
  EXPECT_DEATH(CountSphereHits(p1, 1.0, slab), "dim");
  const std::vector<float> q = {0.f, 0.f};
  const std::vector<float> rows = {0.f, 1.f, 2.f};  // not a multiple of dim
  EXPECT_DEATH(KthDistanceScan(q, rows, 2, 1, ScanOptions()), "dim");
}

}  // namespace
}  // namespace hdidx::geometry::kernels
