#include "data/generators.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "gtest/gtest.h"

namespace hdidx::data {
namespace {

TEST(GeneratorsTest, UniformInUnitCube) {
  common::Rng rng(1);
  const Dataset d = GenerateUniform(5000, 4, &rng);
  ASSERT_EQ(d.size(), 5000u);
  ASSERT_EQ(d.dim(), 4u);
  for (float v : d.data()) {
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
  // Per-dimension mean near 0.5 and variance near 1/12.
  for (size_t k = 0; k < 4; ++k) {
    common::RunningStats rs;
    for (size_t i = 0; i < d.size(); ++i) rs.Add(d.row(i)[k]);
    EXPECT_NEAR(rs.mean(), 0.5, 0.02);
    EXPECT_NEAR(rs.variance(), 1.0 / 12.0, 0.01);
  }
}

TEST(GeneratorsTest, UniformDeterministicPerSeed) {
  common::Rng a(7), b(7), c(8);
  const Dataset da = GenerateUniform(100, 3, &a);
  const Dataset db = GenerateUniform(100, 3, &b);
  const Dataset dc = GenerateUniform(100, 3, &c);
  EXPECT_TRUE(da == db);
  EXPECT_FALSE(da == dc);
}

TEST(GeneratorsTest, ClusteredIsMoreConcentratedThanUniform) {
  common::Rng rng(2);
  ClusteredConfig config;
  config.num_points = 4000;
  config.dim = 8;
  config.num_clusters = 5;
  config.noise_fraction = 0.0;
  const Dataset d = GenerateClustered(config, &rng);
  ASSERT_EQ(d.size(), 4000u);

  // Average nearest-cluster-like behavior: the per-dimension variance of
  // clustered data is far below the uniform 1/12 in trailing dimensions
  // (exponential decay).
  common::RunningStats first, last;
  for (size_t i = 0; i < d.size(); ++i) {
    first.Add(d.row(i)[0]);
    last.Add(d.row(i)[7]);
  }
  EXPECT_GT(first.variance(), last.variance() * 2.0);
}

TEST(GeneratorsTest, ClusteredPopulationSkew) {
  common::Rng rng(3);
  ClusteredConfig config;
  config.num_points = 2000;
  config.dim = 2;
  config.num_clusters = 2;
  config.population_skew = 0.25;  // cluster 0 gets ~80%
  config.noise_fraction = 0.0;
  config.cluster_spread = 1e-4;
  const Dataset d = GenerateClustered(config, &rng);
  // With two tight clusters, classify by proximity to the two modes.
  // Count points near the first point's mode.
  const auto p0 = d.row(0);
  size_t near0 = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    double dist = 0;
    for (size_t k = 0; k < 2; ++k) {
      dist += (d.row(i)[k] - p0[k]) * (d.row(i)[k] - p0[k]);
    }
    if (dist < 0.01) ++near0;
  }
  const double frac = static_cast<double>(near0) / d.size();
  // One of the clusters holds ~80%; the first point is in one of them.
  EXPECT_TRUE(frac > 0.7 || frac < 0.3);
}

TEST(GeneratorsTest, LineDatasetStaysNearLine) {
  common::Rng rng(4);
  const Dataset d = GenerateLine(1000, 6, 0.0, &rng);
  // With zero jitter all points satisfy x = 0.5 + t*dir: the rank of the
  // centered data is 1, so variance along any two dims is perfectly
  // correlated. Check pairwise correlation magnitude ~1.
  std::vector<double> x0, x1;
  for (size_t i = 0; i < d.size(); ++i) {
    x0.push_back(d.row(i)[0]);
    x1.push_back(d.row(i)[1]);
  }
  EXPECT_GT(std::abs(common::PearsonCorrelation(x0, x1)), 0.999);
}

TEST(GeneratorsTest, SurrogatesHavePaperShapes) {
  // Reduced cardinalities for speed; dimensionality is the paper's.
  const Dataset color = Color64Surrogate(500, 1);
  EXPECT_EQ(color.dim(), 64u);
  EXPECT_EQ(color.size(), 500u);
  const Dataset tex48 = Texture48Surrogate(300, 1);
  EXPECT_EQ(tex48.dim(), 48u);
  const Dataset stock = Stock360Surrogate(100, 1);
  EXPECT_EQ(stock.dim(), 360u);
  EXPECT_EQ(stock.size(), 100u);
}

TEST(GeneratorsTest, SurrogateKltOrdersVariance) {
  // KLT output must have (weakly) decreasing variance in the leading dims.
  const Dataset d = Texture60Surrogate(2000, 5);
  common::RunningStats v0, v5, v30;
  for (size_t i = 0; i < d.size(); ++i) {
    v0.Add(d.row(i)[0]);
    v5.Add(d.row(i)[5]);
    v30.Add(d.row(i)[30]);
  }
  EXPECT_GE(v0.variance(), v5.variance() * 0.99);
  EXPECT_GE(v5.variance(), v30.variance() * 0.99);
}

TEST(GeneratorsTest, StockSurrogateDftConcentratesEnergyInLowFrequencies) {
  const Dataset d = Stock360Surrogate(50, 2);
  // Random-walk spectra decay ~1/f: DC + first coefficients dominate.
  double low = 0.0, high = 0.0;
  for (size_t i = 0; i < d.size(); ++i) {
    for (size_t k = 0; k < 10; ++k) low += std::abs(d.row(i)[k]);
    for (size_t k = 350; k < 360; ++k) high += std::abs(d.row(i)[k]);
  }
  EXPECT_GT(low, high * 10.0);
}

}  // namespace
}  // namespace hdidx::data
