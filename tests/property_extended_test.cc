/// Second parameterized property batch: cross-implementation equivalences
/// and parameter sweeps over the newer modules.

#include <cmath>
#include <tuple>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/external_build.h"
#include "index/knn.h"
#include "index/pyramid.h"
#include "index/rstar.h"
#include "index/va_file.h"
#include "test_util.h"

namespace hdidx {
namespace {

// ---------------------------------------------------------------------------
// External build == in-memory build (structure and geometry) across
// (n, dim, memory) shapes, including memory sizes that force many external
// quickselect passes.
// ---------------------------------------------------------------------------

using ExternalParams = std::tuple<size_t, size_t, size_t>;

class ExternalEquivalence : public ::testing::TestWithParam<ExternalParams> {};

TEST_P(ExternalEquivalence, MatchesInMemoryBuild) {
  const auto [n, dim, memory] = GetParam();
  const auto data = testing::SmallClustered(n, dim, 9000 + n + dim);
  const index::TreeTopology topo(n, 25, 6);

  index::BulkLoadOptions options;
  options.topology = &topo;
  const index::RTree in_memory = index::BulkLoadInMemory(data, options);

  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  index::ExternalBuildOptions external;
  external.topology = &topo;
  external.memory_points = memory;
  const auto built = index::BuildOnDisk(&file, external);

  ASSERT_EQ(built.tree.num_nodes(), in_memory.num_nodes());
  ASSERT_EQ(built.tree.num_leaves(), in_memory.num_leaves());
  // Same per-node point counts and near-identical geometry (ties along
  // split values may migrate individual points).
  double volume_external = 0.0, volume_memory = 0.0;
  for (uint32_t id = 0; id < built.tree.num_nodes(); ++id) {
    if (built.tree.node(id).is_leaf()) {
      EXPECT_EQ(built.tree.node(id).count, in_memory.node(id).count) << id;
    }
    volume_external += built.tree.node(id).box.Volume();
    volume_memory += in_memory.node(id).box.Volume();
  }
  EXPECT_NEAR(volume_external, volume_memory,
              0.05 * std::max(volume_memory, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    MemoryGrid, ExternalEquivalence,
    ::testing::Values(ExternalParams{1000, 4, 100},
                      ExternalParams{1000, 4, 50},
                      ExternalParams{2000, 8, 200},
                      ExternalParams{2000, 8, 2000},
                      ExternalParams{3000, 3, 75},
                      ExternalParams{1500, 12, 300}));

// ---------------------------------------------------------------------------
// VA-file exactness across (dim, bits, k).
// ---------------------------------------------------------------------------

using VaParams = std::tuple<size_t, int, size_t>;

class VaFileProperty : public ::testing::TestWithParam<VaParams> {};

TEST_P(VaFileProperty, ExactAcrossParameters) {
  const auto [dim, bits, k] = GetParam();
  const auto data = testing::SmallClustered(1500, dim, 800 + dim + bits);
  index::VaFile::Options options;
  options.bits = static_cast<uint8_t>(bits);
  const index::VaFile va(&data, options);
  common::Rng rng(dim * 3 + bits);
  for (int trial = 0; trial < 5; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto result = va.SearchKnn(query, k, io::DiskModel{});
    EXPECT_NEAR(result.kth_distance,
                index::ExactKthDistance(data, query, k, -1.0), 1e-9);
    EXPECT_GE(result.candidates, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BitsGrid, VaFileProperty,
    ::testing::Combine(::testing::Values(2, 8, 24),
                       ::testing::Values(2, 5, 8),
                       ::testing::Values(1, 10)));

// ---------------------------------------------------------------------------
// R*-tree invariants across capacities and reinsert settings.
// ---------------------------------------------------------------------------

using RStarParams = std::tuple<size_t, size_t, double>;

class RStarProperty : public ::testing::TestWithParam<RStarParams> {};

TEST_P(RStarProperty, InvariantsAndExactSearch) {
  const auto [data_cap, dir_cap, reinsert] = GetParam();
  const auto data = testing::SmallClustered(1200, 5, data_cap * 7);
  index::RStarTree::Options options;
  options.max_data_entries = data_cap;
  options.max_dir_entries = dir_cap;
  options.reinsert_fraction = reinsert;
  const index::RStarTree tree =
      index::RStarTree::BuildByInsertion(data, options);
  EXPECT_TRUE(tree.CheckInvariants());
  const index::RTree snapshot = tree.ToRTree();
  testing::ExpectValidTree(snapshot, data, 1);

  common::Rng rng(data_cap + dir_cap);
  const auto query = data.row(rng.NextBounded(data.size()));
  const auto result = index::TreeKnnSearch(snapshot, data, query, 4);
  EXPECT_NEAR(result.kth_distance,
              index::ExactKthDistance(data, query, 4, -1.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    CapacityGrid, RStarProperty,
    ::testing::Values(RStarParams{4, 4, 0.3}, RStarParams{8, 16, 0.3},
                      RStarParams{32, 8, 0.3}, RStarParams{16, 16, 0.0},
                      RStarParams{16, 16, 0.45}, RStarParams{64, 4, 0.3}));

// ---------------------------------------------------------------------------
// Pyramid k-NN exactness across dimensionalities and page capacities.
// ---------------------------------------------------------------------------

using PyramidParams = std::tuple<size_t, size_t>;

class PyramidProperty : public ::testing::TestWithParam<PyramidParams> {};

TEST_P(PyramidProperty, ExactKnn) {
  const auto [dim, capacity] = GetParam();
  const auto data = testing::SmallClustered(1200, dim, 600 + dim);
  const index::PyramidIndex index(&data, capacity);
  common::Rng rng(dim * 5);
  for (int trial = 0; trial < 4; ++trial) {
    const auto query = data.row(rng.NextBounded(data.size()));
    const auto result = index.SearchKnn(query, 3);
    EXPECT_NEAR(result.kth_distance,
                index::ExactKthDistance(data, query, 3, -1.0), 1e-9)
        << "dim " << dim << " cap " << capacity;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimCapacityGrid, PyramidProperty,
    ::testing::Combine(::testing::Values(2, 6, 16, 32),
                       ::testing::Values(8, 64)));

// ---------------------------------------------------------------------------
// Quantization bounds are valid for arbitrary query/point pairs across
// split strategies: the bulk loader's three strategies all yield trees
// whose leaves cover their points (the core containment property that makes
// intersection counting an exact access count).
// ---------------------------------------------------------------------------

class SplitStrategyProperty
    : public ::testing::TestWithParam<index::SplitStrategy> {};

TEST_P(SplitStrategyProperty, ValidTreeAndExactSearch) {
  const auto data = testing::SmallClustered(2500, 7, 4242);
  const index::TreeTopology topo(data.size(), 30, 6);
  index::BulkLoadOptions options;
  options.topology = &topo;
  options.split_strategy = GetParam();
  const index::RTree tree = index::BulkLoadInMemory(data, options);
  testing::ExpectValidTree(tree, data, 1);
  EXPECT_EQ(tree.num_leaves(), topo.NumLeaves());
  common::Rng rng(77);
  const auto query = data.row(rng.NextBounded(data.size()));
  const auto result = index::TreeKnnSearch(tree, data, query, 6);
  EXPECT_NEAR(result.kth_distance,
              index::ExactKthDistance(data, query, 6, -1.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Strategies, SplitStrategyProperty,
                         ::testing::Values(
                             index::SplitStrategy::kMaxVariance,
                             index::SplitStrategy::kMaxExtent,
                             index::SplitStrategy::kRoundRobin));

}  // namespace
}  // namespace hdidx
