#include "io/read_ahead.h"

#include <memory>
#include <span>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "io/io_stats.h"
#include "io/paged_file.h"

namespace hdidx::io {
namespace {

data::Dataset MakeData(size_t n, size_t dim, uint64_t seed) {
  common::Rng rng(seed);
  return data::GenerateUniform(n, dim, &rng);
}

/// A chunked sequential plan over the whole file, the shape the external
/// build uses.
std::vector<ReadAheadSource::Extent> SequentialPlan(size_t n, size_t chunk) {
  std::vector<ReadAheadSource::Extent> plan;
  for (size_t start = 0; start < n; start += chunk) {
    plan.push_back({start, std::min(chunk, n - start)});
  }
  return plan;
}

TEST(ReadAheadSourceTest, DeliversBytesInPlanOrder) {
  const size_t kN = 1200;
  const size_t kDim = 4;
  const data::Dataset data = MakeData(kN, kDim, 11);
  PagedFile file = PagedFile::FromDataset(data, DiskModel{});
  common::ThreadPool pool(4);
  ReadAheadSource source(&file, SequentialPlan(kN, 100), /*window=*/4,
                         &pool);
  size_t row = 0;
  while (!source.done()) {
    const std::span<const float> rows = source.Next();
    ASSERT_EQ(rows.size() % kDim, 0u);
    for (size_t i = 0; i < rows.size() / kDim; ++i, ++row) {
      for (size_t k = 0; k < kDim; ++k) {
        ASSERT_EQ(rows[i * kDim + k], data.row(row)[k])
            << "row " << row << " dim " << k;
      }
    }
  }
  EXPECT_EQ(row, kN);
  EXPECT_GE(source.overlap_ratio(), 0.0);
  EXPECT_LE(source.overlap_ratio(), 1.0);
}

TEST(ReadAheadSourceTest, IoStatsInvariantAcrossWindowsAndThreads) {
  // The determinism contract: accounting happens on the consumer thread in
  // plan order, so seeks and transfers are bit-identical whatever the
  // prefetch depth or pool size — including window 0 (no prefetch at all).
  const size_t kN = 3000;
  const data::Dataset data = MakeData(kN, 6, 12);
  const auto plan = SequentialPlan(kN, 128);

  IoStats reference;
  {
    PagedFile file = PagedFile::FromDataset(data, DiskModel{});
    file.ResetStats();
    ReadAheadSource source(&file, plan, /*window=*/0, nullptr);
    while (!source.done()) source.Next();
    reference = file.stats();
  }
  EXPECT_GT(reference.page_transfers, 0u);

  for (const size_t window : {1u, 4u, 8u}) {
    for (const size_t threads : {1u, 2u, 8u}) {
      common::ThreadPool pool(threads);
      PagedFile file = PagedFile::FromDataset(data, DiskModel{});
      file.ResetStats();
      ReadAheadSource source(&file, plan, window, &pool);
      while (!source.done()) source.Next();
      EXPECT_TRUE(file.stats() == reference)
          << "window " << window << ", " << threads << " threads: "
          << file.stats().page_seeks << "/" << file.stats().page_transfers
          << " vs " << reference.page_seeks << "/"
          << reference.page_transfers;
    }
  }
}

TEST(ReadAheadSourceTest, NonContiguousPlanChargesEverySeek) {
  // A deliberately jumpy plan: each extent lands on a far page, so every
  // Next() must charge a seek exactly as a synchronous read would.
  const size_t kN = 2000;
  const data::Dataset data = MakeData(kN, 4, 13);
  PagedFile file = PagedFile::FromDataset(data, DiskModel{});
  const size_t ppp = file.points_per_page();
  std::vector<ReadAheadSource::Extent> plan;
  for (size_t i = 0; i < 10; ++i) {
    const size_t page = (i * 7) % file.num_pages();
    plan.push_back({page * ppp, std::min(ppp, kN - page * ppp)});
  }
  file.ResetStats();
  IoStats reference;
  {
    common::ThreadPool pool(2);
    ReadAheadSource source(&file, plan, /*window=*/3, &pool);
    while (!source.done()) source.Next();
    reference = file.stats();
  }
  // Replay the same accesses synchronously.
  PagedFile replay = PagedFile::FromDataset(data, DiskModel{});
  replay.ResetStats();
  for (const auto& e : plan) replay.ChargeAccess(e.start, e.count);
  EXPECT_TRUE(replay.stats() == reference)
      << reference.page_seeks << "/" << reference.page_transfers << " vs "
      << replay.stats().page_seeks << "/" << replay.stats().page_transfers;
}

TEST(ReadAheadSourceTest, DestructorDrainsOutstandingFills) {
  // Abandon the source mid-plan with fills in flight: the destructor must
  // block until they retire (TSan would flag a use-after-free otherwise).
  const size_t kN = 5000;
  const data::Dataset data = MakeData(kN, 8, 14);
  PagedFile file = PagedFile::FromDataset(data, DiskModel{});
  common::ThreadPool pool(8);
  for (int iter = 0; iter < 20; ++iter) {
    ReadAheadSource source(&file, SequentialPlan(kN, 250), /*window=*/8,
                           &pool);
    source.Next();  // consume one, leaving the window in flight
  }
}

}  // namespace
}  // namespace hdidx::io
