#include "../tools/flags.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace hdidx::tools {
namespace {

/// Builds an argv from string literals ("argv[0]" prepended).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : storage_(std::move(args)) {
    storage_.insert(storage_.begin(), "tool");
    for (auto& s : storage_) ptrs_.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> storage_;
  std::vector<char*> ptrs_;
};

TEST(FlagsTest, ParsesBothSyntaxesAndDefaults) {
  Argv args({"--data=x.hdx", "--memory", "5000", "--measure"});
  const Flags flags(args.argc(), args.argv());
  EXPECT_TRUE(flags.ok());
  EXPECT_EQ(flags.GetString("data", ""), "x.hdx");
  EXPECT_EQ(flags.GetUint("memory", 0), 5000u);
  EXPECT_TRUE(flags.GetBool("measure"));
  EXPECT_EQ(flags.GetUint("absent", 42), 42u);
  EXPECT_EQ(flags.GetString("absent", "fallback"), "fallback");
  EXPECT_TRUE(flags.ok());
}

TEST(FlagsTest, UnknownFlagIsAnError) {
  Argv args({"--data=x.hdx", "--memroy=5000"});  // typo
  const Flags flags(args.argc(), args.argv(), {"data", "memory"});
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("unknown flag: --memroy"), std::string::npos);
}

TEST(FlagsTest, KnownFlagListAcceptsExactMatches) {
  Argv args({"--data=x.hdx", "--memory=5000"});
  const Flags flags(args.argc(), args.argv(), {"data", "memory", "seed"});
  EXPECT_TRUE(flags.ok()) << flags.error();
}

TEST(FlagsTest, NonFlagArgumentIsAnError) {
  Argv args({"stray"});
  const Flags flags(args.argc(), args.argv());
  EXPECT_FALSE(flags.ok());
  EXPECT_NE(flags.error().find("unexpected argument"), std::string::npos);
}

TEST(FlagsTest, MalformedUintIsAnErrorNotZero) {
  // The old parser silently turned all of these into 0 or a prefix parse.
  for (const char* bad : {"--n=abc", "--n=12x", "--n=-5", "--n=", "--n=1.5"}) {
    Argv args({bad});
    const Flags flags(args.argc(), args.argv());
    EXPECT_EQ(flags.GetUint("n", 7), 7u) << bad;  // fallback, not garbage
    EXPECT_FALSE(flags.ok()) << bad;
    EXPECT_NE(flags.error().find("non-negative integer"), std::string::npos);
  }
}

TEST(FlagsTest, MalformedDoubleIsAnError) {
  for (const char* bad : {"--f=abc", "--f=1.5x", "--f="}) {
    Argv args({bad});
    const Flags flags(args.argc(), args.argv());
    EXPECT_EQ(flags.GetDouble("f", 2.5), 2.5) << bad;
    EXPECT_FALSE(flags.ok()) << bad;
  }
}

TEST(FlagsTest, ValidNumbersStayValid) {
  Argv args({"--n=18446744073709551615", "--f=-1.5e3", "--zero=0"});
  const Flags flags(args.argc(), args.argv());
  EXPECT_EQ(flags.GetUint("n", 0), 18446744073709551615ull);
  EXPECT_DOUBLE_EQ(flags.GetDouble("f", 0.0), -1500.0);
  EXPECT_EQ(flags.GetUint("zero", 9), 0u);
  EXPECT_TRUE(flags.ok()) << flags.error();
}

TEST(FlagsTest, FirstErrorIsKept) {
  Argv args({"--a=bad", "--b=alsobad"});
  const Flags flags(args.argc(), args.argv());
  flags.GetUint("a", 0);
  const std::string first = flags.error();
  flags.GetUint("b", 0);
  EXPECT_EQ(flags.error(), first);
}

}  // namespace
}  // namespace hdidx::tools
