#include "workload/query_workload.h"

#include <cmath>

#include "common/random.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/knn.h"
#include "test_util.h"

namespace hdidx::workload {
namespace {

TEST(QueryWorkloadTest, QueriesComeFromData) {
  const auto data = hdidx::testing::SmallClustered(500, 4, 1);
  common::Rng rng(2);
  const QueryWorkload w = QueryWorkload::Create(data, 20, 3, &rng);
  ASSERT_EQ(w.num_queries(), 20u);
  EXPECT_EQ(w.k(), 3u);
  for (size_t i = 0; i < w.num_queries(); ++i) {
    const size_t row = w.query_rows()[i];
    EXPECT_DOUBLE_EQ(
        geometry::SquaredL2(w.queries().row(i), data.row(row)), 0.0);
  }
}

TEST(QueryWorkloadTest, RadiiAreExactKnnDistances) {
  const auto data = hdidx::testing::SmallClustered(500, 4, 3);
  common::Rng rng(4);
  const QueryWorkload w = QueryWorkload::Create(data, 10, 5, &rng);
  for (size_t i = 0; i < w.num_queries(); ++i) {
    const double expected = index::ExactKthDistanceExcludingRow(
        data, w.queries().row(i), 5, w.query_rows()[i]);
    EXPECT_DOUBLE_EQ(w.radius(i), expected);
    EXPECT_GT(w.radius(i), 0.0);
  }
}

TEST(QueryWorkloadTest, DuplicatePointsCountAsNeighbors) {
  // Regression for the duplicate-radius unification: only the query's own
  // row is excluded from its neighbor set, so a duplicate of the query point
  // is a valid neighbor at distance 0 — a 1-NN radius of exactly 0 on a
  // fully duplicated dataset, from both workload constructors.
  data::Dataset base = hdidx::testing::SmallClustered(100, 3, 17);
  data::Dataset data(3);
  for (size_t i = 0; i < base.size(); ++i) {
    const auto row = base.row(i);
    data.Append(std::vector<float>(row.begin(), row.end()));
    data.Append(std::vector<float>(row.begin(), row.end()));
  }

  common::Rng rng_a(18);
  const QueryWorkload created = QueryWorkload::Create(data, 20, 1, &rng_a);
  for (size_t i = 0; i < created.num_queries(); ++i) {
    EXPECT_EQ(created.radius(i), 0.0) << "query " << i;
  }

  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  common::Rng rng_b(18);
  const ScanResult scan = ScanForWorkloadAndSample(&file, 20, 1, 50, &rng_b);
  ASSERT_EQ(scan.workload.num_queries(), created.num_queries());
  for (size_t i = 0; i < scan.workload.num_queries(); ++i) {
    EXPECT_EQ(scan.workload.radius(i), 0.0) << "query " << i;
  }
}

TEST(QueryWorkloadTest, CreateAndScanAgreeOnDuplicatedData) {
  // Both construction paths must produce identical radii for the same query
  // rows even when the dataset contains exact duplicates (k > 1 so the
  // neighbor set mixes zero- and nonzero-distance points).
  data::Dataset base = hdidx::testing::SmallClustered(150, 4, 19);
  data::Dataset data(4);
  for (size_t i = 0; i < base.size(); ++i) {
    const auto row = base.row(i);
    data.Append(std::vector<float>(row.begin(), row.end()));
    if (i % 3 == 0) data.Append(std::vector<float>(row.begin(), row.end()));
  }

  common::Rng rng_a(20);
  const QueryWorkload created = QueryWorkload::Create(data, 15, 4, &rng_a);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  common::Rng rng_b(20);
  const ScanResult scan = ScanForWorkloadAndSample(&file, 15, 4, 60, &rng_b);
  // Identical rng seeds draw identical query rows in both paths.
  ASSERT_EQ(scan.workload.query_rows(), created.query_rows());
  for (size_t i = 0; i < created.num_queries(); ++i) {
    EXPECT_EQ(scan.workload.radius(i), created.radius(i)) << "query " << i;
  }
}

TEST(QueryWorkloadTest, LargerKLargerRadius) {
  const auto data = hdidx::testing::SmallClustered(500, 4, 5);
  common::Rng rng_a(6), rng_b(6);
  const QueryWorkload w1 = QueryWorkload::Create(data, 15, 1, &rng_a);
  const QueryWorkload w2 = QueryWorkload::Create(data, 15, 10, &rng_b);
  for (size_t i = 0; i < 15; ++i) {
    EXPECT_LE(w1.radius(i), w2.radius(i));
  }
}

TEST(ScanForWorkloadTest, MatchesUnaccountedCreate) {
  // The accounted scan must produce the same radii the direct computation
  // does for the same query set.
  const auto data = hdidx::testing::SmallClustered(800, 5, 7);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  common::Rng rng(8);
  const ScanResult scan = ScanForWorkloadAndSample(&file, 12, 4, 100, &rng);
  ASSERT_EQ(scan.workload.num_queries(), 12u);
  for (size_t i = 0; i < 12; ++i) {
    const double expected = index::ExactKthDistance(
        data, scan.workload.queries().row(i), 4, 0.0);
    EXPECT_NEAR(scan.workload.radius(i), expected, 1e-9);
  }
}

TEST(ScanForWorkloadTest, SampleSizeAndMembership) {
  const auto data = hdidx::testing::SmallClustered(600, 3, 9);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  common::Rng rng(10);
  const ScanResult scan = ScanForWorkloadAndSample(&file, 5, 2, 50, &rng);
  ASSERT_EQ(scan.sample.size(), 50u);
  EXPECT_NEAR(scan.sampling_ratio, 50.0 / 600.0, 1e-12);
  // Every sample point exists in the dataset.
  for (size_t i = 0; i < scan.sample.size(); ++i) {
    bool found = false;
    for (size_t j = 0; j < data.size() && !found; ++j) {
      found = geometry::SquaredL2(scan.sample.row(i), data.row(j)) == 0.0;
    }
    EXPECT_TRUE(found) << "sample row " << i;
  }
}

TEST(ScanForWorkloadTest, SampleLargerThanDataTruncates) {
  const auto data = hdidx::testing::SmallClustered(40, 3, 11);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  common::Rng rng(12);
  const ScanResult scan = ScanForWorkloadAndSample(&file, 3, 2, 1000, &rng);
  EXPECT_EQ(scan.sample.size(), 40u);
  EXPECT_DOUBLE_EQ(scan.sampling_ratio, 1.0);
}

TEST(ScanForWorkloadTest, IoChargesMatchEquations) {
  // Equation 2 + cost_ScanDataset: q random reads then one sequential scan.
  const auto data = hdidx::testing::SmallClustered(4096, 2, 13);
  io::PagedFile file = io::PagedFile::FromDataset(data, io::DiskModel{});
  common::Rng rng(14);
  const size_t q = 7;
  ScanForWorkloadAndSample(&file, q, 2, 100, &rng);
  // q single-point reads cost at most q seeks + q transfers (adjacent hits
  // can save a seek), plus the scan: 1 seek + ceil(N/B) transfers.
  const size_t scan_pages = file.num_pages();
  EXPECT_LE(file.stats().page_seeks, q + 1);
  EXPECT_GE(file.stats().page_seeks, 2u);
  EXPECT_EQ(file.stats().page_transfers, q + scan_pages);
}

TEST(QueryWorkloadTest, DensityBias) {
  // Two clusters, 90/10 population: queries should land ~90/10.
  common::Rng gen(15);
  data::Dataset data(2);
  for (int i = 0; i < 900; ++i) {
    data.Append(std::vector<float>{
        static_cast<float>(gen.NextGaussian()) * 0.01f, 0.0f});
  }
  for (int i = 0; i < 100; ++i) {
    data.Append(std::vector<float>{
        10.0f + static_cast<float>(gen.NextGaussian()) * 0.01f, 0.0f});
  }
  common::Rng rng(16);
  const QueryWorkload w = QueryWorkload::Create(data, 200, 2, &rng);
  size_t near_origin = 0;
  for (size_t i = 0; i < w.num_queries(); ++i) {
    if (w.queries().row(i)[0] < 5.0f) ++near_origin;
  }
  EXPECT_NEAR(static_cast<double>(near_origin) / 200.0, 0.9, 0.07);
}

}  // namespace
}  // namespace hdidx::workload
