#include "common/check.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#include "geometry/bounding_box.h"
#include "gtest/gtest.h"

namespace hdidx::common {
namespace {

TEST(CheckTest, PassingCheckHasNoEffect) {
  int evaluations = 0;
  auto pass = [&evaluations] {
    ++evaluations;
    return true;
  };
  HDIDX_CHECK(pass());
  EXPECT_EQ(evaluations, 1);
}

TEST(CheckTest, MessageIsNotEvaluatedOnSuccess) {
  int message_evaluations = 0;
  auto describe = [&message_evaluations] {
    ++message_evaluations;
    return std::string("expensive");
  };
  HDIDX_CHECK(1 + 1 == 2) << describe();
  EXPECT_EQ(message_evaluations, 0);
}

TEST(CheckDeathTest, FailureReportsFileLineAndCondition) {
  EXPECT_DEATH(HDIDX_CHECK(1 + 1 == 3),
               R"(check_test\.cc:[0-9]+: HDIDX_CHECK\(1 \+ 1 == 3\) failed)");
}

TEST(CheckDeathTest, StreamedContextLandsInTheMessage) {
  const int answer = 42;
  EXPECT_DEATH(HDIDX_CHECK(answer == 0) << "answer was " << answer,
               "failed: answer was 42");
}

TEST(CheckDeathTest, CheckOpPrintsBothOperands) {
  EXPECT_DEATH(HDIDX_CHECK_OP(==, 2 + 2, 5), R"(failed \[4 vs 5\])");
}

TEST(CheckDeathTest, CheckOpStreamsExtraContext) {
  const size_t size = 7;
  const size_t cap = 3;
  EXPECT_DEATH(HDIDX_CHECK_OP(<=, size, cap) << "cache overflow",
               R"(\[7 vs 3\]: cache overflow)");
}

TEST(CheckTest, CheckOpEvaluatesOperandsExactlyOnce) {
  int lhs_evaluations = 0;
  int rhs_evaluations = 0;
  auto lhs = [&lhs_evaluations] {
    ++lhs_evaluations;
    return 5;
  };
  auto rhs = [&rhs_evaluations] {
    ++rhs_evaluations;
    return 5;
  };
  HDIDX_CHECK_OP(==, lhs(), rhs());
  EXPECT_EQ(lhs_evaluations, 1);
  EXPECT_EQ(rhs_evaluations, 1);
}

TEST(CheckTest, DcheckFollowsNdebug) {
  int evaluations = 0;
  auto condition = [&evaluations] {
    ++evaluations;
    return true;
  };
  HDIDX_DCHECK(condition());
#ifdef NDEBUG
  // The default RelWithDebInfo build: DCHECK must compile out entirely.
  EXPECT_EQ(evaluations, 0);
#else
  EXPECT_EQ(evaluations, 1);
#endif
}

void MarkerHandler(const std::string& message) {
  std::fprintf(stderr, "custom-marker-handler: %s\n", message.c_str());
  std::fflush(stderr);
  std::abort();
}

TEST(CheckDeathTest, InstalledHandlerReceivesTheFormattedMessage) {
  EXPECT_DEATH(
      {
        SetCheckFailureHandler(&MarkerHandler);
        HDIDX_CHECK(false) << "routed";
      },
      "custom-marker-handler: .*HDIDX_CHECK\\(false\\) failed: routed");
}

TEST(CheckTest, SetHandlerReturnsPreviousAndNullRestoresDefault) {
  const CheckFailureHandler previous = SetCheckFailureHandler(&MarkerHandler);
  EXPECT_EQ(SetCheckFailureHandler(nullptr), &MarkerHandler);
  // Restoring the original leaves the process in its starting state.
  SetCheckFailureHandler(previous);
}

// The satellite regression for the NDEBUG hole: the seed tree compiled every
// assert() out of RelWithDebInfo builds, so a malformed BoundingBox went
// undetected in release mode. HDIDX_CHECK must fire in every build type.
TEST(CheckDeathTest, ReleaseModeInvariantsFireOnMalformedBoundingBox) {
  EXPECT_DEATH(
      geometry::BoundingBox({1.0f, 0.0f}, {0.0f, 1.0f}),
      "inverted box in dimension 0");
}

TEST(CheckDeathTest, ReleaseModeInvariantsFireOnDimensionMismatch) {
  EXPECT_DEATH(geometry::BoundingBox({1.0f, 2.0f}, {3.0f}),
               R"(HDIDX_CHECK_OP\(lo_\.size\(\) == hi_\.size\(\)\) failed)");
}

}  // namespace
}  // namespace hdidx::common
