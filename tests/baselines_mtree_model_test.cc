#include "baselines/mtree_model.h"

#include <cmath>

#include "common/random.h"
#include "common/stats.h"
#include "core/sstree_predict.h"
#include "data/generators.h"
#include "geometry/distance.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/sstree.h"
#include "test_util.h"
#include "workload/query_workload.h"

namespace hdidx::baselines {
namespace {

TEST(DistanceDistributionTest, CdfIsMonotoneAndNormalized) {
  const auto data = hdidx::testing::SmallClustered(2000, 4, 1);
  common::Rng rng(2);
  const DistanceDistribution dist(data, 5000, &rng);
  EXPECT_DOUBLE_EQ(dist.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(dist.Cdf(1e9), 1.0);
  double prev = 0.0;
  for (double x = 0.0; x <= 2.0; x += 0.1) {
    const double c = dist.Cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
}

TEST(DistanceDistributionTest, QuantileInvertsCdf) {
  const auto data = hdidx::testing::SmallClustered(2000, 4, 3);
  common::Rng rng(4);
  const DistanceDistribution dist(data, 5000, &rng);
  for (double q : {0.1, 0.5, 0.9}) {
    const double x = dist.Quantile(q);
    EXPECT_GE(dist.Cdf(x), q - 1e-9);
  }
  EXPECT_DOUBLE_EQ(dist.Quantile(0.0), 0.0);
}

TEST(DistanceDistributionTest, MatchesAnalyticOnUnitSquare) {
  // Mean pairwise distance of uniform points in the unit square is
  // ~0.5214; the median is ~0.51.
  common::Rng gen(5);
  const auto data = data::GenerateUniform(5000, 2, &gen);
  common::Rng rng(6);
  const DistanceDistribution dist(data, 20000, &rng);
  EXPECT_NEAR(dist.Quantile(0.5), 0.51, 0.03);
}

TEST(DistanceDistributionTest, ExpectedKnnRadiusTracksExact) {
  const auto data = hdidx::testing::SmallClustered(3000, 6, 7);
  common::Rng rng(8);
  const DistanceDistribution dist(data, 30000, &rng);
  // Average exact 10-NN radius over a few density-biased queries.
  common::Rng wrng(9);
  const auto workload = workload::QueryWorkload::Create(data, 30, 10, &wrng);
  const double exact_avg = common::Mean(workload.radii());
  const double model = dist.ExpectedKnnRadius(10, data.size());
  // The global distribution smooths over local density; same order of
  // magnitude is what the model can promise on clustered data.
  EXPECT_GT(model, exact_avg * 0.2);
  EXPECT_LT(model, exact_avg * 5.0);
}

TEST(MTreeModelTest, SaturatesForHugeRadius) {
  const auto data = hdidx::testing::SmallClustered(4000, 6, 10);
  const index::TreeTopology topo(data.size(), 40, 8);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, options);
  const auto leaves = index::ComputeLeafSpheres(tree, data);
  common::Rng rng(11);
  const DistanceDistribution dist(data, 10000, &rng);
  EXPECT_NEAR(PredictSphereAccesses(dist, leaves, 1e9),
              static_cast<double>(leaves.size()), 1e-9);
  EXPECT_GE(PredictSphereAccesses(dist, leaves, 0.0), 0.0);
}

TEST(MTreeModelTest, PredictionWithinFactorOfMeasurement) {
  // The locally parametric model with exact workload radii should land in
  // the right ballpark on sphere pages (its home turf), though without the
  // per-query fidelity of the sampling approach.
  common::Rng gen(12);
  data::ClusteredConfig config;
  config.num_points = 8000;
  config.dim = 6;
  config.num_clusters = 6;
  config.noise_fraction = 0.0;
  const auto data = data::GenerateClustered(config, &gen);
  const index::TreeTopology topo(data.size(), 40, 8);
  index::BulkLoadOptions options;
  options.topology = &topo;
  const auto tree = index::BulkLoadInMemory(data, options);
  const auto leaves = index::ComputeLeafSpheres(tree, data);

  common::Rng wrng(13);
  const auto workload = workload::QueryWorkload::Create(data, 30, 8, &wrng);
  const double measured = common::Mean(
      hdidx::core::MeasureSsTreeLeafAccesses(leaves, workload));

  common::Rng drng(14);
  const DistanceDistribution dist(data, 30000, &drng);
  const double predicted =
      PredictAverageSphereAccesses(dist, leaves, workload.radii());
  EXPECT_GT(predicted, measured * 0.3);
  EXPECT_LT(predicted, measured * 4.0);
}

}  // namespace
}  // namespace hdidx::baselines
