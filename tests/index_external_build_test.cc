#include "index/external_build.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "common/parallel.h"
#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

class ExternalBuildTest : public ::testing::Test {
 protected:
  static constexpr size_t kN = 5000;
  static constexpr size_t kDim = 8;

  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(kN, kDim, 21);
    topo_ = std::make_unique<TreeTopology>(kN, 25, 6);
  }

  ExternalBuildResult Build(size_t memory_points) {
    file_ = std::make_unique<io::PagedFile>(
        io::PagedFile::FromDataset(data_, io::DiskModel{}));
    ExternalBuildOptions options;
    options.topology = topo_.get();
    options.memory_points = memory_points;
    return BuildOnDisk(file_.get(), options);
  }

  data::Dataset data_{1};
  std::unique_ptr<TreeTopology> topo_;
  std::unique_ptr<io::PagedFile> file_;
};

TEST_F(ExternalBuildTest, TreeIsValidOverReorderedFile) {
  const ExternalBuildResult result = Build(600);
  // The file was physically reordered into leaf order; validate against it.
  const data::Dataset reordered(
      std::vector<float>(file_->raw().begin(), file_->raw().end()), kDim);
  hdidx::testing::ExpectValidTree(result.tree, reordered, 1);
  EXPECT_TRUE(result.tree.order().empty());  // identity order
}

TEST_F(ExternalBuildTest, FilePermutationOfOriginal) {
  const ExternalBuildResult result = Build(600);
  // Same multiset of points: compare sorted coordinate sums.
  auto digest = [&](std::span<const float> buf) {
    std::vector<double> sums(kN, 0.0);
    for (size_t i = 0; i < kN; ++i) {
      for (size_t k = 0; k < kDim; ++k) sums[i] += buf[i * kDim + k];
    }
    std::sort(sums.begin(), sums.end());
    return sums;
  };
  EXPECT_EQ(digest(file_->raw()), digest(data_.data()));
}

TEST_F(ExternalBuildTest, StructureMatchesInMemoryBuild) {
  const ExternalBuildResult external = Build(600);
  BulkLoadOptions options;
  options.topology = topo_.get();
  const RTree in_memory = BulkLoadInMemory(data_, options);
  EXPECT_EQ(external.tree.num_nodes(), in_memory.num_nodes());
  EXPECT_EQ(external.tree.num_leaves(), in_memory.num_leaves());
  EXPECT_EQ(external.tree.root_level(), in_memory.root_level());
  // Total leaf volume agrees closely (contents may differ on ties).
  EXPECT_NEAR(external.tree.TotalLeafVolume(), in_memory.TotalLeafVolume(),
              0.05 * std::max(1e-12, in_memory.TotalLeafVolume()));
}

TEST_F(ExternalBuildTest, ChargesSubstantialIo) {
  const ExternalBuildResult result = Build(600);
  const size_t data_pages = file_->num_pages();
  // Building externally costs multiple passes over the data.
  EXPECT_GT(result.io.page_transfers, 2 * data_pages);
  EXPECT_GT(result.io.page_seeks, 10u);
}

TEST_F(ExternalBuildTest, MoreMemoryMeansLessIo) {
  const ExternalBuildResult small = Build(300);
  const ExternalBuildResult large = Build(3000);
  EXPECT_LT(large.io.page_transfers, small.io.page_transfers);
}

TEST_F(ExternalBuildTest, WholeDatasetInMemoryIsTwoPasses) {
  const ExternalBuildResult result = Build(kN);
  const size_t data_pages = io::DiskModel{}.PagesForPoints(kN, kDim);
  // One read plus one write of the whole file, plus directory pages.
  EXPECT_LE(result.io.page_transfers, 2 * data_pages + 200);
  EXPECT_LE(result.io.page_seeks, 5u);
}

TEST_F(ExternalBuildTest, DuplicateHeavyDimensionStillTerminates) {
  // All points share the value 0.5 in every dimension except one: external
  // quickselect must fall back to midrange pivots and terminate.
  common::Rng rng(3);
  data::Dataset degenerate(4);
  for (size_t i = 0; i < 2000; ++i) {
    degenerate.Append(std::vector<float>{
        static_cast<float>(rng.NextDouble()), 0.5f, 0.5f, 0.5f});
  }
  io::PagedFile file = io::PagedFile::FromDataset(degenerate, io::DiskModel{});
  TreeTopology topo(2000, 20, 5);
  ExternalBuildOptions options;
  options.topology = &topo;
  options.memory_points = 100;
  const ExternalBuildResult result = BuildOnDisk(&file, options);
  EXPECT_EQ(result.tree.num_leaves(), topo.NumLeaves());
}

TEST_F(ExternalBuildTest, AllPointsIdenticalTerminates) {
  data::Dataset constant(3);
  for (size_t i = 0; i < 500; ++i) {
    constant.Append(std::vector<float>{1.f, 2.f, 3.f});
  }
  io::PagedFile file = io::PagedFile::FromDataset(constant, io::DiskModel{});
  TreeTopology topo(500, 10, 4);
  ExternalBuildOptions options;
  options.topology = &topo;
  options.memory_points = 50;
  const ExternalBuildResult result = BuildOnDisk(&file, options);
  EXPECT_EQ(result.tree.num_leaves(), topo.NumLeaves());
  // Every leaf is the same degenerate point-box.
  for (uint32_t id : result.tree.leaf_ids()) {
    EXPECT_EQ(result.tree.node(id).box.Volume(), 0.0);
  }
}

// ---------------------------------------------------------------------------
// Adaptive single-pass pipeline (SplitStrategy::kAdaptiveSample): the
// sample pass plans the whole split tree, one streaming pass classifies,
// and the finish pass assembles — so data passes stay flat as N/M grows
// where external quickselect pays another pass per tree level.
// ---------------------------------------------------------------------------

class ExternalAdaptiveBuildTest : public ExternalBuildTest {
 protected:
  ExternalBuildResult BuildAdaptive(size_t memory_points, size_t window = 4,
                                    common::ExecutionContext* ctx = nullptr) {
    file_ = std::make_unique<io::PagedFile>(
        io::PagedFile::FromDataset(data_, io::DiskModel{}));
    ExternalBuildOptions options;
    options.topology = topo_.get();
    options.memory_points = memory_points;
    options.split_strategy = SplitStrategy::kAdaptiveSample;
    options.adaptive.read_ahead_window = window;
    options.exec = ctx;
    return BuildOnDisk(file_.get(), options);
  }
};

TEST_F(ExternalAdaptiveBuildTest, TreeIsValidOverReorderedFile) {
  const ExternalBuildResult result = BuildAdaptive(600);
  const data::Dataset reordered(
      std::vector<float>(file_->raw().begin(), file_->raw().end()), kDim);
  hdidx::testing::ExpectValidTree(result.tree, reordered, 1);
  EXPECT_TRUE(result.tree.order().empty());
  EXPECT_EQ(result.tree.num_leaves(), topo_->NumLeaves());
}

TEST_F(ExternalAdaptiveBuildTest, FilePermutationOfOriginal) {
  const ExternalBuildResult result = BuildAdaptive(600);
  (void)result;
  auto digest = [&](std::span<const float> buf) {
    std::vector<double> sums(kN, 0.0);
    for (size_t i = 0; i < kN; ++i) {
      for (size_t k = 0; k < kDim; ++k) sums[i] += buf[i * kDim + k];
    }
    std::sort(sums.begin(), sums.end());
    return sums;
  };
  EXPECT_EQ(digest(file_->raw()), digest(data_.data()));
}

TEST_F(ExternalAdaptiveBuildTest, PhasesPartitionTheTotalAndOverlapSane) {
  const ExternalBuildResult result = BuildAdaptive(600);
  // BuildOnDisk already ran AuditExternalBuildIo (it CHECKs); re-assert
  // the partition here so the test documents the contract.
  EXPECT_TRUE(result.phases.Total() == result.io);
  EXPECT_GT(result.phases.sample.page_transfers, 0u);
  EXPECT_GT(result.phases.partition.page_transfers, 0u);
  EXPECT_GT(result.phases.finish.page_transfers, 0u);
  EXPECT_GE(result.overlap_ratio, 0.0);
  EXPECT_LE(result.overlap_ratio, 1.0);
}

TEST_F(ExternalAdaptiveBuildTest, HalvesDataPassesVersusQuickselect) {
  // ~8x the in-memory budget: quickselect pays a pass per split level,
  // the adaptive pipeline a constant number. The issue's bar: at least
  // 2x fewer passes over the data.
  const size_t memory_points = kN / 8;
  const ExternalBuildResult vamsplit = Build(memory_points);
  const ExternalBuildResult adaptive = BuildAdaptive(memory_points);
  const size_t data_pages = io::DiskModel{}.PagesForPoints(kN, kDim);
  const double vam_passes =
      static_cast<double>(vamsplit.io.page_transfers) /
      static_cast<double>(data_pages);
  const double adaptive_passes =
      static_cast<double>(adaptive.io.page_transfers) /
      static_cast<double>(data_pages);
  EXPECT_LE(adaptive_passes * 2.0, vam_passes)
      << "adaptive " << adaptive_passes << " passes vs vamsplit "
      << vam_passes;
  // And the trees agree on shape.
  EXPECT_EQ(adaptive.tree.num_leaves(), vamsplit.tree.num_leaves());
}

TEST_F(ExternalAdaptiveBuildTest, DeterministicAcrossWindowsAndThreads) {
  // The determinism contract of io::ReadAheadSource, end to end: layout
  // digest AND every I/O counter are bit-identical whatever the prefetch
  // window or pool size — prefetch only moves bytes, never accounting.
  const ExternalBuildResult reference = BuildAdaptive(600, /*window=*/0);
  const uint64_t golden = TreeLayoutDigest(reference.tree);
  for (const size_t window : {1u, 4u, 8u}) {
    for (const size_t threads : {1u, 2u, 8u}) {
      common::ThreadPool pool(threads);
      common::ExecutionContext ctx(&pool);
      const ExternalBuildResult run = BuildAdaptive(600, window, &ctx);
      EXPECT_EQ(TreeLayoutDigest(run.tree), golden)
          << "window " << window << ", " << threads << " threads";
      EXPECT_TRUE(run.io == reference.io)
          << "window " << window << ", " << threads
          << " threads: " << run.io.page_seeks << "/"
          << run.io.page_transfers << " vs " << reference.io.page_seeks
          << "/" << reference.io.page_transfers;
      EXPECT_TRUE(run.phases.sample == reference.phases.sample);
      EXPECT_TRUE(run.phases.partition == reference.phases.partition);
      EXPECT_TRUE(run.phases.finish == reference.phases.finish);
      EXPECT_TRUE(run.phases.directory == reference.phases.directory);
    }
  }
}

TEST_F(ExternalAdaptiveBuildTest, DegenerateDatasetsTerminate) {
  for (const bool identical : {false, true}) {
    data::Dataset degenerate(4);
    common::Rng rng(3);
    for (size_t i = 0; i < 2000; ++i) {
      degenerate.Append(std::vector<float>{
          identical ? 0.5f : static_cast<float>(rng.NextDouble()), 0.5f,
          0.5f, 0.5f});
    }
    io::PagedFile file =
        io::PagedFile::FromDataset(degenerate, io::DiskModel{});
    TreeTopology topo(2000, 20, 5);
    ExternalBuildOptions options;
    options.topology = &topo;
    options.memory_points = 100;
    options.split_strategy = SplitStrategy::kAdaptiveSample;
    const ExternalBuildResult result = BuildOnDisk(&file, options);
    EXPECT_EQ(result.tree.num_leaves(), topo.NumLeaves());
  }
}

TEST_F(ExternalAdaptiveBuildTest, TinyMemoryStillBuilds) {
  // Memory far below a single directory subtree: oversized bucket groups
  // take the overflow-scratch path.
  const ExternalBuildResult result = BuildAdaptive(120);
  const data::Dataset reordered(
      std::vector<float>(file_->raw().begin(), file_->raw().end()), kDim);
  hdidx::testing::ExpectValidTree(result.tree, reordered, 1);
}

using ExternalBuildDeathTest = ExternalBuildTest;

TEST_F(ExternalBuildDeathTest, AuditCatchesPhaseTallyMismatch) {
  // The accounting contract: phase tallies must sum exactly to the
  // IoStats delta the PagedFile observed. A build that loses (or
  // invents) a page CHECK-fails instead of shipping a wrong simulation.
  const ExternalBuildResult result = Build(600);
  ExternalBuildIo corrupted = result.phases;
  corrupted.partition.page_transfers += 1;
  EXPECT_DEATH(AuditExternalBuildIo(corrupted, result.io),
               "phase tallies drift from observed I/O");
}

}  // namespace
}  // namespace hdidx::index
