#include "index/external_build.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

class ExternalBuildTest : public ::testing::Test {
 protected:
  static constexpr size_t kN = 5000;
  static constexpr size_t kDim = 8;

  void SetUp() override {
    data_ = hdidx::testing::SmallClustered(kN, kDim, 21);
    topo_ = std::make_unique<TreeTopology>(kN, 25, 6);
  }

  ExternalBuildResult Build(size_t memory_points) {
    file_ = std::make_unique<io::PagedFile>(
        io::PagedFile::FromDataset(data_, io::DiskModel{}));
    ExternalBuildOptions options;
    options.topology = topo_.get();
    options.memory_points = memory_points;
    return BuildOnDisk(file_.get(), options);
  }

  data::Dataset data_{1};
  std::unique_ptr<TreeTopology> topo_;
  std::unique_ptr<io::PagedFile> file_;
};

TEST_F(ExternalBuildTest, TreeIsValidOverReorderedFile) {
  const ExternalBuildResult result = Build(600);
  // The file was physically reordered into leaf order; validate against it.
  const data::Dataset reordered(
      std::vector<float>(file_->raw().begin(), file_->raw().end()), kDim);
  hdidx::testing::ExpectValidTree(result.tree, reordered, 1);
  EXPECT_TRUE(result.tree.order().empty());  // identity order
}

TEST_F(ExternalBuildTest, FilePermutationOfOriginal) {
  const ExternalBuildResult result = Build(600);
  // Same multiset of points: compare sorted coordinate sums.
  auto digest = [&](std::span<const float> buf) {
    std::vector<double> sums(kN, 0.0);
    for (size_t i = 0; i < kN; ++i) {
      for (size_t k = 0; k < kDim; ++k) sums[i] += buf[i * kDim + k];
    }
    std::sort(sums.begin(), sums.end());
    return sums;
  };
  EXPECT_EQ(digest(file_->raw()), digest(data_.data()));
}

TEST_F(ExternalBuildTest, StructureMatchesInMemoryBuild) {
  const ExternalBuildResult external = Build(600);
  BulkLoadOptions options;
  options.topology = topo_.get();
  const RTree in_memory = BulkLoadInMemory(data_, options);
  EXPECT_EQ(external.tree.num_nodes(), in_memory.num_nodes());
  EXPECT_EQ(external.tree.num_leaves(), in_memory.num_leaves());
  EXPECT_EQ(external.tree.root_level(), in_memory.root_level());
  // Total leaf volume agrees closely (contents may differ on ties).
  EXPECT_NEAR(external.tree.TotalLeafVolume(), in_memory.TotalLeafVolume(),
              0.05 * std::max(1e-12, in_memory.TotalLeafVolume()));
}

TEST_F(ExternalBuildTest, ChargesSubstantialIo) {
  const ExternalBuildResult result = Build(600);
  const size_t data_pages = file_->num_pages();
  // Building externally costs multiple passes over the data.
  EXPECT_GT(result.io.page_transfers, 2 * data_pages);
  EXPECT_GT(result.io.page_seeks, 10u);
}

TEST_F(ExternalBuildTest, MoreMemoryMeansLessIo) {
  const ExternalBuildResult small = Build(300);
  const ExternalBuildResult large = Build(3000);
  EXPECT_LT(large.io.page_transfers, small.io.page_transfers);
}

TEST_F(ExternalBuildTest, WholeDatasetInMemoryIsTwoPasses) {
  const ExternalBuildResult result = Build(kN);
  const size_t data_pages = io::DiskModel{}.PagesForPoints(kN, kDim);
  // One read plus one write of the whole file, plus directory pages.
  EXPECT_LE(result.io.page_transfers, 2 * data_pages + 200);
  EXPECT_LE(result.io.page_seeks, 5u);
}

TEST_F(ExternalBuildTest, DuplicateHeavyDimensionStillTerminates) {
  // All points share the value 0.5 in every dimension except one: external
  // quickselect must fall back to midrange pivots and terminate.
  common::Rng rng(3);
  data::Dataset degenerate(4);
  for (size_t i = 0; i < 2000; ++i) {
    degenerate.Append(std::vector<float>{
        static_cast<float>(rng.NextDouble()), 0.5f, 0.5f, 0.5f});
  }
  io::PagedFile file = io::PagedFile::FromDataset(degenerate, io::DiskModel{});
  TreeTopology topo(2000, 20, 5);
  ExternalBuildOptions options;
  options.topology = &topo;
  options.memory_points = 100;
  const ExternalBuildResult result = BuildOnDisk(&file, options);
  EXPECT_EQ(result.tree.num_leaves(), topo.NumLeaves());
}

TEST_F(ExternalBuildTest, AllPointsIdenticalTerminates) {
  data::Dataset constant(3);
  for (size_t i = 0; i < 500; ++i) {
    constant.Append(std::vector<float>{1.f, 2.f, 3.f});
  }
  io::PagedFile file = io::PagedFile::FromDataset(constant, io::DiskModel{});
  TreeTopology topo(500, 10, 4);
  ExternalBuildOptions options;
  options.topology = &topo;
  options.memory_points = 50;
  const ExternalBuildResult result = BuildOnDisk(&file, options);
  EXPECT_EQ(result.tree.num_leaves(), topo.NumLeaves());
  // Every leaf is the same degenerate point-box.
  for (uint32_t id : result.tree.leaf_ids()) {
    EXPECT_EQ(result.tree.node(id).box.Volume(), 0.0);
  }
}

}  // namespace
}  // namespace hdidx::index
