#include "core/cutoff.h"

#include <cmath>
#include <memory>

#include "common/random.h"
#include "common/stats.h"
#include "core/hupper.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/knn.h"

namespace hdidx::core {
namespace {

TEST(SynthesizeUniformLeavesTest, LeafCountMatchesBulkLoader) {
  // Splitting a box holding cap(3) points must produce exactly the number
  // of data pages the topology prescribes for that subtree.
  const index::TreeTopology topo(100000, 10, 4);
  const geometry::BoundingBox box({0, 0}, {1, 1});
  std::vector<geometry::BoundingBox> leaves;
  SynthesizeUniformLeaves(box, static_cast<double>(topo.SubtreeCapacity(3)),
                          3, topo, &leaves);
  // cap(3) = 160 points -> 16 data pages of 10.
  EXPECT_EQ(leaves.size(), 16u);
}

TEST(SynthesizeUniformLeavesTest, LeavesStayInsideInflatedRegion) {
  const index::TreeTopology topo(100000, 10, 4);
  geometry::BoundingBox box({0, 0, 0}, {2, 1, 1});
  std::vector<geometry::BoundingBox> leaves;
  SynthesizeUniformLeaves(box, 160.0, 3, topo, &leaves);
  geometry::BoundingBox region = box;
  region.InflateAboutCenter((160.0 + 1) / (160.0 - 1) + 1e-3);
  for (const auto& leaf : leaves) {
    EXPECT_TRUE(geometry::BoundingBox::Union(region, leaf) == region)
        << "leaf escapes the parent region";
  }
}

TEST(SynthesizeUniformLeavesTest, SplitsLongestDimensionFirst) {
  // An elongated box must be split along its long axis: the two halves'
  // extents along dim 0 are about half the parent's.
  const index::TreeTopology topo(40, 10, 2);  // height 3, fanout 2
  const geometry::BoundingBox box({0, 0}, {10, 1});
  std::vector<geometry::BoundingBox> leaves;
  SynthesizeUniformLeaves(box, 40.0, topo.height(), topo, &leaves);
  ASSERT_EQ(leaves.size(), 4u);
  for (const auto& leaf : leaves) {
    EXPECT_LT(leaf.Extent(0), 3.5f);  // 10/4 plus shrink slack
  }
}

TEST(SynthesizeUniformLeavesTest, LeafVolumeSumBelowRegionVolume) {
  const index::TreeTopology topo(100000, 10, 4);
  const geometry::BoundingBox box({0, 0}, {1, 1});
  std::vector<geometry::BoundingBox> leaves;
  SynthesizeUniformLeaves(box, 640.0, 4, topo, &leaves);
  double total = 0.0;
  for (const auto& leaf : leaves) total += leaf.Volume();
  // MBR shrinkage makes the tiling strictly smaller than the region.
  EXPECT_LT(total, box.Volume() * 1.05);
  EXPECT_GT(total, 0.0);
}

TEST(SynthesizeUniformLeavesTest, EmptyOrDegenerateInputsProduceNothing) {
  const index::TreeTopology topo(1000, 10, 4);
  std::vector<geometry::BoundingBox> leaves;
  SynthesizeUniformLeaves(geometry::BoundingBox(2), 100.0, 3, topo, &leaves);
  EXPECT_TRUE(leaves.empty());
  SynthesizeUniformLeaves(geometry::BoundingBox({0, 0}, {1, 1}), 0.0, 3,
                          topo, &leaves);
  EXPECT_TRUE(leaves.empty());
}

class CutoffPredictorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    common::Rng gen(1);
    data_ = data::GenerateUniform(30000, 8, &gen);
    topo_ = std::make_unique<index::TreeTopology>(data_.size(), 60, 8);
    ASSERT_GE(topo_->height(), 3u);
    common::Rng wrng(2);
    workload_ = std::make_unique<workload::QueryWorkload>(
        workload::QueryWorkload::Create(data_, 40, 10, &wrng));

    index::BulkLoadOptions options;
    options.topology = topo_.get();
    const index::RTree tree = index::BulkLoadInMemory(data_, options);
    measured_ = common::Mean(index::CountSphereLeafAccesses(
        tree, workload_->queries(), workload_->radii(), nullptr));
  }

  data::Dataset data_{1};
  std::unique_ptr<index::TreeTopology> topo_;
  std::unique_ptr<workload::QueryWorkload> workload_;
  double measured_ = 0.0;
};

TEST_F(CutoffPredictorTest, AccurateOnUniformData) {
  // Section 5.2: on uniform data the cutoff errors were -0.5%..-3%. Allow a
  // wider band for our smaller setup.
  io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
  CutoffParams params;
  params.memory_points = 3000;
  params.h_upper = ChooseHupper(*topo_, params.memory_points);
  const PredictionResult result =
      PredictWithCutoffTree(&file, *topo_, *workload_, params);
  const double rel =
      common::RelativeError(result.avg_leaf_accesses, measured_);
  EXPECT_LT(std::abs(rel), 0.2) << "relative error " << rel;
}

TEST_F(CutoffPredictorTest, PredictedLeafCountTracksTopology) {
  io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
  CutoffParams params;
  params.memory_points = 3000;
  params.h_upper = 2;
  const PredictionResult result =
      PredictWithCutoffTree(&file, *topo_, *workload_, params);
  EXPECT_NEAR(static_cast<double>(result.num_predicted_leaves),
              static_cast<double>(topo_->NumLeaves()),
              0.1 * static_cast<double>(topo_->NumLeaves()));
}

TEST_F(CutoffPredictorTest, IoCostIsEquationThree) {
  // cost_Cutoff = q random reads + one scan, independent of h_upper.
  io::PagedFile file = io::PagedFile::FromDataset(data_, io::DiskModel{});
  CutoffParams params;
  params.memory_points = 3000;
  params.h_upper = 2;
  const PredictionResult r2 =
      PredictWithCutoffTree(&file, *topo_, *workload_, params);
  const size_t scan_pages = file.num_pages();
  EXPECT_EQ(r2.io.page_transfers,
            workload_->num_queries() + scan_pages);
  EXPECT_LE(r2.io.page_seeks, workload_->num_queries() + 1);

  params.h_upper = 3;
  io::PagedFile file2 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  const PredictionResult r3 =
      PredictWithCutoffTree(&file2, *topo_, *workload_, params);
  EXPECT_EQ(r2.io.page_transfers, r3.io.page_transfers);
}

TEST_F(CutoffPredictorTest, DeterministicForSeed) {
  CutoffParams params;
  params.memory_points = 2000;
  params.h_upper = 2;
  params.seed = 77;
  io::PagedFile f1 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  io::PagedFile f2 = io::PagedFile::FromDataset(data_, io::DiskModel{});
  const auto a = PredictWithCutoffTree(&f1, *topo_, *workload_, params);
  const auto b = PredictWithCutoffTree(&f2, *topo_, *workload_, params);
  EXPECT_EQ(a.avg_leaf_accesses, b.avg_leaf_accesses);
  EXPECT_EQ(a.per_query_accesses, b.per_query_accesses);
}

}  // namespace
}  // namespace hdidx::core
