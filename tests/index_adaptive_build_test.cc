#include "index/adaptive_build.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "data/generators.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/rtree.h"
#include "index/topology.h"
#include "test_util.h"

namespace hdidx::index {
namespace {

// ---------------------------------------------------------------------------
// Unit tests of the pure planning pieces.
// ---------------------------------------------------------------------------

TEST(AdaptiveBucketLevelTest, PicksLargestLevelFittingHalfTheMemory) {
  // 10000 points, 20/page, fanout 5: capacities 20, 100, 500, 2500, ...
  const TreeTopology topo(10000, 20, 5);
  const size_t root = topo.height();
  ASSERT_GE(root, 4u);
  // Unconstrained memory: one level below the root.
  EXPECT_EQ(AdaptiveBucketLevel(topo, root, 1, 0), root - 1);
  // 2 * 500 <= 1000 < 2 * 2500: level with capacity 500 (level 3).
  EXPECT_EQ(topo.SubtreeCapacity(3), 500u);
  EXPECT_EQ(AdaptiveBucketLevel(topo, root, 1, 1000), 3u);
  // Even leaves exceed memory/2: falls to the stop level.
  EXPECT_EQ(AdaptiveBucketLevel(topo, root, 1, 10), 1u);
  // Never below the stop level, never at or above the root.
  EXPECT_EQ(AdaptiveBucketLevel(topo, root, 2, 10), 2u);
  EXPECT_LT(AdaptiveBucketLevel(topo, root, 1, 1u << 30), root);
}

TEST(AdaptiveBucketLevelTest, MaxRootsUnderSaturates) {
  const TreeTopology topo(10000, 20, 5);
  EXPECT_EQ(MaxRootsUnder(topo, 3, 3, 1000), 1u);
  EXPECT_EQ(MaxRootsUnder(topo, 4, 3, 1000), 5u);
  EXPECT_EQ(MaxRootsUnder(topo, 5, 3, 1000), 25u);
  // Saturation guard: the power never overflows past the cap.
  EXPECT_EQ(MaxRootsUnder(topo, 60, 1, 7777), 7777u);
}

TEST(SplitPlanTest, BucketsNumberLeavesLeftToRightAlongEachPlane) {
  // A 1-d sample with two well-separated clumps: the first split must
  // land between them and bucket ids must increase along the axis.
  std::vector<float> sample;
  common::Rng rng(5);
  for (int i = 0; i < 64; ++i) {
    sample.push_back(static_cast<float>(rng.NextDouble() * 0.1) +
                     (i % 2 == 0 ? 0.0f : 0.9f));
  }
  const SplitPlan plan = SplitPlan::Build(sample.data(), sample.size(), 1,
                                          /*total_points=*/1000.0,
                                          /*bucket_target=*/100.0);
  ASSERT_GE(plan.num_buckets(), 2u);
  float prev_value = -1.0f;
  size_t prev_bucket = 0;
  for (const float v : {0.01f, 0.05f, 0.91f, 0.99f}) {
    const size_t bucket = plan.BucketOf(&v);
    if (prev_value >= 0.0f) {
      EXPECT_GE(bucket, prev_bucket);
    }
    prev_value = v;
    prev_bucket = bucket;
  }
  EXPECT_LT(plan.BucketOf(&sample[0]), plan.num_buckets());
}

TEST(SplitPlanTest, AllEqualValuesBecomeOneBucket) {
  const std::vector<float> sample(128, 0.5f);
  const SplitPlan plan = SplitPlan::Build(sample.data(), 128, 1, 1e6, 10.0);
  // No separating value exists: the no-progress guard stops recursion.
  EXPECT_EQ(plan.num_buckets(), 1u);
  const float v = 0.5f;
  EXPECT_EQ(plan.BucketOf(&v), 0u);
}

TEST(SplitPlanTest, DeterministicForSameSample) {
  common::Rng rng(9);
  std::vector<float> sample;
  for (int i = 0; i < 500; ++i) {
    sample.push_back(static_cast<float>(rng.NextDouble()));
  }
  const SplitPlan a =
      SplitPlan::Build(sample.data(), sample.size() / 2, 2, 5e4, 40.0);
  const SplitPlan b =
      SplitPlan::Build(sample.data(), sample.size() / 2, 2, 5e4, 40.0);
  ASSERT_EQ(a.num_buckets(), b.num_buckets());
  for (size_t i = 0; i + 2 <= sample.size(); i += 2) {
    EXPECT_EQ(a.BucketOf(&sample[i]), b.BucketOf(&sample[i]));
  }
}

TEST(AdaptiveGroupBoundariesTest, CutsAtExactRootMultiplesWithinMemory) {
  // cap 50, memory 175: floor(175/50) = 3 roots per group, boundaries at
  // multiples of 3 * 50 = 150 points.
  const auto bounds = AdaptiveGroupBoundaries(1000, 50.0, 175);
  EXPECT_EQ(bounds,
            (std::vector<size_t>{0, 150, 300, 450, 600, 750, 900, 1000}));
  for (size_t g = 0; g + 1 < bounds.size(); ++g) {
    EXPECT_LE(bounds[g + 1] - bounds[g], 175u) << "group " << g;
  }
}

TEST(AdaptiveGroupBoundariesTest, UnconstrainedMemoryIsOneGroup) {
  EXPECT_EQ(AdaptiveGroupBoundaries(1000, 50.0, 0),
            (std::vector<size_t>{0, 1000}));
}

TEST(AdaptiveGroupBoundariesTest, TinyMemoryStillAdvancesWholeRoots) {
  // Memory below one root's capacity: groups degrade to single roots (the
  // build's oversized-group path handles them) but never stall.
  const auto bounds = AdaptiveGroupBoundaries(200, 50.0, 10);
  EXPECT_EQ(bounds, (std::vector<size_t>{0, 50, 100, 150, 200}));
}

TEST(AdaptiveGroupBoundariesTest, FractionalCapacityCoversEveryPoint) {
  // Mini-index scale makes capacities fractional; boundaries must stay
  // strictly increasing and end at n regardless of llround rounding.
  const auto bounds = AdaptiveGroupBoundaries(997, 7.3, 20);
  ASSERT_GE(bounds.size(), 2u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 997u);
  for (size_t g = 0; g + 1 < bounds.size(); ++g) {
    EXPECT_LT(bounds[g], bounds[g + 1]);
    EXPECT_LE(bounds[g + 1] - bounds[g], 21u);
  }
}

// ---------------------------------------------------------------------------
// Layout property suite: for every dataset shape, the adaptive build
// produces a structurally valid tree with the same leaf count and the
// same capacity bounds as the VAMSplit one — only the partition planes
// (and hence leaf contents) differ.
// ---------------------------------------------------------------------------

data::Dataset SkewedData(size_t n, size_t dim, uint64_t seed) {
  // Heavy mass near the origin with a long tail: pow(u, 4) per coordinate.
  common::Rng rng(seed);
  data::Dataset data(dim);
  std::vector<float> row(dim);
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 0; k < dim; ++k) {
      const double u = rng.NextDouble();
      row[k] = static_cast<float>(u * u * u * u);
    }
    data.Append(row);
  }
  return data;
}

data::Dataset IdenticalData(size_t n, size_t dim) {
  data::Dataset data(dim);
  const std::vector<float> row(dim, 0.25f);
  for (size_t i = 0; i < n; ++i) data.Append(row);
  return data;
}

void ExpectAdaptiveLayoutMatchesVamSplitShape(const data::Dataset& data,
                                              const char* what) {
  const TreeTopology topo(data.size(), 22, 6);
  BulkLoadOptions vam;
  vam.topology = &topo;
  const RTree reference = BulkLoadInMemory(data, vam);

  BulkLoadOptions adaptive = vam;
  adaptive.split_strategy = SplitStrategy::kAdaptiveSample;
  const RTree tree = BulkLoadInMemory(data, adaptive);

  hdidx::testing::ExpectValidTree(tree, data, 1);
  EXPECT_EQ(tree.num_leaves(), topo.NumLeaves()) << what;
  EXPECT_EQ(tree.num_leaves(), reference.num_leaves()) << what;
  EXPECT_EQ(tree.root_level(), reference.root_level()) << what;
  // Capacity bounds: leaves hold at most a data page, directories fan out
  // within [1, dir_capacity].
  for (uint32_t id = 0; id < tree.num_nodes(); ++id) {
    const RTreeNode& node = tree.node(id);
    if (node.is_leaf()) {
      EXPECT_LE(node.count, topo.data_capacity()) << what << " leaf " << id;
    } else {
      EXPECT_GE(node.children.size(), 1u) << what << " node " << id;
      EXPECT_LE(node.children.size(), topo.dir_capacity())
          << what << " node " << id;
    }
  }
}

TEST(AdaptiveLayoutPropertyTest, UniformData) {
  common::Rng rng(71);
  ExpectAdaptiveLayoutMatchesVamSplitShape(
      data::GenerateUniform(6000, 6, &rng), "uniform");
}

TEST(AdaptiveLayoutPropertyTest, ClusteredData) {
  ExpectAdaptiveLayoutMatchesVamSplitShape(
      hdidx::testing::SmallClustered(5000, 8, 72), "clustered");
}

TEST(AdaptiveLayoutPropertyTest, SkewedData) {
  ExpectAdaptiveLayoutMatchesVamSplitShape(SkewedData(4000, 5, 73),
                                           "skewed");
}

TEST(AdaptiveLayoutPropertyTest, AllIdenticalPoints) {
  ExpectAdaptiveLayoutMatchesVamSplitShape(IdenticalData(1500, 4),
                                           "all-identical");
}

TEST(AdaptiveLayoutPropertyTest, ConstrainedMemoryStillTilesLeaves) {
  // memory_points small enough to force a low bucket level and many small
  // groups — the shape knobs of the external pipeline, exercised through
  // the in-memory entry point.
  const auto data = SkewedData(5000, 6, 74);
  const TreeTopology topo(data.size(), 20, 5);
  for (const size_t memory : {120u, 600u, 2500u}) {
    BulkLoadOptions options;
    options.topology = &topo;
    options.split_strategy = SplitStrategy::kAdaptiveSample;
    options.adaptive.memory_points = memory;
    const RTree tree = BulkLoadInMemory(data, options);
    hdidx::testing::ExpectValidTree(tree, data, 1);
    EXPECT_EQ(tree.num_leaves(), topo.NumLeaves()) << "memory " << memory;
  }
}

// ---------------------------------------------------------------------------
// Golden layout digests for the adaptive strategy, pinned exactly like the
// VAMSplit ones in index_bulk_loader_test.cc: a deliberate layout change
// must update the constant (the failure message prints the new digest).
// ---------------------------------------------------------------------------

constexpr uint64_t kGoldenAdaptiveClustered2000x8 = 0x8637aeb363f9510cULL;
constexpr uint64_t kGoldenAdaptiveUniform3000x12 = 0xb65cd83d572f8915ULL;

void ExpectAdaptiveGoldenDigest(const data::Dataset& data,
                                const TreeTopology& topo,
                                size_t memory_points, uint64_t golden) {
  // A memory constraint keeps the pipeline's distinctive shape (low bucket
  // level, grouped builds) in play — unconstrained, the single group
  // degenerates to the VAMSplit layout already pinned elsewhere.
  BulkLoadOptions serial;
  serial.topology = &topo;
  serial.split_strategy = SplitStrategy::kAdaptiveSample;
  serial.adaptive.memory_points = memory_points;
  const RTree reference = BulkLoadInMemory(data, serial);
  EXPECT_EQ(TreeLayoutDigest(reference), golden)
      << "adaptive serial layout changed; new digest 0x" << std::hex
      << TreeLayoutDigest(reference);

  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool);
  BulkLoadOptions parallel = serial;
  parallel.exec = &ctx;
  const RTree tree = BulkLoadInMemory(data, parallel);
  EXPECT_EQ(TreeLayoutDigest(tree), golden)
      << "adaptive parallel layout diverged; digest 0x" << std::hex
      << TreeLayoutDigest(tree);
}

TEST(AdaptiveGoldenLayoutTest, Clustered2000x8) {
  const auto data = hdidx::testing::SmallClustered(2000, 8, 42);
  const TreeTopology topo(data.size(), 20, 5);
  ExpectAdaptiveGoldenDigest(data, topo, /*memory_points=*/250,
                             kGoldenAdaptiveClustered2000x8);
}

TEST(AdaptiveGoldenLayoutTest, Uniform3000x12) {
  common::Rng rng(43);
  const auto data = data::GenerateUniform(3000, 12, &rng);
  const TreeTopology topo(data.size(), 33, 16);
  ExpectAdaptiveGoldenDigest(data, topo, /*memory_points=*/400,
                             kGoldenAdaptiveUniform3000x12);
}

}  // namespace
}  // namespace hdidx::index
