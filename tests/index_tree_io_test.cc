#include "index/tree_io.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "test_util.h"
#include "workload/query_workload.h"

namespace hdidx::index {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(TreeIoTest, RoundTripPreservesEverything) {
  const auto data = hdidx::testing::SmallClustered(3000, 5, 1);
  const TreeTopology topo(data.size(), 25, 6);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree original = BulkLoadInMemory(data, options);

  const std::string path = TempPath("tree.hdrt");
  std::string error;
  ASSERT_TRUE(WriteTree(original, path, &error)) << error;
  const auto loaded = ReadTree(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  ASSERT_EQ(loaded->num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded->root(), original.root());
  EXPECT_EQ(loaded->order(), original.order());
  EXPECT_EQ(loaded->num_leaves(), original.num_leaves());
  for (uint32_t id = 0; id < original.num_nodes(); ++id) {
    EXPECT_TRUE(loaded->node(id).box == original.node(id).box) << id;
    EXPECT_EQ(loaded->node(id).level, original.node(id).level);
    ASSERT_EQ(loaded->node(id).children.size(),
              original.node(id).children.size());
    EXPECT_TRUE(std::equal(loaded->node(id).children.begin(),
                           loaded->node(id).children.end(),
                           original.node(id).children.begin()));
    EXPECT_EQ(loaded->node(id).start, original.node(id).start);
    EXPECT_EQ(loaded->node(id).count, original.node(id).count);
  }
  std::remove(path.c_str());
}

TEST(TreeIoTest, ReloadedTreeAnswersQueriesIdentically) {
  const auto data = hdidx::testing::SmallClustered(2000, 6, 2);
  const TreeTopology topo(data.size(), 20, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree original = BulkLoadInMemory(data, options);

  const std::string path = TempPath("tree_query.hdrt");
  std::string error;
  ASSERT_TRUE(WriteTree(original, path, &error)) << error;
  const auto loaded = ReadTree(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  common::Rng rng(3);
  const auto workload = workload::QueryWorkload::Create(data, 10, 5, &rng);
  for (size_t i = 0; i < workload.num_queries(); ++i) {
    const auto a = original.CountSphereAccesses(workload.queries().row(i),
                                                workload.radius(i));
    const auto b = loaded->CountSphereAccesses(workload.queries().row(i),
                                               workload.radius(i));
    EXPECT_EQ(a.leaf_accesses, b.leaf_accesses);
    EXPECT_EQ(a.dir_accesses, b.dir_accesses);
  }
  std::remove(path.c_str());
}

TEST(TreeIoTest, BadMagicRejected) {
  const std::string path = TempPath("bad.hdrt");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOT_A_TREE_FILE_AT_ALL______________";
  }
  std::string error;
  EXPECT_FALSE(ReadTree(path, &error).has_value());
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

TEST(TreeIoTest, TruncationRejected) {
  const auto data = hdidx::testing::SmallClustered(500, 3, 4);
  const TreeTopology topo(data.size(), 20, 5);
  BulkLoadOptions options;
  options.topology = &topo;
  const RTree tree = BulkLoadInMemory(data, options);
  const std::string path = TempPath("trunc.hdrt");
  std::string error;
  ASSERT_TRUE(WriteTree(tree, path, &error));
  {
    std::ifstream in(path, std::ios::binary);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size() * 2 / 3));
  }
  EXPECT_FALSE(ReadTree(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(TreeIoTest, MissingFileFails) {
  std::string error;
  EXPECT_FALSE(ReadTree(TempPath("missing.hdrt"), &error).has_value());
}

}  // namespace
}  // namespace hdidx::index
