#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"

namespace hdidx::common {
namespace {

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, RangeSmallerThanGrainIsOneInlineChunk) {
  ThreadPool pool(4);
  std::vector<std::pair<size_t, size_t>> chunks;
  // end - begin <= grain runs serially on the caller, as a single chunk, so
  // an unsynchronized vector is safe here.
  pool.ParallelFor(10, 13, 100, [&](size_t begin, size_t end) {
    chunks.emplace_back(begin, end);
  });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].first, 10u);
  EXPECT_EQ(chunks[0].second, 13u);
}

TEST(ThreadPoolTest, EveryElementVisitedExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 1000;
  std::vector<std::atomic<int>> visits(n);
  pool.ParallelFor(0, n, 7, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, ChunkLayoutIndependentOfThreadCount) {
  // The determinism contract: identical (begin, end, grain) yields identical
  // chunk boundaries no matter how many threads serve them.
  auto layout = [](size_t threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::vector<std::pair<size_t, size_t>> chunks;
    pool.ParallelFor(3, 103, 9, [&](size_t begin, size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  const auto serial = layout(1);
  EXPECT_EQ(layout(2), serial);
  EXPECT_EQ(layout(8), serial);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndLoopDrains) {
  ThreadPool pool(4);
  const size_t n = 200;
  std::vector<std::atomic<int>> visits(n);
  EXPECT_THROW(
      pool.ParallelFor(0, n, 1,
                       [&](size_t begin, size_t end) {
                         for (size_t i = begin; i < end; ++i) {
                           visits[i].fetch_add(1);
                           if (i == 57) throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The loop drains before rethrowing: every chunk still ran exactly once.
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "element " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 20; ++job) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(0, 100, 4, [&](size_t begin, size_t end) {
      size_t local = 0;
      for (size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950u) << "job " << job;
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t, size_t) {
    // Issued from inside a worker, this must degrade to inline serial
    // execution rather than re-entering the pool.
    pool.ParallelFor(0, 10, 2, [&](size_t begin, size_t end) {
      inner_total.fetch_add(end - begin);
    });
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  std::vector<std::atomic<int>> runs(200);
  {
    ThreadPool pool(4);
    for (size_t i = 0; i < runs.size(); ++i) {
      pool.Submit([&runs, i] { runs[i].fetch_add(1); });
    }
    // The destructor joins workers and drains whatever was still queued.
  }
  for (size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, SubmitOnSingleThreadPoolRunsInline) {
  // A 1-thread pool has no workers: Submit executes on the caller, so
  // completion is ordered with the submitting code.
  ThreadPool pool(1);
  int value = 0;
  pool.Submit([&value] { value = 42; });
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, SubmitInterleavesWithParallelFor) {
  std::atomic<int> tasks{0};
  std::atomic<size_t> visited{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 50; ++i) pool.Submit([&tasks] { ++tasks; });
    pool.ParallelFor(0, 1000, 16, [&](size_t begin, size_t end) {
      visited += end - begin;
    });
    for (int i = 0; i < 50; ++i) pool.Submit([&tasks] { ++tasks; });
  }
  EXPECT_EQ(visited.load(), 1000u);
  EXPECT_EQ(tasks.load(), 100);
}

TEST(ExecutionContextTest, NullPoolRunsSerially) {
  const ExecutionContext ctx;  // no pool
  std::vector<size_t> order;
  ctx.ParallelFor(0, 6, 2, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) order.push_back(i);
  });
  std::vector<size_t> expected(6);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ExecutionContextTest, ZeroGrainPicksDefaultAndCoversRange) {
  ThreadPool pool(4);
  const ExecutionContext ctx(&pool);
  const size_t n = 333;
  std::vector<std::atomic<int>> visits(n);
  ctx.ParallelFor(0, n, 0, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(RngForkTest, SameStreamIdSameSequence) {
  const Rng parent(42);
  Rng a = parent.Fork(7);
  Rng b = parent.Fork(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngForkTest, DifferentStreamIdsDiverge) {
  const Rng parent(42);
  Rng a = parent.Fork(0);
  Rng b = parent.Fork(1);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i) differs = a.NextU64() != b.NextU64();
  EXPECT_TRUE(differs);
}

TEST(RngForkTest, ForkDoesNotAdvanceParent) {
  Rng with_fork(42);
  (void)with_fork.Fork(3);
  Rng without_fork(42);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(with_fork.NextU64(), without_fork.NextU64());
}

TEST(ExecutionContextTest, StreamRngDependsOnlyOnSeedAndStream) {
  ThreadPool pool(2);
  const ExecutionContext ctx_a(&pool, /*seed=*/11);
  const ExecutionContext ctx_b(nullptr, /*seed=*/11);
  Rng a = ctx_a.StreamRng(5);
  Rng b = ctx_b.StreamRng(5);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(DefaultGrainTest, SerialGetsWholeRangeParallelGetsChunks) {
  EXPECT_EQ(DefaultGrain(100, 1), 100u);
  EXPECT_GE(DefaultGrain(0, 1), 1u);
  EXPECT_GE(DefaultGrain(100, 4), 1u);
  EXPECT_LE(DefaultGrain(100, 4), 100u);
}

}  // namespace
}  // namespace hdidx::common
