#include "service/wire.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "service/protocol.h"

namespace hdidx::service::wire {
namespace {

std::string Hex(std::string_view bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<uint8_t>(c);
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

/// Runs the full extract-and-decode path a server/client would on `bytes`
/// and returns the status. Exists so the fuzz tests exercise every decoder
/// on whatever frames fall out of mutated input — the assertion is simply
/// that none of this crashes or over-reads.
FrameStatus ExtractAndDecode(std::string_view bytes) {
  size_t consumed = 0;
  FrameHeader header;
  std::string_view payload;
  std::string error;
  const FrameStatus status = NextFrame(bytes, kDefaultMaxPayload, &consumed,
                                       &header, &payload, &error);
  if (status != FrameStatus::kFrame) return status;
  EXPECT_LE(consumed, bytes.size());
  RequestLine request;
  DecodeRequest(header, payload, &request, &error);
  PredictReply reply;
  DecodePredictResponse(header, payload, &reply, &error);
  LoadResult load;
  DecodeLoadResponse(header, payload, &load, &error);
  ServiceMetrics metrics;
  DecodeStatsResponse(header, payload, &metrics, &error);
  uint64_t served = 0;
  DecodeShutdownResponse(header, payload, &served, &error);
  std::string message;
  DecodeErrorFrame(header, payload, &message, &error);
  std::string dataset;
  PeekPredictDataset(payload, &dataset);
  return status;
}

TEST(WireGoldenTest, FrameBytesArePinned) {
  // Byte-exact fixtures: any change to these is a wire-format break and
  // must bump kVersion. Header layout: magic "HD", version, op, flags,
  // reserved, u32 length, u64 id — all little-endian.
  EXPECT_EQ(Hex(EncodeStatsRequest(7)),
            "4844"              // magic 0x4448 -> "HD" on the wire
            "01"                // version 1
            "02"                // op kStats
            "0000"              // flags
            "0000"              // reserved
            "00000000"          // length 0
            "0700000000000000"  // id 7
  );
  EXPECT_EQ(Hex(EncodeShutdownRequest(0x0102030405060708ull)),
            "484401030000000000000000"
            "0807060504030201");

  ServiceRequest predict;
  predict.id = 9;
  predict.dataset = "d";
  predict.method = "mini";
  predict.memory = 1000;
  predict.num_queries = 25;
  predict.k = 5;
  predict.seed = 3;
  predict.page_bytes = 1024;
  predict.per_query = true;
  EXPECT_EQ(Hex(EncodePredictRequest(predict)),
            "4844"              // magic
            "01"                // version
            "00"                // op kPredict
            "0400"              // flags: kFlagPerQuery
            "0000"              // reserved
            "31000000"          // length 49: 3 + 6 string bytes + 5 u64s
            "0900000000000000"  // id 9
            "010064"            // dataset: len 1, "d"
            "04006d696e69"      // method: len 4, "mini"
            "e803000000000000"  // memory 1000
            "1900000000000000"  // num_queries 25
            "0500000000000000"  // k 5
            "0300000000000000"  // seed 3
            "0004000000000000"  // page_bytes 1024
  );

  EXPECT_EQ(Hex(EncodeLoadRequest(1, "d", "/x.hdx")),
            "4844"
            "01"
            "01"                // op kLoad
            "0000"
            "0000"
            "0b000000"          // length 11: two u16-prefixed strings
            "0100000000000000"  // id 1
            "010064"            // dataset: len 1, "d"
            "06002f782e686478"  // path: len 6, "/x.hdx"
  );

  EXPECT_EQ(Hex(EncodeErrorFrame(0, "bad")),
            "4844"
            "01"
            "04"                // op kError
            "0100"              // flags: kFlagResponse
            "0000"
            "05000000"          // length: u16 prefix + 3 bytes
            "0000000000000000"
            "0300626164");

  EXPECT_EQ(Hex(EncodeShedResponse(42, 1, 50)),
            "4844"
            "01"
            "00"                // op kPredict
            "2100"              // flags: kFlagResponse | kFlagShed
            "0000"
            "08000000"          // length 8
            "2a00000000000000"  // id 42
            "01000000"          // shard 1
            "32000000"          // retry_after_ms 50
  );
}

TEST(WireRoundTripTest, RequestsDecodeThroughSharedRequestLine) {
  ServiceRequest predict;
  predict.id = 77;
  predict.dataset = "alpha";
  predict.method = "resampled";
  predict.memory = 4096;
  predict.num_queries = 50;
  predict.k = 10;
  predict.seed = 12345;
  predict.page_bytes = 8192;
  predict.per_query = true;

  for (const std::string& frame :
       {EncodePredictRequest(predict), EncodeLoadRequest(5, "beta", "/b.hdx"),
        EncodeStatsRequest(6), EncodeShutdownRequest(7)}) {
    size_t consumed = 0;
    FrameHeader header;
    std::string_view payload;
    std::string error;
    ASSERT_EQ(NextFrame(frame, kDefaultMaxPayload, &consumed, &header,
                        &payload, &error),
              FrameStatus::kFrame)
        << error;
    EXPECT_EQ(consumed, frame.size());
    RequestLine line;
    ASSERT_TRUE(DecodeRequest(header, payload, &line, &error)) << error;
    switch (line.op) {
      case RequestLine::Op::kPredict:
        EXPECT_TRUE(line.has_id);
        EXPECT_EQ(line.predict.id, 77u);
        EXPECT_EQ(line.predict.dataset, "alpha");
        EXPECT_EQ(line.predict.method, "resampled");
        EXPECT_EQ(line.predict.memory, 4096u);
        EXPECT_EQ(line.predict.num_queries, 50u);
        EXPECT_EQ(line.predict.k, 10u);
        EXPECT_EQ(line.predict.seed, 12345u);
        EXPECT_EQ(line.predict.page_bytes, 8192u);
        EXPECT_TRUE(line.predict.per_query);
        break;
      case RequestLine::Op::kLoad:
        EXPECT_EQ(line.load_dataset, "beta");
        EXPECT_EQ(line.load_path, "/b.hdx");
        break;
      case RequestLine::Op::kStats:
      case RequestLine::Op::kShutdown:
        break;
    }
  }
}

TEST(WireRoundTripTest, PredictResponseCarriesEveryResultField) {
  ServiceResponse response;
  response.id = 31;
  response.ok = true;
  response.shard = 2;
  response.cache_hit = true;
  response.workload_cache_hit = true;
  response.latency_ms = 1.25;
  response.served_io.page_seeks = 11;
  response.served_io.page_transfers = 23;
  response.result.avg_leaf_accesses = 3.7500000000000004;  // not exactly
  response.result.per_query_accesses = {1.0, 2.5, 0.0, 7.25};
  response.result.num_predicted_leaves = 9;
  response.result.h_upper = 4;
  response.result.sigma_upper = 1.5;
  response.result.sigma_lower = 0.75;
  response.result.io.page_seeks = 100;
  response.result.io.page_transfers = 200;

  for (const bool per_query : {true, false}) {
    const std::string frame = EncodePredictResponse(response, per_query);
    size_t consumed = 0;
    FrameHeader header;
    std::string_view payload;
    std::string error;
    ASSERT_EQ(NextFrame(frame, kDefaultMaxPayload, &consumed, &header,
                        &payload, &error),
              FrameStatus::kFrame);
    PredictReply reply;
    ASSERT_TRUE(DecodePredictResponse(header, payload, &reply, &error))
        << error;
    EXPECT_FALSE(reply.shed);
    EXPECT_EQ(reply.per_query, per_query);
    EXPECT_TRUE(reply.response.ok);
    EXPECT_TRUE(reply.response.cache_hit);
    EXPECT_TRUE(reply.response.workload_cache_hit);
    EXPECT_EQ(reply.response.id, 31u);
    EXPECT_EQ(reply.response.shard, 2u);
    EXPECT_EQ(reply.response.served_io.page_seeks, 11u);
    EXPECT_EQ(reply.response.served_io.page_transfers, 23u);
    // The determinism contract across transports, stated as bytes: the
    // serialized `result` payload of the decoded binary response equals
    // the JSON transport's serialization of the original.
    EXPECT_EQ(SerializeResult(reply.response, per_query),
              SerializeResult(response, per_query));
    if (per_query) {
      EXPECT_EQ(reply.response.result.per_query_accesses,
                response.result.per_query_accesses);
    } else {
      // The count still round-trips (zero-filled) so size-derived fields
      // serialize identically.
      EXPECT_EQ(reply.response.result.per_query_accesses.size(),
                response.result.per_query_accesses.size());
    }
  }
}

TEST(WireRoundTripTest, ErrorShedLoadStatsShutdownResponses) {
  std::string error;
  size_t consumed = 0;
  FrameHeader header;
  std::string_view payload;

  // Predict error response (ok=false): message round-trips.
  ServiceResponse failed;
  failed.id = 8;
  failed.ok = false;
  failed.shard = 1;
  failed.error = "unknown dataset 'nope'";
  const std::string failed_frame = EncodePredictResponse(failed, false);
  ASSERT_EQ(NextFrame(failed_frame, kDefaultMaxPayload, &consumed, &header,
                      &payload, &error),
            FrameStatus::kFrame);
  PredictReply reply;
  ASSERT_TRUE(DecodePredictResponse(header, payload, &reply, &error));
  EXPECT_FALSE(reply.response.ok);
  EXPECT_EQ(reply.response.error, "unknown dataset 'nope'");
  EXPECT_EQ(SerializeResult(reply.response, false),
            SerializeResult(failed, false));

  // Shed.
  const std::string shed = EncodeShedResponse(99, 3, 25);
  ASSERT_EQ(NextFrame(shed, kDefaultMaxPayload, &consumed, &header, &payload,
                      &error),
            FrameStatus::kFrame);
  ASSERT_TRUE(DecodePredictResponse(header, payload, &reply, &error));
  EXPECT_TRUE(reply.shed);
  EXPECT_EQ(reply.response.id, 99u);
  EXPECT_EQ(reply.response.shard, 3u);
  EXPECT_EQ(reply.retry_after_ms, 25u);

  // Load, both outcomes.
  LoadResult load;
  load.ok = true;
  load.dataset = "d";
  load.points = 20000;
  load.dims = 16;
  load.shard = 1;
  const std::string load_ok = EncodeLoadResponse(4, load);
  ASSERT_EQ(NextFrame(load_ok, kDefaultMaxPayload, &consumed, &header,
                      &payload, &error),
            FrameStatus::kFrame);
  LoadResult decoded_load;
  ASSERT_TRUE(DecodeLoadResponse(header, payload, &decoded_load, &error));
  EXPECT_TRUE(decoded_load.ok);
  EXPECT_EQ(decoded_load.points, 20000u);
  EXPECT_EQ(decoded_load.dims, 16u);
  EXPECT_EQ(decoded_load.shard, 1u);

  load.ok = false;
  load.error = "no such file";
  const std::string load_err = EncodeLoadResponse(4, load);
  ASSERT_EQ(NextFrame(load_err, kDefaultMaxPayload, &consumed, &header,
                      &payload, &error),
            FrameStatus::kFrame);
  ASSERT_TRUE(DecodeLoadResponse(header, payload, &decoded_load, &error));
  EXPECT_FALSE(decoded_load.ok);
  EXPECT_EQ(decoded_load.error, "no such file");

  // Stats: every counter including the new queue gauges.
  ServiceMetrics metrics;
  metrics.requests = 10;
  metrics.batches = 2;
  metrics.errors = 1;
  metrics.mean_batch_size = 5.0;
  metrics.result_hits = 4;
  metrics.result_misses = 6;
  metrics.result_evictions = 1;
  metrics.workload_hits = 3;
  metrics.workload_misses = 7;
  metrics.workload_evictions = 2;
  metrics.shed_total = 5;
  metrics.shards.resize(2);
  metrics.shards[1].requests = 10;
  metrics.shards[1].p50_ms = 1.5;
  metrics.shards[1].p90_ms = 2.5;
  metrics.shards[1].p99_ms = 3.5;
  metrics.shards[1].queue_depth = 2;
  metrics.shards[1].peak_queue_depth = 4;
  metrics.shards[1].shed = 5;
  const std::string stats = EncodeStatsResponse(12, metrics);
  ASSERT_EQ(NextFrame(stats, kDefaultMaxPayload, &consumed, &header, &payload,
                      &error),
            FrameStatus::kFrame);
  ServiceMetrics decoded_metrics;
  ASSERT_TRUE(DecodeStatsResponse(header, payload, &decoded_metrics, &error))
      << error;
  // JSON serialization is a faithful field-by-field readout, so equality of
  // the serialized lines is equality of every field at once.
  EXPECT_EQ(SerializeMetrics(decoded_metrics), SerializeMetrics(metrics));

  // Shutdown.
  const std::string ack = EncodeShutdownResponse(2, 16);
  ASSERT_EQ(NextFrame(ack, kDefaultMaxPayload, &consumed, &header, &payload,
                      &error),
            FrameStatus::kFrame);
  uint64_t served = 0;
  ASSERT_TRUE(DecodeShutdownResponse(header, payload, &served, &error));
  EXPECT_EQ(served, 16u);

  // Error frame.
  const std::string err = EncodeErrorFrame(6, "malformed predict payload");
  ASSERT_EQ(NextFrame(err, kDefaultMaxPayload, &consumed, &header, &payload,
                      &error),
            FrameStatus::kFrame);
  std::string message;
  ASSERT_TRUE(DecodeErrorFrame(header, payload, &message, &error));
  EXPECT_EQ(header.id, 6u);
  EXPECT_EQ(message, "malformed predict payload");
}

TEST(WireFramingTest, TruncatedPrefixesNeedMoreThenCompleteFrame) {
  const std::string frame = EncodeStatsRequest(3) + EncodeShutdownRequest(4);
  // Every proper prefix of the first frame is kNeedMore — never an error,
  // never a partial decode.
  for (size_t n = 0; n < kHeaderBytes; ++n) {
    size_t consumed = 0;
    FrameHeader header;
    std::string_view payload;
    std::string error;
    EXPECT_EQ(NextFrame(std::string_view(frame).substr(0, n),
                        kDefaultMaxPayload, &consumed, &header, &payload,
                        &error),
              FrameStatus::kNeedMore)
        << "prefix " << n;
  }
  // Both frames extract in sequence.
  size_t consumed = 0;
  FrameHeader header;
  std::string_view payload;
  std::string error;
  std::string_view rest = frame;
  ASSERT_EQ(NextFrame(rest, kDefaultMaxPayload, &consumed, &header, &payload,
                      &error),
            FrameStatus::kFrame);
  EXPECT_EQ(header.op, WireOp::kStats);
  rest.remove_prefix(consumed);
  ASSERT_EQ(NextFrame(rest, kDefaultMaxPayload, &consumed, &header, &payload,
                      &error),
            FrameStatus::kFrame);
  EXPECT_EQ(header.op, WireOp::kShutdown);
  EXPECT_EQ(consumed, rest.size());
}

TEST(WireFramingTest, MalformedHeadersAreUnrecoverableErrors) {
  const std::string good = EncodeStatsRequest(1);
  const auto expect_error = [&](std::string frame, const char* what) {
    size_t consumed = 0;
    FrameHeader header;
    std::string_view payload;
    std::string error;
    EXPECT_EQ(NextFrame(frame, kDefaultMaxPayload, &consumed, &header,
                        &payload, &error),
              FrameStatus::kError)
        << what;
    EXPECT_FALSE(error.empty()) << what;
  };

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  expect_error(bad_magic, "bad magic");

  std::string bad_version = good;
  bad_version[2] = 9;
  expect_error(bad_version, "bad version");

  std::string bad_op = good;
  bad_op[3] = 5;  // one past kError
  expect_error(bad_op, "unknown op");

  std::string bad_reserved = good;
  bad_reserved[6] = 1;
  expect_error(bad_reserved, "nonzero reserved");

  std::string oversized = good;
  oversized[11] = '\x7f';  // length high byte -> ~2 GiB
  expect_error(oversized, "oversized length");

  // The cap is the caller's: the same length passes under a larger one
  // (and then reports kNeedMore for the missing payload).
  std::string big = good;
  big[10] = 1;  // third length byte: length = 65536
  size_t consumed = 0;
  FrameHeader header;
  std::string_view payload;
  std::string error;
  EXPECT_EQ(NextFrame(big, /*max_payload=*/1024, &consumed, &header, &payload,
                      &error),
            FrameStatus::kError);
  EXPECT_EQ(NextFrame(big, /*max_payload=*/1u << 20, &consumed, &header,
                      &payload, &error),
            FrameStatus::kNeedMore);
}

TEST(WireReaderTest, OverrunsFailSticky) {
  std::string payload;
  AppendString(&payload, "ab");
  WireReader reader(payload);
  std::string s;
  EXPECT_TRUE(reader.ReadString(&s));
  EXPECT_EQ(s, "ab");
  EXPECT_TRUE(reader.AtEnd());
  uint64_t v = 0;
  EXPECT_FALSE(reader.ReadU64(&v));  // past the end
  EXPECT_FALSE(reader.ok());
  uint8_t b = 0;
  EXPECT_FALSE(reader.ReadU8(&b));  // sticky

  // A string length prefix overrunning the payload fails without reading.
  std::string lying;
  AppendU16(&lying, 1000);
  lying += "short";
  WireReader liar(lying);
  EXPECT_FALSE(liar.ReadString(&s));
  EXPECT_FALSE(liar.ok());

  // An f64 count larger than the remaining bytes fails before allocating.
  WireReader tiny(std::string_view("\x01\x02\x03", 3));
  std::vector<double> doubles;
  EXPECT_FALSE(tiny.ReadF64Array(1u << 30, &doubles));
  EXPECT_TRUE(doubles.empty());
}

TEST(WirePeekTest, PeekAgreesWithFullDecodeAndFailsOnTruncation) {
  // The reactor routes predicts by peeking only the leading dataset
  // string; the worker then runs the full decode. The two must agree on
  // every well-formed predict frame, and the peek must refuse exactly the
  // payloads too short to carry the routing key.
  ServiceRequest predict;
  predict.id = 21;
  predict.dataset = "texture60";
  predict.method = "resampled";
  const std::string frame = EncodePredictRequest(predict);
  const std::string_view payload(frame.data() + kHeaderBytes,
                                 frame.size() - kHeaderBytes);

  std::string peeked;
  ASSERT_TRUE(PeekPredictDataset(payload, &peeked));
  FrameHeader header;
  header.op = WireOp::kPredict;
  header.id = predict.id;
  RequestLine request;
  std::string error;
  ASSERT_TRUE(DecodeRequest(header, payload, &request, &error));
  EXPECT_EQ(peeked, request.predict.dataset);

  // Every truncation that cuts into the length prefix or the string bytes
  // fails; anything at or past the full string still peeks successfully.
  const size_t need = 2 + predict.dataset.size();
  for (size_t len = 0; len <= payload.size(); ++len) {
    std::string name;
    EXPECT_EQ(PeekPredictDataset(payload.substr(0, len), &name), len >= need)
        << "truncated to " << len;
  }
}

TEST(WirePeekTest, PeekNeverCrashesOnGarbage) {
  common::Rng rng(31);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes;
    const size_t len = rng.NextBounded(40);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    std::string dataset;
    PeekPredictDataset(bytes, &dataset);
  }
}

// --- seeded malformed-frame fuzz corpus ---------------------------------
//
// The contract under test: no byte stream — random garbage, truncation,
// or bit-flipped real frames — may crash the extract/decode path. ASan and
// TSan runs of this suite are the memory-safety half of the server's
// "rejects cleanly, never crashes" claim.

/// Valid frames of every kind, used as fuzz seeds.
std::vector<std::string> SeedCorpus() {
  ServiceRequest predict;
  predict.id = 11;
  predict.dataset = "alpha";
  predict.method = "cutoff";
  predict.per_query = true;
  ServiceResponse ok_response;
  ok_response.id = 12;
  ok_response.ok = true;
  ok_response.result.per_query_accesses = {1.0, 2.0, 3.0};
  ServiceResponse err_response;
  err_response.id = 13;
  err_response.error = "boom";
  ServiceMetrics metrics;
  metrics.shards.resize(3);
  LoadResult load;
  load.ok = true;
  load.dataset = "d";
  load.points = 100;
  load.dims = 8;
  return {
      EncodePredictRequest(predict),
      EncodeLoadRequest(1, "d", "/tmp/d.hdx"),
      EncodeStatsRequest(2),
      EncodeShutdownRequest(3),
      EncodePredictResponse(ok_response, /*per_query=*/true),
      EncodePredictResponse(ok_response, /*per_query=*/false),
      EncodePredictResponse(err_response, /*per_query=*/false),
      EncodeShedResponse(4, 0, 50),
      EncodeErrorFrame(0, "bad magic"),
      EncodeStatsResponse(5, metrics),
      EncodeLoadResponse(6, load),
      EncodeShutdownResponse(7, 42),
  };
}

TEST(WireFuzzTest, RandomGarbageNeverCrashesTheDecoder) {
  common::Rng rng(20260809);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string bytes;
    const size_t len = rng.NextBounded(96);
    for (size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    ExtractAndDecode(bytes);
  }
}

TEST(WireFuzzTest, MutatedAndTruncatedRealFramesNeverCrash) {
  const std::vector<std::string> corpus = SeedCorpus();
  common::Rng rng(7);
  for (int iter = 0; iter < 4000; ++iter) {
    std::string frame = corpus[rng.NextBounded(corpus.size())];
    // Flip a few bits anywhere — header fields, length prefixes, payload.
    const size_t flips = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < flips; ++f) {
      frame[rng.NextBounded(frame.size())] ^=
          static_cast<char>(1u << rng.NextBounded(8));
    }
    // Half the time also truncate, so length fields lie about what follows.
    if (rng.NextBernoulli(0.5)) {
      frame.resize(rng.NextBounded(frame.size() + 1));
    }
    ExtractAndDecode(frame);
  }
}

TEST(WireFuzzTest, ValidHeadersWithGarbagePayloadsFailCleanly) {
  // Well-framed garbage: the header passes NextFrame, so every byte of the
  // payload reaches the payload decoders. They must reject without crashing
  // (kStats/kShutdown requests are the exception: their only valid payload
  // is empty, so a non-empty one simply fails DecodeRequest).
  common::Rng rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    const auto op = static_cast<WireOp>(rng.NextBounded(5));
    const auto flags = static_cast<uint16_t>(rng.NextBounded(64));
    std::string payload;
    const size_t len = rng.NextBounded(64);
    for (size_t i = 0; i < len; ++i) {
      payload.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    const std::string frame =
        EncodeFrame(op, flags, rng.NextU64(), payload);
    EXPECT_EQ(ExtractAndDecode(frame), FrameStatus::kFrame);
  }
}

}  // namespace
}  // namespace hdidx::service::wire
