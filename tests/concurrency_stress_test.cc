// Stress tests for the concurrent layers, written to be run under
// ThreadSanitizer (the CI thread job executes exactly these alongside the
// determinism suites). Each test hammers a component from many threads
// within its documented thread-safety contract and then checks that the
// results are the bit-identical ones the serial path produces.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/random.h"
#include "gtest/gtest.h"
#include "index/bulk_loader.h"
#include "index/external_build.h"
#include "index/rtree.h"
#include "index/topology.h"
#include "io/keyed_lru_cache.h"
#include "io/paged_file.h"
#include "service/prediction_service.h"
#include "service/protocol.h"
#include "test_util.h"

namespace hdidx {
namespace {

// Many external threads publishing ParallelFor jobs into one shared pool at
// once: the pool serializes publishers, every chunk runs exactly once, and
// each caller sees its own complete result.
TEST(ConcurrencyStressTest, SharedPoolConcurrentPublishers) {
  common::ThreadPool pool(4);
  constexpr size_t kPublishers = 8;
  constexpr size_t kRounds = 25;
  constexpr size_t kN = 4096;
  const uint64_t expected = kN * (kN - 1) / 2;

  std::vector<std::thread> publishers;
  std::atomic<uint64_t> failures{0};
  publishers.reserve(kPublishers);
  for (size_t t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&pool, &failures] {
      for (size_t round = 0; round < kRounds; ++round) {
        std::atomic<uint64_t> sum{0};
        pool.ParallelFor(0, kN, 64, [&sum](size_t lo, size_t hi) {
          uint64_t local = 0;
          for (size_t i = lo; i < hi; ++i) local += i;
          sum.fetch_add(local, std::memory_order_relaxed);
        });
        if (sum.load() != expected) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& p : publishers) p.join();
  EXPECT_EQ(failures.load(), 0u);
}

// Per-element outputs written from many chunks of many concurrent loops:
// every element is written exactly once with the right value (the exactly-
// once chunk-claim property TSan would flag if two workers raced a chunk).
TEST(ConcurrencyStressTest, ChunksRunExactlyOnce) {
  common::ThreadPool pool(4);
  constexpr size_t kN = 20000;
  for (size_t round = 0; round < 10; ++round) {
    std::vector<std::atomic<uint32_t>> touched(kN);
    pool.ParallelFor(0, kN, 97, [&touched](size_t lo, size_t hi) {
      for (size_t i = lo; i < hi; ++i) {
        touched[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    uint64_t total = 0;
    for (const auto& t : touched) total += t.load();
    ASSERT_EQ(total, kN) << "some chunk ran twice or never";
  }
}

// Deterministic RNG substreams under concurrency: forked streams depend
// only on (seed, stream id), never on the thread that draws them.
TEST(ConcurrencyStressTest, StreamRngIsThreadInvariant) {
  constexpr size_t kStreams = 256;
  std::vector<uint64_t> expected(kStreams);
  for (size_t s = 0; s < kStreams; ++s) {
    common::Rng rng = common::ExecutionContext(nullptr, 42).StreamRng(s);
    expected[s] = rng.NextU64() ^ rng.NextBounded(1000);
  }

  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool, 42);
  std::vector<uint64_t> observed(kStreams);
  ctx.ParallelFor(0, kStreams, 8, [&ctx, &observed](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      common::Rng rng = ctx.StreamRng(s);
      observed[s] = rng.NextU64() ^ rng.NextBounded(1000);
    }
  });
  EXPECT_EQ(observed, expected);
}

// The keyed LRU cache is single-owner by contract; hammer many *distinct*
// instances from the pool's workers simultaneously — the invariant checks
// inside Put/Get run on every mutation, under TSan, with full concurrency
// around them.
TEST(ConcurrencyStressTest, PerWorkerKeyedCaches) {
  common::ThreadPool pool(4);
  constexpr size_t kCaches = 16;
  std::vector<std::unique_ptr<io::KeyedLruCache<uint64_t, uint64_t>>> caches;
  caches.reserve(kCaches);
  for (size_t c = 0; c < kCaches; ++c) {
    caches.push_back(
        std::make_unique<io::KeyedLruCache<uint64_t, uint64_t>>(8));
  }
  pool.ParallelFor(0, kCaches, 1, [&caches](size_t lo, size_t hi) {
    for (size_t c = lo; c < hi; ++c) {
      io::KeyedLruCache<uint64_t, uint64_t>& cache = *caches[c];
      for (uint64_t i = 0; i < 500; ++i) {
        const uint64_t key = i % 13;
        if (cache.Get(key) == nullptr) {
          cache.Put(key, std::make_shared<const uint64_t>(key * key));
        }
      }
      ASSERT_LE(cache.size(), cache.capacity());
      ASSERT_EQ(cache.hits() + cache.misses(), 500u);
    }
  });
}

// The full service under batching pressure: shards run concurrently inside
// ProcessBatch, each owning its caches and ExecutionContext. Every batch
// must reproduce the single-shard serial reference bit for bit, cold or
// cached, in any arrival order.
TEST(ConcurrencyStressTest, ServiceBatchingStaysBitIdentical) {
  service::ServiceOptions reference_options;
  reference_options.num_shards = 1;
  reference_options.total_threads = 1;
  service::PredictionService reference(reference_options);

  service::ServiceOptions options;
  options.num_shards = 4;
  options.total_threads = 4;
  options.result_cache_entries = 4;  // small: force evictions under load
  service::PredictionService service(options);

  std::string error;
  uint64_t seed = 17;
  for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
    data::Dataset dataset = testing::SmallClustered(3000, 8, seed++);
    ASSERT_TRUE(reference.registry().Add(name, dataset, &error)) << error;
    ASSERT_TRUE(service.registry().Add(name, std::move(dataset), &error))
        << error;
  }

  auto request = [](const char* dataset, uint64_t request_seed) {
    service::ServiceRequest r;
    r.dataset = dataset;
    r.method = "resampled";
    r.memory = 500;
    r.num_queries = 10;
    r.k = 5;
    r.seed = request_seed;
    r.page_bytes = 1024;
    return r;
  };

  std::vector<service::ServiceRequest> batch;
  for (uint64_t s = 1; s <= 3; ++s) {
    for (const char* name : {"alpha", "beta", "gamma", "delta"}) {
      batch.push_back(request(name, s));
    }
  }
  const std::vector<service::ServiceResponse> expected =
      reference.ProcessBatch(batch);

  for (size_t round = 0; round < 6; ++round) {
    // Rotate arrival order every round; responses come back in batch order,
    // so rotate the expectation the same way.
    std::rotate(batch.begin(), batch.begin() + 1, batch.end());
    const std::vector<service::ServiceResponse> responses =
        service.ProcessBatch(batch);
    ASSERT_EQ(responses.size(), batch.size());
    for (size_t i = 0; i < responses.size(); ++i) {
      const size_t e = (i + round + 1) % expected.size();
      ASSERT_TRUE(responses[i].ok) << responses[i].error;
      EXPECT_EQ(service::SerializeResult(responses[i], /*per_query=*/true),
                service::SerializeResult(expected[e], /*per_query=*/true));
    }
  }

  const service::ServiceMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.requests, 6u * batch.size());
  EXPECT_EQ(metrics.errors, 0u);
  // Cache bookkeeping tallies: every request either hit or missed.
  EXPECT_EQ(metrics.result_hits + metrics.result_misses, metrics.requests);
}

// Several independent parallel bulk loads sharing one pool at once: the
// builds publish ParallelFor waves concurrently, yet each must still emit
// the bit-identical layout the serial loader produces. This is the
// deployment shape of the sharded service (many shards, one machine).
TEST(ConcurrencyStressTest, ConcurrentParallelBuildsShareOnePool) {
  const data::Dataset data = testing::SmallClustered(3000, 8, 91);
  const index::TreeTopology topo(data.size(), 20, 6);
  index::BulkLoadOptions serial;
  serial.topology = &topo;
  const index::RTree reference = index::BulkLoadInMemory(data, serial);
  const uint64_t reference_digest = index::TreeLayoutDigest(reference);

  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool);
  constexpr size_t kBuilders = 6;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> builders;
  builders.reserve(kBuilders);
  for (size_t b = 0; b < kBuilders; ++b) {
    builders.emplace_back([&] {
      for (size_t round = 0; round < 3; ++round) {
        index::BulkLoadOptions options;
        options.topology = &topo;
        options.exec = &ctx;
        const index::RTree tree = index::BulkLoadInMemory(data, options);
        if (index::TreeLayoutDigest(tree) != reference_digest ||
            tree.order() != reference.order()) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& b : builders) b.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

// The external (on-disk) build must be completely unaffected by the
// execution context: its point source is single-owner, so BulkLoad never
// fans it out, and the simulated disk's order-sensitive seek accounting
// stays exactly the serial recursion's. Same IoStats, same on-disk bytes,
// same tree, for any thread count.
TEST(ConcurrencyStressTest, ExternalBuildIoStatsAreThreadCountInvariant) {
  const data::Dataset data = testing::SmallClustered(4000, 6, 77);
  const index::TreeTopology topo(data.size(), 25, 8);

  io::PagedFile serial_file = io::PagedFile::FromDataset(data, io::DiskModel{});
  index::ExternalBuildOptions serial;
  serial.topology = &topo;
  serial.memory_points = 400;
  const index::ExternalBuildResult serial_result =
      index::BuildOnDisk(&serial_file, serial);

  common::ThreadPool pool(4);
  const common::ExecutionContext ctx(&pool);
  io::PagedFile pooled_file = io::PagedFile::FromDataset(data, io::DiskModel{});
  index::ExternalBuildOptions pooled = serial;
  pooled.exec = &ctx;
  const index::ExternalBuildResult pooled_result =
      index::BuildOnDisk(&pooled_file, pooled);

  EXPECT_EQ(serial_result.io.page_seeks, pooled_result.io.page_seeks);
  EXPECT_EQ(serial_result.io.page_transfers, pooled_result.io.page_transfers);
  EXPECT_EQ(index::TreeLayoutDigest(serial_result.tree),
            index::TreeLayoutDigest(pooled_result.tree));
  ASSERT_EQ(serial_file.raw().size(), pooled_file.raw().size());
  EXPECT_TRUE(std::equal(serial_file.raw().begin(), serial_file.raw().end(),
                         pooled_file.raw().begin()))
      << "on-disk page images diverged";
}

}  // namespace
}  // namespace hdidx
