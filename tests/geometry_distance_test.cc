#include "geometry/distance.h"

#include <cmath>
#include <vector>

#include "gtest/gtest.h"

namespace hdidx::geometry {
namespace {

TEST(DistanceTest, L2Basics) {
  const std::vector<float> a = {0, 0}, b = {3, 4};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(L2(a, b), 5.0);
  EXPECT_DOUBLE_EQ(L2(a, a), 0.0);
}

TEST(DistanceTest, MinDistZeroInsideBox) {
  const BoundingBox box({0, 0}, {2, 2});
  EXPECT_DOUBLE_EQ(MinDist(std::vector<float>{1, 1}, box), 0.0);
  EXPECT_DOUBLE_EQ(MinDist(std::vector<float>{0, 2}, box), 0.0);  // boundary
}

TEST(DistanceTest, MinDistToFaceEdgeCorner) {
  const BoundingBox box({0, 0}, {2, 2});
  // Face: directly right of the box.
  EXPECT_DOUBLE_EQ(MinDist(std::vector<float>{3, 1}, box), 1.0);
  // Corner: diagonal from (2,2).
  EXPECT_DOUBLE_EQ(MinDist(std::vector<float>{5, 6}, box), 5.0);
  // Below-left corner.
  EXPECT_DOUBLE_EQ(MinDist(std::vector<float>{-3, -4}, box), 5.0);
}

TEST(DistanceTest, MaxDistReachesFarthestCorner) {
  const BoundingBox box({0, 0}, {2, 2});
  // From the origin corner, the farthest point is (2,2).
  EXPECT_DOUBLE_EQ(MaxDist(std::vector<float>{0, 0}, box), std::sqrt(8.0));
  // From the center, any corner.
  EXPECT_DOUBLE_EQ(MaxDist(std::vector<float>{1, 1}, box), std::sqrt(2.0));
}

TEST(DistanceTest, MinDistNeverExceedsMaxDist) {
  const BoundingBox box({-1, 2, 0}, {4, 3, 7});
  const std::vector<std::vector<float>> points = {
      {0, 0, 0}, {10, 10, 10}, {-5, 2.5f, 3}, {2, 2.5f, 5}};
  for (const auto& p : points) {
    EXPECT_LE(MinDist(p, box), MaxDist(p, box));
  }
}

TEST(DistanceTest, SquaredMaxDistIsExactSquareOfMaxDist) {
  const BoundingBox box({-1, 2, 0}, {4, 3, 7});
  const std::vector<std::vector<float>> points = {
      {0, 0, 0}, {10, 10, 10}, {-5, 2.5f, 3}, {2, 2.5f, 5}, {4, 3, 7}};
  for (const auto& p : points) {
    const double sq = SquaredMaxDist(p, box);
    // MaxDist is defined as the exact sqrt of SquaredMaxDist — same bits.
    EXPECT_EQ(MaxDist(p, box), std::sqrt(sq));
    EXPECT_GE(sq, 0.0);
  }
  // Known value: from the origin of a unit square, the far corner is (2,2).
  EXPECT_DOUBLE_EQ(SquaredMaxDist(std::vector<float>{0, 0},
                                  BoundingBox({0, 0}, {2, 2})),
                   8.0);
  // Empty box: MaxDist is 0, so its square is too.
  EXPECT_DOUBLE_EQ(SquaredMaxDist(std::vector<float>{1, 1}, BoundingBox(2)),
                   0.0);
}

TEST(DistanceTest, SphereCoversBoxAtFarthestCorner) {
  const BoundingBox box({0, 0}, {2, 2});
  const std::vector<float> origin = {0, 0};
  const double far = std::sqrt(8.0);
  EXPECT_FALSE(SphereCoversBox(origin, 0.99 * far, box));
  EXPECT_TRUE(SphereCoversBox(origin, far, box));  // exactly reaching counts
  EXPECT_TRUE(SphereCoversBox(origin, 10.0, box));
  // Empty boxes are vacuously covered (SquaredMaxDist is 0).
  EXPECT_TRUE(SphereCoversBox(origin, 0.0, BoundingBox(2)));
  // Covering implies intersecting for non-empty boxes.
  EXPECT_TRUE(SphereIntersectsBox(origin, far, box));
}

TEST(DistanceDeathTest, NegativeOrNanRadiusIsFatal) {
  const BoundingBox box({0.f, 0.f}, {1.f, 1.f});
  const std::vector<float> center = {0.5f, 0.5f};
  EXPECT_DEATH(SphereIntersectsBox(center, -0.5, box), "non-negative");
  EXPECT_DEATH(SphereCoversBox(center, -1.0, box), "non-negative");
  // A NaN radius used to silently make every page count as missed.
  const double nan = std::nan("");
  EXPECT_DEATH(SphereIntersectsBox(center, nan, box), "non-negative");
}

TEST(DistanceTest, SphereBoxIntersection) {
  const BoundingBox box({0, 0}, {1, 1});
  const std::vector<float> center = {2, 0.5f};
  EXPECT_FALSE(SphereIntersectsBox(center, 0.99, box));
  EXPECT_TRUE(SphereIntersectsBox(center, 1.0, box));  // touching counts
  EXPECT_TRUE(SphereIntersectsBox(center, 1.5, box));
}

TEST(DistanceTest, EmptyBoxIsInfinitelyFar) {
  const BoundingBox empty(2);
  const std::vector<float> p = {0, 0};
  EXPECT_TRUE(std::isinf(MinDist(p, empty)));
  EXPECT_FALSE(SphereIntersectsBox(p, 1e12, empty));
}

TEST(UnitSphereVolumeTest, KnownLowDimensions) {
  EXPECT_NEAR(UnitSphereVolume(1), 2.0, 1e-12);             // segment
  EXPECT_NEAR(UnitSphereVolume(2), M_PI, 1e-12);            // disk
  EXPECT_NEAR(UnitSphereVolume(3), 4.0 / 3.0 * M_PI, 1e-12);
}

TEST(UnitSphereVolumeTest, VanishesInHighDimensions) {
  // V_d -> 0 super-exponentially; by d=60 it is astronomically small.
  EXPECT_LT(UnitSphereVolume(60), 1e-17);
  EXPECT_GT(UnitSphereVolume(60), 0.0);
  EXPECT_GT(UnitSphereVolume(5), UnitSphereVolume(20));
}

}  // namespace
}  // namespace hdidx::geometry
